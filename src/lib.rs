//! # `risc1` — facade crate for the RISC I reproduction workspace.
//!
//! Re-exports every subsystem under one roof. See the individual crates for
//! detail: [`isa`], [`core`], [`asm`], [`cisc`], [`m68`], [`ir`], [`lint`],
//! [`workloads`], [`stats`], [`experiments`].

pub use risc1_asm as asm;
pub use risc1_cisc as cisc;
pub use risc1_core as core;
pub use risc1_experiments as experiments;
pub use risc1_ir as ir;
pub use risc1_isa as isa;
pub use risc1_lint as lint;
pub use risc1_m68 as m68;
pub use risc1_serve as serve;
pub use risc1_stats as stats;
pub use risc1_workloads as workloads;

// Robustness surface, re-exported flat so downstream users get the whole
// checkpoint / record–replay / supervision story without depending on
// `risc1-core` or `risc1-ir` directly.
pub use risc1_core::{
    CheckpointStats, Checkpointer, Journal, JournalError, JournalEvent, RecordedOutcome,
    ReplayContext, RestoreError, Snapshot,
};
pub use risc1_ir::{
    minimize_journal, record_risc_injected, recorded_outcome, replay_journal, run_risc_deadline,
    run_risc_injected, run_risc_supervised, run_sharded, run_sharded_injected, run_sharded_with,
    InjectOutcome, InjectReport, InjectSetupError, ShardError, ShardedReport, StitchError,
    SupervisorConfig, SupervisorOutcome, SupervisorReport, TimedOutcome,
};
pub use risc1_serve::{
    ExecService, JobMode, JobOutput, JobSpec, Overloaded, PollState, ServiceConfig, SubmitError,
    SubmitTicket,
};
