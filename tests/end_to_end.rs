//! Cross-crate integration tests: the full path from assembly text or IR
//! source through both simulators, at realistic scales.

use risc1::asm::assemble;
use risc1::core::{Cpu, SimConfig};
use risc1::ir::interp::interpret;
use risc1::ir::{compile_cx, compile_risc, run_cx, run_risc, RiscOpts};
use risc1::workloads;

/// Assembly text → program → simulator, with procedure calls, window
/// traffic, loads and stores all exercised in one source file.
#[test]
fn assembly_program_with_calls_and_memory() {
    let src = "
        ; main: sum of squares 1..n via a helper procedure, plus a memory
        ; scratchpad round-trip.
        .entry main
    square: ; arg in r26, result to r26 = arg*arg via repeated addition
            add   r16, r0, #0       ; acc
            add   r17, r26, #0      ; counter
    sqloop: sub   r0, r17, #0 {scc}
            jmpr  eq, sqdone
            nop
            add   r16, r16, r26
            jmpr  alw, sqloop
            sub   r17, r17, #1
    sqdone: add   r26, r16, #0
            ret   r25, #8
            nop
    main:   add   r16, r0, #0       ; total
            add   r17, r26, #0      ; i := n
    mloop:  sub   r0, r17, #0 {scc}
            jmpr  eq, mdone
            nop
            add   r10, r17, #0      ; arg := i
            callr r25, square
            nop
            add   r16, r16, r10     ; total += i*i
            jmpr  alw, mloop
            sub   r17, r17, #1
    mdone:  ldhi  r18, #1           ; scratch at 0x2000
            stl   r16, r18, #0
            ldl   r26, r18, #0      ; return via memory round-trip
            halt
            nop
    ";
    let prog = assemble(src).expect("assembles");
    let mut cpu = Cpu::new(SimConfig::default());
    cpu.load_program(&prog).unwrap();
    cpu.set_args(&[10]);
    cpu.run().unwrap();
    assert_eq!(cpu.result(), 385, "1²+…+10²");
    let s = cpu.stats();
    assert_eq!(s.calls, 10);
    assert_eq!(s.rets, 10);
    assert_eq!(s.data_reads, 1);
    assert_eq!(s.data_writes, 1);
}

/// Paper-scale runs of the heaviest suite members, checked against the
/// interpreter on both machines. This is the expensive, high-assurance
/// version of the small differential test in `risc1-workloads`.
#[test]
fn paper_scale_differential_on_selected_workloads() {
    for id in ["sieve", "qsort", "puzzle", "hanoi"] {
        let w = workloads::by_id(id).unwrap();
        let oracle = interpret(&w.module, &w.args).expect("interpreter");
        let risc = compile_risc(&w.module, RiscOpts::default()).unwrap();
        let (rv, rs) = run_risc(&risc, &w.args).expect("risc");
        let cx = compile_cx(&w.module).unwrap();
        let (cv, cs) = run_cx(&cx, &w.args).expect("cx");
        assert_eq!(rv, oracle.value, "{id}: risc");
        assert_eq!(cv, oracle.value, "{id}: cx");
        assert!(rs.instructions > 10_000, "{id} should be substantial");
        assert!(cs.instructions > 1_000, "{id} should be substantial");
    }
}

/// Final memory state agrees between the two machines (same layout, same
/// stores) — stronger than comparing only the return value.
#[test]
fn final_global_memory_agrees_between_machines() {
    use risc1::ir::layout::Layout;
    let w = workloads::by_id("qsort").unwrap();
    let layout = Layout::of(&w.module);
    let n = 64;

    let risc_prog = compile_risc(&w.module, RiscOpts::default()).unwrap();
    let mut rcpu = Cpu::new(SimConfig::default());
    rcpu.load_program(&risc_prog).unwrap();
    rcpu.set_args(&[n]);
    rcpu.run().unwrap();

    let cx_prog = compile_cx(&w.module).unwrap();
    let mut ccpu = risc1::cisc::CxCpu::new(risc1::cisc::CxConfig::default());
    ccpu.load_program(&cx_prog).unwrap();
    ccpu.mem
        .load_image(risc1::ir::layout::ARGV_BASE, &(n as u32).to_le_bytes())
        .unwrap();
    ccpu.run().unwrap();

    let base = layout.addr(0);
    for i in 0..n as u32 {
        let a = rcpu.mem.peek_u32(base + 4 * i).unwrap();
        let b = ccpu.mem.peek_u32(base + 4 * i).unwrap();
        assert_eq!(a, b, "arr[{i}] differs between machines");
    }
}

/// The interpreter's final-global view matches the RISC machine's memory.
#[test]
fn interpreter_globals_match_machine_memory() {
    use risc1::ir::layout::Layout;
    let w = workloads::by_id("sieve").unwrap();
    let args = [200];
    let oracle = interpret(&w.module, &args).unwrap();
    let prog = compile_risc(&w.module, RiscOpts::default()).unwrap();
    let mut cpu = Cpu::new(SimConfig::default());
    cpu.load_program(&prog).unwrap();
    cpu.set_args(&args);
    cpu.run().unwrap();
    let layout = Layout::of(&w.module);
    let base = layout.addr(0);
    for (i, &v) in oracle.globals[0].iter().take(200).enumerate() {
        let got = u32::from(cpu.mem.peek_u8(base + i as u32).unwrap());
        assert_eq!(got, v as u32, "flags[{i}]");
    }
}

/// Window counts must not change program results — only timing.
#[test]
fn results_invariant_under_window_count() {
    let w = workloads::by_id("acker").unwrap();
    let prog = compile_risc(&w.module, RiscOpts::default()).unwrap();
    let mut reference = None;
    for windows in [2, 3, 5, 8, 16] {
        let cfg = SimConfig {
            windows,
            stack_top: 0x40000, // room for deep spills at tiny window counts
            ..SimConfig::default()
        };
        let (v, s) = risc1::ir::run_risc_with(&prog, &[4], cfg).unwrap();
        match reference {
            None => reference = Some(v),
            Some(r) => assert_eq!(v, r, "windows = {windows}"),
        }
        if windows == 2 {
            assert!(s.window_overflows > 1000, "2 windows must thrash");
        }
    }
}

/// Branch-model and forwarding settings must not change results either.
#[test]
fn results_invariant_under_timing_models() {
    use risc1::core::BranchModel;
    let w = workloads::by_id("f_bit_test").unwrap();
    let prog = compile_risc(&w.module, RiscOpts::default()).unwrap();
    let mut values = Vec::new();
    let mut cycles = Vec::new();
    for (model, fwd) in [
        (BranchModel::Delayed, true),
        (BranchModel::Delayed, false),
        (BranchModel::Suspended, true),
        (BranchModel::Suspended, false),
    ] {
        let cfg = SimConfig {
            branch_model: model,
            forwarding: fwd,
            ..SimConfig::default()
        };
        let (v, s) = risc1::ir::run_risc_with(&prog, &[150], cfg).unwrap();
        values.push(v);
        cycles.push(s.cycles);
    }
    assert!(values.windows(2).all(|w| w[0] == w[1]), "results differ");
    assert!(cycles[0] < cycles[1], "no-forwarding must cost cycles");
    assert!(cycles[0] < cycles[2], "suspended must cost cycles");
    assert!(
        cycles[3] >= cycles[1] && cycles[3] >= cycles[2],
        "both penalties stack"
    );
}
