//! The checkpoint-parallel (sharded) execution law, enforced end to end.
//!
//! PR 10's tentpole splits a run into `shard_cycles`-instruction shards:
//! a fast planning pass snapshots every boundary, the shards re-execute
//! in parallel from those snapshots, and a stitcher folds the pieces back
//! together while proving the folded result equals sequential execution.
//! Three laws pin that down:
//!
//! 1. **Shard transparency**: for every suite workload, every combination
//!    of shard size, worker-thread count and execution engine produces a
//!    report bit-identical to the plain sequential run — result, full
//!    `ExecStats`, architectural digest — and every combination agrees on
//!    the final memory digest.
//! 2. **Injected transparency**: under seeded fault injection (with and
//!    without recovery handlers), the sharded run replays the *exact*
//!    sequential event schedule and ends in the identical outcome,
//!    statistics and event list.
//! 3. **Cross-engine resume** (property test): a snapshot taken at an
//!    arbitrary instruction boundary under one engine, rebound to a
//!    *different* engine, continues bit-identically — the foundation the
//!    planner's rebind-to-caller-engine step rests on. Random boundaries
//!    land mid-delay-slot and mid-window-overflow, which is the point.

use proptest::prelude::*;
use risc1::core::inject::{InjectConfig, InjectModes};
use risc1::core::{Cpu, ExecEngine, Halt, Program, SimConfig};
use risc1::ir::layout::ARGV_BASE;
use risc1::ir::{
    compile_risc, run_risc, run_risc_injected, run_sharded_injected, run_sharded_with,
    InjectOutcome, RiscOpts,
};
use risc1::workloads::all;
use std::sync::OnceLock;

/// One compiled workload: id, program, args, clean result, fuel-bounded
/// config, and an injection rate tuned to ~4 perturbations per run.
struct Compiled {
    id: &'static str,
    prog: Program,
    args: Vec<i32>,
    expect: i32,
    cfg: SimConfig,
    rate: u32,
    instructions: u64,
}

fn suite() -> &'static Vec<Compiled> {
    static SUITE: OnceLock<Vec<Compiled>> = OnceLock::new();
    SUITE.get_or_init(|| {
        all()
            .iter()
            .map(|w| {
                let prog = compile_risc(&w.module, RiscOpts::default()).expect("suite compiles");
                let (expect, base) = run_risc(&prog, &w.small_args).expect("suite runs clean");
                let cfg = SimConfig {
                    fuel: base.instructions * 3 + 10_000,
                    ..SimConfig::default()
                };
                let rate = (4 * 10_000 / base.instructions.max(1)).clamp(1, 500) as u32;
                Compiled {
                    id: w.id,
                    prog,
                    args: w.small_args.clone(),
                    expect,
                    cfg,
                    rate,
                    instructions: base.instructions,
                }
            })
            .collect()
    })
}

/// Sets a CPU up exactly like `run_risc_with` does (register args + ARGV
/// mirror), so sequential references run the real execution path.
fn fresh_cpu(w: &Compiled, engine: ExecEngine) -> Cpu {
    let mut cpu = Cpu::new(SimConfig {
        engine,
        ..w.cfg.clone()
    });
    cpu.load_program(&w.prog).expect("fits");
    cpu.set_args(&w.args);
    for (i, &a) in w.args.iter().enumerate() {
        let _ = cpu
            .mem
            .load_image(ARGV_BASE + 4 * i as u32, &(a as u32).to_le_bytes());
    }
    cpu
}

/// Law 1: for every workload, shard size × thread count × engine is
/// invisible — each combination matches the sequential run bit for bit,
/// and all combinations agree on the final memory digest.
#[test]
fn every_workload_shards_bit_identically_across_engines_and_threads() {
    for w in suite() {
        for engine in [ExecEngine::Uncached, ExecEngine::Trace] {
            // Sequential reference under this engine.
            let mut reference = fresh_cpu(w, engine);
            reference.run().expect("clean run");
            assert_eq!(reference.result(), w.expect, "{}", w.id);

            let cfg = SimConfig {
                engine,
                ..w.cfg.clone()
            };
            let mut digests = Vec::new();
            for shard_cycles in [(w.instructions / 7).max(64), (w.instructions / 3).max(128)] {
                for threads in [1usize, 4] {
                    let rep =
                        run_sharded_with(&w.prog, &w.args, cfg.clone(), shard_cycles, threads)
                            .expect("sharded run arranges and stitches");
                    assert_eq!(
                        rep.report.outcome,
                        InjectOutcome::Halted { result: w.expect },
                        "{} {engine:?} sc={shard_cycles} t={threads}",
                        w.id
                    );
                    assert_eq!(
                        rep.report.stats,
                        reference.stats(),
                        "{} {engine:?} sc={shard_cycles} t={threads}: ExecStats divergence",
                        w.id
                    );
                    assert_eq!(
                        rep.arch_digest,
                        reference.arch_digest(),
                        "{} {engine:?} sc={shard_cycles} t={threads}: architectural divergence",
                        w.id
                    );
                    assert!(
                        rep.report.events.is_empty(),
                        "{}: nothing was injected",
                        w.id
                    );
                    digests.push(rep.mem_digest);
                }
            }
            // The cut points and worker counts varied; the memory image
            // must not have.
            assert!(
                digests.windows(2).all(|d| d[0] == d[1]),
                "{} {engine:?}: memory digest depends on the sharding",
                w.id
            );
        }
    }
}

/// Law 2: a fault-injected sharded run replays the sequential schedule —
/// identical outcome, statistics and applied-event list — for every
/// workload, several seeds, recovery alternating.
#[test]
fn injected_shards_replay_the_sequential_schedule() {
    let mut any_events = false;
    for w in suite() {
        for seed in 1..=3u64 {
            let recovery = seed % 2 == 0;
            let icfg = InjectConfig {
                seed,
                rate: w.rate,
                modes: InjectModes::all(),
            };
            let plain = run_risc_injected(&w.prog, &w.args, w.cfg.clone(), icfg, recovery)
                .expect("setup is valid");
            let rep = run_sharded_injected(
                &w.prog,
                &w.args,
                w.cfg.clone(),
                icfg,
                recovery,
                (w.instructions / 5).max(200),
                2,
            )
            .expect("sharded setup is valid");
            assert_eq!(
                rep.report, plain,
                "{} seed {seed} recovery={recovery}: sharded report diverged",
                w.id
            );
            any_events |= !plain.events.is_empty();
        }
    }
    assert!(
        any_events,
        "some campaign must inject (else nothing was tested)"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Law 3: a snapshot captured at an arbitrary boundary under one
    /// engine, rebound to a different engine, continues bit-identically —
    /// result, `ExecStats` and architectural digest all match a run that
    /// never left the destination engine.
    #[test]
    fn snapshots_resume_bit_identically_under_a_different_engine(
        widx in 0usize..11,
        frac_permille in 0u64..1000,
        pair in 0usize..4,
    ) {
        const PAIRS: [(ExecEngine, ExecEngine); 4] = [
            (ExecEngine::Trace, ExecEngine::Superblock),
            (ExecEngine::Cached, ExecEngine::Uncached),
            (ExecEngine::Uncached, ExecEngine::Trace),
            (ExecEngine::Superblock, ExecEngine::Cached),
        ];
        let (from, to) = PAIRS[pair];
        let w = &suite()[widx];
        let boundary = w.instructions * frac_permille / 1000;

        // Reference: the whole run under the destination engine.
        let mut reference = fresh_cpu(w, to);
        reference.run().expect("clean run");
        prop_assert_eq!(reference.result(), w.expect);

        // Capture under `from` at the boundary, rebind, resume under `to`.
        let mut origin = fresh_cpu(w, from);
        while origin.stats().instructions < boundary {
            match origin.step().expect("clean workloads do not fault") {
                Halt::Running => {}
                Halt::Returned => break,
            }
        }
        let mut snap = origin.snapshot();
        snap.rebind_engine(to);
        snap.verify().expect("rebinding recomputes the checksum");

        let mut twin = Cpu::new(SimConfig { engine: to, ..w.cfg.clone() });
        twin.restore(&snap).expect("restore succeeds");
        twin.run().expect("restored continuation");

        prop_assert_eq!(twin.result(), w.expect, "{} {:?}->{:?}", w.id, from, to);
        prop_assert_eq!(&twin.stats(), &reference.stats(), "{} {:?}->{:?}", w.id, from, to);
        prop_assert_eq!(
            twin.arch_digest(),
            reference.arch_digest(),
            "{} {:?}->{:?}", w.id, from, to
        );
    }
}
