//! Integration suite for the static analyzer: every compiler-produced
//! program in the repo must come out of `risc1-lint` with zero
//! error-severity findings, and a deliberately buggy hand-written program
//! must trip the headline rules — through the library API and through the
//! `risc1 lint` CLI.

use risc1::asm::assemble;
use risc1::ir::{compile_risc, RiscOpts};
use risc1::lint::{has_errors, lint_program, render_text, LintConfig, Rule, Severity};
use risc1::workloads;

fn assert_error_free(prog: &risc1::core::Program, what: &str) {
    let diags = lint_program(prog, &LintConfig::default());
    assert!(
        !has_errors(&diags),
        "{what} has error-severity lint findings:\n{}",
        render_text(&diags)
    );
}

/// Every suite workload, compiled with and without the delay-slot filler,
/// lints clean of errors. The filled variant doubles as a check that
/// `fill_delay_slots` only hoists instructions the shared hazard predicate
/// allows — the analyzer re-derives the same predicate per slot.
#[test]
fn all_workloads_lint_error_free_with_and_without_delay_filling() {
    for w in workloads::all() {
        for fill in [false, true] {
            let prog = compile_risc(
                &w.module,
                RiscOpts {
                    fill_delay_slots: fill,
                },
            )
            .expect("compiles");
            assert_error_free(&prog, &format!("workload `{}` (fill={fill})", w.id));
        }
    }
}

/// The quickstart example's program (examples/quickstart.rs) is fully
/// clean: no errors and no warnings, even with its hand-scheduled delay
/// slot.
#[test]
fn quickstart_example_program_is_clean() {
    let src = "
            add   r16, r0, #0        ; acc := 0
            add   r17, r26, #0       ; i := n (first argument, in r26)
    loop:   sub   r0, r17, #0 {scc}  ; set flags from i
            jmpr  eq, done
            nop
            add   r16, r16, r17      ; acc += i
            jmpr  alw, loop
            sub   r17, r17, #1       ; delay slot: i -= 1
    done:   add   r26, r16, #0       ; return value convention: r26
            halt
            nop
    ";
    let prog = assemble(src).expect("assembles");
    let diags = lint_program(&prog, &LintConfig::default());
    assert!(
        diags.iter().all(|d| d.severity == Severity::Info),
        "quickstart program should be warning-free:\n{}",
        render_text(&diags)
    );
}

/// The interrupt demo's program (examples/interrupt_demo.rs): the handler
/// is only entered asynchronously, so static analysis reports it
/// unreachable — a warning, never an error.
#[test]
fn interrupt_demo_program_has_no_errors() {
    let src = "
        .entry main
        handler:
            ldhi  r16, #1
            ldl   r17, r16, #0
            add   r17, r17, #1
            stl   r17, r16, #0
            reti  r25, #0
            nop
        main:
            add   r16, r0, #0
            li    r18, #50000
        spin:
            add   r16, r16, #1
            sub   r0, r16, r18 {scc}
            jmpr  ne, spin
            nop
            add   r26, r16, #0
            halt
            nop
    ";
    let prog = assemble(src).expect("assembles");
    let diags = lint_program(&prog, &LintConfig::default());
    assert!(!has_errors(&diags), "{}", render_text(&diags));
    assert!(
        diags.iter().any(|d| d.rule == Rule::UnreachableCode),
        "the interrupt handler is statically unreachable:\n{}",
        render_text(&diags)
    );
}

/// The deliberately buggy acceptance program: one source exhibiting a
/// branch into a delay slot, an uninitialized register read, and a static
/// call chain deeper than the configured window file.
const BUGGY_SRC: &str = "
    .entry main
    f8:     add   r26, r26, #1
            ret   r25, #8
            nop
    f7:     callr r25, f8
            nop
            ret   r25, #8
            nop
    f6:     callr r25, f7
            nop
            ret   r25, #8
            nop
    f5:     callr r25, f6
            nop
            ret   r25, #8
            nop
    f4:     callr r25, f5
            nop
            ret   r25, #8
            nop
    f3:     callr r25, f4
            nop
            ret   r25, #8
            nop
    f2:     callr r25, f3
            nop
            ret   r25, #8
            nop
    f1:     callr r25, f2
            nop
            ret   r25, #8
            nop
    main:   callr r25, f1
            nop
            add   r16, r20, #0      ; BUG: r20 is never written
            sub   r0, r16, #0 {scc}
            jmpr  eq, inslot        ; BUG: targets the delay slot of jend
            nop
    jend:   jmpr  alw, end
    inslot: add   r17, r0, #1       ; jend's delay slot, also a jump target
    end:    halt
            nop
";

#[test]
fn buggy_program_trips_the_headline_rules() {
    let prog = assemble(BUGGY_SRC).expect("assembles");
    // main -> f1 -> … -> f8 is 8 nested calls; 8 windows hold 7 frames.
    let diags = lint_program(
        &prog,
        &LintConfig {
            windows: 8,
            ..LintConfig::default()
        },
    );
    let fired: Vec<Rule> = diags.iter().map(|d| d.rule).collect();
    assert!(
        fired.contains(&Rule::BranchIntoDelaySlot),
        "{}",
        render_text(&diags)
    );
    assert!(fired.contains(&Rule::UninitRead), "{}", render_text(&diags));
    assert!(
        fired.contains(&Rule::WindowOverflowDepth),
        "{}",
        render_text(&diags)
    );
    let uninit = diags.iter().find(|d| d.rule == Rule::UninitRead).unwrap();
    assert!(uninit.message.contains("r20"), "{}", uninit.message);

    // A window file deep enough for the whole chain silences the depth rule.
    let deep = lint_program(
        &prog,
        &LintConfig {
            windows: 16,
            ..LintConfig::default()
        },
    );
    assert!(!deep.iter().any(|d| d.rule == Rule::WindowOverflowDepth));
}

/// The same program through `risc1 lint` (warnings only → exit success),
/// in both text and JSON renderings.
#[test]
fn cli_lint_reports_the_buggy_program() {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(dir).unwrap();
    let path = dir.join("buggy.s");
    std::fs::write(&path, BUGGY_SRC).unwrap();
    let p = path.to_str().unwrap().to_string();

    let text = risc1_cli::dispatch(&[String::from("lint"), p.clone()])
        .expect("warnings do not fail the command");
    assert!(text.contains("branch-into-delay-slot"), "{text}");
    assert!(text.contains("uninit-read"), "{text}");
    assert!(text.contains("window-overflow-depth"), "{text}");
    assert!(text.contains("warning("), "summary line present: {text}");

    let json = risc1_cli::dispatch(&[String::from("lint"), p.clone(), String::from("--json")])
        .expect("warnings do not fail the command");
    for line in json.lines() {
        assert!(
            line.starts_with("{\"rule\":\"") && line.ends_with("\"}"),
            "JSON-lines shape: {line}"
        );
    }
    assert!(json.contains("\"rule\":\"uninit-read\""), "{json}");

    // A program with an error-severity finding makes the command fail.
    let bad = dir.join("fault.s");
    std::fs::write(
        &bad,
        "
        jmpr alw, x
        jmpr alw, x     ; transfer in the delay slot: hardware fault
        x: halt
        nop
        ",
    )
    .unwrap();
    let err = risc1_cli::dispatch(&[String::from("lint"), bad.to_str().unwrap().to_string()])
        .expect_err("error findings fail the command");
    assert!(err.contains("transfer-in-delay-slot"), "{err}");
}

/// Fixture for `dead-scc-set`, one of the two spec-table-driven rules: an
/// `{scc}` whose flags are overwritten before anything reads them fires,
/// while the consumed setter right after it stays quiet.
#[test]
fn dead_scc_set_fixture_flags_only_the_unread_setter() {
    let src = "
            add   r16, r26, #0
            sub   r0, r16, #1 {scc}   ; DEAD: overwritten before any reader
            sub   r0, r16, #2 {scc}   ; live: jmpr reads these flags
            jmpr  gt, done
            nop
            add   r16, r16, #1
    done:   add   r26, r16, #0
            halt
            nop
    ";
    let prog = assemble(src).expect("assembles");
    let diags = lint_program(&prog, &LintConfig::default());
    let dead: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == Rule::DeadSccSet)
        .collect();
    assert_eq!(dead.len(), 1, "{}", render_text(&diags));
    assert_eq!(dead[0].pc, 4, "the unread setter, not the consumed one");
    assert_eq!(dead[0].severity, Severity::Info);
}

/// Fixture for `spec-illegal-encoding`: words that decode fine but carry an
/// operand shape the spec table's `validate` rejects — the assembler could
/// never have produced them. Assembly cannot express these, so the program
/// is built from instruction literals.
#[test]
fn spec_illegal_encoding_fixture_flags_noncanonical_words() {
    use risc1::isa::{Instruction, Opcode, Operands, Reg, Short2};
    let insns = vec![
        // Shift count #40: legal to execute (the shifter masks to 5 bits)
        // but outside the canonical 0..=31.
        Instruction {
            opcode: Opcode::Sll,
            scc: false,
            operands: Operands::Short {
                dest: Reg::R16,
                rs1: Reg::R16,
                s2: Short2::imm(40).expect("fits imm13"),
            },
        },
        // A ret whose architecturally-ignored dest field names r5.
        Instruction {
            opcode: Opcode::Ret,
            scc: false,
            operands: Operands::Short {
                dest: Reg::R5,
                rs1: Reg::R0,
                s2: Short2::ZERO,
            },
        },
        Instruction::nop(),
    ];
    let prog = risc1::core::Program::from_instructions(insns);
    let diags = lint_program(&prog, &LintConfig::default());
    let illegal: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == Rule::SpecIllegalEncoding)
        .collect();
    assert_eq!(illegal.len(), 2, "{}", render_text(&diags));
    assert!(
        illegal[0].message.contains("shift count"),
        "{}",
        illegal[0].message
    );
    assert!(
        illegal[1].message.contains("must be r0"),
        "{}",
        illegal[1].message
    );
    assert!(
        !has_errors(&diags),
        "both findings are warnings, not errors"
    );
}

/// The cross-crate end-to-end assembly program (tests/end_to_end.rs) also
/// lints error-free — hand-written code with calls, loops and memory.
#[test]
fn end_to_end_assembly_program_is_error_free() {
    let src = "
        .entry main
    square: add   r16, r0, #0
            add   r17, r26, #0
    sqloop: sub   r0, r17, #0 {scc}
            jmpr  eq, sqdone
            nop
            add   r16, r16, r26
            jmpr  alw, sqloop
            sub   r17, r17, #1
    sqdone: add   r26, r16, #0
            ret   r25, #8
            nop
    main:   add   r16, r0, #0
            add   r17, r26, #0
    mloop:  sub   r0, r17, #0 {scc}
            jmpr  eq, mdone
            nop
            add   r10, r17, #0
            callr r25, square
            nop
            add   r16, r16, r10
            jmpr  alw, mloop
            sub   r17, r17, #1
    mdone:  ldhi  r18, #1
            stl   r16, r18, #0
            ldl   r26, r18, #0
            halt
            nop
    ";
    assert_error_free(&assemble(src).expect("assembles"), "end-to-end program");
}
