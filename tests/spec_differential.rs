//! Generative differential fuzzing: every engine against the executable spec.
//!
//! The spec module (`crates/isa/src/spec.rs`) carries a fourth, deliberately
//! slow execution engine — a reference interpreter defined directly against
//! the per-instruction semantics table, sharing no datapath code with
//! `risc1-core` (independent window-ring indexing, independent flag algebra).
//! This suite generates random *valid* programs from the spec table — every
//! opcode and operand shape is reachable through some gadget — and asserts
//! that the uncached, cached, superblock, and trace engines all produce the
//! exact state the spec interpreter does: result, final PC, the visible
//! window, window position and depth, a digest of all of memory, and the
//! stats-visible counters.
//!
//! Program shape: a prologue pins `r9` at a scratch data region, then a
//! random sequence of self-contained gadgets — straight-line ALU/memory
//! runs, compare-and-skip forward branches, bounded counted loops,
//! register-indexed jumps, calls (both `callr` and register-indexed `call`)
//! into generated leaf functions, and a `calli`/`reti` trap-nest — ending in
//! the halting `ret`. Gadgets keep call depth far below the window count
//! (the spec machine has no spill/fill and faults on overflow) and keep all
//! memory traffic inside an aligned scratch window, so every generated
//! program halts cleanly on all five machines.
//!
//! A seeded fault-injection variant reruns the same generated programs under
//! a deterministic injection campaign and holds the four production engines
//! to bit-identical `InjectReport`s (the spec machine models no injection,
//! so it sits that variant out).

use proptest::prelude::*;
use proptest::{collection, sample};
use risc1::core::inject::{InjectConfig, InjectModes};
use risc1::core::{Cpu, ExecEngine, ExecStats, Halt, Program, SimConfig};
use risc1::ir::{default_threads, parallel_map, run_risc_injected};
use risc1::isa::spec::{SpecState, SpecStats};
use risc1::isa::{Cond, Instruction, Opcode, Reg, Short2};
use std::collections::HashSet;

/// Where programs load (must match `SimConfig::default().code_base` — the
/// indexed-jump and indexed-call gadgets materialize absolute addresses).
const CODE_BASE: u32 = 0x1000;

/// Scratch data region all generated loads/stores stay inside. `ldhi`
/// reaches it exactly: `0x4_0000 == 0x20 << 13`.
const DATA_BASE: u32 = 0x4_0000;

/// Number of 4-byte-aligned scratch slots (aligned for every access width).
const DATA_WORDS: i32 = 64;

/// Spec-interpreter instruction budget — generated programs retire a few
/// hundred instructions, so hitting this means the generator lost its
/// termination guarantee.
const SPEC_FUEL: u64 = 100_000;

const ALU_OPS: [Opcode; 12] = [
    Opcode::Add,
    Opcode::Addc,
    Opcode::Sub,
    Opcode::Subc,
    Opcode::Subr,
    Opcode::Subcr,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Sll,
    Opcode::Srl,
    Opcode::Sra,
];

const MEM_OPS: [Opcode; 8] = [
    Opcode::Ldl,
    Opcode::Ldsu,
    Opcode::Ldss,
    Opcode::Ldbu,
    Opcode::Ldbs,
    Opcode::Stl,
    Opcode::Sts,
    Opcode::Stb,
];

/// Destination pool for gadgets in the main body. Reserved: r8 (loop
/// counter), r9 (data base), r0 (hardwired zero).
fn main_pool() -> Vec<Reg> {
    vec![
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R16,
        Reg::R17,
        Reg::R18,
        Reg::R19,
        Reg::R20,
        Reg::R21,
        Reg::R22,
        Reg::R23,
        Reg::R24,
        Reg::R25,
        Reg::R26,
        Reg::R27,
    ]
}

/// Destination pool where r25 holds a live return address: function bodies,
/// call delay slots, and `calli` bodies.
fn linkless_pool() -> Vec<Reg> {
    main_pool().into_iter().filter(|r| *r != Reg::R25).collect()
}

fn imm(v: i32) -> Short2 {
    Short2::imm(v).expect("gadget immediate fits imm13")
}

/// One straight-line, non-transfer instruction writing only into `dests`:
/// ALU/shift (with and without `{scc}`), aligned loads and stores through
/// r9, `ldhi`, and the PSW trio.
fn arb_simple(dests: Vec<Reg>) -> BoxedStrategy<Instruction> {
    let mut srcs = dests.clone();
    srcs.push(Reg::R0);
    srcs.push(Reg::R9);

    let alu = (
        sample::select(ALU_OPS.to_vec()),
        sample::select(dests.clone()),
        sample::select(srcs.clone()),
        prop_oneof![
            sample::select(srcs.clone()).prop_map(Short2::Reg),
            (-4096i32..=4095).prop_map(imm),
        ],
        any::<bool>(),
    )
        .prop_map(|(op, dest, rs1, s2, scc)| {
            // Keep shift-count immediates canonical (0..=31); register
            // counts are masked identically by every machine.
            let s2 = match (op, s2) {
                (Opcode::Sll | Opcode::Srl | Opcode::Sra, Short2::Imm(v)) => {
                    imm(i32::from(v).rem_euclid(32))
                }
                (_, s2) => s2,
            };
            if scc {
                Instruction::reg_scc(op, dest, rs1, s2)
            } else {
                Instruction::reg(op, dest, rs1, s2)
            }
        });

    let mem = (
        sample::select(MEM_OPS.to_vec()),
        sample::select(dests.clone()),
        0i32..DATA_WORDS,
    )
        .prop_map(|(op, r, slot)| Instruction::reg(op, r, Reg::R9, imm(4 * slot)));

    let ldhi =
        (sample::select(dests.clone()), 0u32..(1 << 19)).prop_map(|(d, v)| Instruction::ldhi(d, v));

    let psw = (
        0u8..3,
        sample::select(dests),
        sample::select(srcs),
        -4096i32..=4095,
    )
        .prop_map(|(which, dest, rs1, v)| match which {
            0 => Instruction::reg(Opcode::Getpsw, dest, Reg::R0, Short2::ZERO),
            1 => Instruction::reg(Opcode::Gtlpc, dest, Reg::R0, Short2::ZERO),
            _ => Instruction::reg(Opcode::Putpsw, Reg::R0, rs1, imm(v)),
        });

    prop_oneof![alu.boxed(), mem.boxed(), ldhi.boxed(), psw.boxed()].boxed()
}

/// One self-contained gadget. Every variant executes to its own end and
/// leaves the PC at the next gadget.
#[derive(Debug, Clone)]
enum Piece {
    /// A run of simple instructions.
    Straight(Vec<Instruction>),
    /// `sub{scc} r0, rs1, #v; jmpr cond, +skip; <delay>; <skipped…>` — both
    /// arms converge right after the skipped block.
    Branch {
        cmp_rs1: Reg,
        cmp_s2: i32,
        cond: Cond,
        delay: Instruction,
        skipped: Vec<Instruction>,
    },
    /// A counted loop on r8: `add r8, r0, #n; <body>; sub{scc} r8, r8, #1;
    /// jmpr gt, -…; <delay>`.
    Loop {
        iters: i32,
        body: Vec<Instruction>,
        delay: Instruction,
    },
    /// `nop; calli r25; <body>; reti r25, #…; nop` — a trap-style nest that
    /// pushes a window in place and returns through `reti`.
    Calli { body: Vec<Instruction> },
    /// A call into generated function `sel % funcs.len()`, either `callr`
    /// or a register-indexed `call` through r7.
    CallFn {
        sel: usize,
        indexed: bool,
        delay: Instruction,
    },
    /// A register-indexed `jmp cond` to the very next gadget — taken or
    /// not, execution lands in the same place.
    JmpAbs { cond: Cond, delay: Instruction },
}

/// A generated program: gadgets for the main body plus bodies for the leaf
/// functions the call gadgets target.
#[derive(Debug, Clone)]
struct GenProgram {
    main: Vec<Piece>,
    funcs: Vec<Vec<Piece>>,
}

fn arb_main_piece() -> BoxedStrategy<Piece> {
    let simple = arb_simple(main_pool());
    let linkless = arb_simple(linkless_pool());
    let conds = sample::select(Cond::ALL.to_vec());

    let straight = collection::vec(simple.clone(), 1..4).prop_map(Piece::Straight);
    let branch = (
        sample::select(main_pool()),
        -16i32..=16,
        sample::select(Cond::ALL.to_vec()),
        simple.clone(),
        collection::vec(simple.clone(), 1..3),
    )
        .prop_map(|(cmp_rs1, cmp_s2, cond, delay, skipped)| Piece::Branch {
            cmp_rs1,
            cmp_s2,
            cond,
            delay,
            skipped,
        });
    let looped = (
        1i32..=5,
        collection::vec(simple.clone(), 1..3),
        simple.clone(),
    )
        .prop_map(|(iters, body, delay)| Piece::Loop { iters, body, delay });
    let calli = collection::vec(linkless.clone(), 0..3).prop_map(|body| Piece::Calli { body });
    let callfn =
        (0usize..64, any::<bool>(), linkless).prop_map(|(sel, indexed, delay)| Piece::CallFn {
            sel,
            indexed,
            delay,
        });
    let jmpabs = (conds, simple).prop_map(|(cond, delay)| Piece::JmpAbs { cond, delay });

    prop_oneof![
        straight.boxed(),
        branch.boxed(),
        looped.boxed(),
        calli.boxed(),
        callfn.boxed(),
        jmpabs.boxed(),
    ]
    .boxed()
}

/// Function-body gadgets: no calls (call depth stays ≤ 2 with the `calli`
/// nest counted) and nothing that clobbers the live link in r25.
fn arb_func_piece() -> BoxedStrategy<Piece> {
    let simple = arb_simple(linkless_pool());
    let straight = collection::vec(simple.clone(), 1..4).prop_map(Piece::Straight);
    let branch = (
        sample::select(linkless_pool()),
        -16i32..=16,
        sample::select(Cond::ALL.to_vec()),
        simple.clone(),
        collection::vec(simple.clone(), 1..3),
    )
        .prop_map(|(cmp_rs1, cmp_s2, cond, delay, skipped)| Piece::Branch {
            cmp_rs1,
            cmp_s2,
            cond,
            delay,
            skipped,
        });
    let looped = (1i32..=5, collection::vec(simple.clone(), 1..3), simple)
        .prop_map(|(iters, body, delay)| Piece::Loop { iters, body, delay });
    prop_oneof![straight.boxed(), branch.boxed(), looped.boxed()].boxed()
}

fn arb_gen_program() -> BoxedStrategy<GenProgram> {
    (
        collection::vec(arb_main_piece(), 2..8),
        collection::vec(collection::vec(arb_func_piece(), 1..4), 0..3),
    )
        .prop_map(|(main, funcs)| GenProgram { main, funcs })
        .boxed()
}

/// Emits one gadget at the current end of `out`. Call gadgets record a
/// fixup (function start indices are unknown until the whole main body is
/// laid out).
fn emit(
    out: &mut Vec<Instruction>,
    p: &Piece,
    n_funcs: usize,
    fixups: &mut Vec<(usize, usize, bool)>,
) {
    match p {
        Piece::Straight(v) => out.extend(v.iter().copied()),
        Piece::Branch {
            cmp_rs1,
            cmp_s2,
            cond,
            delay,
            skipped,
        } => {
            out.push(Instruction::reg_scc(
                Opcode::Sub,
                Reg::R0,
                *cmp_rs1,
                imm(*cmp_s2),
            ));
            out.push(Instruction::jmpr(*cond, 4 * (2 + skipped.len() as i32)));
            out.push(*delay);
            out.extend(skipped.iter().copied());
        }
        Piece::Loop { iters, body, delay } => {
            out.push(Instruction::reg(Opcode::Add, Reg::R8, Reg::R0, imm(*iters)));
            out.extend(body.iter().copied());
            out.push(Instruction::reg_scc(Opcode::Sub, Reg::R8, Reg::R8, imm(1)));
            out.push(Instruction::jmpr(Cond::Gt, -4 * (body.len() as i32 + 1)));
            out.push(*delay);
        }
        Piece::Calli { body } => {
            // The anchor nop pins last_pc, so the calli's link (and the
            // reti target computed from it) is position-exact.
            out.push(Instruction::nop());
            out.push(Instruction::reg(
                Opcode::Calli,
                Reg::R25,
                Reg::R0,
                Short2::ZERO,
            ));
            out.extend(body.iter().copied());
            out.push(Instruction::reti(Reg::R25, imm(16 + 4 * body.len() as i32)));
            out.push(Instruction::nop()); // reti delay slot
        }
        Piece::CallFn {
            sel,
            indexed,
            delay,
        } => {
            if n_funcs == 0 {
                return;
            }
            let fi = sel % n_funcs;
            if *indexed {
                fixups.push((out.len(), fi, true));
                out.push(Instruction::nop()); // patched: add r7, r0, #(addr >> 2)
                out.push(Instruction::reg(Opcode::Sll, Reg::R7, Reg::R7, imm(2)));
                out.push(Instruction::call(Reg::R25, Reg::R7, Short2::ZERO));
            } else {
                fixups.push((out.len(), fi, false));
                out.push(Instruction::nop()); // patched: callr r25, #offset
            }
            out.push(*delay);
        }
        Piece::JmpAbs { cond, delay } => {
            let target = CODE_BASE + 4 * (out.len() as u32 + 4);
            assert!(
                target >> 2 <= 4095,
                "program outgrew the indexed-jump gadget"
            );
            out.push(Instruction::reg(
                Opcode::Add,
                Reg::R7,
                Reg::R0,
                imm((target >> 2) as i32),
            ));
            out.push(Instruction::reg(Opcode::Sll, Reg::R7, Reg::R7, imm(2)));
            out.push(Instruction::jmp(*cond, Reg::R7, Short2::ZERO));
            out.push(*delay);
        }
    }
}

/// Lays a generated program out as instructions: prologue, main gadgets,
/// halting return, then each function body (entered at its first word,
/// returning with `ret r25, #8`).
fn build(gp: &GenProgram) -> Program {
    let mut out = vec![Instruction::ldhi(Reg::R9, DATA_BASE >> 13)];
    let mut fixups: Vec<(usize, usize, bool)> = Vec::new();
    for p in &gp.main {
        emit(&mut out, p, gp.funcs.len(), &mut fixups);
    }
    out.push(Instruction::ret(Reg::R0, Short2::ZERO));
    out.push(Instruction::nop());

    let mut starts = Vec::new();
    for f in &gp.funcs {
        starts.push(out.len());
        let mut no_fixups = Vec::new();
        for p in f {
            emit(&mut out, p, 0, &mut no_fixups);
        }
        assert!(no_fixups.is_empty(), "function bodies make no calls");
        out.push(Instruction::ret(Reg::R25, imm(8)));
        out.push(Instruction::nop());
    }

    for (at, fi, indexed) in fixups {
        if indexed {
            let addr = CODE_BASE + 4 * starts[fi] as u32;
            assert!(addr >> 2 <= 4095, "program outgrew the indexed-call gadget");
            out[at] = Instruction::reg(Opcode::Add, Reg::R7, Reg::R0, imm((addr >> 2) as i32));
        } else {
            out[at] = Instruction::callr(Reg::R25, 4 * (starts[fi] as i32 - at as i32));
        }
    }
    Program::from_instructions(out)
}

/// Opcodes a generated program is *guaranteed* to retire (branch-skipped
/// blocks excluded, function bodies counted only when some gadget calls).
fn guaranteed_opcodes(gp: &GenProgram, cov: &mut HashSet<Opcode>) {
    cov.insert(Opcode::Ldhi); // prologue
    cov.insert(Opcode::Ret); // halting return
    let calls = gp
        .main
        .iter()
        .any(|p| matches!(p, Piece::CallFn { .. }) && !gp.funcs.is_empty());
    let mut walk = |pieces: &[Piece]| {
        for p in pieces {
            match p {
                Piece::Straight(v) => cov.extend(v.iter().map(|i| i.opcode)),
                Piece::Branch { delay, .. } => {
                    cov.extend([Opcode::Sub, Opcode::Jmpr, delay.opcode]);
                }
                Piece::Loop { body, delay, .. } => {
                    cov.extend(body.iter().map(|i| i.opcode));
                    cov.extend([Opcode::Add, Opcode::Sub, Opcode::Jmpr, delay.opcode]);
                }
                Piece::Calli { body } => {
                    cov.extend(body.iter().map(|i| i.opcode));
                    cov.extend([Opcode::Calli, Opcode::Reti]);
                }
                Piece::CallFn { indexed, delay, .. } if !gp.funcs.is_empty() => {
                    cov.extend(if *indexed {
                        vec![Opcode::Add, Opcode::Sll, Opcode::Call]
                    } else {
                        vec![Opcode::Callr]
                    });
                    cov.insert(delay.opcode);
                }
                Piece::CallFn { .. } => {}
                Piece::JmpAbs { delay, .. } => {
                    cov.extend([Opcode::Add, Opcode::Sll, Opcode::Jmp, delay.opcode]);
                }
            }
        }
    };
    walk(&gp.main);
    if calls {
        for f in &gp.funcs {
            walk(f);
        }
    }
}

// ---------------------------------------------------------------------------
// Running and comparing
// ---------------------------------------------------------------------------

/// The projection every machine must agree on. Stats are the spec-visible
/// subset: the spec machine models no pipeline bubbles or traps, so engine
/// cycle counts are compared with those components removed (all zero for
/// generated programs anyway — no window pressure, default forwarding).
#[derive(Debug, PartialEq)]
struct Final {
    result: i32,
    pc: u32,
    visible: [u32; 32],
    cwp: u8,
    depth: u64,
    mem_digest: u64,
    stats: SpecStats,
}

fn fnv1a(bytes: impl Iterator<Item = u8>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn spec_view(s: &ExecStats) -> SpecStats {
    SpecStats {
        instructions: s.instructions,
        cycles: s.cycles - s.bubble_cycles - s.trap_cycles - s.trap_entry_cycles,
        ifetches: s.ifetches,
        data_reads: s.data_reads,
        data_writes: s.data_writes,
        calls: s.calls,
        rets: s.rets,
        taken_transfers: s.taken_transfers,
        delay_slots: s.delay_slots,
        delay_slot_nops: s.delay_slot_nops,
    }
}

fn run_engine(prog: &Program, engine: ExecEngine) -> Final {
    let cfg = SimConfig {
        engine,
        ..SimConfig::default()
    };
    let mut cpu = Cpu::new(cfg);
    cpu.load_program(prog)
        .expect("generated program fits memory");
    if engine == ExecEngine::Uncached {
        while cpu.step().expect("generated programs run clean") == Halt::Running {}
    } else {
        cpu.run().expect("generated programs run clean");
    }
    let stats = cpu.stats();
    Final {
        result: cpu.result(),
        pc: cpu.pc(),
        visible: cpu.windows().visible(),
        cwp: cpu.windows().cwp(),
        depth: cpu.windows().depth(),
        mem_digest: fnv1a((0..cpu.mem.page_count()).flat_map(|i| cpu.mem.page(i).iter().copied())),
        stats: spec_view(&stats),
    }
}

fn run_spec(prog: &Program) -> Final {
    let cfg = SimConfig::default();
    assert_eq!(cfg.code_base, CODE_BASE, "gadget address math");
    let mut st = SpecState::new(cfg.mem_bytes, cfg.windows);
    st.load_words(cfg.code_base, &prog.words);
    for (addr, bytes) in &prog.data {
        st.load_image(*addr, bytes);
    }
    st.set_pc(cfg.code_base + prog.entry_offset);
    // Mirror the loader ABI: `Cpu::load_program` seeds global r1 as the
    // program stack pointer.
    st.write_reg(Reg::R1, cfg.stack_top);
    st.run(SPEC_FUEL)
        .expect("generated programs halt cleanly on the spec machine");
    Final {
        result: st.result(),
        pc: st.pc(),
        visible: st.visible(),
        cwp: st.cwp(),
        depth: st.depth(),
        mem_digest: fnv1a(st.mem_bytes().iter().copied()),
        stats: *st.stats(),
    }
}

// ---------------------------------------------------------------------------
// The properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// The differential law: every production engine retires generated
    /// programs into exactly the state the spec interpreter defines.
    #[test]
    fn generated_programs_agree_with_the_spec_on_every_engine(gp in arb_gen_program()) {
        let prog = build(&gp);
        let spec = run_spec(&prog);
        let engines = [
            ExecEngine::Uncached,
            ExecEngine::Cached,
            ExecEngine::Superblock,
            ExecEngine::Trace,
        ];
        // The engines are independent jobs — run them through the
        // campaign runner's parallel map, honouring `RISC1_THREADS` via the
        // shared parsed accessor.
        let finals = parallel_map(&engines, default_threads().min(engines.len()), |_, &engine| {
            run_engine(&prog, engine)
        });
        for (engine, got) in engines.iter().zip(&finals) {
            prop_assert_eq!(got, &spec, "{:?} diverged from the spec interpreter", engine);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The same generated programs under a seeded fault-injection campaign:
    /// all three production engines must produce bit-identical reports
    /// (outcome, stats, and the full event log).
    #[test]
    fn injected_generated_programs_are_engine_independent(
        gp in arb_gen_program(),
        seed in any::<u64>(),
        recovery in any::<bool>(),
    ) {
        let prog = build(&gp);
        let inject = InjectConfig { seed, rate: 50, modes: InjectModes::all() };
        let engines = [
            ExecEngine::Uncached,
            ExecEngine::Cached,
            ExecEngine::Superblock,
            ExecEngine::Trace,
        ];
        let reports = parallel_map(&engines, default_threads().min(engines.len()), |_, &engine| {
            let cfg = SimConfig { engine, fuel: 200_000, ..SimConfig::default() };
            run_risc_injected(&prog, &[], cfg, inject, recovery).expect("setup succeeds")
        });
        prop_assert_eq!(&reports[1], &reports[0], "cached vs uncached");
        prop_assert_eq!(&reports[2], &reports[0], "superblock vs uncached");
        prop_assert_eq!(&reports[3], &reports[0], "trace vs uncached");
    }
}

/// Aggregate coverage: across a deterministic sample of generated programs,
/// every one of the 31 opcodes is guaranteed to retire (not merely appear
/// in dead or skipped code).
#[test]
fn the_generator_guarantees_every_opcode_retires() {
    let mut rng = TestRng::deterministic("spec_differential::coverage");
    let strat = arb_gen_program();
    let mut cov = HashSet::new();
    for _ in 0..300 {
        guaranteed_opcodes(&strat.generate(&mut rng), &mut cov);
    }
    let missing: Vec<&Opcode> = Opcode::ALL.iter().filter(|op| !cov.contains(op)).collect();
    assert!(
        missing.is_empty(),
        "generator never guarantees these opcodes retire: {missing:?}"
    );
}
