//! The `risc1` facade crate re-exports every subsystem; downstream users
//! should be able to reach the whole API through it.

#[test]
fn all_subsystems_are_reachable() {
    // isa
    assert_eq!(risc1::isa::Opcode::ALL.len(), 31);
    // core
    let cfg = risc1::core::SimConfig::default();
    assert_eq!(cfg.physical_registers(), 138);
    // asm
    let p = risc1::asm::assemble("halt\nnop\n").unwrap();
    assert_eq!(p.len(), 2);
    // cisc
    assert!(risc1::cisc::Op::ALL.len() > 20);
    // ir + workloads + stats + experiments
    assert_eq!(risc1::workloads::all().len(), 11);
    assert!(risc1::experiments::e2_instruction_set::run().contains("ldhi"));
    let mut t = risc1::stats::Table::new(&["a"]);
    t.row(vec!["1".into()]);
    assert!(!t.is_empty());
}

#[test]
fn facade_example_from_readme() {
    // The README's five-line example must keep compiling.
    use risc1::asm::assemble;
    use risc1::core::{Cpu, SimConfig};
    let prog = assemble("add r26, r26, #1\nhalt\nnop\n").unwrap();
    let mut cpu = Cpu::new(SimConfig::default());
    cpu.load_program(&prog).unwrap();
    cpu.set_args(&[41]);
    cpu.run().unwrap();
    assert_eq!(cpu.result(), 42);
}
