//! Edge cases of the wall-clock watchdog: a zero budget fires before the
//! first step, expiry while the machine sits in a delayed-branch slot
//! stops cleanly (and the stopped prefix is resumable bit-identically),
//! and the deterministic fuel bound takes precedence inside a poll
//! window while the wall clock wins exactly at poll steps.

use risc1::core::deadline::DEADLINE_POLL_STEPS;
use risc1::core::{Deadline, ExecError, Program, SimConfig};
use risc1::ir::{
    compile_risc, run_risc, run_risc_deadline, run_risc_resumed, snapshot_risc_prefix,
    InjectOutcome, RiscOpts, TimedOutcome,
};
use risc1::workloads::by_id;

struct Compiled {
    prog: Program,
    args: Vec<i32>,
    cfg: SimConfig,
    instructions: u64,
}

fn compiled(id: &str) -> Compiled {
    let w = by_id(id).expect("suite workload");
    let prog = compile_risc(&w.module, RiscOpts::default()).expect("suite compiles");
    let (_, base) = run_risc(&prog, &w.small_args).expect("suite runs clean");
    let cfg = SimConfig {
        fuel: base.instructions * 3 + 10_000,
        ..SimConfig::default()
    };
    Compiled {
        prog,
        args: w.small_args.clone(),
        cfg,
        instructions: base.instructions,
    }
}

/// `--timeout-ms 0`: the deadline is polled at step 0, before any
/// instruction retires, so a zero budget is a deterministic timeout with
/// an empty prefix — not a race with the first instruction.
#[test]
fn zero_timeout_fires_before_the_first_step() {
    let w = compiled("fib");
    for _ in 0..3 {
        match run_risc_deadline(
            &w.prog,
            &w.args,
            w.cfg.clone(),
            None,
            false,
            Some(Deadline::after_ms(0)),
            None,
        )
        .expect("setup succeeds")
        {
            TimedOutcome::TimedOut { stats, events } => {
                assert_eq!(stats.instructions, 0, "nothing retired before the poll");
                assert!(events.is_empty(), "no injector, no events");
            }
            TimedOutcome::Finished(_) => panic!("a zero budget must never finish"),
        }
    }
}

/// Expiry while the machine is in a delayed-branch slot: the watchdog
/// only looks between steps, so stopping there leaves a valid prefix —
/// proven by resuming that exact prefix to a finish bit-identical to the
/// cold run.
#[test]
fn expiry_in_a_delay_slot_stops_cleanly_and_resumes() {
    let w = compiled("fib");
    let cold = run_risc_deadline(&w.prog, &w.args, w.cfg.clone(), None, false, None, None)
        .expect("cold run")
        .finished()
        .expect("no deadline");

    // Find a prefix that parks the machine in a delay slot (a taken
    // transfer with its slot not yet executed: `pending_target` set).
    let mut in_slot = None;
    for steps in 1..200 {
        let snap = snapshot_risc_prefix(&w.prog, &w.args, w.cfg.clone(), false, steps)
            .expect("prefix snapshot");
        if !snap.to_json().contains("\"pending_target\":null") {
            in_slot = Some(snap);
            break;
        }
    }
    let snap = in_slot.expect("the suite takes a branch within 200 steps");

    // An already-expired deadline stops the resumed run at step 0 — while
    // the restored machine still owes its delay slot.
    match run_risc_resumed(&snap, Some(Deadline::after_ms(0))).expect("snapshot verifies") {
        TimedOutcome::TimedOut { stats, .. } => {
            assert_eq!(
                stats.instructions,
                snap.at_instruction(),
                "the stop added nothing to the prefix"
            );
        }
        TimedOutcome::Finished(_) => panic!("expired deadline must not finish"),
    }

    // The same prefix, resumed without a deadline, completes bit-identical
    // to the cold run: expiry in the slot perturbed nothing.
    match run_risc_resumed(&snap, None).expect("snapshot verifies") {
        TimedOutcome::Finished(report) => assert_eq!(report, cold, "resumed != cold"),
        TimedOutcome::TimedOut { .. } => panic!("no deadline was set"),
    }
}

/// The tie-break law: fuel is part of the deterministic machine and wins
/// anywhere inside a poll window; the wall clock is only consulted every
/// `DEADLINE_POLL_STEPS` steps (and at step 0, where it wins outright).
#[test]
fn fuel_beats_deadline_inside_a_poll_window() {
    let w = compiled("fib");
    assert!(
        w.instructions > 8,
        "workload long enough to exhaust a tiny fuel budget"
    );
    // Fuel that runs out well before the first non-zero poll step…
    let fuel = (w.instructions / 2).clamp(1, DEADLINE_POLL_STEPS / 2);
    let cfg = SimConfig {
        fuel,
        ..w.cfg.clone()
    };
    // …and a deadline that will be long expired by then. It still loses:
    // after the step-0 poll the clock is not consulted again until step
    // 4096, and the machine faults on fuel first.
    let deadline = Deadline::at(std::time::Instant::now() + std::time::Duration::from_millis(30));
    std::thread::sleep(std::time::Duration::from_millis(1));
    match run_risc_deadline(&w.prog, &w.args, cfg, None, false, Some(deadline), None)
        .expect("setup succeeds")
    {
        TimedOutcome::Finished(report) => match report.outcome {
            InjectOutcome::Faulted {
                error: ExecError::OutOfFuel,
            } => {}
            other => panic!("expected fuel exhaustion, got {other:?}"),
        },
        TimedOutcome::TimedOut { .. } => {
            panic!("deadline must not be consulted between poll steps")
        }
    }
}

/// At step 0 the ordering flips: the poll runs before any execution, so
/// an expired deadline beats even zero fuel.
#[test]
fn deadline_beats_fuel_at_step_zero() {
    let w = compiled("fib");
    let cfg = SimConfig {
        fuel: 1,
        ..w.cfg.clone()
    };
    match run_risc_deadline(
        &w.prog,
        &w.args,
        cfg,
        None,
        false,
        Some(Deadline::after_ms(0)),
        None,
    )
    .expect("setup succeeds")
    {
        TimedOutcome::TimedOut { stats, .. } => assert_eq!(stats.instructions, 0),
        TimedOutcome::Finished(_) => panic!("expired deadline loses only between polls"),
    }
}

/// The poll mask itself: step 0 and every multiple of the interval, and
/// nothing in between — the contract every run loop in the repo leans on.
#[test]
fn poll_mask_is_exactly_the_interval() {
    assert!(Deadline::should_poll(0));
    for step in 1..DEADLINE_POLL_STEPS {
        assert!(!Deadline::should_poll(step), "step {step} must not poll");
    }
    assert!(Deadline::should_poll(DEADLINE_POLL_STEPS));
    assert!(Deadline::should_poll(3 * DEADLINE_POLL_STEPS));
    assert!(!Deadline::should_poll(3 * DEADLINE_POLL_STEPS + 1));
}

/// TimedOut is deterministic where it can be: two expired-deadline runs
/// of the same spec stop at the same place with the same statistics.
#[test]
fn timed_out_prefix_is_deterministic() {
    let w = compiled("fib");
    let run = || {
        run_risc_deadline(
            &w.prog,
            &w.args,
            w.cfg.clone(),
            None,
            false,
            Some(Deadline::after_ms(0)),
            None,
        )
        .expect("setup succeeds")
    };
    assert_eq!(run(), run(), "expired-deadline stops are reproducible");
}
