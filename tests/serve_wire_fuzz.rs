//! Malformed-input fuzz for the wire protocol: the server must answer
//! every frame with a structured response and never panic, whatever
//! bytes arrive — truncated submits, bit-flipped JSON, binary garbage,
//! oversized frames, invalid UTF-8.
//!
//! The generator is a deterministic xorshift PRNG, so a failure is a
//! reproducible frame, not a flake.

use risc1::core::SimConfig;
use risc1::ir::{compile_risc, RiscOpts};
use risc1::serve::server::serve_lines;
use risc1::serve::wire;
use risc1::serve::MAX_WIRE_LINE_BYTES;
use risc1::workloads::by_id;
use risc1::{ExecService, ServiceConfig};
use std::io::Cursor;

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        // xorshift64* — deterministic, dependency-free.
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// A well-formed submit request to mutate.
fn template() -> String {
    let w = by_id("fib").expect("suite workload");
    let prog = compile_risc(&w.module, RiscOpts::default()).expect("compiles");
    wire::submit_request(
        "fuzz",
        1,
        &prog,
        &w.small_args,
        &SimConfig::default(),
        &[1, 2],
        true,
        40,
        "all",
        true,
        "direct",
        None,
        false,
        None,
    )
}

/// One mutated frame: a truncation, a byte corruption, a splice of two
/// requests, raw binary garbage, or a structurally-plausible-but-wrong
/// document. Newlines are stripped so one mutation stays one frame.
fn mutate(rng: &mut Rng, template: &str) -> String {
    let bytes = template.as_bytes();
    let frame = match rng.below(5) {
        // Truncate at an arbitrary byte offset.
        0 => String::from_utf8_lossy(&bytes[..rng.below(bytes.len().max(1))]).into_owned(),
        // Flip several bytes in place.
        1 => {
            let mut b = bytes.to_vec();
            for _ in 0..=rng.below(8) {
                let at = rng.below(b.len());
                b[at] ^= (rng.next() as u8) | 1;
            }
            String::from_utf8_lossy(&b).into_owned()
        }
        // Splice a suffix of one request onto a prefix of another.
        2 => {
            let cut = rng.below(bytes.len());
            let paste = rng.below(bytes.len());
            format!(
                "{}{}",
                String::from_utf8_lossy(&bytes[..cut]),
                String::from_utf8_lossy(&bytes[paste..])
            )
        }
        // Raw garbage of random length.
        3 => {
            let len = rng.below(200) + 1;
            (0..len)
                .map(|_| char::from((rng.next() % 94) as u8 + 32))
                .collect()
        }
        // Plausible JSON with the wrong shape.
        _ => {
            let variants = [
                "{}",
                "[]",
                "{\"op\":17}",
                "{\"op\":\"submit\"}",
                "{\"op\":\"submit\",\"client\":\"c\",\"seeds\":\"not-an-array\"}",
                "{\"op\":\"poll\"}",
                "{\"op\":\"poll\",\"id\":-3}",
                "{\"op\":\"journal\",\"id\":1,\"seq\":18446744073709551615}",
                "{\"op\":\"status\",\"extra\":{\"deep\":[[[[[[1]]]]]]}}",
                "null",
                "\"just a string\"",
                "{\"op\":\"submit\",\"client\":\"c\",\"snapshot\":{\"version\":1}}",
            ];
            variants[rng.below(variants.len())].to_owned()
        }
    };
    frame.replace(['\n', '\r'], " ")
}

fn service() -> ExecService {
    ExecService::start(ServiceConfig {
        threads: 1,
        ..ServiceConfig::default()
    })
}

/// 500+ mutated frames through the full framed server loop: every
/// non-empty frame gets exactly one response line, zero panics.
#[test]
fn mutated_frames_are_always_answered_never_panicked_on() {
    let template = template();
    let mut rng = Rng(0x5eed_1981_u64);
    let mut input = String::new();
    let mut expected_responses = 0usize;
    for _ in 0..512 {
        let frame = mutate(&mut rng, &template);
        if !frame.trim().is_empty() {
            expected_responses += 1;
        }
        input.push_str(&frame);
        input.push('\n');
    }

    let service = service();
    let mut output: Vec<u8> = Vec::new();
    let stopped = serve_lines(&service, Cursor::new(input.into_bytes()), &mut output)
        .expect("in-memory transport never fails");
    assert!(!stopped, "no mutated frame should be a valid shutdown");

    let responses: Vec<&str> = std::str::from_utf8(&output)
        .expect("responses are UTF-8")
        .lines()
        .collect();
    assert_eq!(
        responses.len(),
        expected_responses,
        "every non-empty frame is answered exactly once"
    );
    for r in &responses {
        assert!(
            r.starts_with('{') && r.contains("\"ok\""),
            "structured response, got {r:?}"
        );
    }
    service.shutdown();
}

/// A frame over the line cap is discarded and answered with a structured
/// `oversized-frame` error, and the connection keeps serving afterwards.
#[test]
fn oversized_frame_is_rejected_and_the_stream_continues() {
    let mut input = Vec::with_capacity(MAX_WIRE_LINE_BYTES + 64);
    input.resize(MAX_WIRE_LINE_BYTES + 1, b'a');
    input.extend_from_slice(b"\n{\"op\":\"status\"}\n");

    let service = service();
    let mut output: Vec<u8> = Vec::new();
    serve_lines(&service, Cursor::new(input), &mut output).expect("serve");
    let text = String::from_utf8(output).expect("utf8");
    let mut lines = text.lines();
    let first = lines.next().expect("oversized reply");
    assert!(
        first.contains("\"ok\":false") && first.contains("oversized-frame"),
        "structured oversize error, got {first:?}"
    );
    let second = lines.next().expect("status reply after the oversize");
    assert!(
        second.contains("\"ok\":true"),
        "stream keeps serving, got {second:?}"
    );
    service.shutdown();
}

/// A stream that ends mid-line (no trailing newline) gets a structured
/// `truncated-frame` error rather than silence.
#[test]
fn truncated_final_frame_gets_a_structured_error() {
    let input = b"{\"op\":\"status\"}\n{\"op\":\"poll\",\"id\":".to_vec();
    let service = service();
    let mut output: Vec<u8> = Vec::new();
    serve_lines(&service, Cursor::new(input), &mut output).expect("serve");
    let text = String::from_utf8(output).expect("utf8");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2);
    assert!(lines[0].contains("\"ok\":true"));
    assert!(
        lines[1].contains("truncated-frame"),
        "structured truncation error, got {:?}",
        lines[1]
    );
    service.shutdown();
}

/// Invalid UTF-8 in an otherwise complete line is answered as a bad
/// request, not a panic and not a dropped connection.
#[test]
fn invalid_utf8_is_a_bad_request_not_a_panic() {
    let mut input = vec![0xff, 0xfe, 0x80, b'{'];
    input.extend_from_slice(b"\n{\"op\":\"status\"}\n");
    let service = service();
    let mut output: Vec<u8> = Vec::new();
    serve_lines(&service, Cursor::new(input), &mut output).expect("serve");
    let text = String::from_utf8(output).expect("utf8");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2);
    assert!(
        lines[0].contains("\"ok\":false") && lines[0].contains("UTF-8"),
        "structured UTF-8 error, got {:?}",
        lines[0]
    );
    assert!(lines[1].contains("\"ok\":true"));
    service.shutdown();
}
