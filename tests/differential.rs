//! Property-based differential testing across the three engines using a
//! structured random-program generator: loops, branches, array traffic and
//! statement-level calls — the strongest correctness evidence in the
//! repository.

use proptest::prelude::*;
use risc1::core::SimConfig;
use risc1::ir::ast::dsl::*;
use risc1::ir::ast::{Expr, Stmt};
use risc1::ir::interp::interpret_with_fuel;
use risc1::ir::{compile_cx, compile_mc, compile_risc, run_cx, run_mc, run_risc_with, RiscOpts};

/// A short-fuel simulator config: random programs can loop forever (the
/// interpreter filters most, but the fill-preservation test runs without
/// an oracle), and the default 200M-instruction fuel would make a single
/// runaway case dominate the suite.
fn quick_cfg() -> SimConfig {
    SimConfig {
        fuel: 3_000_000,
        ..SimConfig::default()
    }
}

/// A call-free expression over locals 0..3, depth-bounded.
fn arb_expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (-300i32..300).prop_map(konst),
        (0usize..4).prop_map(local),
        // reads from the word array, index clamped into range by & 15
        (0usize..4).prop_map(|v| loadw(0, band(local(v), konst(15)))),
    ];
    leaf.prop_recursive(depth, 16, 2, |inner| {
        (inner.clone(), inner, 0u8..7)
            .prop_map(|(a, b, op)| match op {
                0 => add(a, b),
                1 => sub(a, b),
                2 => mul(a, b),
                3 => band(a, b),
                4 => bor(a, b),
                5 => bxor(a, b),
                _ => shr(a, band(b, konst(15))),
            })
            .boxed()
    })
    .boxed()
}

/// A statement list with assignments, stores, branches and a bounded loop.
fn arb_block() -> impl Strategy<Value = Vec<Stmt>> {
    proptest::collection::vec(
        prop_oneof![
            (0usize..4, arb_expr(2)).prop_map(|(v, e)| assign(v, e)),
            (arb_expr(1), arb_expr(1)).prop_map(|(i, v)| storew(0, band(i, konst(15)), v)),
            (arb_expr(1), arb_expr(1), 0usize..4, arb_expr(1)).prop_map(|(a, b, v, e)| {
                if_else(lt(a, b), vec![assign(v, e)], vec![assign(v, konst(0))])
            }),
            // statement-position call to the helper (locals 0..2 as args)
            (0usize..4).prop_map(|v| assign(v, call(1, vec![local(0), local(1)]))),
        ],
        1..10,
    )
}

fn build_module(body: Vec<Stmt>, ret_expr: Expr) -> risc1::ir::Module {
    // A bounded counting loop wraps the random body so loops execute a few
    // times without risking nontermination.
    let mut main_body = vec![assign(3, konst(0))];
    main_body.push(while_loop(lt(local(3), konst(4)), {
        let mut b = body;
        b.push(assign(3, add(local(3), konst(1))));
        b
    }));
    main_body.push(ret(ret_expr));
    let helper = function(
        "helper",
        2,
        3,
        vec![
            assign(2, add(local(0), mul(local(1), konst(3)))),
            ret(band(local(2), konst(0xffff))),
        ],
    );
    module(
        vec![function("main", 2, 4, main_body), helper],
        vec![global_words("mem", 16)],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_structured_programs_agree(body in arb_block(),
                                        ret_e in arb_expr(2),
                                        a in -50i32..50,
                                        b in -50i32..50) {
        let m = build_module(body, ret_e);
        prop_assume!(m.validate().is_ok());
        // The oracle first; bail out (rather than fail) on runaway loops.
        let oracle = match interpret_with_fuel(&m, &[a, b], 200_000) {
            Ok(r) => r,
            Err(_) => return Ok(()),
        };
        let risc = compile_risc(&m, RiscOpts::default()).expect("risc compiles");
        let (rv, _) = run_risc_with(&risc, &[a, b], quick_cfg()).expect("risc runs");
        prop_assert_eq!(rv, oracle.value, "risc vs oracle");
        let cx = compile_cx(&m).expect("cx compiles");
        let (cv, _) = run_cx(&cx, &[a, b]).expect("cx runs");
        prop_assert_eq!(cv, oracle.value, "cx vs oracle");
        let mc = compile_mc(&m).expect("mc compiles");
        let (mv, _) = run_mc(&mc, &[a, b]).expect("mc runs");
        prop_assert_eq!(mv, oracle.value, "mc vs oracle");
    }

    /// Delay-slot filling — an optimization pass — must never change any
    /// observable result.
    #[test]
    fn delay_fill_is_semantics_preserving(body in arb_block(),
                                          a in -50i32..50,
                                          b in -50i32..50) {
        let m = build_module(body, local(0));
        prop_assume!(m.validate().is_ok());
        let plain = compile_risc(&m, RiscOpts { fill_delay_slots: false }).expect("compiles");
        let filled = compile_risc(&m, RiscOpts { fill_delay_slots: true }).expect("compiles");
        let rp = run_risc_with(&plain, &[a, b], quick_cfg());
        let rf = run_risc_with(&filled, &[a, b], quick_cfg());
        match (rp, rf) {
            (Ok((v0, s0)), Ok((v1, s1))) => {
                prop_assert_eq!(v0, v1, "value changed by slot filling");
                prop_assert!(s1.cycles <= s0.cycles, "filling may never slow down");
            }
            (Err(_), Err(_)) => {} // both fault identically (e.g. div by zero)
            (a, b) => prop_assert!(false, "one build faulted, the other did not: {a:?} vs {b:?}"),
        }
    }
}
