//! The checkpoint/restore and record–replay contracts, enforced end to
//! end across the whole workload suite.
//!
//! Three laws:
//!
//! 1. **Snapshot round-trip** (property test): snapshot at an arbitrary
//!    instruction boundary, restore into a fresh machine, continue — the
//!    result, `ExecStats`, and full machine digest must be bit-identical
//!    to uninterrupted execution.
//! 2. **Replay determinism**: for 16 seeds per workload, a recorded
//!    faulting campaign replays to the identical outcome signature,
//!    instruction count, per-cause trap counts, and full `ExecStats` —
//!    including through JSON serialization; minimized journals still
//!    reproduce the failure.
//! 3. **Supervision rescues**: at least one workload that terminates with
//!    a structured fault under plain injection completes cleanly under
//!    the supervisor's rollback-and-retry.

use proptest::prelude::*;
use risc1::core::inject::{InjectConfig, InjectModes};
use risc1::core::{Cpu, Halt, Program, SimConfig};
use risc1::ir::layout::ARGV_BASE;
use risc1::ir::{
    compile_risc, minimize_journal, record_risc_injected, recorded_outcome, replay_journal,
    run_risc, run_risc_injected, run_risc_supervised, RiscOpts, SupervisorConfig,
    SupervisorOutcome,
};
use risc1::workloads::all;
use risc1::Journal;
use std::sync::OnceLock;

/// One compiled workload: id, program, args, clean result, fuel-bounded
/// config, and an injection rate tuned to ~4 perturbations per run.
struct Compiled {
    id: &'static str,
    prog: Program,
    args: Vec<i32>,
    expect: i32,
    cfg: SimConfig,
    rate: u32,
    instructions: u64,
}

fn suite() -> &'static Vec<Compiled> {
    static SUITE: OnceLock<Vec<Compiled>> = OnceLock::new();
    SUITE.get_or_init(|| {
        all()
            .iter()
            .map(|w| {
                let prog = compile_risc(&w.module, RiscOpts::default()).expect("suite compiles");
                let (expect, base) = run_risc(&prog, &w.small_args).expect("suite runs clean");
                let cfg = SimConfig {
                    fuel: base.instructions * 3 + 10_000,
                    ..SimConfig::default()
                };
                let rate = (4 * 10_000 / base.instructions.max(1)).clamp(1, 500) as u32;
                Compiled {
                    id: w.id,
                    prog,
                    args: w.small_args.clone(),
                    expect,
                    cfg,
                    rate,
                    instructions: base.instructions,
                }
            })
            .collect()
    })
}

/// Sets a CPU up exactly like `run_risc_with` does (register args + ARGV
/// mirror), so snapshot comparisons run the real execution path.
fn fresh_cpu(w: &Compiled) -> Cpu {
    let mut cpu = Cpu::new(w.cfg.clone());
    cpu.load_program(&w.prog).expect("fits");
    cpu.set_args(&w.args);
    for (i, &a) in w.args.iter().enumerate() {
        let _ = cpu
            .mem
            .load_image(ARGV_BASE + 4 * i as u32, &(a as u32).to_le_bytes());
    }
    cpu
}

/// Steps until at least `boundary` instructions have retired (trap
/// delivery steps retire nothing, hence ≥) or the program halts.
fn run_to_boundary(cpu: &mut Cpu, boundary: u64) {
    while cpu.stats().instructions < boundary {
        match cpu.step().expect("clean workloads do not fault") {
            Halt::Running => {}
            Halt::Returned => break,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Law 1: snapshot / restore / continue is bit-identical to
    /// uninterrupted execution — registers, memory, statistics, result —
    /// at an arbitrary instruction boundary of an arbitrary workload.
    #[test]
    fn snapshot_round_trip_is_bit_identical(widx in 0usize..11, frac_permille in 0u64..1000) {
        let w = &suite()[widx];
        let boundary = w.instructions * frac_permille / 1000;

        // Reference: run to completion untouched.
        let mut reference = fresh_cpu(w);
        reference.run().expect("clean run");
        prop_assert_eq!(reference.result(), w.expect);

        // Interrupted: run to the boundary, snapshot, keep going.
        let mut original = fresh_cpu(w);
        run_to_boundary(&mut original, boundary);
        let snap = original.snapshot();
        snap.verify().expect("fresh snapshots verify");
        original.run().expect("clean continuation");

        // Restored twin: a brand-new machine continued from the snapshot.
        let mut twin = Cpu::new(w.cfg.clone());
        twin.restore(&snap).expect("restore succeeds");
        prop_assert_eq!(twin.stats().instructions, snap.at_instruction());
        twin.run().expect("restored continuation");

        for cpu in [&original, &twin] {
            prop_assert_eq!(cpu.result(), w.expect, "{}", w.id);
            prop_assert_eq!(&cpu.stats(), &reference.stats(), "{}", w.id);
        }
        // Full machine digest (registers, window file, memory, trap
        // state): both timelines end in the same bits.
        prop_assert_eq!(
            original.snapshot().checksum(),
            twin.snapshot().checksum(),
            "{}", w.id
        );
    }
}

/// Law 2: every recorded campaign — 16 seeds per workload, recovery
/// alternating — replays bit for bit, including through JSON; and every
/// faulting journal still reproduces its failure after minimization.
#[test]
fn replay_is_deterministic_for_16_seeds_per_workload() {
    let mut faulting: Vec<(usize, Journal)> = Vec::new();
    for (widx, w) in suite().iter().enumerate() {
        for seed in 0..16u64 {
            let recovery = seed % 2 == 0;
            let icfg = InjectConfig {
                seed,
                rate: w.rate,
                modes: InjectModes::all(),
            };
            let (journal, recorded) =
                record_risc_injected(&w.prog, &w.args, w.cfg.clone(), icfg, recovery)
                    .expect("setup is valid");
            let want = journal
                .outcome
                .clone()
                .expect("recorder stores the outcome");

            let replayed = replay_journal(&journal).expect("replay sets up");
            assert_eq!(
                recorded_outcome(&replayed),
                want,
                "{} seed {seed}: outcome/trap-count divergence",
                w.id
            );
            assert_eq!(
                replayed.stats, recorded.stats,
                "{} seed {seed}: full ExecStats divergence",
                w.id
            );

            // Through JSON: parse(serialize(j)) replays identically too.
            let back = Journal::from_json(&journal.to_json()).expect("parses");
            assert_eq!(back, journal, "{} seed {seed}: JSON round-trip", w.id);

            if want.signature.starts_with("fault") {
                faulting.push((widx, journal));
            }
        }
    }
    assert!(
        !faulting.is_empty(),
        "some campaigns must fault (else nothing was injected)"
    );

    // Minimized journals reproduce the failure: one faulting campaign per
    // workload that produced any (ddmin replays O(n²) times — keep it to
    // journals of sane size).
    let mut minimized_some = false;
    let mut seen = std::collections::HashSet::new();
    for (widx, journal) in &faulting {
        if !seen.insert(*widx) || journal.events.len() > 32 {
            continue;
        }
        let w = &suite()[*widx];
        let min = minimize_journal(journal).expect("minimization replays");
        assert!(
            min.events.len() <= journal.events.len(),
            "{}: minimization must not grow the journal",
            w.id
        );
        assert_eq!(
            min.outcome.as_ref().unwrap().signature,
            journal.outcome.as_ref().unwrap().signature,
            "{}: the minimized journal must reproduce the same failure",
            w.id
        );
        minimized_some = true;
    }
    assert!(minimized_some, "at least one journal must get minimized");
}

/// Under a double-fault storm — an injection rate an order of magnitude
/// past the sweep's — retries stop making forward progress, and the
/// supervisor must take its escalate arm (revert past the latest
/// checkpoint to the campaign baseline) instead of burning retries on
/// poisoned state. The escalation is visible in the report, and the
/// applied-event log survives it: escalating must not lose the journal.
#[test]
fn escalation_fires_under_a_double_fault_storm_without_losing_the_event_log() {
    let mut escalated = None;
    'search: for w in suite() {
        for seed in 0..32u64 {
            let icfg = InjectConfig {
                seed,
                rate: 2000, // ~20% of steps perturbed: a storm, not a drizzle
                modes: InjectModes::all(),
            };
            let report = run_risc_supervised(
                &w.prog,
                &w.args,
                w.cfg.clone(),
                Some(icfg),
                true,
                SupervisorConfig {
                    ckpt_every: (w.instructions / 16).max(200),
                    max_retries: 12,
                    ..SupervisorConfig::default()
                },
            )
            .expect("setup is valid");
            if report.escalations >= 1 {
                assert!(
                    report.rollbacks >= report.escalations,
                    "{} seed {seed}: escalations are a subset of rollbacks",
                    w.id
                );
                assert!(
                    !report.events.is_empty(),
                    "{} seed {seed}: escalation must not lose the applied-event log",
                    w.id
                );
                escalated = Some((w.id, seed, report.escalations));
                break 'search;
            }
        }
    }
    let (id, seed, escalations) = escalated
        .expect("no campaign escalated across the whole storm sweep — the stuck arm is dead code");
    assert!(escalations >= 1, "{id} seed {seed}");
}

/// Law 3 (the PR's acceptance criterion): at least one workload that
/// terminates with a structured fault under plain injection completes
/// cleanly — with the correct result — under the supervisor's
/// rollback-and-retry.
#[test]
fn supervision_rescues_a_faulting_workload() {
    let mut rescued = None;
    'search: for w in suite() {
        for seed in 0..16u64 {
            let icfg = InjectConfig {
                seed,
                rate: w.rate,
                modes: InjectModes::all(),
            };
            let plain = run_risc_injected(&w.prog, &w.args, w.cfg.clone(), icfg, true)
                .expect("setup is valid");
            if plain.is_halted() {
                continue;
            }
            let report = run_risc_supervised(
                &w.prog,
                &w.args,
                w.cfg.clone(),
                Some(icfg),
                true,
                SupervisorConfig {
                    ckpt_every: (w.instructions / 8).max(500),
                    max_retries: 8,
                    ..SupervisorConfig::default()
                },
            )
            .expect("setup is valid");
            if report.outcome == (SupervisorOutcome::Halted { result: w.expect }) {
                assert!(
                    report.rollbacks >= 1,
                    "{} seed {seed}: a rescue requires at least one rollback",
                    w.id
                );
                assert!(report.checkpoints.checkpoints > 0 || report.rollbacks > 0);
                rescued = Some((w.id, seed, report.attempts));
                break 'search;
            }
        }
    }
    let (id, seed, attempts) = rescued
        .expect("no faulting campaign was rescued by rollback-and-retry across the whole sweep");
    assert!(attempts >= 2, "{id} seed {seed}: rescue implies a retry");
}
