//! The decode cache's correctness law: caching is invisible.
//!
//! PR 4's predecoded instruction cache (`crates/core/src/icache.rs`) is
//! pure derived state — with it on or off, every simulated observable
//! must be bit-identical: final result, `ExecStats` (instruction mix,
//! cycles, traps, spills), the entire memory image, the visible register
//! window, and the window-file position. This suite holds the cache to
//! that bar three ways:
//!
//! 1. deterministically across all eleven suite workloads,
//! 2. property-style under seed-driven fault injection (where traps,
//!    recovery stubs, and snapshot restores stress the invalidation
//!    paths), and
//! 3. with a hand-assembled self-modifying program that overwrites its
//!    own already-executed-and-cached text and only produces the right
//!    answer if the stale line is dropped.
//!
//! Snapshot checksums deliberately cover `SimConfig` (so a restore
//! cannot silently cross configurations), which makes them useless for
//! cross-mode comparison — the digest here is hand-rolled over the raw
//! memory pages instead.

use proptest::prelude::*;
use risc1::core::inject::{InjectConfig, InjectModes};
use risc1::core::{Cpu, ExecStats, Halt, Program, SimConfig};
use risc1::ir::{compile_risc, run_risc, run_risc_injected, RiscOpts};
use risc1::isa::{Cond, Instruction, Opcode, Reg, Short2};
use risc1::workloads::all;
use std::sync::OnceLock;

/// Mirror of the runtime argument area (`risc1_ir::layout::ARGV_BASE`):
/// the runner writes args both to registers and here, so the memory
/// digests only match if both modes see the same argv image.
const ARGV_BASE: u32 = risc1::ir::layout::ARGV_BASE;

/// Everything a program can observably leave behind.
#[derive(Debug, PartialEq)]
struct FinalState {
    result: i32,
    pc: u32,
    stats: ExecStats,
    visible: [u32; 32],
    cwp: u8,
    depth: u64,
    mem_digest: u64,
}

/// FNV-1a over every memory page. `Snapshot::checksum` is unusable here
/// because it folds in the `SimConfig` (which differs by construction
/// across the two modes); this digest covers memory content only.
fn mem_digest(cpu: &Cpu) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for idx in 0..cpu.mem.page_count() {
        for &b in cpu.mem.page(idx) {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn capture(cpu: &Cpu) -> FinalState {
    FinalState {
        result: cpu.result(),
        pc: cpu.pc(),
        stats: cpu.stats(),
        visible: cpu.windows().visible(),
        cwp: cpu.windows().cwp(),
        depth: cpu.windows().depth(),
        mem_digest: mem_digest(cpu),
    }
}

/// Runs `prog` to halt in the given mode and captures the final state.
/// The cached mode goes through the batched `run_to_halt` fast path, the
/// uncached mode through the one-at-a-time `step()` loop — the same two
/// paths the benchmark harness compares.
fn run_mode(prog: &Program, args: &[i32], predecode: bool) -> FinalState {
    let cfg = SimConfig {
        predecode,
        ..SimConfig::default()
    };
    let mut cpu = Cpu::new(cfg);
    cpu.load_program(prog).expect("program fits memory");
    cpu.set_args(args);
    for (i, &a) in args.iter().enumerate() {
        cpu.mem
            .load_image(ARGV_BASE + 4 * i as u32, &(a as u32).to_le_bytes())
            .expect("argv mirror fits");
    }
    if predecode {
        cpu.run().expect("suite runs clean");
    } else {
        while cpu.step().expect("suite runs clean") == Halt::Running {}
    }
    capture(&cpu)
}

#[test]
fn every_workload_is_bit_identical_with_and_without_the_cache() {
    for w in all() {
        let prog = compile_risc(&w.module, RiscOpts::default()).expect("suite compiles");
        let cached = run_mode(&prog, &w.small_args, true);
        let uncached = run_mode(&prog, &w.small_args, false);
        assert_eq!(cached, uncached, "{}: cache must be invisible", w.id);
    }
}

/// One compiled workload plus the fuel/rate bounds the injection sweep
/// uses, shared across proptest cases (compiling per-case would dominate
/// the suite's runtime).
struct Compiled {
    prog: Program,
    args: Vec<i32>,
    fuel: u64,
    rate: u32,
}

fn compiled_suite() -> &'static Vec<Compiled> {
    static SUITE: OnceLock<Vec<Compiled>> = OnceLock::new();
    SUITE.get_or_init(|| {
        all()
            .iter()
            .map(|w| {
                let prog = compile_risc(&w.module, RiscOpts::default()).expect("suite compiles");
                let (_, base) = run_risc(&prog, &w.small_args).expect("suite runs clean");
                Compiled {
                    prog,
                    args: w.small_args.clone(),
                    fuel: base.instructions * 3 + 10_000,
                    rate: (4 * 10_000 / base.instructions.max(1)).clamp(1, 500) as u32,
                }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The law under fire: a seed-driven fault campaign — register and
    /// memory corruption, forced traps, recovery re-execution — produces
    /// the *exact same* `InjectReport` (outcome, stats, and the full
    /// event log) whether or not the decode cache is enabled. Injected
    /// memory writes land through the same dirty-channel stores use, so
    /// this leans hard on invalidation.
    #[test]
    fn injected_campaigns_are_mode_independent(
        wi in 0usize..11,
        seed in any::<u64>(),
        recovery in any::<bool>(),
    ) {
        let c = &compiled_suite()[wi];
        let inject = InjectConfig { seed, rate: c.rate, modes: InjectModes::all() };
        let run = |predecode| {
            let cfg = SimConfig { predecode, fuel: c.fuel, ..SimConfig::default() };
            run_risc_injected(&c.prog, &c.args, cfg, inject, recovery)
                .expect("setup succeeds")
        };
        prop_assert_eq!(run(true), run(false));
    }
}

/// Splits a value into `#imm` chunks an `add` can carry (13-bit signed).
fn imm_chunks(mut v: u32) -> Vec<Short2> {
    let mut out = Vec::new();
    while v > 0 {
        let chunk = v.min(4095);
        out.push(Short2::imm(chunk as i32).expect("chunk fits imm13"));
        v -= chunk;
    }
    out
}

#[test]
fn self_modifying_code_invalidates_already_executed_text() {
    let imm = |v: i32| Short2::imm(v).expect("fits imm13");
    let patch_word = Instruction::nop().encode();

    // The program below runs its loop body twice. Pass one executes the
    // original `add r26, r26, #10` (caching that line), then *stores a
    // nop over it*; pass two re-executes the same address. A correct
    // cache re-decodes and adds nothing — acc ends at 10. A stale cache
    // replays the old line — acc ends at 20.
    let mut insns = vec![
        // r20 = address of the patch target (code_base + 4 * L).
        Instruction::reg(Opcode::Add, Reg::R20, Reg::R0, imm(1)),
        Instruction::reg(Opcode::Sll, Reg::R20, Reg::R20, imm(12)),
        // Placeholder: patched with the real offset once L is known.
        Instruction::nop(),
        // r21 = the nop encoding, built as ldhi + imm13 chunks.
        Instruction::ldhi(Reg::R21, patch_word >> 13),
    ];
    for chunk in imm_chunks(patch_word & 0x1fff) {
        insns.push(Instruction::reg(Opcode::Add, Reg::R21, Reg::R21, chunk));
    }
    insns.extend([
        Instruction::reg(Opcode::Add, Reg::R26, Reg::R0, imm(0)), // acc = 0
        Instruction::reg(Opcode::Add, Reg::R17, Reg::R0, imm(0)), // pass = 0
    ]);
    let l = insns.len(); // loop head / patch target
    insns.extend([
        Instruction::reg(Opcode::Add, Reg::R26, Reg::R26, imm(10)), // PATCHED
        Instruction::reg(Opcode::Stl, Reg::R21, Reg::R20, imm(0)),  // text[L] = nop
        Instruction::reg(Opcode::Add, Reg::R17, Reg::R17, imm(1)),
        Instruction::reg_scc(Opcode::Sub, Reg::R0, Reg::R17, imm(2)),
    ]);
    let j = insns.len();
    insns.extend([
        Instruction::jmpr(Cond::Lt, 4 * (l as i32 - j as i32)),
        Instruction::nop(), // delay slot
        Instruction::ret(Reg::R0, imm(0)),
        Instruction::nop(), // return delay slot
    ]);
    // Resolve the placeholder: r20 = 0x1000 + 4 * L.
    insns[2] = Instruction::reg(Opcode::Add, Reg::R20, Reg::R20, imm(4 * l as i32));
    assert_eq!(SimConfig::default().code_base, 0x1000, "address math above");

    let prog = Program::from_instructions(insns);
    let cached = run_mode(&prog, &[], true);
    let uncached = run_mode(&prog, &[], false);
    assert_eq!(
        cached.result, 10,
        "stale cached line survived the overwrite (20 = add ran twice)"
    );
    assert_eq!(cached, uncached, "cache must be invisible");
}
