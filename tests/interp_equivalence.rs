//! The execution engines' correctness law: acceleration is invisible.
//!
//! PR 4 added a predecoded instruction cache (`crates/core/src/icache.rs`),
//! PR 5 layered a superblock engine over it
//! (`crates/core/src/superblock.rs`): straight-line blocks formed over
//! the cached lines, chained block-to-block, with macro-op fusion inside,
//! and PR 9 added the trace tier (`crates/core/src/trace.rs`): hot chained
//! superblocks compiled to register-allocated trace IR with bulk
//! statistics applied at trace exit. All of that is pure derived state —
//! under any of the four engines (`uncached`, `cached`, `superblock`,
//! `trace`), every simulated observable must be bit-identical: final
//! result, `ExecStats` (instruction mix, cycles, traps, spills), the
//! entire memory image, the visible register window, and the window-file
//! position. This suite holds all engines to that bar six ways:
//!
//! 1. deterministically across all eleven suite workloads (four-way),
//! 2. property-style under seed-driven fault injection (where traps,
//!    recovery stubs, and snapshot restores stress the invalidation
//!    paths),
//! 3. with a hand-assembled self-modifying program that overwrites its
//!    own already-executed-and-cached text,
//! 4. with a program that patches the middle of an already-chained hot
//!    loop while it runs — the store must kill the formed blocks,
//! 5. with a long-running hot loop that patches its own text only *after*
//!    the trace tier has compiled and entered a trace for it — the store
//!    side-exits the trace and kills it, and
//! 6. by dirtying more registered code pages than the pending channel
//!    can hold, forcing the overflow → flush-everything fallback.
//!
//! Snapshot checksums deliberately cover `SimConfig` (so a restore
//! cannot silently cross configurations), which makes them useless for
//! cross-engine comparison — the digest here is hand-rolled over the raw
//! memory pages instead.

use proptest::prelude::*;
use risc1::core::inject::{InjectConfig, InjectModes};
use risc1::core::{
    Cpu, ExecEngine, ExecStats, Halt, Program, SimConfig, CODE_DIRTY_PENDING_CAP, PAGE_BYTES,
};
use risc1::ir::{compile_risc, run_risc, run_risc_injected, RiscOpts};
use risc1::isa::{Cond, Instruction, Opcode, Reg, Short2};
use risc1::workloads::all;
use std::sync::OnceLock;

/// Mirror of the runtime argument area (`risc1_ir::layout::ARGV_BASE`):
/// the runner writes args both to registers and here, so the memory
/// digests only match if both modes see the same argv image.
const ARGV_BASE: u32 = risc1::ir::layout::ARGV_BASE;

/// Everything a program can observably leave behind.
#[derive(Debug, PartialEq)]
struct FinalState {
    result: i32,
    pc: u32,
    stats: ExecStats,
    visible: [u32; 32],
    cwp: u8,
    depth: u64,
    mem_digest: u64,
}

/// FNV-1a over every memory page. `Snapshot::checksum` is unusable here
/// because it folds in the `SimConfig` (which differs by construction
/// across the engines); this digest covers memory content only.
fn mem_digest(cpu: &Cpu) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for idx in 0..cpu.mem.page_count() {
        for &b in cpu.mem.page(idx) {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn capture(cpu: &Cpu) -> FinalState {
    FinalState {
        result: cpu.result(),
        pc: cpu.pc(),
        stats: cpu.stats(),
        visible: cpu.windows().visible(),
        cwp: cpu.windows().cwp(),
        depth: cpu.windows().depth(),
        mem_digest: mem_digest(cpu),
    }
}

/// Runs `prog` to halt under the given engine and captures the final
/// state. The cached and superblock engines go through the batched
/// `run_to_halt` fast path, the uncached engine through the
/// one-at-a-time `step()` loop — the same paths the benchmark harness
/// compares.
fn run_mode(prog: &Program, args: &[i32], engine: ExecEngine) -> FinalState {
    let cfg = SimConfig {
        engine,
        ..SimConfig::default()
    };
    let mut cpu = Cpu::new(cfg);
    cpu.load_program(prog).expect("program fits memory");
    cpu.set_args(args);
    for (i, &a) in args.iter().enumerate() {
        cpu.mem
            .load_image(ARGV_BASE + 4 * i as u32, &(a as u32).to_le_bytes())
            .expect("argv mirror fits");
    }
    if engine == ExecEngine::Uncached {
        while cpu.step().expect("suite runs clean") == Halt::Running {}
    } else {
        cpu.run().expect("suite runs clean");
    }
    capture(&cpu)
}

#[test]
fn every_workload_is_bit_identical_across_all_four_engines() {
    let mut fused_anywhere = 0u64;
    let mut traced_anywhere = 0u64;
    for w in all() {
        let prog = compile_risc(&w.module, RiscOpts::default()).expect("suite compiles");
        let uncached = run_mode(&prog, &w.small_args, ExecEngine::Uncached);
        let cached = run_mode(&prog, &w.small_args, ExecEngine::Cached);
        let superblock = run_mode(&prog, &w.small_args, ExecEngine::Superblock);
        let trace = run_mode(&prog, &w.small_args, ExecEngine::Trace);
        assert_eq!(cached, uncached, "{}: cache must be invisible", w.id);
        assert_eq!(
            superblock, uncached,
            "{}: superblocks must be invisible",
            w.id
        );
        assert_eq!(trace, uncached, "{}: traces must be invisible", w.id);
        // The superblock engine must actually engage (not silently fall
        // back to single-stepping), and must never fuse elsewhere.
        assert!(
            superblock.stats.blocks_entered > 0,
            "{}: superblock engine never entered a block",
            w.id
        );
        assert_eq!(uncached.stats.fused_total(), 0, "{}", w.id);
        assert_eq!(cached.stats.fused_total(), 0, "{}", w.id);
        fused_anywhere += superblock.stats.fused_total();
        traced_anywhere += trace.stats.trace_instructions;
        assert_eq!(
            superblock.stats.trace_instructions, 0,
            "{}: only the trace engine may run traces",
            w.id
        );
    }
    assert!(
        fused_anywhere > 0,
        "macro-op fusion never fired across the whole suite"
    );
    assert!(
        traced_anywhere > 0,
        "the trace tier never compiled and ran a trace across the whole suite"
    );
}

/// One compiled workload plus the fuel/rate bounds the injection sweep
/// uses, shared across proptest cases (compiling per-case would dominate
/// the suite's runtime).
struct Compiled {
    prog: Program,
    args: Vec<i32>,
    fuel: u64,
    rate: u32,
}

fn compiled_suite() -> &'static Vec<Compiled> {
    static SUITE: OnceLock<Vec<Compiled>> = OnceLock::new();
    SUITE.get_or_init(|| {
        all()
            .iter()
            .map(|w| {
                let prog = compile_risc(&w.module, RiscOpts::default()).expect("suite compiles");
                let (_, base) = run_risc(&prog, &w.small_args).expect("suite runs clean");
                Compiled {
                    prog,
                    args: w.small_args.clone(),
                    fuel: base.instructions * 3 + 10_000,
                    rate: (4 * 10_000 / base.instructions.max(1)).clamp(1, 500) as u32,
                }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The law under fire: a seed-driven fault campaign — register and
    /// memory corruption, forced traps, recovery re-execution — produces
    /// the *exact same* `InjectReport` (outcome, stats, and the full
    /// event log) under all four engines. Injected memory writes land
    /// through the same dirty-channel stores use, so this leans hard on
    /// invalidation.
    #[test]
    fn injected_campaigns_are_engine_independent(
        wi in 0usize..11,
        seed in any::<u64>(),
        recovery in any::<bool>(),
    ) {
        let c = &compiled_suite()[wi];
        let inject = InjectConfig { seed, rate: c.rate, modes: InjectModes::all() };
        let run = |engine| {
            let cfg = SimConfig { engine, fuel: c.fuel, ..SimConfig::default() };
            run_risc_injected(&c.prog, &c.args, cfg, inject, recovery)
                .expect("setup succeeds")
        };
        let uncached = run(ExecEngine::Uncached);
        prop_assert_eq!(run(ExecEngine::Cached), uncached.clone());
        prop_assert_eq!(run(ExecEngine::Superblock), uncached.clone());
        prop_assert_eq!(run(ExecEngine::Trace), uncached);
    }
}

/// Splits a value into `#imm` chunks an `add` can carry (13-bit signed).
fn imm_chunks(mut v: u32) -> Vec<Short2> {
    let mut out = Vec::new();
    while v > 0 {
        let chunk = v.min(4095);
        out.push(Short2::imm(chunk as i32).expect("chunk fits imm13"));
        v -= chunk;
    }
    out
}

/// Emits a prologue that leaves `r20 = code_base + 4*target` (patched in
/// by the caller once the target index is known — slot 2 is a
/// placeholder) and `r21 = word`, built as ldhi + imm13 chunks.
fn patch_prologue(word: u32) -> Vec<Instruction> {
    let imm = |v: i32| Short2::imm(v).expect("fits imm13");
    let mut insns = vec![
        Instruction::reg(Opcode::Add, Reg::R20, Reg::R0, imm(1)),
        Instruction::reg(Opcode::Sll, Reg::R20, Reg::R20, imm(12)),
        // Placeholder: patched with the real offset once the target is
        // known.
        Instruction::nop(),
        Instruction::ldhi(Reg::R21, word >> 13),
    ];
    for chunk in imm_chunks(word & 0x1fff) {
        insns.push(Instruction::reg(Opcode::Add, Reg::R21, Reg::R21, chunk));
    }
    insns
}

#[test]
fn self_modifying_code_invalidates_already_executed_text() {
    let imm = |v: i32| Short2::imm(v).expect("fits imm13");

    // The program below runs its loop body twice. Pass one executes the
    // original `add r26, r26, #10` (caching that line), then *stores a
    // nop over it*; pass two re-executes the same address. A correct
    // cache re-decodes and adds nothing — acc ends at 10. A stale cache
    // replays the old line — acc ends at 20.
    let mut insns = patch_prologue(Instruction::nop().encode());
    insns.extend([
        Instruction::reg(Opcode::Add, Reg::R26, Reg::R0, imm(0)), // acc = 0
        Instruction::reg(Opcode::Add, Reg::R17, Reg::R0, imm(0)), // pass = 0
    ]);
    let l = insns.len(); // loop head / patch target
    insns.extend([
        Instruction::reg(Opcode::Add, Reg::R26, Reg::R26, imm(10)), // PATCHED
        Instruction::reg(Opcode::Stl, Reg::R21, Reg::R20, imm(0)),  // text[L] = nop
        Instruction::reg(Opcode::Add, Reg::R17, Reg::R17, imm(1)),
        Instruction::reg_scc(Opcode::Sub, Reg::R0, Reg::R17, imm(2)),
    ]);
    let j = insns.len();
    insns.extend([
        Instruction::jmpr(Cond::Lt, 4 * (l as i32 - j as i32)),
        Instruction::nop(), // delay slot
        Instruction::ret(Reg::R0, imm(0)),
        Instruction::nop(), // return delay slot
    ]);
    // Resolve the placeholder: r20 = 0x1000 + 4 * L.
    insns[2] = Instruction::reg(Opcode::Add, Reg::R20, Reg::R20, imm(4 * l as i32));
    assert_eq!(SimConfig::default().code_base, 0x1000, "address math above");

    let prog = Program::from_instructions(insns);
    let uncached = run_mode(&prog, &[], ExecEngine::Uncached);
    let cached = run_mode(&prog, &[], ExecEngine::Cached);
    let superblock = run_mode(&prog, &[], ExecEngine::Superblock);
    let trace = run_mode(&prog, &[], ExecEngine::Trace);
    assert_eq!(
        cached.result, 10,
        "stale cached line survived the overwrite (20 = add ran twice)"
    );
    assert_eq!(cached, uncached, "cache must be invisible");
    assert_eq!(superblock, uncached, "superblocks must be invisible");
    assert_eq!(trace, uncached, "traces must be invisible");
}

#[test]
fn patching_the_middle_of_a_chained_hot_loop_is_observed() {
    let imm = |v: i32| Short2::imm(v).expect("fits imm13");
    let patch_word = Instruction::reg(Opcode::Add, Reg::R26, Reg::R26, imm(1)).encode();

    // A ten-iteration loop whose body opens with `add r26, r26, #11`.
    // The first five iterations run that original text — under the
    // superblock engine the loop is block-formed, chained, and hot by
    // then. On iteration five the loop stores `add r26, r26, #1` over
    // its own first instruction; iterations six through ten must execute
    // the patched text. acc = 5*11 + 5*1 = 60 only if the store kills
    // the already-chained blocks mid-flight; a stale block replays the
    // old body for 110.
    let mut insns = patch_prologue(patch_word);
    let l = insns.len(); // loop head / patch target
    insns.extend([
        Instruction::reg(Opcode::Add, Reg::R26, Reg::R26, imm(11)), // PATCHED at i == 5
        Instruction::reg(Opcode::Add, Reg::R17, Reg::R17, imm(1)),  // i += 1
        Instruction::reg_scc(Opcode::Sub, Reg::R0, Reg::R17, imm(5)),
        Instruction::jmpr(Cond::Ne, 3 * 4), // i != 5: skip the patch store
        Instruction::nop(),                 // delay slot
        Instruction::reg(Opcode::Stl, Reg::R21, Reg::R20, imm(0)), // text[L] = add #1
        Instruction::reg_scc(Opcode::Sub, Reg::R0, Reg::R17, imm(10)),
    ]);
    let j = insns.len();
    insns.extend([
        Instruction::jmpr(Cond::Lt, 4 * (l as i32 - j as i32)),
        Instruction::nop(), // delay slot
        Instruction::ret(Reg::R0, imm(0)),
        Instruction::nop(), // return delay slot
    ]);
    insns[2] = Instruction::reg(Opcode::Add, Reg::R20, Reg::R20, imm(4 * l as i32));
    assert_eq!(SimConfig::default().code_base, 0x1000, "address math above");

    let prog = Program::from_instructions(insns);
    let uncached = run_mode(&prog, &[], ExecEngine::Uncached);
    let cached = run_mode(&prog, &[], ExecEngine::Cached);
    let superblock = run_mode(&prog, &[], ExecEngine::Superblock);
    let trace = run_mode(&prog, &[], ExecEngine::Trace);
    assert_eq!(
        superblock.result, 60,
        "a stale superblock replayed the pre-patch loop body"
    );
    assert_eq!(cached, uncached, "cache must be invisible");
    assert_eq!(superblock, uncached, "superblocks must be invisible");
    assert_eq!(trace, uncached, "traces must be invisible");
    assert!(
        superblock.stats.blocks_entered >= 5,
        "the loop never got hot under the superblock engine"
    );
}

#[test]
fn patching_a_running_trace_mid_flight_is_observed() {
    let imm = |v: i32| Short2::imm(v).expect("fits imm13");
    let patch_word = Instruction::reg(Opcode::Add, Reg::R26, Reg::R26, imm(1)).encode();

    // Same shape as the hot-loop patch test, but run long enough that the
    // trace tier has *compiled and entered* a trace over the loop before
    // the patch lands: 200 iterations, patching at i == 100 (block heat
    // promotes at 64 completed executions, so by iteration 100 the loop
    // is running from trace IR). The patch store takes the trace's cold
    // branch direction — a guard mismatch exits the trace, the store runs
    // under the block path, the dirty channel kills the stale trace, and
    // iterations 101..200 run (and re-promote) the patched text.
    // acc = 100*11 + 100*1 = 1200 only if all of that is observed.
    let mut insns = patch_prologue(patch_word);
    let l = insns.len(); // loop head / patch target
    insns.extend([
        Instruction::reg(Opcode::Add, Reg::R26, Reg::R26, imm(11)), // PATCHED at i == 100
        Instruction::reg(Opcode::Add, Reg::R17, Reg::R17, imm(1)),  // i += 1
        Instruction::reg_scc(Opcode::Sub, Reg::R0, Reg::R17, imm(100)),
        Instruction::jmpr(Cond::Ne, 3 * 4), // i != 100: skip the patch store
        Instruction::nop(),                 // delay slot
        Instruction::reg(Opcode::Stl, Reg::R21, Reg::R20, imm(0)), // text[L] = add #1
        Instruction::reg_scc(Opcode::Sub, Reg::R0, Reg::R17, imm(200)),
    ]);
    let j = insns.len();
    insns.extend([
        Instruction::jmpr(Cond::Lt, 4 * (l as i32 - j as i32)),
        Instruction::nop(), // delay slot
        Instruction::ret(Reg::R0, imm(0)),
        Instruction::nop(), // return delay slot
    ]);
    insns[2] = Instruction::reg(Opcode::Add, Reg::R20, Reg::R20, imm(4 * l as i32));
    assert_eq!(SimConfig::default().code_base, 0x1000, "address math above");

    let prog = Program::from_instructions(insns);
    let uncached = run_mode(&prog, &[], ExecEngine::Uncached);
    let trace = run_mode(&prog, &[], ExecEngine::Trace);
    assert_eq!(
        trace.result, 1200,
        "a stale trace replayed the pre-patch loop body"
    );
    assert_eq!(trace, uncached, "traces must be invisible");
    assert!(
        trace.stats.traces_built >= 2,
        "the loop must promote before the patch and re-promote after \
         (built {} traces)",
        trace.stats.traces_built
    );
    assert!(
        trace.stats.trace_side_exits >= 1,
        "the patch must leave the trace through a side exit"
    );
}

#[test]
fn dirty_channel_overflow_falls_back_to_flushing_everything() {
    let imm = |v: i32| Short2::imm(v).expect("fits imm13");
    let insns_per_page = PAGE_BYTES / 4;
    // One more code page than the pending channel can hold, so patching
    // all of them mid-run must overflow the channel and trip the
    // flush-everything fallback rather than dropping invalidations.
    let body_pages = CODE_DIRTY_PENDING_CAP + 1;
    let body_len = body_pages * insns_per_page;

    // body: `add r26, r26, #1` filling `body_pages` whole pages, run
    // twice by the tail's pass counter. `code_base` is page-aligned, so
    // the body covers exactly `body_pages` pages.
    let mut insns = vec![Instruction::reg(Opcode::Add, Reg::R26, Reg::R26, imm(1)); body_len];
    let j = insns.len() + 2;
    insns.extend([
        Instruction::reg(Opcode::Add, Reg::R17, Reg::R17, imm(1)), // pass += 1
        Instruction::reg_scc(Opcode::Sub, Reg::R0, Reg::R17, imm(2)),
        Instruction::jmpr(Cond::Lt, 4 * -(j as i32)), // pass < 2: rerun the body
        Instruction::nop(),                           // delay slot
        Instruction::ret(Reg::R0, imm(0)),
        Instruction::nop(), // return delay slot
    ]);
    assert_eq!(SimConfig::default().code_base % PAGE_BYTES as u32, 0);
    let prog = Program::from_instructions(insns);

    // After pass one every body page is registered as executed code.
    // The host then bulk-patches the whole body to `add r26, r26, #2`
    // through `load_image` — same dirty channel as stores — and resumes.
    // acc = body_len * (1 + 2) only if all the patches are observed.
    let patched = Instruction::reg(Opcode::Add, Reg::R26, Reg::R26, imm(2)).encode();
    let mut page_image = Vec::with_capacity(PAGE_BYTES);
    for _ in 0..insns_per_page {
        page_image.extend_from_slice(&patched.to_le_bytes());
    }
    let run = |engine| {
        let cfg = SimConfig {
            engine,
            ..SimConfig::default()
        };
        let code_base = cfg.code_base;
        let mut cpu = Cpu::new(cfg);
        cpu.load_program(&prog).expect("program fits memory");
        assert_eq!(
            cpu.step_n(body_len as u64).expect("pass one runs clean"),
            Halt::Running
        );
        assert_eq!(cpu.pc(), code_base + 4 * body_len as u32, "mid-tail");
        for p in 0..body_pages {
            cpu.mem
                .load_image(code_base + (p * PAGE_BYTES) as u32, &page_image)
                .expect("patch fits memory");
        }
        if engine == ExecEngine::Uncached {
            while cpu.step().expect("pass two runs clean") == Halt::Running {}
        } else {
            cpu.run().expect("pass two runs clean");
        }
        capture(&cpu)
    };
    let uncached = run(ExecEngine::Uncached);
    let cached = run(ExecEngine::Cached);
    let superblock = run(ExecEngine::Superblock);
    let trace = run(ExecEngine::Trace);
    assert_eq!(
        uncached.result,
        3 * body_len as i32,
        "pass two must see the patched body"
    );
    assert_eq!(cached, uncached, "cache must be invisible");
    assert_eq!(superblock, uncached, "superblocks must be invisible");
    assert_eq!(trace, uncached, "traces must be invisible");
}
