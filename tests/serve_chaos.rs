//! Chaos test for the batch execution service: the transparency law under
//! concurrent load.
//!
//! Two clients hammer one [`ExecService`] with a mixed campaign — clean
//! runs, fault-injected runs with and without recovery handlers,
//! supervised runs, and wall-clock-doomed runs — and every accepted job
//! must come back **bit-identical** to executing the same spec directly,
//! with zero panics and zero silent drops. Overload is exercised
//! separately: a submission that would overflow its client's queue must
//! be rejected with a structured [`Overloaded`], counted as shed, and the
//! service must keep serving afterwards.

use risc1::core::inject::{InjectConfig, InjectModes};
use risc1::core::{Program, SimConfig};
use risc1::ir::{
    compile_risc, run_risc, run_risc_deadline, run_risc_injected, run_risc_supervised, RiscOpts,
    SupervisorConfig, TimedOutcome,
};
use risc1::workloads::by_id;
use risc1::{ExecService, JobMode, JobOutput, JobSpec, PollState, ServiceConfig, SubmitError};
use std::collections::HashMap;
use std::time::Duration;

/// One compiled workload with a fuel-bounded config and an injection rate
/// tuned to ~4 perturbations per run (the repo-wide sweep convention).
struct Compiled {
    prog: Program,
    args: Vec<i32>,
    cfg: SimConfig,
    rate: u32,
    instructions: u64,
}

fn compiled(id: &str) -> Compiled {
    let w = by_id(id).expect("suite workload");
    let prog = compile_risc(&w.module, RiscOpts::default()).expect("suite compiles");
    let (_, base) = run_risc(&prog, &w.small_args).expect("suite runs clean");
    let cfg = SimConfig {
        fuel: base.instructions * 3 + 10_000,
        ..SimConfig::default()
    };
    let rate = (4 * 10_000 / base.instructions.max(1)).clamp(1, 500) as u32;
    Compiled {
        prog,
        args: w.small_args.clone(),
        cfg,
        rate,
        instructions: base.instructions,
    }
}

/// The campaign one client runs against one pair of workloads: per
/// workload, four injected direct runs (recovery alternating), one clean
/// run, one supervised run and two checkpoint-parallel (sharded) runs —
/// plus one run doomed by a zero-budget watchdog.
fn campaign(workloads: &[&Compiled]) -> Vec<JobSpec> {
    let mut specs = Vec::new();
    for w in workloads {
        for seed in 1..=4u64 {
            specs.push(JobSpec {
                program: w.prog.clone(),
                args: w.args.clone(),
                cfg: w.cfg.clone(),
                inject: Some(InjectConfig {
                    seed,
                    rate: w.rate,
                    modes: InjectModes::all(),
                }),
                recovery: seed % 2 == 0,
                mode: JobMode::Direct,
                timeout_ms: None,
                snapshot: None,
                journal: false,
            });
        }
        specs.push(JobSpec {
            program: w.prog.clone(),
            args: w.args.clone(),
            cfg: w.cfg.clone(),
            inject: None,
            recovery: false,
            mode: JobMode::Direct,
            timeout_ms: None,
            snapshot: None,
            journal: false,
        });
        specs.push(JobSpec {
            program: w.prog.clone(),
            args: w.args.clone(),
            cfg: w.cfg.clone(),
            inject: Some(InjectConfig {
                seed: 5,
                rate: w.rate,
                modes: InjectModes::all(),
            }),
            recovery: true,
            mode: JobMode::Supervised {
                ckpt_every: (w.instructions / 8).max(500),
                max_retries: 4,
            },
            timeout_ms: None,
            snapshot: None,
            journal: false,
        });
        // Checkpoint-parallel: one clean, one injected with recovery.
        // Both must come back bit-identical to the *direct* run of the
        // same spec — sharding is a pure host-speed knob.
        let sharded = JobMode::Sharded {
            shard_cycles: (w.instructions / 6).max(200),
            threads: 2,
        };
        specs.push(JobSpec {
            program: w.prog.clone(),
            args: w.args.clone(),
            cfg: w.cfg.clone(),
            inject: None,
            recovery: false,
            mode: sharded,
            timeout_ms: None,
            snapshot: None,
            journal: false,
        });
        specs.push(JobSpec {
            program: w.prog.clone(),
            args: w.args.clone(),
            cfg: w.cfg.clone(),
            inject: Some(InjectConfig {
                seed: 6,
                rate: w.rate,
                modes: InjectModes::all(),
            }),
            recovery: true,
            mode: sharded,
            timeout_ms: None,
            snapshot: None,
            journal: false,
        });
    }
    // Doomed: a zero-millisecond watchdog expires before the first step,
    // so the timeout path is deterministic.
    let w = workloads[0];
    specs.push(JobSpec {
        program: w.prog.clone(),
        args: w.args.clone(),
        cfg: w.cfg.clone(),
        inject: Some(InjectConfig {
            seed: 9,
            rate: w.rate,
            modes: InjectModes::all(),
        }),
        recovery: true,
        mode: JobMode::Direct,
        timeout_ms: Some(0),
        snapshot: None,
        journal: false,
    });
    specs
}

/// Runs `spec` directly (no service) and asserts the served output is
/// bit-identical — the transparency law, spec shape by spec shape.
fn assert_transparent(spec: &JobSpec, out: &JobOutput) {
    match (spec.mode, spec.timeout_ms) {
        (JobMode::Direct, Some(0)) => {
            let JobOutput::TimedOut { stats, .. } = out else {
                panic!("zero-budget job must time out, got {}", out.kind());
            };
            assert_eq!(stats.instructions, 0, "the watchdog fires before step 0");
        }
        (JobMode::Direct, _) => {
            let direct = match spec.inject {
                Some(icfg) => run_risc_injected(
                    &spec.program,
                    &spec.args,
                    spec.cfg.clone(),
                    icfg,
                    spec.recovery,
                )
                .expect("setup is valid"),
                None => {
                    match run_risc_deadline(
                        &spec.program,
                        &spec.args,
                        spec.cfg.clone(),
                        None,
                        spec.recovery,
                        None,
                        None,
                    )
                    .expect("setup is valid")
                    {
                        TimedOutcome::Finished(r) => r,
                        TimedOutcome::TimedOut { .. } => unreachable!("no deadline configured"),
                    }
                }
            };
            let JobOutput::Finished(served) = out else {
                panic!("direct job must finish, got {}", out.kind());
            };
            assert_eq!(served, &direct, "served report diverged from direct run");
        }
        (JobMode::Sharded { .. }, _) => {
            // Sharding is a host-speed knob: the served report's wire
            // digest must equal the plain direct run of the same spec.
            let direct = match spec.inject {
                Some(icfg) => run_risc_injected(
                    &spec.program,
                    &spec.args,
                    spec.cfg.clone(),
                    icfg,
                    spec.recovery,
                )
                .expect("setup is valid"),
                None => {
                    match run_risc_deadline(
                        &spec.program,
                        &spec.args,
                        spec.cfg.clone(),
                        None,
                        spec.recovery,
                        None,
                        None,
                    )
                    .expect("setup is valid")
                    {
                        TimedOutcome::Finished(r) => r,
                        TimedOutcome::TimedOut { .. } => unreachable!("no deadline configured"),
                    }
                }
            };
            let JobOutput::Finished(_) = out else {
                panic!("sharded job must finish, got {}", out.kind());
            };
            assert_eq!(
                out.digest(),
                JobOutput::Finished(direct).digest(),
                "served sharded report diverged from direct run"
            );
        }
        (
            JobMode::Supervised {
                ckpt_every,
                max_retries,
            },
            _,
        ) => {
            let direct = run_risc_supervised(
                &spec.program,
                &spec.args,
                spec.cfg.clone(),
                spec.inject,
                spec.recovery,
                SupervisorConfig {
                    ckpt_every,
                    max_retries,
                    ..SupervisorConfig::default()
                },
            )
            .expect("setup is valid");
            assert_eq!(
                out.digest(),
                JobOutput::Supervised(direct).digest(),
                "served supervised report diverged from direct run"
            );
        }
    }
}

#[test]
fn concurrent_mixed_campaigns_are_bit_identical_to_direct_execution() {
    let fib = compiled("fib");
    let sieve = compiled("sieve");
    let hanoi = compiled("hanoi");
    let qsort = compiled("qsort");
    let alpha_specs = campaign(&[&fib, &sieve]);
    let beta_specs = campaign(&[&hanoi, &qsort]);
    assert!(alpha_specs.len() + beta_specs.len() >= 24);

    let service = ExecService::start(ServiceConfig::default());
    let collected: Vec<Vec<(JobSpec, JobOutput)>> = std::thread::scope(|scope| {
        let clients = [("alpha", 2u32, &alpha_specs), ("beta", 1, &beta_specs)];
        let handles: Vec<_> = clients
            .map(|(name, weight, specs)| {
                let service = &service;
                scope.spawn(move || {
                    let tickets = service
                        .submit(name, weight, specs.clone())
                        .expect("the campaign fits the queue");
                    assert!(
                        tickets.iter().all(|t| !t.dedup),
                        "{name}: all specs are distinct, nothing should dedup"
                    );
                    tickets
                        .iter()
                        .zip(specs.iter())
                        .map(|(t, spec)| {
                            let state = service
                                .wait(t.id, Duration::from_secs(120))
                                .expect("ticketed jobs are pollable");
                            let PollState::Done(out) = state else {
                                panic!("{name}: job {} not done within budget", t.id);
                            };
                            (spec.clone(), out)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .into_iter()
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no client panics"))
            .collect()
    });

    let mut digests: HashMap<risc1::serve::JobKey, u64> = HashMap::new();
    for (spec, out) in collected.iter().flatten() {
        assert!(
            !matches!(out, JobOutput::Panicked { .. }),
            "a worker panicked: {out:?}"
        );
        assert_transparent(spec, out);
        digests.insert(spec.key(), out.digest());
    }

    // Idempotency: a third client resubmitting alpha's whole campaign gets
    // only dedup tickets, and every replayed result carries the digest of
    // the original execution.
    let tickets = service
        .submit("gamma", 1, alpha_specs.clone())
        .expect("dedup consumes no queue space");
    assert!(
        tickets.iter().all(|t| t.dedup),
        "all resubmissions must dedup"
    );
    for (t, spec) in tickets.iter().zip(&alpha_specs) {
        let Some(PollState::Done(out)) = service.poll(t.id) else {
            panic!("deduped job {} must already be done", t.id);
        };
        assert_eq!(
            out.digest(),
            digests[&spec.key()],
            "deduped result diverged from the original execution"
        );
    }

    let status = service.status();
    let total = (alpha_specs.len() + beta_specs.len()) as u64;
    assert_eq!(
        status.counters.completed, total,
        "every accepted job finishes"
    );
    assert_eq!(status.counters.panics, 0);
    assert_eq!(status.counters.shed, 0);
    assert_eq!(status.counters.timeouts, 2, "one doomed job per client");
    assert_eq!(status.counters.dedup_hits, alpha_specs.len() as u64);
    assert_eq!(status.queued, 0, "nothing may linger in the queues");
    service.shutdown();
}

#[test]
fn overload_is_a_structured_rejection_not_a_silent_drop() {
    let fib = compiled("fib");
    let service = ExecService::start(ServiceConfig {
        queue_cap: 4,
        ..ServiceConfig::default()
    });
    let flood: Vec<JobSpec> = (100..108u64)
        .map(|seed| JobSpec {
            program: fib.prog.clone(),
            args: fib.args.clone(),
            cfg: fib.cfg.clone(),
            inject: Some(InjectConfig {
                seed,
                rate: fib.rate,
                modes: InjectModes::all(),
            }),
            recovery: false,
            mode: JobMode::Direct,
            timeout_ms: None,
            snapshot: None,
            journal: false,
        })
        .collect();

    // 8 fresh jobs against a 4-slot queue: the whole submission is shed,
    // atomically, with a structured error that renders.
    let err = service
        .submit("flood", 1, flood.clone())
        .expect_err("8 fresh jobs cannot fit a 4-slot queue");
    match &err {
        SubmitError::Overloaded(o) => {
            assert_eq!(o.capacity, 4);
            assert_eq!(o.rejected, 8);
            assert_eq!(o.client, "flood");
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    let _ = err.to_string();
    assert_eq!(service.status().counters.shed, 8);

    // Degradation is graceful: a submission that fits is still served.
    let tickets = service
        .submit("flood", 1, flood[..2].to_vec())
        .expect("2 jobs fit a 4-slot queue");
    for t in &tickets {
        let state = service
            .wait(t.id, Duration::from_secs(120))
            .expect("ticketed jobs are pollable");
        assert!(
            matches!(state, PollState::Done(JobOutput::Finished(_))),
            "post-shed jobs must still execute"
        );
    }
    assert_eq!(service.status().counters.completed, 2);
    service.shutdown();
}

#[test]
fn the_wire_protocol_round_trips_over_real_sockets() {
    use risc1::serve::wire;
    use std::io::{BufRead, BufReader, Write};
    use std::net::{TcpListener, TcpStream};

    let fib = compiled("fib");
    let service = ExecService::start(ServiceConfig::default());
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");

    std::thread::scope(|scope| {
        let server = scope.spawn(|| risc1::serve::serve_tcp(&service, listener));

        let stream = TcpStream::connect(addr).expect("connect");
        let mut rx = BufReader::new(stream.try_clone().expect("clone"));
        let mut tx = stream;
        let mut roundtrip = |req: &str| -> String {
            tx.write_all(req.as_bytes()).expect("send");
            tx.write_all(b"\n").expect("send");
            let mut line = String::new();
            rx.read_line(&mut line).expect("recv");
            line
        };

        let submit = wire::submit_request(
            "tcp",
            1,
            &fib.prog,
            &fib.args,
            &fib.cfg,
            &[21, 22],
            true,
            fib.rate,
            "all",
            true,
            "direct",
            None,
            false,
            None,
        );
        let reply = roundtrip(&submit);
        assert!(reply.contains("\"ok\":true"), "submit failed: {reply}");
        // Job ids are 1 and 2 on a fresh service; wait for both and check
        // the served digests against direct runs.
        for (id, seed) in [(1u64, 21u64), (2, 22)] {
            let reply = roundtrip(&format!(
                "{{\"op\":\"poll\",\"id\":{id},\"wait_ms\":120000}}"
            ));
            let direct = run_risc_injected(
                &fib.prog,
                &fib.args,
                fib.cfg.clone(),
                InjectConfig {
                    seed,
                    rate: fib.rate,
                    modes: InjectModes::all(),
                },
                true,
            )
            .expect("setup is valid");
            let want = format!("{:016x}", JobOutput::Finished(direct).digest());
            assert!(
                reply.contains(&want),
                "seed {seed}: digest {want} not in {reply}"
            );
        }
        // Malformed input is a structured bad-request, not a dropped
        // connection.
        let reply = roundtrip("this is not json");
        assert!(reply.contains("bad-request"), "got {reply}");

        let reply = roundtrip("{\"op\":\"shutdown\"}");
        assert!(reply.contains("shutting-down"), "got {reply}");
        server
            .join()
            .expect("server thread exits")
            .expect("accept loop exits cleanly");
    });
}
