//! Interrupt handling end to end: `CALLI`-style entry in a fresh register
//! window, handler state isolated from the interrupted computation,
//! `RETI` resume, and `GTLPC` visibility.
//!
//! The paper sells register windows for interrupts too: the handler gets
//! its own window, so entry saves nothing and the interrupted frame's
//! registers are untouched.

use risc1::asm::assemble;
use risc1::core::{Cpu, Halt, SimConfig};
use risc1::isa::Reg;

/// A busy loop in the main program; the handler bumps a counter in memory
/// and returns. The interrupted loop's registers must be unchanged.
fn build() -> risc1::core::Program {
    assemble(
        "
        .entry main
        ; interrupt handler: lives in its own window. The interrupted PC
        ; is in r25 (written by the hardware CALLI sequence).
        handler:
            ldhi  r16, #1           ; counter cell at 0x2000
            ldl   r17, r16, #0
            add   r17, r17, #1
            stl   r17, r16, #0
            reti  r25, #0           ; resume the interrupted instruction
            nop
        main:
            add   r16, r0, #0       ; loop counter (the handler must not
            add   r17, r0, #1       ; see or touch these)
            li    r18, #10000       ; loop bound (exceeds the 13-bit imm)
        spin:
            add   r16, r16, r17
            sub   r0, r16, r18 {scc}
            jmpr  ne, spin
            nop
            add   r26, r16, #0
            halt
            nop
        ",
    )
    .expect("assembles")
}

#[test]
fn interrupt_runs_handler_and_resumes_transparently() {
    let prog = build();
    let mut cpu = Cpu::new(SimConfig::default());
    cpu.load_program(&prog).unwrap();
    let handler = cpu.config().code_base + prog.symbols["handler"];
    cpu.set_interrupt_handler(handler);

    // Let the loop get going, then interrupt it several times.
    let mut fired = 0;
    for k in 0..80_000 {
        if cpu.step().unwrap() == Halt::Returned {
            break;
        }
        if k % 1000 == 500 && fired < 7 {
            cpu.raise_interrupt();
            fired += 1;
        }
    }
    assert!(cpu.is_halted(), "program must still finish");
    assert_eq!(cpu.result(), 10_000, "interrupts were transparent");
    assert_eq!(
        cpu.mem.peek_u32(0x2000).unwrap(),
        fired,
        "each interrupt ran the handler exactly once"
    );
    assert!(fired >= 5);
}

#[test]
fn interrupts_are_held_during_delay_slots() {
    // Raise an interrupt while a delayed jump is in flight: the machine
    // must take it only once no jump is pending, so resumption always
    // restarts a clean instruction sequence.
    let prog = build();
    let mut cpu = Cpu::new(SimConfig::default());
    cpu.load_program(&prog).unwrap();
    let handler = cpu.config().code_base + prog.symbols["handler"];
    cpu.set_interrupt_handler(handler);

    // Step to the first taken jmpr (pending target set), then raise.
    let mut raised_in_slot = false;
    for _ in 0..200 {
        cpu.step().unwrap();
        if !raised_in_slot && cpu.interrupt_pending() {
            // already raised
        }
        if !raised_in_slot {
            cpu.raise_interrupt();
            raised_in_slot = true;
        }
        if cpu.mem.peek_u32(0x2000).unwrap() > 0 {
            break;
        }
    }
    assert_eq!(cpu.mem.peek_u32(0x2000).unwrap(), 1, "handler ran once");
    // and the program still completes correctly
    cpu.run().unwrap();
    assert_eq!(cpu.result(), 10_000);
}

#[test]
fn handler_window_is_isolated_from_the_interrupted_frame() {
    // The handler clobbers r16/r17 — the same *names* the main loop uses —
    // but in its own window, so the loop's values survive.
    let prog = build();
    let mut cpu = Cpu::new(SimConfig::default());
    cpu.load_program(&prog).unwrap();
    let handler = cpu.config().code_base + prog.symbols["handler"];
    cpu.set_interrupt_handler(handler);

    // Run a little, snapshot r16, interrupt, run the handler to completion
    // (6 instructions + resume), compare.
    for _ in 0..50 {
        cpu.step().unwrap();
    }
    let before = cpu.reg(Reg::R16);
    cpu.raise_interrupt();
    for _ in 0..8 {
        cpu.step().unwrap();
    }
    assert_eq!(cpu.mem.peek_u32(0x2000).unwrap(), 1, "handler completed");
    // After resume the loop continues from `before` (it may have advanced
    // a few iterations since, so check monotonicity and window isolation
    // via the final result instead of exact equality mid-flight).
    assert!(cpu.reg(Reg::R16) >= before);
    cpu.run().unwrap();
    assert_eq!(cpu.result(), 10_000);
}
