//! The robustness contract of the whole stack, enforced end to end.
//!
//! Every fault-injected execution must land in the trichotomy
//! *recovered-with-correct-result | structured-fault | clean-halt* — a
//! panic is never an acceptable fourth outcome. The sweep below drives
//! all eleven suite workloads through seed-driven injection campaigns
//! (with and without recovery handlers) under `catch_unwind`, and the
//! companion property tests hold the memory system and both CISC
//! disassemblers to the same no-panic bar on arbitrary input.

use risc1::core::inject::{InjectConfig, InjectModes};
use risc1::core::{ExecError, SimConfig, TrapKind};
use risc1::ir::{
    compile_risc, default_threads, parallel_map, record_risc_injected, run_risc, run_risc_injected,
    seed_jobs, InjectOutcome, RiscOpts,
};
use risc1::workloads::all;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Where the sweep dumps the journal of every faulting campaign, so a CI
/// failure is reproducible from the uploaded artifacts alone:
/// `risc1 replay target/replay-artifacts/<workload>_seed<N>.json`.
const ARTIFACT_DIR: &str = "target/replay-artifacts";

/// One compiled workload with its uninjected result and a fuel-bounded
/// configuration (so handler re-execution loops end in a structured
/// `OutOfFuel` quickly instead of burning the default 200M).
struct Compiled {
    id: &'static str,
    prog: risc1::core::Program,
    args: Vec<i32>,
    expect: i32,
    cfg: SimConfig,
    rate: u32,
}

fn compiled_suite() -> Vec<Compiled> {
    all()
        .iter()
        .map(|w| {
            let prog = compile_risc(&w.module, RiscOpts::default()).expect("suite compiles");
            let (expect, base) = run_risc(&prog, &w.small_args).expect("suite runs clean");
            let cfg = SimConfig {
                fuel: base.instructions * 3 + 10_000,
                ..SimConfig::default()
            };
            // ~4 expected perturbations per run regardless of workload
            // length, so short and long benchmarks are stressed equally.
            let rate = (4 * 10_000 / base.instructions.max(1)).clamp(1, 500) as u32;
            Compiled {
                id: w.id,
                prog,
                args: w.small_args.clone(),
                expect,
                cfg,
                rate,
            }
        })
        .collect()
}

#[test]
fn trichotomy_holds_for_all_workloads_across_32_seeds() {
    let suite = compiled_suite();
    assert_eq!(suite.len(), 11, "the paper's full benchmark count");
    let _ = std::fs::create_dir_all(ARTIFACT_DIR);
    // The 11×32 sweep is the slowest test in the repo; each (workload,
    // seed) campaign is independent, so farm them out on the deterministic
    // parallel runner and fold/write artifacts in canonical order after.
    let jobs = seed_jobs(suite.len(), 32);
    let outcomes = parallel_map(&jobs, default_threads(), |_, &(wi, seed)| {
        let w = &suite[wi];
        // Alternate handler installation so both halves of the design
        // see every workload: even seeds recover, odd seeds run bare.
        let recovery = seed % 2 == 0;
        let icfg = InjectConfig {
            seed,
            rate: w.rate,
            modes: InjectModes::all(),
        };
        catch_unwind(AssertUnwindSafe(|| {
            let (journal, report) =
                record_risc_injected(&w.prog, &w.args, w.cfg.clone(), icfg, recovery)
                    .expect("setup is valid");
            (journal, report.outcome)
        }))
        .unwrap_or_else(|_| panic!("{} seed {seed} (recovery {recovery}) panicked", w.id))
    });
    let mut halted = 0u64;
    let mut faulted = 0u64;
    for (&(wi, seed), (journal, outcome)) in jobs.iter().zip(&outcomes) {
        match outcome {
            InjectOutcome::Halted { .. } => halted += 1,
            InjectOutcome::Faulted { error } => {
                // A structured fault must render, not unwind — and its
                // journal lands in the artifact directory so the exact
                // campaign replays from the CI logs alone.
                let _ = error.to_string();
                let path = format!("{ARTIFACT_DIR}/{}_seed{seed}.json", suite[wi].id);
                let _ = std::fs::write(path, journal.to_json());
                faulted += 1;
            }
        }
    }
    assert_eq!(halted + faulted, 11 * 32);
    assert!(halted > 0, "some campaigns must survive");
    assert!(
        faulted > 0,
        "some campaigns must fault (else nothing was injected)"
    );
}

#[test]
fn transparent_injection_reproduces_the_clean_result_bit_for_bit() {
    // Spurious interrupts and forced misalignment probes with resume
    // handlers are extra-architectural: state is saved in a fresh window
    // and `reti r25, #0` replays the interrupted instruction. Every
    // workload and every seed must therefore reproduce the uninjected
    // result exactly.
    let mut trap_activity = 0u64;
    for w in &compiled_suite() {
        for seed in 0..4u64 {
            let icfg = InjectConfig {
                seed,
                rate: 150,
                modes: InjectModes::transparent(),
            };
            let rep =
                run_risc_injected(&w.prog, &w.args, w.cfg.clone(), icfg, true).expect("setup");
            assert!(
                rep.recovered(w.expect),
                "seed {seed}: outcome {:?} after {} events",
                rep.outcome,
                rep.events.len()
            );
            trap_activity += rep.stats.trap_entries + rep.stats.interrupts_taken;
        }
    }
    assert!(
        trap_activity > 0,
        "the transparent campaign must actually fire"
    );
}

#[test]
fn identical_seeds_reproduce_identical_runs() {
    let suite = compiled_suite();
    let w = &suite[5]; // qsort: recursion + data traffic
    for seed in [0u64, 1, 7, 0xdead_beef] {
        let icfg = InjectConfig {
            seed,
            rate: 80,
            modes: InjectModes::all(),
        };
        let a = run_risc_injected(&w.prog, &w.args, w.cfg.clone(), icfg, true).expect("setup");
        let b = run_risc_injected(&w.prog, &w.args, w.cfg.clone(), icfg, true).expect("setup");
        assert_eq!(
            a.events, b.events,
            "seed {seed}: schedule must be deterministic"
        );
        assert_eq!(a.outcome, b.outcome, "seed {seed}");
        assert_eq!(a.stats.instructions, b.stats.instructions, "seed {seed}");
        assert_eq!(a.stats.cycles, b.stats.cycles, "seed {seed}");
        assert_eq!(a.stats.trap_entries, b.stats.trap_entries, "seed {seed}");
        assert_eq!(a.stats.trap_counts, b.stats.trap_counts, "seed {seed}");
        assert_eq!(
            a.stats.interrupts_taken, b.stats.interrupts_taken,
            "seed {seed}"
        );
    }
}

#[test]
fn different_seeds_produce_different_schedules() {
    let suite = compiled_suite();
    let w = &suite[4]; // bubble: long enough to fire often
    let events: Vec<_> = [3u64, 4]
        .iter()
        .map(|&seed| {
            let icfg = InjectConfig {
                seed,
                rate: 100,
                modes: InjectModes::all(),
            };
            run_risc_injected(&w.prog, &w.args, w.cfg.clone(), icfg, true)
                .expect("setup")
                .events
        })
        .collect();
    assert!(!events[0].is_empty() && !events[1].is_empty());
    assert_ne!(events[0], events[1], "seeds must decorrelate");
}

#[test]
fn the_service_path_is_bit_identical_to_direct_execution() {
    // The same transparency law the serve chaos test enforces, wired into
    // this sweep's conventions: eight seeds of a call-heavy workload routed
    // through the execution service must reproduce `run_risc_injected`
    // report for report — outcome, full `ExecStats`, and applied-event log.
    use risc1::{ExecService, JobMode, JobOutput, JobSpec, PollState, ServiceConfig};
    use std::time::Duration;

    let suite = compiled_suite();
    let w = suite
        .iter()
        .find(|w| w.id == "qsort")
        .expect("suite workload");
    let specs: Vec<JobSpec> = (0..8u64)
        .map(|seed| JobSpec {
            program: w.prog.clone(),
            args: w.args.clone(),
            cfg: w.cfg.clone(),
            inject: Some(InjectConfig {
                seed,
                rate: w.rate,
                modes: InjectModes::all(),
            }),
            recovery: seed % 2 == 0,
            mode: JobMode::Direct,
            timeout_ms: None,
            snapshot: None,
            journal: false,
        })
        .collect();

    let service = ExecService::start(ServiceConfig::default());
    let tickets = service
        .submit("sweep", 1, specs.clone())
        .expect("8 distinct seeds fit the default queue");
    for (t, spec) in tickets.iter().zip(&specs) {
        let state = service
            .wait(t.id, Duration::from_secs(120))
            .expect("ticketed jobs are pollable");
        let PollState::Done(JobOutput::Finished(served)) = state else {
            panic!("seed {}: job did not finish", t.seed);
        };
        let direct = run_risc_injected(
            &spec.program,
            &spec.args,
            spec.cfg.clone(),
            spec.inject.expect("all specs inject"),
            spec.recovery,
        )
        .expect("setup is valid");
        assert_eq!(served, direct, "seed {}: service/direct divergence", t.seed);
    }
    assert_eq!(service.status().counters.panics, 0);
    service.shutdown();
}

#[test]
fn handler_that_faults_terminates_with_a_structured_double_fault() {
    // End-to-end through the assembler: the misalignment handler itself
    // performs a misaligned load, so the trap unit must refuse to recurse
    // and surface both causes.
    let prog = risc1::asm::assemble(
        "
        .entry main
        handler:
            ldhi  r16, #1
            ldl   r17, r16, #2      ; faults again, inside the handler
            reti  r25, #4
            nop
        main:
            ldhi  r16, #1
            nop
            ldl   r17, r16, #2      ; misaligned: 0x2002
            halt
            nop
        ",
    )
    .expect("assembles");
    let mut cpu = risc1::core::Cpu::new(SimConfig::default());
    cpu.load_program(&prog).unwrap();
    let handler = cpu.config().code_base + prog.symbols["handler"];
    cpu.set_trap_handler(TrapKind::Misaligned, handler);
    let err = cpu.run().unwrap_err();
    match err {
        ExecError::DoubleFault { first, second, .. } => {
            assert_eq!(first, TrapKind::Misaligned);
            assert_eq!(second, TrapKind::Misaligned);
        }
        other => panic!("expected a double fault, got {other:?}"),
    }
    let _ = err.to_string();
}

mod never_panics {
    //! Property tests: arbitrary input must never unwind, anywhere in the
    //! user-reachable decoding/memory surface.

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Memory access at any (addr, width) combination returns
        /// `Ok`/`Err`, never panics — including end-of-memory straddles
        /// and addresses near `u32::MAX`.
        #[test]
        fn memory_accessors(addr in any::<u32>(), v in any::<u32>(), size in 1usize..4096) {
            let mut m = risc1::core::Memory::new(size);
            let _ = m.read_u8(addr);
            let _ = m.read_u16(addr);
            let _ = m.read_u32(addr);
            let _ = m.write_u8(addr, v as u8);
            let _ = m.write_u16(addr, v as u16);
            let _ = m.write_u32(addr, v);
            let _ = m.peek_u8(addr);
            let _ = m.peek_u32(addr);
            let _ = m.flip_bit(addr, (v & 7) as u8);
            let _ = m.load_image(addr, &v.to_le_bytes());
        }

        /// The CX (VAX-style byte-coded) disassembler accepts any byte
        /// soup: undecodable bytes degrade to `.byte`, truncated operands
        /// to `None` — never a panic.
        #[test]
        fn cx_disassembler(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let text = risc1::cisc::disasm::disassemble(&bytes);
            prop_assert!(bytes.is_empty() == text.is_empty());
            for offset in 0..bytes.len() {
                let _ = risc1::cisc::disasm::decode_one(&bytes, offset as u32);
            }
        }

        /// The MC (68000-style word-coded) disassembler, same bar.
        #[test]
        fn mc_disassembler(words in proptest::collection::vec(any::<u16>(), 0..128)) {
            let text = risc1::m68::disasm::disassemble(&words);
            prop_assert!(words.is_empty() == text.is_empty());
            for idx in 0..words.len() {
                let _ = risc1::m68::disasm::decode_one(&words, idx);
            }
        }

        /// The RISC I word disassembler renders any 32-bit words.
        #[test]
        fn risc_disassembler(words in proptest::collection::vec(any::<u32>(), 0..128)) {
            let text = risc1::asm::disassemble_words(&words, 0x1000);
            prop_assert_eq!(text.lines().count(), words.len());
        }
    }
}
