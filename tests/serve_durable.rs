//! Durability laws for the execution service: crash-safe write-ahead
//! logging, validated warm-start snapshots, and retained replay journals.
//!
//! The restart bit-identity law, end to end: everything the pre-crash
//! service admitted is either re-seeded from its logged completion
//! (byte-identical result, original digest) or re-executed under its
//! original id to a digest bit-identical to direct execution. The WAL is
//! append-only newline-delimited JSON, so a torn tail from a hard kill is
//! skipped, never fatal.

use risc1::core::inject::{InjectConfig, InjectModes};
use risc1::core::snapshot::Snapshot;
use risc1::core::{Program, SimConfig};
use risc1::ir::{
    compile_risc, run_risc, run_risc_deadline, run_risc_resumed, snapshot_risc_prefix, RiscOpts,
    TimedOutcome,
};
use risc1::serve::wal::WalWriter;
use risc1::workloads::by_id;
use risc1::{ExecService, JobMode, JobOutput, JobSpec, PollState, ServiceConfig};
use std::path::PathBuf;
use std::time::Duration;

struct Compiled {
    prog: Program,
    args: Vec<i32>,
    cfg: SimConfig,
    rate: u32,
    instructions: u64,
}

fn compiled(id: &str) -> Compiled {
    let w = by_id(id).expect("suite workload");
    let prog = compile_risc(&w.module, RiscOpts::default()).expect("suite compiles");
    let (_, base) = run_risc(&prog, &w.small_args).expect("suite runs clean");
    let cfg = SimConfig {
        fuel: base.instructions * 3 + 10_000,
        ..SimConfig::default()
    };
    let rate = (4 * 10_000 / base.instructions.max(1)).clamp(1, 500) as u32;
    Compiled {
        prog,
        args: w.small_args.clone(),
        cfg,
        rate,
        instructions: base.instructions,
    }
}

fn spec(w: &Compiled, seed: Option<u64>) -> JobSpec {
    JobSpec {
        program: w.prog.clone(),
        args: w.args.clone(),
        cfg: w.cfg.clone(),
        inject: seed.map(|seed| InjectConfig {
            seed,
            rate: w.rate,
            modes: InjectModes::all(),
        }),
        recovery: seed.is_some_and(|s| s % 2 == 0),
        mode: JobMode::Direct,
        timeout_ms: None,
        snapshot: None,
        journal: false,
    }
}

/// The digest direct execution of `spec` would produce — the bit-identity
/// reference for everything the service reports.
fn direct_digest(s: &JobSpec) -> u64 {
    let report = run_risc_deadline(
        &s.program,
        &s.args,
        s.cfg.clone(),
        s.inject,
        s.recovery,
        None,
        None,
    )
    .expect("direct rerun")
    .finished()
    .expect("no deadline was set");
    JobOutput::Finished(report).digest()
}

fn done(service: &ExecService, id: u64) -> JobOutput {
    match service.wait(id, Duration::from_secs(120)) {
        Some(PollState::Done(out)) => out,
        other => panic!("job {id} did not finish: {other:?}"),
    }
}

/// A per-test scratch WAL directory, removed on drop.
struct WalDir(PathBuf);

impl WalDir {
    fn new(tag: &str) -> WalDir {
        let dir = std::env::temp_dir().join(format!("risc1_wal_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        WalDir(dir)
    }

    fn path_string(&self) -> String {
        self.0.to_string_lossy().into_owned()
    }
}

impl Drop for WalDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn durable_config(dir: &WalDir, recover: bool) -> ServiceConfig {
    ServiceConfig {
        threads: 2,
        wal_dir: Some(dir.path_string()),
        recover,
        ..ServiceConfig::default()
    }
}

/// Completed results are re-seeded byte-identically from the WAL and an
/// admitted-but-unfinished job is re-executed under its original id —
/// the full recovery state machine, in process.
#[test]
fn recovery_reseeds_completions_and_reruns_incomplete_admissions() {
    let w = compiled("acker");
    let dir = WalDir::new("recover");
    let specs = vec![spec(&w, None), spec(&w, Some(3)), spec(&w, Some(4))];
    let expected: Vec<u64> = specs.iter().map(direct_digest).collect();

    // Life before the crash: admit and finish the campaign.
    let first = ExecService::start(durable_config(&dir, false));
    let tickets = first.submit("durable", 1, specs.clone()).expect("submit");
    let ids: Vec<u64> = tickets.iter().map(|t| t.id).collect();
    for (&id, &want) in ids.iter().zip(&expected) {
        assert_eq!(done(&first, id).digest(), want, "pre-crash digest");
    }
    first.shutdown();
    drop(first);

    // The "crash": an admission the dead service never completed. Appending
    // it with the public writer reproduces exactly what a kill between the
    // admit record and the done record leaves behind.
    let orphan = spec(&w, Some(9));
    let orphan_digest = direct_digest(&orphan);
    let orphan_id = ids.iter().max().unwrap() + 1;
    let mut wal = WalWriter::open(&dir.0).expect("open wal");
    wal.append_admit(orphan_id, "durable", 1, &orphan)
        .expect("append admit");
    drop(wal);

    // Restart with --recover semantics: same ids, same digests.
    let second = ExecService::start(durable_config(&dir, true));
    for (&id, &want) in ids.iter().zip(&expected) {
        let out = done(&second, id);
        assert_eq!(out.digest(), want, "post-restart digest for job {id}");
        assert!(
            matches!(out, JobOutput::Recovered { .. }),
            "completed jobs re-seed from the log, not re-run"
        );
    }
    let out = done(&second, orphan_id);
    assert_eq!(out.digest(), orphan_digest, "re-executed orphan digest");
    assert!(
        matches!(out, JobOutput::Finished(_)),
        "incomplete admissions re-execute live"
    );

    let counters = second.status().counters;
    assert_eq!(counters.wal_reseeded, expected.len() as u64);
    assert_eq!(counters.wal_replayed, 1, "one incomplete admission re-ran");
    second.shutdown();
}

/// A torn tail — the half-written line a `kill -9` leaves mid-append — is
/// skipped; every record before it still replays.
#[test]
fn torn_wal_tail_is_skipped_not_fatal() {
    let w = compiled("fib");
    let dir = WalDir::new("torn");
    let s = spec(&w, Some(2));
    let want = direct_digest(&s);

    let first = ExecService::start(durable_config(&dir, false));
    let id = first.submit("durable", 1, vec![s]).expect("submit")[0].id;
    assert_eq!(done(&first, id).digest(), want);
    first.shutdown();
    drop(first);

    // Tear the tail: a prefix of an admit record with no trailing newline.
    let log = dir.0.join("serve.wal");
    let mut bytes = std::fs::read(&log).expect("read wal");
    bytes.extend_from_slice(b"{\"wal\":\"admit\",\"id\":77,\"client\":\"du");
    std::fs::write(&log, bytes).expect("tear wal");

    let second = ExecService::start(durable_config(&dir, true));
    let out = done(&second, id);
    assert_eq!(out.digest(), want, "records before the tear replay");
    assert_eq!(second.status().counters.wal_reseeded, 1);
    second.shutdown();
}

/// Warm starts: a resumed run is bit-identical to the cold run while the
/// host executes only the suffix, and the dedup key distinguishes
/// snapshot content — a tampered body that keeps the original's stored
/// checksum must miss the cache and die at restore-time verification.
#[test]
fn warm_start_is_bit_identical_and_tampering_is_rejected() {
    let w = compiled("acker");
    let cold = run_risc_deadline(&w.prog, &w.args, w.cfg.clone(), None, false, None, None)
        .expect("cold run")
        .finished()
        .expect("no deadline was set");

    let snap = snapshot_risc_prefix(
        &w.prog,
        &w.args,
        w.cfg.clone(),
        false,
        (w.instructions / 2).max(1),
    )
    .expect("prefix snapshot");
    assert!(snap.at_instruction() > 0, "prefix actually executed");

    // The resumed suffix reproduces the cold run bit for bit, and the host
    // only stepped the remainder.
    match run_risc_resumed(&snap, None).expect("resume") {
        TimedOutcome::Finished(report) => assert_eq!(report, cold, "warm != cold"),
        TimedOutcome::TimedOut { .. } => panic!("no deadline was set"),
    }
    assert!(
        snap.at_instruction() <= cold.stats.instructions,
        "snapshot prefix is a prefix of the cold run"
    );

    // Through the service: same digest as the cold job.
    let mut warm = spec(&w, None);
    warm.snapshot = Some(Box::new(snap.clone()));
    let cold_digest = JobOutput::Finished(cold).digest();

    // Tampering a field while keeping the stored checksum must change the
    // dedup key (the key folds content, not the self-declared identity)…
    let tampered_json = snap
        .to_json()
        .replace("\"halted\":false", "\"halted\":true");
    assert_ne!(tampered_json, snap.to_json(), "tamper changed the body");
    let tampered = Snapshot::from_json(&tampered_json).expect("tampered body still parses");
    let mut tampered_spec = warm.clone();
    tampered_spec.snapshot = Some(Box::new(tampered));
    assert_ne!(
        warm.key(),
        tampered_spec.key(),
        "tampered snapshot must not share the original's dedup key"
    );

    // …and the service must reject it at restore time, counted.
    let service = ExecService::start(ServiceConfig {
        threads: 2,
        ..ServiceConfig::default()
    });
    let id = service.submit("warm", 1, vec![warm]).expect("submit")[0].id;
    assert_eq!(done(&service, id).digest(), cold_digest, "warm digest");

    let tid = service
        .submit("warm", 1, vec![tampered_spec])
        .expect("submit")[0]
        .id;
    assert_ne!(tid, id, "tampered job was not dedup-served");
    match done(&service, tid) {
        JobOutput::SnapshotRejected { message } => {
            assert!(message.contains("checksum"), "structured cause: {message}")
        }
        other => panic!("tampered snapshot produced {other:?}"),
    }
    assert_eq!(service.status().counters.snapshots_rejected, 1);
    service.shutdown();
}

/// A snapshot whose embedded config disagrees with itself (mutated fuel,
/// checksum updated to match nothing) is a structured rejection, and a
/// declared-oversized snapshot never allocates.
#[test]
fn snapshot_rejection_variants_are_structured() {
    let w = compiled("fib");
    let snap =
        snapshot_risc_prefix(&w.prog, &w.args, w.cfg.clone(), false, 100).expect("prefix snapshot");
    let json = snap.to_json();

    // Version skew parses (versions are data) but cannot restore.
    let skewed = json.replace("\"version\":1", "\"version\":999");
    // Rejecting at parse time would be equally structured; if the body is
    // admitted, it must die at restore.
    if let Ok(s) = Snapshot::from_json(&skewed) {
        assert!(run_risc_resumed(&s, None).is_err(), "version skew resumed");
    }

    // A body that declares an absurd memory size fails admission at parse
    // time — limits bound allocation before any bytes are trusted.
    let huge = json.replace(
        &format!("\"mem_bytes\":{}", w.cfg.mem_bytes),
        "\"mem_bytes\":68719476736",
    );
    assert!(
        Snapshot::from_json(&huge).is_err(),
        "oversized declaration must fail admission"
    );
}

/// Journals retained for `journal:true` jobs replay bit for bit via the
/// public service API — the in-process half of streamed replay.
#[test]
fn retained_journal_replays_bit_for_bit() {
    let w = compiled("fib");
    let mut s = spec(&w, Some(5));
    s.journal = true;
    let service = ExecService::start(ServiceConfig {
        threads: 2,
        ..ServiceConfig::default()
    });
    let id = service.submit("journal", 1, vec![s]).expect("submit")[0].id;
    let out = done(&service, id);

    let text = service.journal(id).expect("journal retained");
    let journal = risc1::core::Journal::from_json(&text).expect("journal parses");
    let replayed = risc1::ir::replay_journal(&journal).expect("journal replays");
    assert_eq!(
        Some(risc1::ir::recorded_outcome(&replayed)),
        journal.outcome,
        "replay reproduces the recorded outcome"
    );
    assert_eq!(
        JobOutput::Finished(replayed).digest(),
        out.digest(),
        "replayed digest matches the served digest"
    );
    service.shutdown();
}
