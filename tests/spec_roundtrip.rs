//! The codec/assembler round-trip law, quantified over the spec table.
//!
//! For every row of the executable ISA spec ([`risc1::isa::spec::ENTRIES`])
//! and every canonical sample that row generates, three representations of
//! the instruction must agree bit for bit:
//!
//!   encode(sample) == assemble(display(sample)) == assemble(disassemble(word))
//!
//! `risc1 lint --spec-audit` performs the first two checks as part of its
//! CI sweep; this suite states them as a standalone law — including the
//! disassembler leg the audit doesn't cover — so a codec or printer
//! regression is pinpointed by the failing sample, not by a downstream
//! divergence report.

use risc1::asm::{assemble, disassemble_words};
use risc1::isa::spec;
use risc1::isa::Instruction;

/// Strips the `0x00000000:  ` address column the disassembler prefixes to
/// every line, leaving reassemblable source.
fn strip_addresses(listing: &str) -> String {
    listing
        .lines()
        .map(|l| {
            let text = l.split(":  ").nth(1).expect("address column present");
            format!("{text}\n")
        })
        .collect()
}

/// encode → decode is the identity on every canonical sample.
#[test]
fn every_spec_sample_survives_encode_decode() {
    for entry in &spec::ENTRIES {
        for insn in entry.canonical_samples() {
            let word = insn.encode();
            let back = Instruction::decode(word)
                .unwrap_or_else(|e| panic!("`{insn}` ({word:#010x}) fails to decode: {e}"));
            assert_eq!(back, insn, "decode(encode(`{insn}`)) is not the identity");
        }
    }
}

/// The printed form of every canonical sample reassembles to the same word.
#[test]
fn every_spec_sample_survives_display_assemble() {
    for entry in &spec::ENTRIES {
        for insn in entry.canonical_samples() {
            let word = insn.encode();
            let prog = assemble(&insn.to_string())
                .unwrap_or_else(|e| panic!("printed form `{insn}` does not assemble: {e}"));
            assert_eq!(
                prog.words,
                vec![word],
                "`{insn}` reassembles to different words"
            );
        }
    }
}

/// Disassembling every canonical sample and reassembling the listing
/// reproduces the original image — the leg the spec audit does not walk.
#[test]
fn every_spec_sample_survives_disassemble_reassemble() {
    let words: Vec<u32> = spec::ENTRIES
        .iter()
        .flat_map(|e| e.canonical_samples())
        .map(|insn| insn.encode())
        .collect();
    assert!(!words.is_empty(), "the spec table generates samples");
    let listing = disassemble_words(&words, 0);
    let prog = assemble(&strip_addresses(&listing))
        .unwrap_or_else(|e| panic!("disassembly does not reassemble: {e}\n{listing}"));
    assert_eq!(
        prog.words, words,
        "round trip changed the image:\n{listing}"
    );
}
