//! Quickstart: assemble a RISC I program, run it, inspect the machine.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use risc1::asm::assemble;
use risc1::core::{Cpu, SimConfig};

fn main() {
    // Triangular numbers, with the loop decrement scheduled into the
    // branch delay slot — idiomatic RISC I assembly.
    let src = "
            add   r16, r0, #0        ; acc := 0
            add   r17, r26, #0       ; i := n (first argument, in r26)
    loop:   sub   r0, r17, #0 {scc}  ; set flags from i
            jmpr  eq, done
            nop
            add   r16, r16, r17      ; acc += i
            jmpr  alw, loop
            sub   r17, r17, #1       ; delay slot: i -= 1
    done:   add   r26, r16, #0       ; return value convention: r26
            halt
            nop
    ";
    let prog = assemble(src).expect("assembles");
    println!(
        "assembled {} instructions ({} bytes)\n",
        prog.len(),
        prog.code_bytes()
    );

    let mut cpu = Cpu::new(SimConfig::default());
    cpu.load_program(&prog).expect("loads");
    cpu.set_args(&[100]);
    cpu.run().expect("halts");

    println!("triangular(100) = {}", cpu.result());
    println!("\n{}", cpu.stats());
    let stats = cpu.stats();
    println!(
        "\ndelay slots filled: {:.0}%  (the delay-slot `sub` runs on every iteration)",
        stats.delay_slot_fill_rate().unwrap_or(0.0) * 100.0
    );
}
