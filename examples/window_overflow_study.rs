//! The register-window design study: how the window count changes the
//! overflow behaviour of a recursive workload — the experiment behind the
//! paper's choice of 8 windows.
//!
//! ```text
//! cargo run --example window_overflow_study
//! ```

use risc1::core::SimConfig;
use risc1::ir::RiscOpts;
use risc1::stats::measure_risc;
use risc1::workloads::by_id;

fn main() {
    let qsort = by_id("qsort").expect("suite workload");
    let hanoi = by_id("hanoi").expect("suite workload");
    println!("window-overflow behaviour (traps per 100 calls / % of cycles in traps)\n");
    println!(
        "{:>8}  {:>22}  {:>22}",
        "windows", "qsort(120)", "hanoi(10)"
    );
    for w in [2, 4, 6, 8, 12, 16] {
        let cfg = SimConfig::with_windows(w);
        let q = measure_risc(&qsort, &[120], cfg.clone(), RiscOpts::default());
        let h = measure_risc(&hanoi, &[10], cfg, RiscOpts::default());
        let cell = |s: &risc1::core::ExecStats| {
            format!(
                "{:>6.1} / {:>5.1}%",
                s.overflow_rate() * 100.0,
                s.trap_cycles as f64 / s.cycles as f64 * 100.0
            )
        };
        println!("{w:>8}  {:>22}  {:>22}", cell(&q), cell(&h));
    }
    println!("\nquicksort settles quickly (shallow expected depth); hanoi's depth-10");
    println!("recursion needs the full file. The paper picked 8 windows from the");
    println!("same kind of depth-locality data.");
}
