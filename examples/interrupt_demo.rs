//! Interrupts on RISC I: the handler runs in its own register window, so
//! entry saves nothing and the interrupted computation's registers survive
//! untouched — the paper's third selling point for windows.
//!
//! ```text
//! cargo run --example interrupt_demo
//! ```

use risc1::asm::assemble;
use risc1::core::{Cpu, Halt, SimConfig};

fn main() {
    let prog = assemble(
        "
        .entry main
        handler:                    ; own window: r16/r17 here are NOT
            ldhi  r16, #1           ; main's r16/r17
            ldl   r17, r16, #0
            add   r17, r17, #1      ; ticks++
            stl   r17, r16, #0
            reti  r25, #0           ; resume the interrupted instruction
            nop
        main:
            add   r16, r0, #0       ; counter
            li    r18, #50000
        spin:
            add   r16, r16, #1
            sub   r0, r16, r18 {scc}
            jmpr  ne, spin
            nop
            add   r26, r16, #0
            halt
            nop
        ",
    )
    .expect("assembles");

    let mut cpu = Cpu::new(SimConfig::default());
    cpu.load_program(&prog).unwrap();
    let handler = cpu.config().code_base + prog.symbols["handler"];
    cpu.set_interrupt_handler(handler);

    // A timer: raise an interrupt every 10 000 executed instructions.
    let mut next_tick = 10_000;
    loop {
        if cpu.step().expect("no faults") == Halt::Returned {
            break;
        }
        if cpu.stats().instructions >= next_tick {
            cpu.raise_interrupt();
            next_tick += 10_000;
        }
    }

    let ticks = cpu.mem.peek_u32(0x2000).unwrap();
    println!("main loop result : {}", cpu.result());
    println!("timer ticks seen : {ticks}");
    println!("window overflows : {}", cpu.stats().window_overflows);
    println!();
    println!("the loop counted to 50000 with {ticks} interruptions and zero");
    println!("register save/restore traffic — each handler ran in a fresh window.");
}
