//! Visualise the overlapped pipeline: delay slots, memory cycles and (with
//! forwarding disabled) interlock bubbles.
//!
//! ```text
//! cargo run --example pipeline_diagram
//! ```

use risc1::core::{pipeline, Cpu, Program, SimConfig};
use risc1::isa::{Cond, Instruction, Opcode, Reg, Short2};

fn main() {
    let imm = |v: i32| Short2::imm(v).unwrap();
    let prog = Program::from_instructions(vec![
        Instruction::ldhi(Reg::R16, 1),
        Instruction::reg(Opcode::Ldl, Reg::R17, Reg::R16, Short2::ZERO),
        Instruction::reg(Opcode::Add, Reg::R18, Reg::R17, imm(1)),
        Instruction::reg_scc(Opcode::Sub, Reg::R0, Reg::R18, imm(1)),
        Instruction::jmpr(Cond::Eq, 12),
        Instruction::reg(Opcode::Add, Reg::R19, Reg::R0, imm(7)), // delay slot
        Instruction::reg(Opcode::Add, Reg::R20, Reg::R0, imm(99)), // skipped
        Instruction::ret(Reg::R0, Short2::ZERO),
        Instruction::nop(),
    ]);

    for forwarding in [true, false] {
        let cfg = SimConfig {
            record_trace: true,
            forwarding,
            ..SimConfig::default()
        };
        let mut cpu = Cpu::new(cfg);
        cpu.load_program(&prog).unwrap();
        cpu.run().unwrap();
        let s = pipeline::summarize(cpu.trace());
        println!(
            "forwarding {}:  ipc {:.2}, bubbles {}\n",
            if forwarding { "on (RISC I)" } else { "off" },
            s.ipc,
            s.bubble_cycles
        );
        println!("{}", pipeline::render_timing(cpu.trace(), 16));
    }
    println!("F = fetch, E = execute, M = memory cycle, b = interlock bubble");
}
