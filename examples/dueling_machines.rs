//! One program, two 1981 machines: compile the same IR source for RISC I
//! and for the VAX-class CX machine, and watch the paper's comparison
//! happen.
//!
//! ```text
//! cargo run --example dueling_machines
//! ```

use risc1::ir::ast::dsl::*;
use risc1::ir::{compile_cx, compile_risc, run_cx, run_risc, RiscOpts};

fn main() {
    // fn fib(n) { if n < 2 return n; a = fib(n-1); b = fib(n-2); return a+b }
    let fib = function(
        "fib",
        1,
        3,
        vec![
            if_then(lt(local(0), konst(2)), vec![ret(local(0))]),
            assign(1, call(1, vec![sub(local(0), konst(1))])),
            assign(2, call(1, vec![sub(local(0), konst(2))])),
            ret(add(local(1), local(2))),
        ],
    );
    let main_fn = function(
        "main",
        1,
        2,
        vec![assign(1, call(1, vec![local(0)])), ret(local(1))],
    );
    let m = module(vec![main_fn, fib], vec![]);

    let risc = compile_risc(&m, RiscOpts::default()).expect("risc compiles");
    let cx = compile_cx(&m).expect("cx compiles");
    println!(
        "static code: RISC I {} bytes, CX {} bytes ({:.2}x)\n",
        risc.code_bytes(),
        cx.code_bytes(),
        risc.code_bytes() as f64 / cx.code_bytes() as f64
    );

    for n in [10, 15, 20] {
        let (rv, rs) = run_risc(&risc, &[n]).expect("risc runs");
        let (cv, cs) = run_cx(&cx, &[n]).expect("cx runs");
        assert_eq!(rv, cv, "machines must agree");
        println!(
            "fib({n:2}) = {rv:5}   RISC I {:>9} cycles   CX {:>9} cycles   RISC I wins {:.2}x",
            rs.cycles,
            cs.cycles,
            cs.cycles as f64 / rs.cycles as f64
        );
    }
    println!("\n(the margin is the cost of CX's CALLS/RET frames vs register windows)");
}
