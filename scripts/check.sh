#!/usr/bin/env bash
# Pre-merge gate: formatting, lints, and the tier-1 build+test cycle.
# Everything runs offline; a clean exit here is the bar every PR must meet.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -q -- -D warnings

echo "==> cargo build --release --workspace"
cargo build --release -q --workspace

echo "==> cargo test --workspace"
cargo test -q --workspace

echo "==> cargo test --test fault_injection (robustness sweep)"
cargo test -q --test fault_injection

echo "==> cargo test --test checkpoint_replay (replay determinism gate)"
cargo test -q --test checkpoint_replay

echo "==> cargo test --test interp_equivalence (four-engine equivalence law)"
cargo test -q --test interp_equivalence

echo "==> risc1 lint --spec-audit (ISA spec table vs metadata/codec/assembler/icache)"
cargo run -q --release -p risc1-cli --bin risc1 -- lint --spec-audit

echo "==> cargo test --test spec_differential (spec-vs-four-engines differential"
echo "    fuzz, fixed-seed quick profile: 200 generated + 48 injected cases)"
cargo test -q --release --test spec_differential

echo "==> cargo test --test serve_chaos (service transparency law under load)"
cargo test -q --test serve_chaos

echo "==> cargo test --test serve_durable (WAL recovery, warm-start snapshots,"
echo "    retained replay journals)"
cargo test -q --test serve_durable

echo "==> cargo test --test serve_wire_fuzz (500+ malformed frames, zero panics)"
cargo test -q --test serve_wire_fuzz

echo "==> cargo test --test deadline_edges (watchdog edge cases and tie-breaks)"
cargo test -q --test deadline_edges

echo "==> risc1 serve --smoke (TCP round trip: mixed campaign digests vs direct"
echo "    runs, dedup, streamed journal replay, warm start, tampered-snapshot"
echo "    rejection, and the kill -9 / --recover restart bit-identity gate;"
echo "    a failed recovery leaves its WAL under target/wal-artifacts/)"
cargo run -q --release -p risc1-cli --bin risc1 -- serve --smoke

echo "==> cargo test --test shard_equivalence (checkpoint-parallel transparency:"
echo "    11 workloads x 2 engines x 2 shard sizes x 2 thread counts, injected"
echo "    schedule replay, and the cross-engine snapshot-resume property)"
cargo test -q --release --test shard_equivalence

echo "==> risc1 run --shard-cycles (CLI sharded gate: worker count pinned via"
echo "    RISC1_THREADS=1 and 8, coarse and fine cuts — each run stitch-proven)"
cat > target/shard_gate.s <<'EOF'
        add   r16, r0, #0
        add   r17, r26, #0
loop:   sub   r0, r17, #0 {scc}
        jmpr  eq, done
        nop
        add   r16, r16, r17
        jmpr  alw, loop
        sub   r17, r17, #1
done:   add   r26, r16, #0
        ret   r25, #8
        nop
EOF
for t in 1 8; do
  for sc in 300 2000; do
    RISC1_THREADS=$t cargo run -q --release -p risc1-cli --bin risc1 -- \
      run target/shard_gate.s 2000 --shard-cycles "$sc" \
      | grep -q "result: 2001000" \
      || { echo "sharded CLI gate failed (RISC1_THREADS=$t, shard-cycles=$sc)"; exit 1; }
  done
done

echo "==> risc1 bench --quick (perf gate: each tier must beat the one below,"
echo "    sharded speedup must beat 1.0 when the host has >=2 workers, and"
echo "    geomeans must stay within 10% of the checked-in baseline)"
cargo run -q --release -p risc1-cli --bin risc1 -- bench --quick \
  --out target/BENCH_interp.json --baseline BENCH_interp.json

echo "All checks passed."
