//! # `risc1-bench` — Criterion benchmarks, one group per evaluation artifact
//!
//! | bench target | experiments covered |
//! |--------------|---------------------|
//! | `static_tables` | E1 (Table I), E2 (Table II), E3 (formats), E4 (window figure), E10 (area model) |
//! | `call_cost` | E5 (procedure-call cost) |
//! | `exec_time` | E6 (execution-time table): per-workload RISC I and CX runs |
//! | `code_size` | E7 (code size): both compilers over the suite |
//! | `window_sweep` | E8 (overflow vs window count) |
//! | `delay_slots` | E9 (slot filling and the suspended model) |
//! | `mix_and_pipeline` | E11 (pipeline trace), E12 (instruction mix) |
//! | `simulator_throughput` | not a paper artifact: host-side simulator speed |
//!
//! Run them all with `cargo bench`, or one group with
//! `cargo bench --bench exec_time`.

/// Workload ids used by the timing groups (the full suite).
pub fn suite_ids() -> Vec<&'static str> {
    risc1_workloads::all().iter().map(|w| w.id).collect()
}
