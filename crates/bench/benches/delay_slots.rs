//! E9 — delay slots: filled vs NOP builds and the suspended-pipeline
//! model, timed on a loop-heavy workload.

use criterion::{criterion_group, criterion_main, Criterion};
use risc1_core::{BranchModel, SimConfig};
use risc1_ir::{compile_risc, run_risc_with, RiscOpts};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let w = risc1_workloads::by_id("sieve").unwrap();
    let plain = compile_risc(
        &w.module,
        RiscOpts {
            fill_delay_slots: false,
        },
    )
    .unwrap();
    let filled = compile_risc(&w.module, RiscOpts::default()).unwrap();
    let args = w.small_args.clone();
    let mut g = c.benchmark_group("e9_delay_slots");
    g.sample_size(10);
    g.bench_function("sieve_nop_slots", |b| {
        b.iter(|| black_box(run_risc_with(&plain, &args, SimConfig::default()).unwrap()))
    });
    g.bench_function("sieve_filled_slots", |b| {
        b.iter(|| black_box(run_risc_with(&filled, &args, SimConfig::default()).unwrap()))
    });
    g.bench_function("sieve_suspended_model", |b| {
        let cfg = SimConfig {
            branch_model: BranchModel::Suspended,
            ..SimConfig::default()
        };
        b.iter(|| black_box(run_risc_with(&filled, &args, cfg.clone()).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
