//! E8 — the window sweep: one benchmark per window count on the
//! call-heaviest workload (Ackermann), so the cost of overflow trapping is
//! visible in host time as well as simulated cycles.

use criterion::{criterion_group, criterion_main, Criterion};
use risc1_core::SimConfig;
use risc1_ir::{compile_risc, run_risc_with, RiscOpts};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let w = risc1_workloads::by_id("acker").unwrap();
    let prog = compile_risc(&w.module, RiscOpts::default()).unwrap();
    let mut g = c.benchmark_group("e8_window_sweep");
    g.sample_size(10);
    for windows in [2usize, 4, 8, 16] {
        let cfg = SimConfig {
            windows,
            stack_top: 0x40000,
            ..SimConfig::default()
        };
        g.bench_function(format!("acker_w{windows}"), |b| {
            b.iter(|| black_box(run_risc_with(&prog, &[3], cfg.clone()).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
