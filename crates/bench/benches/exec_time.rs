//! E6 — the execution-time table: one benchmark per (machine, workload)
//! pair over the whole suite (small arguments; the Criterion numbers are
//! host time, the simulated-cycle table comes from the experiment binary).

use criterion::{criterion_group, criterion_main, Criterion};
use risc1_core::SimConfig;
use risc1_ir::{compile_cx, compile_risc, run_cx, run_risc_with, RiscOpts};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_exec_time");
    g.sample_size(10);
    for w in risc1_workloads::all() {
        let risc = compile_risc(&w.module, RiscOpts::default()).unwrap();
        let cx = compile_cx(&w.module).unwrap();
        let args = w.small_args.clone();
        g.bench_function(format!("risc/{}", w.id), |b| {
            b.iter(|| {
                black_box(run_risc_with(&risc, black_box(&args), SimConfig::default()).unwrap())
            })
        });
        g.bench_function(format!("cx/{}", w.id), |b| {
            b.iter(|| black_box(run_cx(&cx, black_box(&args)).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
