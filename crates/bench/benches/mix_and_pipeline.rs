//! E11 (pipeline trace) and E12 (instruction mix): times the trace
//! rendering and the mix aggregation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e11_e12");
    g.sample_size(10);
    g.bench_function("e11_pipeline_trace", |b| {
        b.iter(|| black_box(risc1_experiments::e11_pipeline_trace::run()))
    });
    g.bench_function("e12_instruction_mix", |b| {
        b.iter(|| black_box(risc1_experiments::e12_instruction_mix::compute()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
