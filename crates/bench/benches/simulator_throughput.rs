//! Host-side simulator speed (not a paper artifact): simulated
//! instructions per host second for both machines, useful when sizing
//! experiments.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use risc1_core::SimConfig;
use risc1_ir::{compile_cx, compile_risc, run_cx, run_risc_with, RiscOpts};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let w = risc1_workloads::by_id("f_bit_test").unwrap();
    let risc = compile_risc(&w.module, RiscOpts::default()).unwrap();
    let cx = compile_cx(&w.module).unwrap();
    let args = [400];
    let (_, rs) = run_risc_with(&risc, &args, SimConfig::default()).unwrap();
    let (_, cs) = run_cx(&cx, &args).unwrap();

    let mut g = c.benchmark_group("simulator_throughput");
    g.sample_size(20);
    g.throughput(Throughput::Elements(rs.instructions));
    g.bench_function("risc_insns", |b| {
        b.iter(|| black_box(run_risc_with(&risc, &args, SimConfig::default()).unwrap()))
    });
    g.throughput(Throughput::Elements(cs.instructions));
    g.bench_function("cx_insns", |b| {
        b.iter(|| black_box(run_cx(&cx, &args).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
