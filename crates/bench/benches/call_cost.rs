//! E5 — procedure-call cost: times the call-cost measurement itself and
//! the underlying call-loop kernels on each machine configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_call_cost");
    g.sample_size(10);
    g.bench_function("full_measurement", |b| {
        b.iter(|| black_box(risc1_experiments::e5_call_cost::compute()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
