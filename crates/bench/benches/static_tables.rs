//! Benchmarks for the static artifacts: Table I (E1), Table II (E2), the
//! format figure (E3: encode/decode throughput), the window figure (E4)
//! and the area model (E10). These regenerate in microseconds; the bench
//! exists so every table has a harness target and any regression in the
//! generators is visible.

use criterion::{criterion_group, criterion_main, Criterion};
use risc1_isa::Instruction;
use std::hint::black_box;

fn bench_static(c: &mut Criterion) {
    let mut g = c.benchmark_group("static_tables");
    g.bench_function("e1_complexity", |b| {
        b.iter(|| black_box(risc1_experiments::e1_complexity::run()))
    });
    g.bench_function("e2_instruction_set", |b| {
        b.iter(|| black_box(risc1_experiments::e2_instruction_set::run()))
    });
    g.bench_function("e4_windows_figure", |b| {
        b.iter(|| black_box(risc1_experiments::e4_windows_figure::run()))
    });
    g.bench_function("e10_area_model", |b| {
        b.iter(|| black_box(risc1_experiments::e10_area::run()))
    });
    g.finish();
}

fn bench_encode_decode(c: &mut Criterion) {
    // E3's substance: the fixed 32-bit format decodes trivially. Measure
    // decode throughput over the whole expressible word space sample.
    let words: Vec<u32> = risc1_experiments::e3_formats::compute()
        .into_iter()
        .map(|(_, w)| w)
        .cycle()
        .take(4096)
        .collect();
    let mut g = c.benchmark_group("e3_formats");
    g.bench_function("decode_4k_words", |b| {
        b.iter(|| {
            let mut n = 0u32;
            for &w in &words {
                if Instruction::decode(black_box(w)).is_ok() {
                    n += 1;
                }
            }
            black_box(n)
        })
    });
    g.bench_function("encode_4k_insns", |b| {
        let insns: Vec<Instruction> = words
            .iter()
            .map(|w| Instruction::decode(*w).unwrap())
            .collect();
        b.iter(|| {
            let mut acc = 0u32;
            for i in &insns {
                acc ^= black_box(i.encode());
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_static, bench_encode_decode);
criterion_main!(benches);
