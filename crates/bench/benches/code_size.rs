//! E7 — code size: times both compilers over the suite (the byte counts
//! themselves come from the experiment binary).

use criterion::{criterion_group, criterion_main, Criterion};
use risc1_ir::{compile_cx, compile_risc, RiscOpts};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_code_size");
    let suite = risc1_workloads::all();
    g.bench_function("compile_suite_risc", |b| {
        b.iter(|| {
            let total: u64 = suite
                .iter()
                .map(|w| {
                    compile_risc(&w.module, RiscOpts::default())
                        .unwrap()
                        .code_bytes()
                })
                .sum();
            black_box(total)
        })
    });
    g.bench_function("compile_suite_cx", |b| {
        b.iter(|| {
            let total: u64 = suite
                .iter()
                .map(|w| compile_cx(&w.module).unwrap().code_bytes())
                .sum();
            black_box(total)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
