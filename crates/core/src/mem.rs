//! Byte-addressable main memory.
//!
//! Little-endian, with strict alignment (words on 4-byte, halves on 2-byte
//! boundaries — RISC I had no unaligned access) and read/write traffic
//! counters, because several of the paper's tables are really statements
//! about memory traffic.
//!
//! Memory also tracks *dirty pages*: every mutation (stores, image loads,
//! injected bit flips) marks the [`PAGE_BYTES`]-sized page it touched. The
//! dirty-page machinery has two independent consumers:
//!
//! * the checkpoint subsystem ([`crate::snapshot`]) reads and clears the
//!   `dirty` bitmap to keep periodic snapshots incremental — only pages
//!   written since the previous checkpoint are copied and re-checksummed;
//! * the predecoded instruction cache (`crate::icache`) drains its own
//!   channel (`code_dirty*`) so that writes over already-decoded text
//!   invalidate exactly the pages they touched. The channels are fed by the
//!   same `mark_dirty` entry point but cleared independently, so taking a
//!   checkpoint never hides a self-modifying store from the decode cache
//!   (and vice versa).

use std::fmt;

/// Cap on the exact pending-page list of the decode-cache channel. Once a
/// run dirties more distinct pages than this between drains (bulk loads,
/// memset-style stores with predecoding off), the channel degrades to a
/// single flush-everything flag instead of growing without bound. Public so
/// the overflow-degradation equivalence test can size its program to force
/// the flush-all path.
pub const CODE_DIRTY_PENDING_CAP: usize = 1024;

/// Size of one dirty-tracking page in bytes. Small enough that sparse
/// writes stay cheap to checkpoint, large enough that the page bitmap and
/// per-page checksum table stay compact (a 1 MiB memory has 8192 pages).
pub const PAGE_BYTES: usize = 128;

/// A memory access fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// Address (plus access width) falls outside physical memory.
    OutOfRange {
        /// Faulting byte address.
        addr: u32,
        /// Access width in bytes.
        width: u32,
    },
    /// Address is not aligned to the access width.
    Misaligned {
        /// Faulting byte address.
        addr: u32,
        /// Access width in bytes.
        width: u32,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfRange { addr, width } => {
                write!(f, "address {addr:#010x} (width {width}) out of range")
            }
            MemError::Misaligned { addr, width } => {
                write!(f, "address {addr:#010x} misaligned for width {width}")
            }
        }
    }
}

impl std::error::Error for MemError {}

/// Traffic counters, split by direction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemTraffic {
    /// Number of read accesses (any width).
    pub reads: u64,
    /// Number of write accesses (any width).
    pub writes: u64,
}

impl MemTraffic {
    /// Total accesses in either direction.
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }
}

/// One invalidation notice from the decode-cache dirty channel (see
/// [`Memory::drain_code_dirty`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CodeDirty {
    /// Exactly this page was written.
    Page(usize),
    /// Drop everything: wholesale restore or channel overflow.
    All,
}

/// Bit-scan iterator over one dirty-bitmap word: yields `base + bit` for
/// every set bit, ascending.
struct BitScan {
    base: usize,
    bits: u64,
}

impl Iterator for BitScan {
    type Item = usize;
    fn next(&mut self) -> Option<usize> {
        if self.bits == 0 {
            return None;
        }
        let b = self.bits.trailing_zeros() as usize;
        self.bits &= self.bits - 1;
        Some(self.base + b)
    }
}

/// Flat little-endian memory.
#[derive(Debug, Clone)]
pub struct Memory {
    bytes: Vec<u8>,
    traffic: MemTraffic,
    /// Dirty-page bitmap, one bit per [`PAGE_BYTES`] page — the checkpoint
    /// consumer ([`Memory::dirty_pages`] / [`Memory::clear_dirty`]).
    dirty: Vec<u64>,
    /// Decode-cache consumer: bitmap of pages dirtied since the cache last
    /// drained (deduplicates `code_dirty_pages` pushes in O(1)).
    code_dirty: Vec<u64>,
    /// Exact list of newly-dirtied page indices for the decode cache —
    /// bounded by [`CODE_DIRTY_PENDING_CAP`], after which `code_dirty_all`
    /// takes over.
    code_dirty_pages: Vec<u32>,
    /// Flush-everything flag for the decode cache: set by
    /// [`Memory::mark_all_dirty`] (wholesale restores) and by pending-list
    /// overflow.
    code_dirty_all: bool,
    /// Pages the decode cache currently holds lines for (registered via
    /// [`Memory::note_code_page`]). Writes to *unregistered* pages — the
    /// overwhelmingly common case, since data pages outnumber text pages —
    /// never touch the channel at all, so an ordinary store costs one bit
    /// test here instead of a push/drain round-trip with the cache.
    code_pages: Vec<u64>,
}

impl Memory {
    /// Creates a zero-filled memory of `size` bytes.
    pub fn new(size: usize) -> Memory {
        let pages = size.div_ceil(PAGE_BYTES);
        Memory {
            bytes: vec![0; size],
            traffic: MemTraffic::default(),
            dirty: vec![0; pages.div_ceil(64)],
            code_dirty: vec![0; pages.div_ceil(64)],
            code_dirty_pages: Vec::new(),
            code_dirty_all: false,
            code_pages: vec![0; pages.div_ceil(64)],
        }
    }

    /// Memory size in bytes.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    /// Read/write traffic accumulated so far.
    pub fn traffic(&self) -> MemTraffic {
        self.traffic
    }

    /// Resets the traffic counters (e.g. after program load, so experiments
    /// measure only execution traffic).
    pub fn reset_traffic(&mut self) {
        self.traffic = MemTraffic::default();
    }

    /// Overwrites the traffic counters (snapshot restore).
    pub fn set_traffic(&mut self, traffic: MemTraffic) {
        self.traffic = traffic;
    }

    /// Number of dirty-tracking pages ([`PAGE_BYTES`] each; the last page
    /// may be short when the size is not a multiple).
    pub fn page_count(&self) -> usize {
        self.bytes.len().div_ceil(PAGE_BYTES)
    }

    /// The bytes of page `idx`.
    ///
    /// # Panics
    /// Panics if `idx >= page_count()`.
    pub fn page(&self, idx: usize) -> &[u8] {
        let start = idx * PAGE_BYTES;
        let end = (start + PAGE_BYTES).min(self.bytes.len());
        &self.bytes[start..end]
    }

    /// Whether page `idx` has been written since the dirty map was last
    /// cleared.
    pub fn page_is_dirty(&self, idx: usize) -> bool {
        self.dirty
            .get(idx / 64)
            .is_some_and(|w| w & (1 << (idx % 64)) != 0)
    }

    /// Indices of all dirty pages, in ascending order. Allocation-free:
    /// scans the bitmap lazily, so the per-checkpoint cost is proportional
    /// to the bitmap, not to a freshly collected `Vec`.
    pub fn dirty_pages(&self) -> impl Iterator<Item = usize> + '_ {
        let page_count = self.page_count();
        self.dirty.iter().enumerate().flat_map(move |(w, &bits)| {
            BitScan { base: w * 64, bits }.filter(move |&idx| idx < page_count)
        })
    }

    /// Clears the dirty-page map (a checkpoint was just taken). The
    /// decode-cache channel is deliberately untouched: the two consumers
    /// of the dirty tracker are independent.
    pub fn clear_dirty(&mut self) {
        self.dirty.iter_mut().for_each(|w| *w = 0);
    }

    /// Marks every page dirty (conservative reset after a wholesale
    /// restore, when the incremental baseline is no longer valid). Also
    /// arms the decode cache's flush-everything flag, which is what makes
    /// `restore()`/`rollback()`/`revert_to()` invalidate stale predecoded
    /// lines without any snapshot-side bookkeeping.
    pub fn mark_all_dirty(&mut self) {
        self.dirty.iter_mut().for_each(|w| *w = !0);
        self.code_dirty_all = true;
        self.code_dirty_pages.clear();
        self.code_dirty.iter_mut().for_each(|w| *w = 0);
    }

    /// Whether the decode-cache invalidation channel has pending pages —
    /// the O(1) poll the fetch fast path performs before trusting a cached
    /// line.
    #[inline]
    pub(crate) fn code_dirty_pending(&self) -> bool {
        self.code_dirty_all || !self.code_dirty_pages.is_empty()
    }

    /// Drains the decode-cache invalidation channel: calls `f` with
    /// [`CodeDirty::Page`] for every page written since the previous drain,
    /// or with [`CodeDirty::All`] once when the channel overflowed or
    /// [`Memory::mark_all_dirty`] ran. Clears the channel either way.
    pub(crate) fn drain_code_dirty(&mut self, mut f: impl FnMut(CodeDirty)) {
        // The cache drops every page this drain names, so their
        // registration bits drop with them — the cache re-registers on
        // refill.
        if self.code_dirty_all {
            self.code_dirty_all = false;
            self.code_pages.iter_mut().for_each(|w| *w = 0);
            f(CodeDirty::All);
        } else {
            for &idx in &self.code_dirty_pages {
                let idx = idx as usize;
                if let Some(w) = self.code_pages.get_mut(idx / 64) {
                    *w &= !(1 << (idx % 64));
                }
                f(CodeDirty::Page(idx));
            }
        }
        self.code_dirty_pages.clear();
        self.code_dirty.iter_mut().for_each(|w| *w = 0);
    }

    /// Registers page `idx` as holding decoded lines: from now on, any
    /// write to it raises the invalidation channel. The decode cache calls
    /// this when it first fills a line in the page; the registration drops
    /// automatically when a drain names the page.
    #[inline]
    pub(crate) fn note_code_page(&mut self, idx: usize) {
        if let Some(w) = self.code_pages.get_mut(idx / 64) {
            *w |= 1 << (idx % 64);
        }
    }

    /// Copies page `idx` from `src` into this memory — the incremental
    /// checkpoint primitive, applied to a held image. Traffic counters and
    /// dirty bits of either side are untouched.
    ///
    /// # Panics
    /// Panics if the two memories differ in size or `idx` is out of range.
    pub fn sync_page_from(&mut self, src: &Memory, idx: usize) {
        assert_eq!(self.bytes.len(), src.bytes.len(), "image size mismatch");
        let start = idx * PAGE_BYTES;
        let end = (start + PAGE_BYTES).min(self.bytes.len());
        self.bytes[start..end].copy_from_slice(&src.bytes[start..end]);
    }

    #[inline]
    fn mark_dirty(&mut self, addr: u32, width: usize) {
        // Callers validate bounds before mutating; the tracker relies on it.
        debug_assert!(addr as u64 + width.max(1) as u64 <= self.bytes.len() as u64);
        let first = addr as usize / PAGE_BYTES;
        let last = (addr as usize + width.max(1) - 1) / PAGE_BYTES;
        for idx in first..=last {
            if let Some(w) = self.dirty.get_mut(idx / 64) {
                *w |= 1 << (idx % 64);
            }
            self.note_code_dirty(idx);
        }
    }

    /// Feeds the decode-cache channel with one dirtied page index. Writes
    /// to pages the cache holds nothing for are filtered out here; for the
    /// rest, the bitmap deduplicates, so a page written a million times
    /// between drains occupies one pending slot.
    #[inline]
    fn note_code_dirty(&mut self, idx: usize) {
        if self.code_dirty_all {
            return;
        }
        if self
            .code_pages
            .get(idx / 64)
            .is_none_or(|w| w & (1 << (idx % 64)) == 0)
        {
            return;
        }
        let Some(w) = self.code_dirty.get_mut(idx / 64) else {
            return;
        };
        if *w & (1 << (idx % 64)) != 0 {
            return;
        }
        *w |= 1 << (idx % 64);
        if self.code_dirty_pages.len() >= CODE_DIRTY_PENDING_CAP {
            self.code_dirty_all = true;
            self.code_dirty_pages.clear();
        } else {
            self.code_dirty_pages.push(idx as u32);
        }
    }

    #[inline]
    fn check(&self, addr: u32, width: u32) -> Result<usize, MemError> {
        if !addr.is_multiple_of(width) {
            return Err(MemError::Misaligned { addr, width });
        }
        let end = addr as u64 + width as u64;
        if end > self.bytes.len() as u64 {
            return Err(MemError::OutOfRange { addr, width });
        }
        Ok(addr as usize)
    }

    /// Reads a 32-bit word.
    ///
    /// # Errors
    /// [`MemError::Misaligned`] unless `addr` is 4-aligned;
    /// [`MemError::OutOfRange`] past the end of memory.
    #[inline]
    pub fn read_u32(&mut self, addr: u32) -> Result<u32, MemError> {
        let i = self.check(addr, 4)?;
        self.traffic.reads += 1;
        debug_assert!(i + 4 <= self.bytes.len());
        Ok(u32::from_le_bytes(self.bytes[i..i + 4].try_into().unwrap()))
    }

    /// Reads a 16-bit halfword (zero-extended to u16).
    #[inline]
    pub fn read_u16(&mut self, addr: u32) -> Result<u16, MemError> {
        let i = self.check(addr, 2)?;
        self.traffic.reads += 1;
        debug_assert!(i + 2 <= self.bytes.len());
        Ok(u16::from_le_bytes(self.bytes[i..i + 2].try_into().unwrap()))
    }

    /// Reads one byte.
    #[inline]
    pub fn read_u8(&mut self, addr: u32) -> Result<u8, MemError> {
        let i = self.check(addr, 1)?;
        self.traffic.reads += 1;
        debug_assert!(i < self.bytes.len());
        Ok(self.bytes[i])
    }

    /// Writes a 32-bit word.
    #[inline]
    pub fn write_u32(&mut self, addr: u32, v: u32) -> Result<(), MemError> {
        let i = self.check(addr, 4)?;
        self.traffic.writes += 1;
        debug_assert!(i + 4 <= self.bytes.len());
        self.bytes[i..i + 4].copy_from_slice(&v.to_le_bytes());
        self.mark_dirty(addr, 4);
        Ok(())
    }

    /// Writes a 16-bit halfword.
    #[inline]
    pub fn write_u16(&mut self, addr: u32, v: u16) -> Result<(), MemError> {
        let i = self.check(addr, 2)?;
        self.traffic.writes += 1;
        debug_assert!(i + 2 <= self.bytes.len());
        self.bytes[i..i + 2].copy_from_slice(&v.to_le_bytes());
        self.mark_dirty(addr, 2);
        Ok(())
    }

    /// Writes one byte.
    #[inline]
    pub fn write_u8(&mut self, addr: u32, v: u8) -> Result<(), MemError> {
        let i = self.check(addr, 1)?;
        self.traffic.writes += 1;
        debug_assert!(i < self.bytes.len());
        self.bytes[i] = v;
        self.mark_dirty(addr, 1);
        Ok(())
    }

    /// Bulk-loads `data` at `addr` without touching traffic counters
    /// (program/data loading, not simulated accesses).
    pub fn load_image(&mut self, addr: u32, data: &[u8]) -> Result<(), MemError> {
        let end = addr as u64 + data.len() as u64;
        if end > self.bytes.len() as u64 {
            return Err(MemError::OutOfRange {
                addr,
                width: data.len() as u32,
            });
        }
        self.bytes[addr as usize..addr as usize + data.len()].copy_from_slice(data);
        self.mark_dirty(addr, data.len());
        Ok(())
    }

    /// Flips one bit of one byte, bypassing traffic accounting — the fault
    /// injector's corruption primitive.
    ///
    /// # Errors
    /// [`MemError::OutOfRange`] past the end of memory.
    pub fn flip_bit(&mut self, addr: u32, bit: u8) -> Result<(), MemError> {
        let b = self
            .bytes
            .get_mut(addr as usize)
            .ok_or(MemError::OutOfRange { addr, width: 1 })?;
        *b ^= 1 << (bit & 7);
        self.mark_dirty(addr, 1);
        Ok(())
    }

    /// Reads a byte without traffic accounting (instruction-stream fetch
    /// for the byte-coded CISC machine, debugger inspection).
    #[inline]
    pub fn peek_u8(&self, addr: u32) -> Result<u8, MemError> {
        self.bytes
            .get(addr as usize)
            .copied()
            .ok_or(MemError::OutOfRange { addr, width: 1 })
    }

    /// Reads a word without traffic accounting (instruction fetch, and
    /// debugger/test inspection of results).
    #[inline]
    pub fn peek_u32(&self, addr: u32) -> Result<u32, MemError> {
        if !addr.is_multiple_of(4) {
            return Err(MemError::Misaligned { addr, width: 4 });
        }
        let i = addr as usize;
        if i + 4 > self.bytes.len() {
            return Err(MemError::OutOfRange { addr, width: 4 });
        }
        Ok(u32::from_le_bytes(self.bytes[i..i + 4].try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn word_roundtrip_and_endianness() {
        let mut m = Memory::new(64);
        m.write_u32(8, 0x1234_5678).unwrap();
        assert_eq!(m.read_u32(8).unwrap(), 0x1234_5678);
        assert_eq!(m.read_u8(8).unwrap(), 0x78, "little endian");
        assert_eq!(m.read_u8(11).unwrap(), 0x12);
        assert_eq!(m.read_u16(8).unwrap(), 0x5678);
    }

    #[test]
    fn alignment_faults() {
        let mut m = Memory::new(64);
        assert_eq!(
            m.read_u32(2),
            Err(MemError::Misaligned { addr: 2, width: 4 })
        );
        assert_eq!(
            m.write_u16(5, 0),
            Err(MemError::Misaligned { addr: 5, width: 2 })
        );
        assert!(m.read_u8(5).is_ok());
    }

    #[test]
    fn range_faults() {
        let mut m = Memory::new(16);
        assert!(m.read_u32(12).is_ok());
        assert_eq!(
            m.read_u32(16),
            Err(MemError::OutOfRange { addr: 16, width: 4 })
        );
        // End-of-memory straddle.
        assert!(m.write_u32(14, 0).is_err());
        // Overflow-proof arithmetic near u32::MAX.
        assert!(m.read_u8(u32::MAX).is_err());
    }

    #[test]
    fn traffic_counts_accesses_not_bytes() {
        let mut m = Memory::new(64);
        m.write_u32(0, 1).unwrap();
        m.write_u8(4, 2).unwrap();
        let _ = m.read_u16(0).unwrap();
        assert_eq!(
            m.traffic(),
            MemTraffic {
                reads: 1,
                writes: 2
            }
        );
        m.reset_traffic();
        assert_eq!(m.traffic().total(), 0);
    }

    #[test]
    fn load_image_bypasses_traffic() {
        let mut m = Memory::new(64);
        m.load_image(4, &[1, 2, 3, 4]).unwrap();
        assert_eq!(m.peek_u32(4).unwrap(), 0x0403_0201);
        assert_eq!(m.traffic().total(), 0);
        assert!(m.load_image(62, &[0; 4]).is_err());
    }

    /// The collected form of the lazy [`Memory::dirty_pages`] iterator.
    fn dirty(m: &Memory) -> Vec<usize> {
        m.dirty_pages().collect()
    }

    #[test]
    fn writes_mark_exactly_the_touched_pages() {
        let mut m = Memory::new(4 * PAGE_BYTES);
        assert_eq!(m.page_count(), 4);
        assert!(dirty(&m).is_empty(), "fresh memory is clean");
        m.write_u32(0, 1).unwrap();
        m.write_u8(2 * PAGE_BYTES as u32 + 5, 7).unwrap();
        assert_eq!(dirty(&m), vec![0, 2]);
        assert!(m.page_is_dirty(0) && !m.page_is_dirty(1));
        m.clear_dirty();
        assert!(dirty(&m).is_empty());
        // Failed writes mark nothing.
        assert!(m.write_u32(2, 1).is_err());
        assert!(m.write_u32(!3u32, 1).is_err());
        assert!(dirty(&m).is_empty());
    }

    #[test]
    fn image_loads_and_bit_flips_mark_pages() {
        let mut m = Memory::new(4 * PAGE_BYTES);
        // A load that straddles a page boundary marks both pages.
        m.load_image(PAGE_BYTES as u32 - 2, &[1, 2, 3, 4]).unwrap();
        assert_eq!(dirty(&m), vec![0, 1]);
        m.clear_dirty();
        m.flip_bit(3 * PAGE_BYTES as u32, 0).unwrap();
        assert_eq!(dirty(&m), vec![3]);
    }

    /// The collected form of one [`Memory::drain_code_dirty`] call:
    /// `(flushed_everything, exact_pages)`.
    fn drain(m: &mut Memory) -> (bool, Vec<usize>) {
        let mut all = false;
        let mut pages = Vec::new();
        m.drain_code_dirty(|d| match d {
            CodeDirty::Page(idx) => pages.push(idx),
            CodeDirty::All => all = true,
        });
        (all, pages)
    }

    #[test]
    fn code_dirty_channel_is_independent_of_checkpoint_clears() {
        let mut m = Memory::new(4 * PAGE_BYTES);
        for idx in 0..4 {
            m.note_code_page(idx);
        }
        assert!(!m.code_dirty_pending());
        m.write_u32(0, 1).unwrap();
        m.write_u32(2 * PAGE_BYTES as u32, 2).unwrap();
        // A checkpoint clears its own bitmap but must not swallow the
        // decode cache's view of the same writes.
        m.clear_dirty();
        assert!(m.code_dirty_pending());
        assert_eq!(drain(&mut m), (false, vec![0, 2]));
        assert!(!m.code_dirty_pending());
        // Deduplication: many stores to one page pend once (the drain
        // dropped page 1's registration, so re-register first).
        m.note_code_page(1);
        for _ in 0..10 {
            m.write_u32(PAGE_BYTES as u32, 3).unwrap();
        }
        assert_eq!(drain(&mut m), (false, vec![1]));
    }

    #[test]
    fn unregistered_pages_never_raise_the_code_dirty_channel() {
        let mut m = Memory::new(4 * PAGE_BYTES);
        m.note_code_page(1);
        // Data-page writes (nothing decoded there) stay off the channel …
        m.write_u32(0, 1).unwrap();
        m.write_u32(3 * PAGE_BYTES as u32, 2).unwrap();
        assert!(!m.code_dirty_pending());
        // … while the registered page pends, and a drain naming it drops
        // the registration along with the cached lines.
        m.write_u32(PAGE_BYTES as u32, 3).unwrap();
        assert_eq!(drain(&mut m), (false, vec![1]));
        m.write_u32(PAGE_BYTES as u32, 4).unwrap();
        assert!(!m.code_dirty_pending(), "registration dropped at drain");
    }

    #[test]
    fn mark_all_dirty_arms_the_flush_everything_flag() {
        let mut m = Memory::new(4 * PAGE_BYTES);
        for idx in 0..4 {
            m.note_code_page(idx);
        }
        m.write_u32(0, 1).unwrap();
        m.mark_all_dirty();
        assert_eq!(drain(&mut m), (true, vec![]));
        // The flush-everything drain dropped every registration; a
        // re-registered page pends exactly again.
        m.note_code_page(1);
        m.write_u32(PAGE_BYTES as u32, 2).unwrap();
        assert_eq!(drain(&mut m), (false, vec![1]));
    }

    #[test]
    fn code_dirty_overflow_degrades_to_full_flush() {
        let mut m = Memory::new((CODE_DIRTY_PENDING_CAP + 8) * PAGE_BYTES);
        for idx in 0..CODE_DIRTY_PENDING_CAP + 1 {
            m.note_code_page(idx);
            m.write_u32((idx * PAGE_BYTES) as u32, 1).unwrap();
        }
        let (all, pages) = drain(&mut m);
        assert!(all, "past the cap the channel must degrade, not grow");
        assert!(pages.is_empty());
    }

    #[test]
    fn sync_page_from_copies_one_page_verbatim() {
        let mut a = Memory::new(2 * PAGE_BYTES);
        let mut b = Memory::new(2 * PAGE_BYTES);
        a.write_u32(4, 0xdead_beef).unwrap();
        a.write_u32(PAGE_BYTES as u32, 0x1234_5678).unwrap();
        b.sync_page_from(&a, 0);
        assert_eq!(b.peek_u32(4).unwrap(), 0xdead_beef);
        assert_eq!(
            b.peek_u32(PAGE_BYTES as u32).unwrap(),
            0,
            "page 1 untouched"
        );
        b.sync_page_from(&a, 1);
        assert_eq!(b.peek_u32(PAGE_BYTES as u32).unwrap(), 0x1234_5678);
    }

    #[test]
    fn partial_final_page_is_tracked() {
        let mut m = Memory::new(PAGE_BYTES + 8);
        assert_eq!(m.page_count(), 2);
        assert_eq!(m.page(1).len(), 8);
        m.write_u32(PAGE_BYTES as u32 + 4, 9).unwrap();
        assert_eq!(dirty(&m), vec![1]);
        m.mark_all_dirty();
        assert_eq!(dirty(&m), vec![0, 1]);
    }

    proptest! {
        #[test]
        fn bytes_compose_into_words(addr in 0u32..15, v in any::<u32>()) {
            let addr = addr * 4;
            let mut m = Memory::new(64);
            m.write_u32(addr, v).unwrap();
            let composed = (0..4).map(|k| (m.read_u8(addr + k).unwrap() as u32) << (8 * k))
                .fold(0, |acc, b| acc | b);
            prop_assert_eq!(composed, v);
        }

        #[test]
        fn halves_compose_into_words(addr in 0u32..15, v in any::<u32>()) {
            let addr = addr * 4;
            let mut m = Memory::new(64);
            m.write_u32(addr, v).unwrap();
            let lo = m.read_u16(addr).unwrap() as u32;
            let hi = m.read_u16(addr + 2).unwrap() as u32;
            prop_assert_eq!(lo | (hi << 16), v);
        }
    }
}
