//! Byte-addressable main memory.
//!
//! Little-endian, with strict alignment (words on 4-byte, halves on 2-byte
//! boundaries — RISC I had no unaligned access) and read/write traffic
//! counters, because several of the paper's tables are really statements
//! about memory traffic.
//!
//! Memory also tracks *dirty pages*: every mutation (stores, image loads,
//! injected bit flips) marks the [`PAGE_BYTES`]-sized page it touched. The
//! checkpoint subsystem ([`crate::snapshot`]) uses this to keep periodic
//! snapshots incremental — only pages written since the previous checkpoint
//! are copied and re-checksummed.

use std::fmt;

/// Size of one dirty-tracking page in bytes. Small enough that sparse
/// writes stay cheap to checkpoint, large enough that the page bitmap and
/// per-page checksum table stay compact (a 1 MiB memory has 8192 pages).
pub const PAGE_BYTES: usize = 128;

/// A memory access fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// Address (plus access width) falls outside physical memory.
    OutOfRange {
        /// Faulting byte address.
        addr: u32,
        /// Access width in bytes.
        width: u32,
    },
    /// Address is not aligned to the access width.
    Misaligned {
        /// Faulting byte address.
        addr: u32,
        /// Access width in bytes.
        width: u32,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfRange { addr, width } => {
                write!(f, "address {addr:#010x} (width {width}) out of range")
            }
            MemError::Misaligned { addr, width } => {
                write!(f, "address {addr:#010x} misaligned for width {width}")
            }
        }
    }
}

impl std::error::Error for MemError {}

/// Traffic counters, split by direction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemTraffic {
    /// Number of read accesses (any width).
    pub reads: u64,
    /// Number of write accesses (any width).
    pub writes: u64,
}

impl MemTraffic {
    /// Total accesses in either direction.
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }
}

/// Flat little-endian memory.
#[derive(Debug, Clone)]
pub struct Memory {
    bytes: Vec<u8>,
    traffic: MemTraffic,
    /// Dirty-page bitmap, one bit per [`PAGE_BYTES`] page.
    dirty: Vec<u64>,
}

impl Memory {
    /// Creates a zero-filled memory of `size` bytes.
    pub fn new(size: usize) -> Memory {
        let pages = size.div_ceil(PAGE_BYTES);
        Memory {
            bytes: vec![0; size],
            traffic: MemTraffic::default(),
            dirty: vec![0; pages.div_ceil(64)],
        }
    }

    /// Memory size in bytes.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    /// Read/write traffic accumulated so far.
    pub fn traffic(&self) -> MemTraffic {
        self.traffic
    }

    /// Resets the traffic counters (e.g. after program load, so experiments
    /// measure only execution traffic).
    pub fn reset_traffic(&mut self) {
        self.traffic = MemTraffic::default();
    }

    /// Overwrites the traffic counters (snapshot restore).
    pub fn set_traffic(&mut self, traffic: MemTraffic) {
        self.traffic = traffic;
    }

    /// Number of dirty-tracking pages ([`PAGE_BYTES`] each; the last page
    /// may be short when the size is not a multiple).
    pub fn page_count(&self) -> usize {
        self.bytes.len().div_ceil(PAGE_BYTES)
    }

    /// The bytes of page `idx`.
    ///
    /// # Panics
    /// Panics if `idx >= page_count()`.
    pub fn page(&self, idx: usize) -> &[u8] {
        let start = idx * PAGE_BYTES;
        let end = (start + PAGE_BYTES).min(self.bytes.len());
        &self.bytes[start..end]
    }

    /// Whether page `idx` has been written since the dirty map was last
    /// cleared.
    pub fn page_is_dirty(&self, idx: usize) -> bool {
        self.dirty
            .get(idx / 64)
            .is_some_and(|w| w & (1 << (idx % 64)) != 0)
    }

    /// Indices of all dirty pages, in ascending order.
    pub fn dirty_pages(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for (w, &bits) in self.dirty.iter().enumerate() {
            let mut bits = bits;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                let idx = w * 64 + b;
                if idx < self.page_count() {
                    out.push(idx);
                }
                bits &= bits - 1;
            }
        }
        out
    }

    /// Clears the dirty-page map (a checkpoint was just taken).
    pub fn clear_dirty(&mut self) {
        self.dirty.iter_mut().for_each(|w| *w = 0);
    }

    /// Marks every page dirty (conservative reset after a wholesale
    /// restore, when the incremental baseline is no longer valid).
    pub fn mark_all_dirty(&mut self) {
        self.dirty.iter_mut().for_each(|w| *w = !0);
    }

    /// Copies page `idx` from `src` into this memory — the incremental
    /// checkpoint primitive, applied to a held image. Traffic counters and
    /// dirty bits of either side are untouched.
    ///
    /// # Panics
    /// Panics if the two memories differ in size or `idx` is out of range.
    pub fn sync_page_from(&mut self, src: &Memory, idx: usize) {
        assert_eq!(self.bytes.len(), src.bytes.len(), "image size mismatch");
        let start = idx * PAGE_BYTES;
        let end = (start + PAGE_BYTES).min(self.bytes.len());
        self.bytes[start..end].copy_from_slice(&src.bytes[start..end]);
    }

    fn mark_dirty(&mut self, addr: u32, width: usize) {
        let first = addr as usize / PAGE_BYTES;
        let last = (addr as usize + width.max(1) - 1) / PAGE_BYTES;
        for idx in first..=last {
            if let Some(w) = self.dirty.get_mut(idx / 64) {
                *w |= 1 << (idx % 64);
            }
        }
    }

    fn check(&self, addr: u32, width: u32) -> Result<usize, MemError> {
        if !addr.is_multiple_of(width) {
            return Err(MemError::Misaligned { addr, width });
        }
        let end = addr as u64 + width as u64;
        if end > self.bytes.len() as u64 {
            return Err(MemError::OutOfRange { addr, width });
        }
        Ok(addr as usize)
    }

    /// Reads a 32-bit word.
    ///
    /// # Errors
    /// [`MemError::Misaligned`] unless `addr` is 4-aligned;
    /// [`MemError::OutOfRange`] past the end of memory.
    pub fn read_u32(&mut self, addr: u32) -> Result<u32, MemError> {
        let i = self.check(addr, 4)?;
        self.traffic.reads += 1;
        Ok(u32::from_le_bytes(self.bytes[i..i + 4].try_into().unwrap()))
    }

    /// Reads a 16-bit halfword (zero-extended to u16).
    pub fn read_u16(&mut self, addr: u32) -> Result<u16, MemError> {
        let i = self.check(addr, 2)?;
        self.traffic.reads += 1;
        Ok(u16::from_le_bytes(self.bytes[i..i + 2].try_into().unwrap()))
    }

    /// Reads one byte.
    pub fn read_u8(&mut self, addr: u32) -> Result<u8, MemError> {
        let i = self.check(addr, 1)?;
        self.traffic.reads += 1;
        Ok(self.bytes[i])
    }

    /// Writes a 32-bit word.
    pub fn write_u32(&mut self, addr: u32, v: u32) -> Result<(), MemError> {
        let i = self.check(addr, 4)?;
        self.traffic.writes += 1;
        self.bytes[i..i + 4].copy_from_slice(&v.to_le_bytes());
        self.mark_dirty(addr, 4);
        Ok(())
    }

    /// Writes a 16-bit halfword.
    pub fn write_u16(&mut self, addr: u32, v: u16) -> Result<(), MemError> {
        let i = self.check(addr, 2)?;
        self.traffic.writes += 1;
        self.bytes[i..i + 2].copy_from_slice(&v.to_le_bytes());
        self.mark_dirty(addr, 2);
        Ok(())
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u32, v: u8) -> Result<(), MemError> {
        let i = self.check(addr, 1)?;
        self.traffic.writes += 1;
        self.bytes[i] = v;
        self.mark_dirty(addr, 1);
        Ok(())
    }

    /// Bulk-loads `data` at `addr` without touching traffic counters
    /// (program/data loading, not simulated accesses).
    pub fn load_image(&mut self, addr: u32, data: &[u8]) -> Result<(), MemError> {
        let end = addr as u64 + data.len() as u64;
        if end > self.bytes.len() as u64 {
            return Err(MemError::OutOfRange {
                addr,
                width: data.len() as u32,
            });
        }
        self.bytes[addr as usize..addr as usize + data.len()].copy_from_slice(data);
        self.mark_dirty(addr, data.len());
        Ok(())
    }

    /// Flips one bit of one byte, bypassing traffic accounting — the fault
    /// injector's corruption primitive.
    ///
    /// # Errors
    /// [`MemError::OutOfRange`] past the end of memory.
    pub fn flip_bit(&mut self, addr: u32, bit: u8) -> Result<(), MemError> {
        let b = self
            .bytes
            .get_mut(addr as usize)
            .ok_or(MemError::OutOfRange { addr, width: 1 })?;
        *b ^= 1 << (bit & 7);
        self.mark_dirty(addr, 1);
        Ok(())
    }

    /// Reads a byte without traffic accounting (instruction-stream fetch
    /// for the byte-coded CISC machine, debugger inspection).
    pub fn peek_u8(&self, addr: u32) -> Result<u8, MemError> {
        self.bytes
            .get(addr as usize)
            .copied()
            .ok_or(MemError::OutOfRange { addr, width: 1 })
    }

    /// Reads a word without traffic accounting (used by debuggers/tests to
    /// inspect results).
    pub fn peek_u32(&self, addr: u32) -> Result<u32, MemError> {
        if !addr.is_multiple_of(4) {
            return Err(MemError::Misaligned { addr, width: 4 });
        }
        let i = addr as usize;
        if i + 4 > self.bytes.len() {
            return Err(MemError::OutOfRange { addr, width: 4 });
        }
        Ok(u32::from_le_bytes(self.bytes[i..i + 4].try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn word_roundtrip_and_endianness() {
        let mut m = Memory::new(64);
        m.write_u32(8, 0x1234_5678).unwrap();
        assert_eq!(m.read_u32(8).unwrap(), 0x1234_5678);
        assert_eq!(m.read_u8(8).unwrap(), 0x78, "little endian");
        assert_eq!(m.read_u8(11).unwrap(), 0x12);
        assert_eq!(m.read_u16(8).unwrap(), 0x5678);
    }

    #[test]
    fn alignment_faults() {
        let mut m = Memory::new(64);
        assert_eq!(
            m.read_u32(2),
            Err(MemError::Misaligned { addr: 2, width: 4 })
        );
        assert_eq!(
            m.write_u16(5, 0),
            Err(MemError::Misaligned { addr: 5, width: 2 })
        );
        assert!(m.read_u8(5).is_ok());
    }

    #[test]
    fn range_faults() {
        let mut m = Memory::new(16);
        assert!(m.read_u32(12).is_ok());
        assert_eq!(
            m.read_u32(16),
            Err(MemError::OutOfRange { addr: 16, width: 4 })
        );
        // End-of-memory straddle.
        assert!(m.write_u32(14, 0).is_err());
        // Overflow-proof arithmetic near u32::MAX.
        assert!(m.read_u8(u32::MAX).is_err());
    }

    #[test]
    fn traffic_counts_accesses_not_bytes() {
        let mut m = Memory::new(64);
        m.write_u32(0, 1).unwrap();
        m.write_u8(4, 2).unwrap();
        let _ = m.read_u16(0).unwrap();
        assert_eq!(
            m.traffic(),
            MemTraffic {
                reads: 1,
                writes: 2
            }
        );
        m.reset_traffic();
        assert_eq!(m.traffic().total(), 0);
    }

    #[test]
    fn load_image_bypasses_traffic() {
        let mut m = Memory::new(64);
        m.load_image(4, &[1, 2, 3, 4]).unwrap();
        assert_eq!(m.peek_u32(4).unwrap(), 0x0403_0201);
        assert_eq!(m.traffic().total(), 0);
        assert!(m.load_image(62, &[0; 4]).is_err());
    }

    #[test]
    fn writes_mark_exactly_the_touched_pages() {
        let mut m = Memory::new(4 * PAGE_BYTES);
        assert_eq!(m.page_count(), 4);
        assert!(m.dirty_pages().is_empty(), "fresh memory is clean");
        m.write_u32(0, 1).unwrap();
        m.write_u8(2 * PAGE_BYTES as u32 + 5, 7).unwrap();
        assert_eq!(m.dirty_pages(), vec![0, 2]);
        assert!(m.page_is_dirty(0) && !m.page_is_dirty(1));
        m.clear_dirty();
        assert!(m.dirty_pages().is_empty());
        // Failed writes mark nothing.
        assert!(m.write_u32(2, 1).is_err());
        assert!(m.write_u32(!3u32, 1).is_err());
        assert!(m.dirty_pages().is_empty());
    }

    #[test]
    fn image_loads_and_bit_flips_mark_pages() {
        let mut m = Memory::new(4 * PAGE_BYTES);
        // A load that straddles a page boundary marks both pages.
        m.load_image(PAGE_BYTES as u32 - 2, &[1, 2, 3, 4]).unwrap();
        assert_eq!(m.dirty_pages(), vec![0, 1]);
        m.clear_dirty();
        m.flip_bit(3 * PAGE_BYTES as u32, 0).unwrap();
        assert_eq!(m.dirty_pages(), vec![3]);
    }

    #[test]
    fn sync_page_from_copies_one_page_verbatim() {
        let mut a = Memory::new(2 * PAGE_BYTES);
        let mut b = Memory::new(2 * PAGE_BYTES);
        a.write_u32(4, 0xdead_beef).unwrap();
        a.write_u32(PAGE_BYTES as u32, 0x1234_5678).unwrap();
        b.sync_page_from(&a, 0);
        assert_eq!(b.peek_u32(4).unwrap(), 0xdead_beef);
        assert_eq!(
            b.peek_u32(PAGE_BYTES as u32).unwrap(),
            0,
            "page 1 untouched"
        );
        b.sync_page_from(&a, 1);
        assert_eq!(b.peek_u32(PAGE_BYTES as u32).unwrap(), 0x1234_5678);
    }

    #[test]
    fn partial_final_page_is_tracked() {
        let mut m = Memory::new(PAGE_BYTES + 8);
        assert_eq!(m.page_count(), 2);
        assert_eq!(m.page(1).len(), 8);
        m.write_u32(PAGE_BYTES as u32 + 4, 9).unwrap();
        assert_eq!(m.dirty_pages(), vec![1]);
        m.mark_all_dirty();
        assert_eq!(m.dirty_pages(), vec![0, 1]);
    }

    proptest! {
        #[test]
        fn bytes_compose_into_words(addr in 0u32..15, v in any::<u32>()) {
            let addr = addr * 4;
            let mut m = Memory::new(64);
            m.write_u32(addr, v).unwrap();
            let composed = (0..4).map(|k| (m.read_u8(addr + k).unwrap() as u32) << (8 * k))
                .fold(0, |acc, b| acc | b);
            prop_assert_eq!(composed, v);
        }

        #[test]
        fn halves_compose_into_words(addr in 0u32..15, v in any::<u32>()) {
            let addr = addr * 4;
            let mut m = Memory::new(64);
            m.write_u32(addr, v).unwrap();
            let lo = m.read_u16(addr).unwrap() as u32;
            let hi = m.read_u16(addr + 2).unwrap() as u32;
            prop_assert_eq!(lo | (hi << 16), v);
        }
    }
}
