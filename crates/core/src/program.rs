//! Loadable program images.
//!
//! A [`Program`] is the output of the assembler or the IR compiler: encoded
//! instruction words, optional data images, an entry offset, and a symbol
//! table for diagnostics.

use risc1_isa::{Instruction, INSN_BYTES};
use std::collections::HashMap;

/// A RISC I program image ready to be loaded.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Encoded instruction words, in address order from the code base.
    pub words: Vec<u32>,
    /// Byte offset of the entry point within the code.
    pub entry_offset: u32,
    /// Data images: (absolute byte address, bytes).
    pub data: Vec<(u32, Vec<u8>)>,
    /// Symbol table: name → byte offset within the code.
    pub symbols: HashMap<String, u32>,
}

impl Program {
    /// A program consisting of the given instructions, entry at the first.
    pub fn from_instructions(insns: Vec<Instruction>) -> Program {
        Program {
            words: insns.iter().map(Instruction::encode).collect(),
            ..Program::default()
        }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Static code size in bytes (the quantity compared in the paper's
    /// code-size table, E7).
    pub fn code_bytes(&self) -> u64 {
        self.words.len() as u64 * INSN_BYTES as u64
    }

    /// The code as a little-endian byte image.
    pub fn code_image(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.words.len() * 4);
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Adds a data image at an absolute address.
    pub fn add_data(&mut self, addr: u32, bytes: Vec<u8>) {
        self.data.push((addr, bytes));
    }

    /// Decodes the instruction at byte offset `off` (for disassembly and
    /// diagnostics).
    pub fn instruction_at(&self, off: u32) -> Option<Instruction> {
        let idx = (off / INSN_BYTES) as usize;
        self.words
            .get(idx)
            .and_then(|w| Instruction::decode(*w).ok())
    }

    /// The symbol whose offset is closest at or below `off`, if any — used
    /// to label trace output.
    pub fn symbol_for(&self, off: u32) -> Option<(&str, u32)> {
        self.symbols
            .iter()
            .filter(|(_, &s)| s <= off)
            .max_by_key(|(_, &s)| s)
            .map(|(name, &s)| (name.as_str(), off - s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use risc1_isa::{Opcode, Reg, Short2};

    #[test]
    fn from_instructions_roundtrip() {
        let insns = vec![
            Instruction::reg(Opcode::Add, Reg::R1, Reg::R2, Short2::ZERO),
            Instruction::nop(),
        ];
        let p = Program::from_instructions(insns.clone());
        assert_eq!(p.len(), 2);
        assert_eq!(p.code_bytes(), 8);
        assert_eq!(p.instruction_at(0), Some(insns[0]));
        assert_eq!(p.instruction_at(4), Some(insns[1]));
        assert_eq!(p.instruction_at(8), None);
    }

    #[test]
    fn code_image_is_little_endian() {
        let p = Program {
            words: vec![0x0403_0201],
            ..Program::default()
        };
        assert_eq!(p.code_image(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn symbol_lookup_picks_enclosing() {
        let mut p = Program::default();
        p.symbols.insert("f".into(), 0);
        p.symbols.insert("g".into(), 16);
        assert_eq!(p.symbol_for(4), Some(("f", 4)));
        assert_eq!(p.symbol_for(16), Some(("g", 0)));
        assert_eq!(p.symbol_for(100), Some(("g", 84)));
    }
}
