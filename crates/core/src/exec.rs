//! Pure ALU semantics: one function per datapath operation, separated from
//! the CPU so the arithmetic (including the carry/borrow and overflow
//! conventions the condition codes depend on) is unit-testable in isolation.

use risc1_isa::psw::Flags;
use risc1_isa::Opcode;

/// Result of an ALU operation: the 32-bit value and the flags it *would*
/// set (the CPU only latches them when the instruction's `scc` bit is on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AluOut {
    /// The 32-bit result.
    pub value: u32,
    /// Flags as the condition-code logic would compute them.
    pub flags: Flags,
}

#[inline]
fn add_with(a: u32, b: u32, carry_in: bool) -> AluOut {
    let (s1, c1) = a.overflowing_add(b);
    let (value, c2) = s1.overflowing_add(carry_in as u32);
    let carry = c1 || c2;
    // Signed overflow: operands agree in sign, result disagrees.
    let v = ((a ^ value) & (b ^ value)) >> 31 != 0;
    AluOut {
        value,
        flags: Flags {
            z: value == 0,
            n: (value as i32) < 0,
            v,
            c: carry,
        },
    }
}

#[inline]
fn sub_with(a: u32, b: u32, no_borrow_in: bool) -> AluOut {
    // a − b − borrow, computed as a + !b + (1 − borrow); the adder's carry
    // out is then C = "no borrow" (C = 1 ⟺ a ≥ b + borrow unsigned), the
    // convention `risc1_isa::Cond` assumes.
    let out = add_with(a, !b, no_borrow_in);
    // Signed overflow for subtraction: operands differ in sign and the
    // result's sign differs from the minuend's.
    let v = ((a ^ b) & (a ^ out.value)) >> 31 != 0;
    AluOut {
        value: out.value,
        flags: Flags { v, ..out.flags },
    }
}

#[inline]
fn logic(value: u32) -> AluOut {
    AluOut {
        value,
        flags: Flags {
            z: value == 0,
            n: (value as i32) < 0,
            v: false,
            c: false,
        },
    }
}

/// Evaluates an ALU/shift opcode on operands `a` (rs1) and `b` (s2), with
/// the current carry flag for the extended-precision variants.
///
/// # Panics
/// Panics if `op` is not an arithmetic or shift opcode.
#[inline]
pub fn alu(op: Opcode, a: u32, b: u32, carry: bool) -> AluOut {
    match op {
        Opcode::Add => add_with(a, b, false),
        Opcode::Addc => add_with(a, b, carry),
        Opcode::Sub => sub_with(a, b, true),
        Opcode::Subc => sub_with(a, b, carry),
        Opcode::Subr => sub_with(b, a, true),
        Opcode::Subcr => sub_with(b, a, carry),
        Opcode::And => logic(a & b),
        Opcode::Or => logic(a | b),
        Opcode::Xor => logic(a ^ b),
        Opcode::Sll => logic(a << (b & 31)),
        Opcode::Srl => logic(a >> (b & 31)),
        Opcode::Sra => logic(((a as i32) >> (b & 31)) as u32),
        other => panic!("alu() called with non-ALU opcode {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use risc1_isa::Cond;

    #[test]
    fn add_basic_flags() {
        let r = alu(Opcode::Add, 2, 3, false);
        assert_eq!(r.value, 5);
        assert!(!r.flags.z && !r.flags.n && !r.flags.v && !r.flags.c);

        let r = alu(Opcode::Add, u32::MAX, 1, false);
        assert_eq!(r.value, 0);
        assert!(
            r.flags.z && r.flags.c && !r.flags.v,
            "unsigned wrap, not signed overflow"
        );

        let r = alu(Opcode::Add, i32::MAX as u32, 1, false);
        assert!(r.flags.v && r.flags.n, "signed overflow to negative");
    }

    #[test]
    fn sub_carry_is_no_borrow() {
        assert!(alu(Opcode::Sub, 5, 3, false).flags.c, "5-3: no borrow");
        assert!(!alu(Opcode::Sub, 3, 5, false).flags.c, "3-5: borrow");
        assert!(alu(Opcode::Sub, 3, 3, false).flags.c, "3-3: no borrow");
    }

    #[test]
    fn subc_chains_borrow() {
        // 64-bit subtraction (0x1_0000_0000 − 1) in two 32-bit halves.
        let lo = alu(Opcode::Sub, 0, 1, false);
        assert_eq!(lo.value, u32::MAX);
        let hi = alu(Opcode::Subc, 1, 0, lo.flags.c);
        assert_eq!(hi.value, 0, "borrow propagated into the high half");
    }

    #[test]
    fn addc_chains_carry() {
        // 64-bit addition (0xFFFF_FFFF + 1) in two halves.
        let lo = alu(Opcode::Add, u32::MAX, 1, false);
        let hi = alu(Opcode::Addc, 0, 0, lo.flags.c);
        assert_eq!((hi.value, lo.value), (1, 0));
    }

    #[test]
    fn subr_reverses_operands() {
        assert_eq!(alu(Opcode::Subr, 3, 10, false).value, 7);
        assert_eq!(alu(Opcode::Sub, 3, 10, false).value, (-7i32) as u32);
    }

    #[test]
    fn shifts() {
        assert_eq!(alu(Opcode::Sll, 1, 4, false).value, 16);
        assert_eq!(alu(Opcode::Srl, 0x8000_0000, 31, false).value, 1);
        assert_eq!(alu(Opcode::Sra, 0x8000_0000, 31, false).value, u32::MAX);
        // Count is taken mod 32, like the hardware barrel shifter.
        assert_eq!(alu(Opcode::Sll, 1, 32, false).value, 1);
        assert_eq!(alu(Opcode::Sll, 1, 33, false).value, 2);
    }

    #[test]
    fn logic_ops_clear_v_and_c() {
        for op in [Opcode::And, Opcode::Or, Opcode::Xor, Opcode::Sll] {
            let f = alu(op, 0xffff_ffff, 0xffff_ffff, true).flags;
            assert!(!f.v && !f.c, "{op}");
        }
    }

    #[test]
    #[should_panic(expected = "non-ALU")]
    fn rejects_non_alu_opcode() {
        let _ = alu(Opcode::Ldl, 0, 0, false);
    }

    proptest! {
        /// The sub flags must make every signed/unsigned comparison
        /// condition agree with Rust's operators — this is the contract the
        /// compiler's compare-and-branch idiom relies on.
        #[test]
        fn compare_flags_agree_with_rust(a in any::<i32>(), b in any::<i32>()) {
            let f = alu(Opcode::Sub, a as u32, b as u32, false).flags;
            prop_assert_eq!(Cond::Eq.eval(f), a == b);
            prop_assert_eq!(Cond::Lt.eval(f), a < b);
            prop_assert_eq!(Cond::Gt.eval(f), a > b);
            prop_assert_eq!(Cond::Le.eval(f), a <= b);
            prop_assert_eq!(Cond::Ge.eval(f), a >= b);
            prop_assert_eq!(Cond::Lo.eval(f), (a as u32) < (b as u32));
            prop_assert_eq!(Cond::Hi.eval(f), (a as u32) > (b as u32));
        }

        #[test]
        fn add_matches_wrapping_semantics(a in any::<u32>(), b in any::<u32>()) {
            prop_assert_eq!(alu(Opcode::Add, a, b, false).value, a.wrapping_add(b));
            prop_assert_eq!(alu(Opcode::Sub, a, b, false).value, a.wrapping_sub(b));
        }

        #[test]
        fn subr_is_sub_flipped(a in any::<u32>(), b in any::<u32>()) {
            prop_assert_eq!(alu(Opcode::Subr, a, b, false), alu(Opcode::Sub, b, a, false));
        }
    }
}
