//! The overlapped register-window file — the paper's central mechanism.
//!
//! ## Physical organisation
//!
//! The file holds 10 globals plus a circular ring of `16·w` registers for
//! `w` windows (the paper's 138 registers for w = 8). Each window *owns* 16
//! consecutive ring slots: 6 for its LOW (outgoing-parameter) registers and
//! 10 for its LOCALs. A window's HIGH (incoming-parameter) registers are
//! *borrowed* — they are physically the previous window's LOW slots, which
//! is exactly how a `CALL` passes up to six parameters without moving data.
//!
//! ```text
//! window i-1:          [ LOW(6) | LOCAL(10) ]
//! window i:   HIGH ----^         [ LOW(6) | LOCAL(10) ]
//! window i+1:           HIGH ----^          [ LOW(6) | LOCAL(10) ] ...
//! ```
//!
//! ## Overflow and underflow
//!
//! Because the ring is circular, at most `w − 1` windows can be resident
//! simultaneously (with `w` resident, the newest window's LOW slots would
//! alias the oldest window's HIGH). A `CALL` at that limit raises an
//! *overflow*: the oldest window's 16 registers (its HIGH + LOCAL — its LOW
//! stays live as the next window's HIGH) are spilled to a save stack in
//! memory. A `RET` into a spilled window raises an *underflow* and refills
//! them. The simulator's CPU services both traps with a cycle-accounted
//! 16-transfer sequence, which is how the paper costs deep recursion.

use risc1_isa::reg::{HIGH_BASE, LOCAL_BASE, LOW_BASE};
use risc1_isa::Reg;

/// Number of global registers (r0–r9). r0 is hardwired to zero.
pub const GLOBALS: usize = 10;
/// Ring slots owned by each window (6 LOW + 10 LOCAL).
pub const WINDOW_STRIDE: usize = 16;
/// Registers moved per overflow or underflow trap (HIGH + LOCAL).
pub const SPILL_REGS: usize = 16;

/// The register file with overlapped windows.
///
/// ## Storage layout (an interpreter-speed concern, not an architectural
/// one)
///
/// All registers live in one flat `store`: the 10 globals first, then the
/// `16·w` ring slots. Register access is the hottest operation in the
/// whole simulator (two reads and a write on a typical instruction), so
/// the visible-name → store-index translation — a branchy computation
/// involving a modulo by the window count — is not done per access.
/// Instead `maps` precomputes, once at construction, the full 32-entry
/// translation table for *every possible* `cwp`; `read`/`write` are then
/// a two-load table walk, and a `CALL`/`RET` switches tables by moving
/// `cwp` alone. The tables are a pure function of the window geometry
/// (never of register *values*), so none of this is visible state:
/// snapshots and checksums see exactly the globals-then-ring words they
/// always did.
#[derive(Debug, Clone)]
pub struct WindowFile {
    /// Globals (`store[..GLOBALS]`) followed by the ring.
    store: Vec<u32>,
    /// `maps[w][n]` = store index backing visible register `n` when
    /// `cwp == w`. Entry 0 (r0) points at a global slot but is never used:
    /// `read`/`write` special-case r0 first.
    maps: Vec<[u16; 32]>,
    /// Inline copy of `maps[cwp]`, refreshed whenever `cwp` moves, so the
    /// per-access path never chases the `maps` Vec pointer.
    cur: [u16; 32],
    windows: usize,
    cwp: usize,
    /// Number of windows currently resident in the file (1..=windows−1).
    resident: usize,
    /// Current procedure-call depth (0 = the entry frame).
    depth: u64,
    /// Windows currently spilled to the save stack.
    spilled: u64,
    max_depth: u64,
    overflows: u64,
    underflows: u64,
}

impl WindowFile {
    /// Creates a file with `windows` windows, all registers zero, at call
    /// depth 0.
    ///
    /// # Panics
    /// Panics if `windows < 2` (with fewer there is no ring to overlap).
    pub fn new(windows: usize) -> WindowFile {
        assert!(windows >= 2, "need at least 2 register windows");
        let mut f = WindowFile {
            store: vec![0; GLOBALS + WINDOW_STRIDE * windows],
            maps: Vec::new(),
            cur: [0; 32],
            windows,
            cwp: 0,
            resident: 1,
            depth: 0,
            spilled: 0,
            max_depth: 0,
            overflows: 0,
            underflows: 0,
        };
        f.maps = (0..windows)
            .map(|w| {
                let mut map = [0u16; 32];
                for r in Reg::all() {
                    let n = r.number();
                    map[n as usize] = match f.physical_slot(w, r) {
                        None => n as u16,
                        Some(i) => (GLOBALS + i) as u16,
                    };
                }
                map
            })
            .collect();
        f.cur = f.maps[f.cwp];
        f
    }

    /// Number of windows in the file.
    pub fn windows(&self) -> usize {
        self.windows
    }

    /// Current window pointer.
    pub fn cwp(&self) -> u8 {
        self.cwp as u8
    }

    /// Saved window pointer: the oldest resident window.
    pub fn swp(&self) -> u8 {
        self.oldest() as u8
    }

    /// Current call depth (0 = entry frame).
    pub fn depth(&self) -> u64 {
        self.depth
    }

    /// Deepest call depth reached so far.
    pub fn max_depth(&self) -> u64 {
        self.max_depth
    }

    /// Overflow traps taken so far.
    pub fn overflows(&self) -> u64 {
        self.overflows
    }

    /// Underflow traps taken so far.
    pub fn underflows(&self) -> u64 {
        self.underflows
    }

    /// Number of windows currently resident.
    pub fn resident(&self) -> usize {
        self.resident
    }

    fn oldest(&self) -> usize {
        (self.cwp + self.windows - (self.resident - 1)) % self.windows
    }

    /// Feeds the complete state of the file (globals, ring, pointers,
    /// counters) into `sink` in a fixed order — the snapshot-checksum
    /// primitive.
    pub(crate) fn for_each_word(&self, mut sink: impl FnMut(u64)) {
        // `store` is globals-then-ring, so this walks the same words in
        // the same order the split representation did.
        for &w in &self.store {
            sink(u64::from(w));
        }
        sink(self.windows as u64);
        sink(self.cwp as u64);
        sink(self.resident as u64);
        sink(self.depth);
        sink(self.spilled);
        sink(self.max_depth);
        sink(self.overflows);
        sink(self.underflows);
    }

    /// The raw counter half of the file's state, in `for_each_word` order
    /// after the store: `(cwp, resident, depth, spilled, max_depth,
    /// overflows, underflows)`. Snapshot-serialization primitive.
    pub(crate) fn export_counters(&self) -> (u64, u64, u64, u64, u64, u64, u64) {
        (
            self.cwp as u64,
            self.resident as u64,
            self.depth,
            self.spilled,
            self.max_depth,
            self.overflows,
            self.underflows,
        )
    }

    /// The flat store (globals then ring), for snapshot serialization.
    pub(crate) fn export_store(&self) -> &[u32] {
        &self.store
    }

    /// Rebuilds a file from serialized state: a `new(windows)` skeleton
    /// (which recomputes the translation tables) refilled with the stored
    /// words and counters. The inline `cur` map is refreshed from the
    /// restored `cwp`.
    ///
    /// # Errors
    /// A message when `store` does not match the geometry or a counter is
    /// out of range for it.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn import(
        windows: usize,
        store: &[u32],
        cwp: u64,
        resident: u64,
        depth: u64,
        spilled: u64,
        max_depth: u64,
        overflows: u64,
        underflows: u64,
    ) -> Result<WindowFile, String> {
        if windows < 2 {
            return Err(format!("{windows} register windows (need at least 2)"));
        }
        if store.len() != GLOBALS + WINDOW_STRIDE * windows {
            return Err(format!(
                "store holds {} words, geometry needs {}",
                store.len(),
                GLOBALS + WINDOW_STRIDE * windows
            ));
        }
        if cwp >= windows as u64 {
            return Err(format!("cwp {cwp} out of range for {windows} windows"));
        }
        if resident == 0 || resident >= windows as u64 {
            return Err(format!(
                "{resident} resident windows out of range (1..{windows})"
            ));
        }
        let mut f = WindowFile::new(windows);
        f.store.copy_from_slice(store);
        f.cwp = cwp as usize;
        f.cur = f.maps[f.cwp];
        f.resident = resident as usize;
        f.depth = depth;
        f.spilled = spilled;
        f.max_depth = max_depth;
        f.overflows = overflows;
        f.underflows = underflows;
        Ok(f)
    }

    /// Physical ring index of `offset` within the 16 slots owned by
    /// `window`.
    fn slot(&self, window: usize, offset: usize) -> usize {
        debug_assert!(offset < WINDOW_STRIDE);
        (window % self.windows) * WINDOW_STRIDE + offset
    }

    /// Physical ring index backing visible register `r` in window `window`.
    /// Returns `None` for globals.
    pub fn physical_slot(&self, window: usize, r: Reg) -> Option<usize> {
        let n = r.number();
        match () {
            _ if n < LOW_BASE => None,
            _ if n < LOCAL_BASE => Some(self.slot(window, (n - LOW_BASE) as usize)),
            _ if n < HIGH_BASE => Some(self.slot(window, 6 + (n - LOCAL_BASE) as usize)),
            _ => {
                let prev = (window + self.windows - 1) % self.windows;
                Some(self.slot(prev, (n - HIGH_BASE) as usize))
            }
        }
    }

    /// Reads visible register `r` in the current window. r0 reads as zero.
    #[inline]
    pub fn read(&self, r: Reg) -> u32 {
        if r.is_zero() {
            return 0;
        }
        // `& 31` keeps the array index branch-free; register numbers are
        // below 32 by construction.
        let i = self.cur[r.number() as usize & 31];
        self.store[i as usize]
    }

    /// Writes visible register `r` in the current window. Writes to r0 are
    /// discarded.
    #[inline]
    pub fn write(&mut self, r: Reg, v: u32) {
        if r.is_zero() {
            return;
        }
        let i = self.cur[r.number() as usize & 31];
        self.store[i as usize] = v;
    }

    /// Flat `store` index backing visible register `r` at window `window` —
    /// the trace engine's build-time register resolution (the same formula
    /// the `maps` tables are built from). The caller special-cases r0.
    pub(crate) fn flat_index(&self, window: usize, r: Reg) -> u16 {
        match self.physical_slot(window, r) {
            None => r.number() as u16,
            Some(i) => (GLOBALS + i) as u16,
        }
    }

    /// Reads the flat `store` word at `idx` (a [`Self::flat_index`] result).
    #[inline]
    pub(crate) fn load_flat(&self, idx: u16) -> u32 {
        self.store[idx as usize]
    }

    /// Writes the flat `store` word at `idx` (a [`Self::flat_index`] result).
    #[inline]
    pub(crate) fn store_flat(&mut self, idx: u16, v: u32) {
        self.store[idx as usize] = v;
    }

    /// All 32 visible registers of the current window, r0 first.
    pub fn visible(&self) -> [u32; 32] {
        let mut out = [0; 32];
        for r in Reg::all() {
            out[r.number() as usize] = self.read(r);
        }
        out
    }

    /// Whether the next `CALL` must spill a window first.
    pub fn call_would_overflow(&self) -> bool {
        self.resident == self.windows - 1
    }

    /// Evicts the oldest resident window, returning the 16 registers
    /// (6 HIGH then 10 LOCAL) that must be written to the save stack.
    ///
    /// # Panics
    /// Panics if no spill is required (call [`call_would_overflow`] first).
    ///
    /// [`call_would_overflow`]: WindowFile::call_would_overflow
    pub fn spill_oldest(&mut self) -> [u32; SPILL_REGS] {
        assert!(self.call_would_overflow(), "spill without overflow");
        let o = self.oldest();
        let prev = (o + self.windows - 1) % self.windows;
        let mut out = [0; SPILL_REGS];
        for (k, slot) in out.iter_mut().take(6).enumerate() {
            *slot = self.store[GLOBALS + self.slot(prev, k)]; // HIGH of o = LOW of o−1
        }
        for (k, slot) in out.iter_mut().skip(6).enumerate() {
            *slot = self.store[GLOBALS + self.slot(o, 6 + k)]; // LOCALs of o
        }
        self.resident -= 1;
        self.spilled += 1;
        self.overflows += 1;
        out
    }

    /// Enters a new window (the register-file half of a `CALL`).
    ///
    /// # Panics
    /// Panics if the file is full — the CPU must spill first.
    pub fn advance(&mut self) {
        assert!(!self.call_would_overflow(), "advance on a full window file");
        self.cwp = (self.cwp + 1) % self.windows;
        self.cur = self.maps[self.cwp];
        self.resident += 1;
        self.depth += 1;
        self.max_depth = self.max_depth.max(self.depth);
    }

    /// Whether the next `RET` must refill a spilled window first.
    pub fn ret_would_underflow(&self) -> bool {
        self.resident == 1 && self.spilled > 0
    }

    /// Restores a previously spilled window (the one the imminent `RET`
    /// returns into) from the 16 saved registers (6 HIGH then 10 LOCAL).
    ///
    /// # Panics
    /// Panics if no fill is required.
    pub fn fill_previous(&mut self, regs: [u32; SPILL_REGS]) {
        assert!(self.ret_would_underflow(), "fill without underflow");
        let t = (self.cwp + self.windows - 1) % self.windows;
        let prev = (t + self.windows - 1) % self.windows;
        for (k, &v) in regs.iter().take(6).enumerate() {
            let i = GLOBALS + self.slot(prev, k);
            self.store[i] = v;
        }
        for (k, &v) in regs.iter().skip(6).enumerate() {
            let i = GLOBALS + self.slot(t, 6 + k);
            self.store[i] = v;
        }
        self.resident += 1;
        self.spilled -= 1;
        self.underflows += 1;
    }

    /// Leaves the current window (the register-file half of a `RET`).
    /// Returns `false` — without changing anything — if already at depth 0,
    /// which the CPU treats as program termination.
    ///
    /// # Panics
    /// Panics if the previous window is neither resident nor at depth 0 —
    /// the CPU must fill first.
    pub fn retreat(&mut self) -> bool {
        if self.depth == 0 {
            return false;
        }
        assert!(!self.ret_would_underflow(), "retreat into a spilled window");
        self.cwp = (self.cwp + self.windows - 1) % self.windows;
        self.cur = self.maps[self.cwp];
        self.resident -= 1;
        self.depth -= 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use risc1_isa::Reg;

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_one_window() {
        let _ = WindowFile::new(1);
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let mut f = WindowFile::new(8);
        f.write(Reg::R0, 99);
        assert_eq!(f.read(Reg::R0), 0);
    }

    #[test]
    fn globals_are_shared_across_windows() {
        let mut f = WindowFile::new(4);
        f.write(Reg::R5, 42);
        f.advance();
        assert_eq!(f.read(Reg::R5), 42);
        f.write(Reg::R5, 43);
        assert!(f.retreat());
        assert_eq!(f.read(Reg::R5), 43);
    }

    #[test]
    fn low_becomes_callees_high() {
        // The free-parameter-passing property: caller r10..r15 == callee
        // r26..r31, element for element.
        let mut f = WindowFile::new(8);
        for k in 0..6u8 {
            f.write(Reg::new(10 + k).unwrap(), 100 + k as u32);
        }
        f.advance();
        for k in 0..6u8 {
            assert_eq!(f.read(Reg::new(26 + k).unwrap()), 100 + k as u32);
        }
        // And the aliasing is two-way: the callee writing HIGH is visible to
        // the caller's LOW (how results come back).
        f.write(Reg::R26, 7777);
        assert!(f.retreat());
        assert_eq!(f.read(Reg::R10), 7777);
    }

    #[test]
    fn locals_are_private_per_window() {
        let mut f = WindowFile::new(8);
        f.write(Reg::R16, 1);
        f.advance();
        assert_eq!(f.read(Reg::R16), 0, "fresh window sees its own locals");
        f.write(Reg::R16, 2);
        assert!(f.retreat());
        assert_eq!(f.read(Reg::R16), 1);
    }

    #[test]
    fn overflow_triggers_at_capacity() {
        // w windows hold w−1 frames; the (w−1)-th CALL from depth 0 spills.
        let w = 4;
        let mut f = WindowFile::new(w);
        for _ in 0..w - 2 {
            assert!(!f.call_would_overflow());
            f.advance();
        }
        assert!(f.call_would_overflow());
        let _ = f.spill_oldest();
        f.advance();
        assert_eq!(f.overflows(), 1);
        assert_eq!(f.depth(), (w - 1) as u64);
    }

    #[test]
    fn deep_recursion_spills_and_refills_losslessly() {
        // Write a unique signature into every frame's locals and params,
        // recurse far past the file capacity, then unwind and check every
        // frame is intact. This is the strongest single invariant of the
        // window machinery.
        let w = 4;
        let depth = 20;
        let mut f = WindowFile::new(w);
        let mut stack: Vec<[u32; SPILL_REGS]> = Vec::new();
        let sig = |d: u32, k: u32| 1000 * d + k;

        for d in 0..depth {
            for k in 0..10u32 {
                f.write(Reg::new(16 + k as u8).unwrap(), sig(d, k));
            }
            for k in 0..6u32 {
                f.write(Reg::new(10 + k as u8).unwrap(), sig(d, 100 + k));
            }
            if f.call_would_overflow() {
                stack.push(f.spill_oldest());
            }
            f.advance();
        }
        assert!(f.overflows() > 0, "must have spilled");
        for d in (0..depth).rev() {
            if f.ret_would_underflow() {
                f.fill_previous(stack.pop().unwrap());
            }
            assert!(f.retreat());
            for k in 0..10u32 {
                assert_eq!(
                    f.read(Reg::new(16 + k as u8).unwrap()),
                    sig(d, k),
                    "locals of frame {d}"
                );
            }
            for k in 0..6u32 {
                assert_eq!(
                    f.read(Reg::new(10 + k as u8).unwrap()),
                    sig(d, 100 + k),
                    "outgoing params of frame {d}"
                );
            }
        }
        assert!(stack.is_empty());
        assert_eq!(f.depth(), 0);
        assert_eq!(f.overflows(), f.underflows());
    }

    #[test]
    fn retreat_at_depth_zero_reports_halt() {
        let mut f = WindowFile::new(8);
        assert!(!f.retreat());
        assert_eq!(f.depth(), 0);
    }

    #[test]
    fn swp_tracks_oldest_window() {
        let mut f = WindowFile::new(8);
        assert_eq!(f.swp(), 0);
        f.advance();
        f.advance();
        assert_eq!(f.cwp(), 2);
        assert_eq!(f.swp(), 0);
    }

    proptest! {
        /// Random call/return sequences against a Vec-of-frames oracle: the
        /// window file must behave exactly like unbounded per-frame storage.
        #[test]
        fn window_file_equals_unbounded_frames(ops in proptest::collection::vec(any::<bool>(), 1..200),
                                               w in 2usize..10) {
            let mut f = WindowFile::new(w);
            let mut spill: Vec<[u32; SPILL_REGS]> = Vec::new();
            // oracle: stack of frames, each [locals(10), low(6)]
            let mut oracle: Vec<[u32; 16]> = vec![[0; 16]];
            let mut counter = 1u32;

            for &is_call in &ops {
                if is_call {
                    // mutate current frame distinctively, then call
                    for k in 0..10 {
                        counter += 1;
                        f.write(Reg::new(16 + k as u8).unwrap(), counter);
                        oracle.last_mut().unwrap()[k] = counter;
                    }
                    for k in 0..6 {
                        counter += 1;
                        f.write(Reg::new(10 + k as u8).unwrap(), counter);
                        oracle.last_mut().unwrap()[10 + k] = counter;
                    }
                    if f.call_would_overflow() {
                        spill.push(f.spill_oldest());
                    }
                    f.advance();
                    // callee HIGH must equal caller LOW
                    let caller = &oracle[oracle.len() - 1];
                    for k in 0..6 {
                        prop_assert_eq!(f.read(Reg::new(26 + k as u8).unwrap()), caller[10 + k]);
                    }
                    oracle.push([0; 16]);
                } else if oracle.len() > 1 {
                    if f.ret_would_underflow() {
                        f.fill_previous(spill.pop().unwrap());
                    }
                    prop_assert!(f.retreat());
                    oracle.pop();
                    let frame = oracle.last().unwrap();
                    for (k, &expect) in frame.iter().enumerate() {
                        let reg = if k < 10 { 16 + k as u8 } else { 10 + (k - 10) as u8 };
                        prop_assert_eq!(f.read(Reg::new(reg).unwrap()), expect);
                    }
                }
            }
            prop_assert_eq!(f.depth() as usize, oracle.len() - 1);
        }
    }
}
