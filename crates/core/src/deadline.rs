//! Wall-clock deadlines for execution watchdogs.
//!
//! Fuel bounds the number of *retired instructions*, but a job can also
//! stall on host time (a pathological icache pattern, a storm of trap
//! deliveries that retire nothing). A [`Deadline`] is the wall-clock half
//! of the watchdog story: an absolute `Instant` that run loops poll
//! *between* simulation steps, so checking it can never perturb the
//! simulated machine. The serve scheduler, the supervisor, and
//! `risc1 run --timeout-ms` all share this one type.
//!
//! Polling every step would put a syscall on the hot path, so loops only
//! consult the clock every [`DEADLINE_POLL_STEPS`] steps (callers keep a
//! local counter; the mask makes the check a single AND on the fast path).

use std::time::{Duration, Instant};

/// How many steps a run loop executes between wall-clock polls. A power of
/// two so the check compiles to `count & (N-1) == 0`.
pub const DEADLINE_POLL_STEPS: u64 = 4096;

/// An absolute wall-clock budget. Cheap to copy; comparison against the
/// clock happens only when [`Deadline::expired`] is called.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `ms` milliseconds from now.
    pub fn after_ms(ms: u64) -> Deadline {
        Deadline {
            at: Instant::now() + Duration::from_millis(ms),
        }
    }

    /// A deadline at an explicit instant.
    pub fn at(at: Instant) -> Deadline {
        Deadline { at }
    }

    /// True once the wall clock has passed the deadline.
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }

    /// Wall-clock time remaining (zero once expired).
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }

    /// Whether a loop at step `count` should consult the clock: true every
    /// [`DEADLINE_POLL_STEPS`] steps (including step 0, so an
    /// already-expired deadline is honoured before any work).
    #[inline]
    pub fn should_poll(count: u64) -> bool {
        count & (DEADLINE_POLL_STEPS - 1) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_expires_and_reports_remaining() {
        let d = Deadline::after_ms(0);
        std::thread::sleep(Duration::from_millis(2));
        assert!(d.expired());
        assert_eq!(d.remaining(), Duration::ZERO);

        let far = Deadline::after_ms(60_000);
        assert!(!far.expired());
        assert!(far.remaining() > Duration::from_secs(1));
    }

    #[test]
    fn poll_mask_hits_step_zero_and_the_interval() {
        assert!(Deadline::should_poll(0));
        assert!(!Deadline::should_poll(1));
        assert!(!Deadline::should_poll(DEADLINE_POLL_STEPS - 1));
        assert!(Deadline::should_poll(DEADLINE_POLL_STEPS));
        assert!(Deadline::should_poll(7 * DEADLINE_POLL_STEPS));
    }
}
