//! Deterministic, seed-driven fault injection.
//!
//! The injector perturbs a running [`Cpu`] from the *outside*: it never
//! reaches into the step function, it only uses architectural surfaces —
//! memory bit flips, [`Cpu::raise_interrupt`], [`Cpu::inject_probe`],
//! [`Cpu::set_fuel_limit`]. Everything is driven by an in-repo
//! xorshift-style PRNG, so **the same seed always produces the same
//! injection schedule** (and, the CPU being deterministic, the same trap
//! counts and final state).
//!
//! Call [`FaultInjector::pre_step`] before every [`Cpu::step`]; the
//! injector rolls one die per step and, at the configured rate, applies
//! one perturbation chosen among the enabled modes. Every applied event is
//! recorded in [`FaultInjector::events`].
//!
//! [`install_recovery_handlers`] sets up the software half of the story: a
//! block of `reti`-stub trap handlers that turn each vectorable fault into
//! either *re-execute* or *skip-and-continue*, plus an interrupt handler
//! that makes spurious interrupts fully transparent.

use crate::cpu::Cpu;
use crate::mem::MemError;
use crate::trap::TrapKind;
use risc1_isa::{Instruction, Reg, Short2};
use std::fmt;

/// Denominator of the injection rate: a rate of `n` means an expected `n`
/// perturbations per [`RATE_DENOM`] instruction steps.
pub const RATE_DENOM: u32 = 10_000;

/// Default address of the recovery-stub block installed by
/// [`install_recovery_handlers`] — below the default code base, in memory
/// no program image touches.
pub const RECOVERY_STUB_BASE: u32 = 0x100;

/// An xorshift64-based PRNG (xorshift64* output scrambling, splitmix-style
/// seeding) — small, fast, fully deterministic, no dependencies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// A generator seeded from `seed` (any value, including 0, is fine:
    /// the seed is scrambled into a non-zero state).
    pub fn new(seed: u64) -> XorShift64 {
        let mut s = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        s = (s ^ (s >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        s = (s ^ (s >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        s ^= s >> 31;
        XorShift64 {
            state: if s == 0 { 0x9e37_79b9_7f4a_7c15 } else { s },
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// A uniform value in `0..n` (0 when `n == 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// True with probability `num / denom`.
    pub fn chance(&mut self, num: u32, denom: u32) -> bool {
        self.below(u64::from(denom.max(1))) < u64::from(num)
    }
}

/// Which perturbation modes the injector may apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectModes {
    /// Flip a random bit anywhere in physical memory (code, data, stacks).
    pub bit_flips: bool,
    /// Post an external interrupt at a random cycle.
    pub spurious_interrupts: bool,
    /// Force a decode trap at the next instruction boundary.
    pub decode_probes: bool,
    /// Force a misalignment trap at the next instruction boundary.
    pub misalign_probes: bool,
    /// Tighten the fuel limit by a random amount.
    pub fuel_jitter: bool,
    /// Flip a random bit inside the window-save-stack region.
    pub wstack_corruption: bool,
}

impl InjectModes {
    /// Every mode enabled.
    pub fn all() -> InjectModes {
        InjectModes {
            bit_flips: true,
            spurious_interrupts: true,
            decode_probes: true,
            misalign_probes: true,
            fuel_jitter: true,
            wstack_corruption: true,
        }
    }

    /// Only the perturbations that are *transparent* under the recovery
    /// handlers of [`install_recovery_handlers`]: spurious interrupts and
    /// misalignment probes. A run injected with these and recovered must
    /// reproduce the uninjected result bit for bit.
    pub fn transparent() -> InjectModes {
        InjectModes {
            spurious_interrupts: true,
            misalign_probes: true,
            ..InjectModes::none()
        }
    }

    /// No mode enabled (the injector becomes a no-op).
    pub fn none() -> InjectModes {
        InjectModes {
            bit_flips: false,
            spurious_interrupts: false,
            decode_probes: false,
            misalign_probes: false,
            fuel_jitter: false,
            wstack_corruption: false,
        }
    }

    /// The enabled modes in a fixed, seed-stable order.
    fn enabled(&self) -> Vec<ModeTag> {
        let table = [
            (self.bit_flips, ModeTag::BitFlip),
            (self.spurious_interrupts, ModeTag::SpuriousInterrupt),
            (self.decode_probes, ModeTag::DecodeProbe),
            (self.misalign_probes, ModeTag::MisalignProbe),
            (self.fuel_jitter, ModeTag::FuelJitter),
            (self.wstack_corruption, ModeTag::WstackCorruption),
        ];
        table
            .into_iter()
            .filter_map(|(on, t)| on.then_some(t))
            .collect()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ModeTag {
    BitFlip,
    SpuriousInterrupt,
    DecodeProbe,
    MisalignProbe,
    FuelJitter,
    WstackCorruption,
}

/// Full injection campaign configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectConfig {
    /// PRNG seed — the campaign's identity. Same seed, same schedule.
    pub seed: u64,
    /// Expected perturbations per [`RATE_DENOM`] instruction steps.
    pub rate: u32,
    /// Which perturbations may be applied.
    pub modes: InjectModes,
}

impl InjectConfig {
    /// A campaign with the given seed, a moderate default rate and all
    /// modes enabled.
    pub fn with_seed(seed: u64) -> InjectConfig {
        InjectConfig {
            seed,
            rate: 20,
            modes: InjectModes::all(),
        }
    }
}

/// One applied perturbation, as recorded in the injection log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectKind {
    /// A bit flip at `addr`, bit `bit`.
    BitFlip {
        /// Byte address of the flip.
        addr: u32,
        /// Bit index (0–7).
        bit: u8,
    },
    /// An external interrupt was posted.
    SpuriousInterrupt,
    /// A forced decode trap was queued.
    DecodeProbe,
    /// A forced misalignment trap was queued.
    MisalignProbe,
    /// The fuel limit was tightened to `new_limit`.
    FuelJitter {
        /// The new fuel limit.
        new_limit: u64,
    },
    /// A bit flip inside the window-save-stack region.
    WstackCorruption {
        /// Byte address of the flip.
        addr: u32,
        /// Bit index (0–7).
        bit: u8,
    },
}

impl fmt::Display for InjectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            InjectKind::BitFlip { addr, bit } => write!(f, "bit-flip {addr:#010x}.{bit}"),
            InjectKind::SpuriousInterrupt => write!(f, "spurious-interrupt"),
            InjectKind::DecodeProbe => write!(f, "decode-probe"),
            InjectKind::MisalignProbe => write!(f, "misalign-probe"),
            InjectKind::FuelJitter { new_limit } => write!(f, "fuel-jitter limit={new_limit}"),
            InjectKind::WstackCorruption { addr, bit } => {
                write!(f, "wstack-corruption {addr:#010x}.{bit}")
            }
        }
    }
}

/// One entry of the deterministic injection schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectEvent {
    /// Instructions retired when the perturbation was applied.
    pub at_instruction: u64,
    /// What was applied.
    pub kind: InjectKind,
}

impl fmt::Display for InjectEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{:<10} {}", self.at_instruction, self.kind)
    }
}

/// The seed-driven fault injector. Drive it with
/// [`FaultInjector::pre_step`] before every [`Cpu::step`].
#[derive(Debug, Clone)]
pub struct FaultInjector {
    cfg: InjectConfig,
    rng: XorShift64,
    events: Vec<InjectEvent>,
}

impl FaultInjector {
    /// An injector for the given campaign.
    pub fn new(cfg: InjectConfig) -> FaultInjector {
        FaultInjector {
            rng: XorShift64::new(cfg.seed),
            cfg,
            events: Vec::new(),
        }
    }

    /// The campaign configuration.
    pub fn config(&self) -> &InjectConfig {
        &self.cfg
    }

    /// The perturbations applied so far, in order.
    pub fn events(&self) -> &[InjectEvent] {
        &self.events
    }

    /// Rolls the per-step die and, when it comes up, applies one
    /// perturbation chosen uniformly among the enabled modes.
    pub fn pre_step(&mut self, cpu: &mut Cpu) {
        if !self.rng.chance(self.cfg.rate, RATE_DENOM) {
            return;
        }
        let enabled = self.cfg.modes.enabled();
        if enabled.is_empty() {
            return;
        }
        let tag = enabled[self.rng.below(enabled.len() as u64) as usize];
        let kind = match tag {
            ModeTag::BitFlip => {
                let addr = self.rng.below(cpu.mem.size() as u64) as u32;
                let bit = (self.rng.next_u64() & 7) as u8;
                let _ = cpu.mem.flip_bit(addr, bit);
                InjectKind::BitFlip { addr, bit }
            }
            ModeTag::SpuriousInterrupt => {
                cpu.raise_interrupt();
                InjectKind::SpuriousInterrupt
            }
            ModeTag::DecodeProbe => {
                cpu.inject_probe(TrapKind::Decode);
                InjectKind::DecodeProbe
            }
            ModeTag::MisalignProbe => {
                cpu.inject_probe(TrapKind::Misaligned);
                InjectKind::MisalignProbe
            }
            ModeTag::FuelJitter => {
                let spent = cpu.stats().instructions;
                let remaining = cpu.fuel_limit().saturating_sub(spent);
                let cut = self.rng.below(remaining / 2 + 1);
                let new_limit = cpu.fuel_limit() - cut;
                cpu.set_fuel_limit(new_limit);
                InjectKind::FuelJitter { new_limit }
            }
            ModeTag::WstackCorruption => {
                let cfg = cpu.config();
                let (lo, hi) = (cfg.stack_top, cfg.window_stack_top);
                let len = u64::from(hi.saturating_sub(lo));
                if len == 0 {
                    return;
                }
                let addr = lo + self.rng.below(len) as u32;
                let bit = (self.rng.next_u64() & 7) as u8;
                let _ = cpu.mem.flip_bit(addr, bit);
                InjectKind::WstackCorruption { addr, bit }
            }
        };
        self.events.push(InjectEvent {
            at_instruction: cpu.stats().instructions,
            kind,
        });
        // Keep the CPU's replay context current: a terminal fault reports
        // how many journal events had been applied when it struck.
        cpu.note_journal_position(self.events.len() as u64);
    }
}

/// Installs the standard software recovery story on a CPU: one `reti`
/// stub per trap cause at `base + index · 16`, plus an interrupt handler
/// stub after them, and wires the trap table and interrupt vector to
/// them.
///
/// Per-cause recovery policy (the `s2` of the stub's `reti r25, s2`):
///
/// | cause       | policy      | rationale                                  |
/// |-------------|-------------|--------------------------------------------|
/// | `ifetch`    | re-execute  | nothing to skip *to*; loops burn fuel       |
/// | `daccess`   | skip (+4)   | drop the faulting load/store, continue      |
/// | `misalign`  | re-execute  | transparent for injected probes             |
/// | `decode`    | skip (+4)   | an undecodable word cannot be re-executed   |
/// | `xfer-slot` | skip (+4)   | run the second transfer outside the slot    |
/// | `wstack`    | skip (+4)   | drop the call, let the recursion unwind     |
///
/// A handler loop (e.g. re-executing a fetch that still faults) is bounded
/// by fuel: each pass retires the stub's two instructions, so the run ends
/// in a structured [`crate::ExecError::OutOfFuel`], never a hang.
///
/// # Errors
/// A memory fault if the stub block does not fit at `base`.
pub fn install_recovery_handlers(cpu: &mut Cpu, base: u32) -> Result<(), MemError> {
    let resume = Short2::imm(0).expect("0 fits");
    let skip = Short2::imm(4).expect("4 fits");
    for kind in TrapKind::ALL {
        let s2 = match kind {
            TrapKind::InstructionAccess | TrapKind::Misaligned => resume,
            TrapKind::DataAccess
            | TrapKind::Decode
            | TrapKind::TransferInDelaySlot
            | TrapKind::WindowStackExhausted => skip,
        };
        let addr = base + kind.index() as u32 * crate::cpu::TRAP_VECTOR_STRIDE;
        write_stub(cpu, addr, s2)?;
        cpu.set_trap_handler(kind, addr);
    }
    let int_addr = base + TrapKind::COUNT as u32 * crate::cpu::TRAP_VECTOR_STRIDE;
    write_stub(cpu, int_addr, resume)?;
    cpu.set_interrupt_handler(int_addr);
    Ok(())
}

fn write_stub(cpu: &mut Cpu, addr: u32, s2: Short2) -> Result<(), MemError> {
    let stub = [Instruction::reti(Reg::R25, s2), Instruction::nop()];
    for (i, insn) in stub.iter().enumerate() {
        cpu.mem
            .load_image(addr + 4 * i as u32, &insn.encode().to_le_bytes())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    #[test]
    fn prng_is_deterministic_and_seed_sensitive() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        let mut c = XorShift64::new(43);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
        // Zero seed works too.
        assert_ne!(XorShift64::new(0).next_u64(), 0);
    }

    #[test]
    fn below_is_in_range() {
        let mut r = XorShift64::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn injector_logs_every_applied_event() {
        let mut cpu = Cpu::new(SimConfig::default());
        let mut inj = FaultInjector::new(InjectConfig {
            seed: 1,
            rate: RATE_DENOM, // fire every step
            modes: InjectModes::all(),
        });
        for _ in 0..50 {
            inj.pre_step(&mut cpu);
        }
        assert_eq!(inj.events().len(), 50);
    }

    #[test]
    fn recovery_handlers_cover_every_cause() {
        let mut cpu = Cpu::new(SimConfig::default());
        install_recovery_handlers(&mut cpu, RECOVERY_STUB_BASE).unwrap();
        for kind in TrapKind::ALL {
            assert!(cpu.trap_handler(kind).is_some(), "{kind}");
        }
        // The stubs decode as reti instructions.
        for kind in TrapKind::ALL {
            let addr = cpu.trap_handler(kind).unwrap();
            let word = cpu.mem.peek_u32(addr).unwrap();
            let insn = Instruction::decode(word).unwrap();
            assert_eq!(insn.opcode, risc1_isa::Opcode::Reti);
        }
    }
}
