//! Minimal JSON machinery shared by every serialized surface of the
//! workspace (journals, the serve wire protocol) — the workspace
//! deliberately has no external dependencies.
//!
//! The dialect is deliberately small: numbers are integers only (held as
//! `i128` so the full `u64` range round-trips), no floats, no exponents.
//! [`Writer`] emits compact documents; [`Parser`] is a recursive-descent
//! reader returning a [`Json`] tree; the typed accessors on [`Json`] turn
//! shape mismatches into structured [`JsonError::Schema`] values so every
//! consumer reports "expected a number for key X" style diagnostics for
//! free.

use std::fmt;

/// A parsed JSON value. Numbers are integers — every format in this
/// workspace uses integers only — held as `i128` so the full `u64` range
/// round-trips.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (the only number shape the dialect admits).
    Num(i128),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys are kept; [`get`]
    /// returns the first).
    Obj(Vec<(String, Json)>),
}

/// Why a document could not be parsed or did not match the expected shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonError {
    /// The text is not well-formed JSON.
    Parse {
        /// Byte offset of the problem.
        pos: usize,
        /// What was expected.
        msg: String,
    },
    /// The JSON is well-formed but a value had the wrong shape.
    Schema(String),
}

impl JsonError {
    /// A schema error with the given message.
    pub fn schema(msg: &str) -> JsonError {
        JsonError::Schema(msg.to_owned())
    }

    /// Prefixes a schema error with surrounding context (parse errors are
    /// already positioned and pass through unchanged).
    pub fn in_context(self, ctx: &str) -> JsonError {
        match self {
            JsonError::Schema(m) => JsonError::Schema(format!("{ctx}: {m}")),
            other => other,
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Parse { pos, msg } => write!(f, "invalid JSON at byte {pos}: {msg}"),
            JsonError::Schema(msg) => write!(f, "schema error: {msg}"),
        }
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// The value as an object, or a schema error naming `what`.
    pub fn as_obj(&self, what: &str) -> Result<&[(String, Json)], JsonError> {
        match self {
            Json::Obj(o) => Ok(o),
            _ => Err(JsonError::schema(&format!("{what}: expected an object"))),
        }
    }

    /// The value as an array, or a schema error naming `what`.
    pub fn as_arr(&self, what: &str) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(a) => Ok(a),
            _ => Err(JsonError::schema(&format!("{what}: expected an array"))),
        }
    }

    /// The value as a string, or a schema error naming `what`.
    pub fn as_str(&self, what: &str) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            _ => Err(JsonError::schema(&format!("{what}: expected a string"))),
        }
    }

    /// The value as a bool, or a schema error naming `what`.
    pub fn as_bool(&self, what: &str) -> Result<bool, JsonError> {
        match self {
            Json::Bool(b) => Ok(*b),
            _ => Err(JsonError::schema(&format!("{what}: expected a bool"))),
        }
    }

    /// The value as a raw integer, or a schema error naming `what`.
    pub fn as_num(&self, what: &str) -> Result<i128, JsonError> {
        match self {
            Json::Num(n) => Ok(*n),
            _ => Err(JsonError::schema(&format!("{what}: expected a number"))),
        }
    }

    /// The value as a `u64`, range-checked.
    pub fn as_u64(&self, what: &str) -> Result<u64, JsonError> {
        u64::try_from(self.as_num(what)?)
            .map_err(|_| JsonError::schema(&format!("{what}: out of u64 range")))
    }

    /// The value as a `u32`, range-checked.
    pub fn as_u32(&self, what: &str) -> Result<u32, JsonError> {
        u32::try_from(self.as_num(what)?)
            .map_err(|_| JsonError::schema(&format!("{what}: out of u32 range")))
    }

    /// The value as a `u8`, range-checked.
    pub fn as_u8(&self, what: &str) -> Result<u8, JsonError> {
        u8::try_from(self.as_num(what)?)
            .map_err(|_| JsonError::schema(&format!("{what}: out of u8 range")))
    }

    /// The value as an `i32`, range-checked.
    pub fn as_i32(&self, what: &str) -> Result<i32, JsonError> {
        i32::try_from(self.as_num(what)?)
            .map_err(|_| JsonError::schema(&format!("{what}: out of i32 range")))
    }

    /// The value as a `usize`, range-checked.
    pub fn as_usize(&self, what: &str) -> Result<usize, JsonError> {
        usize::try_from(self.as_num(what)?)
            .map_err(|_| JsonError::schema(&format!("{what}: out of usize range")))
    }
}

/// The first value under `key` in an object's entries, or a schema error.
pub fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json, JsonError> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| JsonError::schema(&format!("missing key {key:?}")))
}

/// The value under `key` when present (absent keys are `None`, so formats
/// can evolve by adding optional fields).
pub fn get_opt<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Compact JSON writer. Separator bookkeeping is automatic: callers just
/// emit keys and values in order.
pub struct Writer {
    out: String,
    /// Whether the next emission at the current nesting level needs a
    /// comma separator before it.
    need_comma: bool,
}

impl Writer {
    /// A writer with an empty output buffer.
    pub fn new() -> Writer {
        Writer {
            out: String::new(),
            need_comma: false,
        }
    }

    fn sep(&mut self) {
        if self.need_comma {
            self.out.push(',');
        }
        self.need_comma = true;
    }

    /// Opens an object (`{`).
    pub fn obj_open(&mut self) {
        self.sep();
        self.out.push('{');
        self.need_comma = false;
    }

    /// Closes an object (`}`).
    pub fn obj_close(&mut self) {
        self.out.push('}');
        self.need_comma = true;
    }

    /// Opens an array (`[`).
    pub fn arr_open(&mut self) {
        self.sep();
        self.out.push('[');
        self.need_comma = false;
    }

    /// Closes an array (`]`).
    pub fn arr_close(&mut self) {
        self.out.push(']');
        self.need_comma = true;
    }

    /// Emits an object key (the next emission is its value).
    pub fn key(&mut self, k: &str) {
        self.sep();
        self.push_string(k);
        self.out.push(':');
        self.need_comma = false;
    }

    /// Emits an integer.
    pub fn num(&mut self, n: i128) {
        self.sep();
        self.out.push_str(&n.to_string());
    }

    /// Emits a bool.
    pub fn bool(&mut self, b: bool) {
        self.sep();
        self.out.push_str(if b { "true" } else { "false" });
    }

    /// Emits `null`.
    pub fn null(&mut self) {
        self.sep();
        self.out.push_str("null");
    }

    /// Emits a string (escaped).
    pub fn str(&mut self, s: &str) {
        self.sep();
        self.push_string(s);
    }

    /// Emits pre-serialized JSON verbatim as one value. The caller is
    /// responsible for `text` being a well-formed document — used to embed
    /// stored blobs (WAL result summaries, snapshot bodies) without a
    /// parse/re-emit round-trip that could perturb byte identity.
    pub fn raw(&mut self, text: &str) {
        self.sep();
        self.out.push_str(text);
    }

    fn push_string(&mut self, s: &str) {
        self.out.push('"');
        for ch in s.chars() {
            match ch {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    /// The finished document.
    pub fn finish(self) -> String {
        self.out
    }
}

impl Default for Writer {
    fn default() -> Self {
        Writer::new()
    }
}

/// Recursive-descent JSON parser for the integer-only dialect.
pub struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    /// A parser over `text`.
    pub fn new(text: &'a str) -> Parser<'a> {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> JsonError {
        JsonError::Parse {
            pos: self.pos,
            msg: msg.to_owned(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    /// Parses a complete document (a single value, no trailing characters).
    ///
    /// # Errors
    /// [`JsonError::Parse`] on malformed input.
    pub fn parse_document(&mut self) -> Result<Json, JsonError> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters after document"));
        }
        Ok(v)
    }

    fn parse_value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.parse_obj(),
            Some(b'[') => self.parse_arr(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_num(),
            Some(b't') | Some(b'f') => {
                if self.eat_keyword("true") {
                    Ok(Json::Bool(true))
                } else if self.eat_keyword("false") {
                    Ok(Json::Bool(false))
                } else {
                    Err(self.err("expected a value"))
                }
            }
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Json::Null)
                } else {
                    Err(self.err("expected a value"))
                }
            }
            _ => Err(self.err("expected a value")),
        }
    }

    fn parse_obj(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            entries.push((key, self.parse_value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn parse_arr(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain UTF-8 up to the next quote/escape.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("\\u escape is not a scalar"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_num(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start || (self.pos == start + 1 && self.bytes[start] == b'-') {
            return Err(self.err("expected digits"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        text.parse::<i128>()
            .map(Json::Num)
            .map_err(|_| self.err("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_emits_compact_documents() {
        let mut w = Writer::new();
        w.obj_open();
        w.key("a");
        w.num(-3);
        w.key("b");
        w.arr_open();
        w.bool(true);
        w.null();
        w.str("x\"y\n");
        w.arr_close();
        w.obj_close();
        assert_eq!(w.finish(), "{\"a\":-3,\"b\":[true,null,\"x\\\"y\\n\"]}");
    }

    #[test]
    fn parser_round_trips_the_writer() {
        let mut w = Writer::new();
        w.obj_open();
        w.key("n");
        w.num(i128::from(u64::MAX));
        w.key("s");
        w.str("tab\tquote\"");
        w.obj_close();
        let doc = w.finish();
        let v = Parser::new(&doc).parse_document().unwrap();
        let obj = v.as_obj("root").unwrap();
        assert_eq!(get(obj, "n").unwrap().as_u64("n").unwrap(), u64::MAX);
        assert_eq!(get(obj, "s").unwrap().as_str("s").unwrap(), "tab\tquote\"");
        assert!(get(obj, "missing").is_err());
        assert!(get_opt(obj, "missing").is_none());
    }

    #[test]
    fn accessors_report_shape_errors() {
        let v = Parser::new("{\"k\":[1,2]}").parse_document().unwrap();
        let obj = v.as_obj("root").unwrap();
        let arr = get(obj, "k").unwrap();
        assert!(matches!(arr.as_str("k"), Err(JsonError::Schema(_))));
        assert!(matches!(arr.as_num("k"), Err(JsonError::Schema(_))));
        let err = arr.as_bool("k").unwrap_err().in_context("outer");
        assert_eq!(err, JsonError::Schema("outer: k: expected a bool".into()));
        assert_eq!(
            Json::Num(300).as_u8("b"),
            Err(JsonError::schema("b: out of u8 range"))
        );
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "\"oops", "12 34", "nul", "-"] {
            assert!(
                matches!(
                    Parser::new(bad).parse_document(),
                    Err(JsonError::Parse { .. })
                ),
                "{bad:?} must be a parse error"
            );
        }
    }
}
