//! Execution statistics — the raw material of every evaluation table.

use crate::trap::TrapKind;
use risc1_isa::{Category, Opcode};
use std::collections::HashMap;
use std::fmt;

/// Counters accumulated over one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Instructions retired (delay-slot instructions included).
    pub instructions: u64,
    /// Total cycles, including trap servicing and timing-model bubbles.
    pub cycles: u64,
    /// Bubble cycles added by the timing model (interlocks, suspended-
    /// pipeline penalties) — included in `cycles`.
    pub bubble_cycles: u64,
    /// Instruction fetches (one per retired instruction on RISC I).
    pub ifetches: u64,
    /// Data-memory reads issued by loads (and window fills).
    pub data_reads: u64,
    /// Data-memory writes issued by stores (and window spills).
    pub data_writes: u64,
    /// Procedure calls executed (`call`, `callr`).
    pub calls: u64,
    /// Returns executed.
    pub rets: u64,
    /// Transfers of control that were taken.
    pub taken_transfers: u64,
    /// Register-window overflow traps.
    pub window_overflows: u64,
    /// Register-window underflow traps.
    pub window_underflows: u64,
    /// Cycles spent inside window traps — included in `cycles`.
    pub trap_cycles: u64,
    /// Instructions executed in a delay slot.
    pub delay_slots: u64,
    /// Delay-slot instructions that were NOPs (unfilled slots).
    pub delay_slot_nops: u64,
    /// Deepest call depth reached.
    pub max_depth: u64,
    /// Vectored trap entries (faults delivered to an installed handler;
    /// window spill/fill servicing is *not* counted here).
    pub trap_entries: u64,
    /// Handler exits: `RETI` instructions that closed an active trap.
    pub trap_returns: u64,
    /// Cycles spent entering trap handlers (fixed overhead plus any
    /// entry-time window spill) — included in `cycles`.
    pub trap_entry_cycles: u64,
    /// Vectored trap entries by cause, indexed by [`TrapKind::index`].
    pub trap_counts: [u64; TrapKind::COUNT],
    /// External interrupts taken (the `CALLI` entry sequence).
    pub interrupts_taken: u64,
    /// Dynamic opcode histogram.
    pub opcode_counts: HashMap<Opcode, u64>,
}

impl ExecStats {
    /// Fresh, all-zero statistics.
    pub fn new() -> ExecStats {
        ExecStats::default()
    }

    /// Records one retired instruction of the given opcode.
    pub fn retire(&mut self, op: Opcode) {
        self.instructions += 1;
        self.ifetches += 1;
        *self.opcode_counts.entry(op).or_insert(0) += 1;
    }

    /// Total data-memory traffic (reads + writes).
    pub fn data_traffic(&self) -> u64 {
        self.data_reads + self.data_writes
    }

    /// Dynamic instruction count per category, for the instruction-mix
    /// table (E12).
    pub fn category_counts(&self) -> HashMap<Category, u64> {
        let mut out = HashMap::new();
        for (op, n) in &self.opcode_counts {
            *out.entry(op.category()).or_insert(0) += n;
        }
        out
    }

    /// Fraction of delay slots the compiler filled with useful work
    /// (1.0 − NOP share). Returns `None` when no slots were executed.
    pub fn delay_slot_fill_rate(&self) -> Option<f64> {
        (self.delay_slots > 0).then(|| 1.0 - self.delay_slot_nops as f64 / self.delay_slots as f64)
    }

    /// Average cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }

    /// Fraction of all calls that overflowed the window file — the quantity
    /// the paper's window-count design study (E8) plots.
    pub fn overflow_rate(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.window_overflows as f64 / self.calls as f64
        }
    }

    /// Vectored trap entries of one cause.
    pub fn trap_count(&self, kind: TrapKind) -> u64 {
        self.trap_counts[kind.index()]
    }

    /// Average cycles per vectored trap entry. Returns `None` when no
    /// traps were taken.
    pub fn trap_entry_cost(&self) -> Option<f64> {
        (self.trap_entries > 0).then(|| self.trap_entry_cycles as f64 / self.trap_entries as f64)
    }
}

impl fmt::Display for ExecStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "instructions {:>12}  cycles {:>12}  cpi {:.3}",
            self.instructions,
            self.cycles,
            self.cpi()
        )?;
        writeln!(
            f,
            "data reads   {:>12}  data writes {:>8}  ifetches {:>12}",
            self.data_reads, self.data_writes, self.ifetches
        )?;
        writeln!(
            f,
            "calls {:>8}  rets {:>8}  overflows {:>6}  underflows {:>6}  trap cycles {:>8}",
            self.calls, self.rets, self.window_overflows, self.window_underflows, self.trap_cycles
        )?;
        write!(
            f,
            "delay slots {:>8} ({} nops)  max depth {}",
            self.delay_slots, self.delay_slot_nops, self.max_depth
        )?;
        if self.trap_entries > 0 || self.interrupts_taken > 0 {
            let by_cause = TrapKind::ALL
                .iter()
                .filter(|k| self.trap_count(**k) > 0)
                .map(|k| format!("{} {}", k, self.trap_count(*k)))
                .collect::<Vec<_>>()
                .join(", ");
            write!(
                f,
                "\ntraps {:>7} (returns {}, entry cycles {})  interrupts {}  [{}]",
                self.trap_entries,
                self.trap_returns,
                self.trap_entry_cycles,
                self.interrupts_taken,
                by_cause
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retire_updates_histogram() {
        let mut s = ExecStats::new();
        s.retire(Opcode::Add);
        s.retire(Opcode::Add);
        s.retire(Opcode::Ldl);
        assert_eq!(s.instructions, 3);
        assert_eq!(s.opcode_counts[&Opcode::Add], 2);
        assert_eq!(s.category_counts()[&Category::Load], 1);
    }

    #[test]
    fn rates_handle_zero_denominators() {
        let s = ExecStats::new();
        assert_eq!(s.cpi(), 0.0);
        assert_eq!(s.overflow_rate(), 0.0);
        assert_eq!(s.delay_slot_fill_rate(), None);
    }

    #[test]
    fn fill_rate() {
        let s = ExecStats {
            delay_slots: 10,
            delay_slot_nops: 4,
            ..ExecStats::new()
        };
        assert!((s.delay_slot_fill_rate().unwrap() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!ExecStats::new().to_string().is_empty());
    }
}
