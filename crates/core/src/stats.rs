//! Execution statistics — the raw material of every evaluation table.

use crate::trap::TrapKind;
use risc1_isa::{Category, Opcode};
use std::collections::HashMap;
use std::fmt;
use std::ops::Index;

/// Number of slots in the dense opcode histogram: the opcode field is
/// 7 bits, so every legal discriminant fits below 128.
const OPCODE_SLOTS: usize = 128;

/// Dense dynamic-opcode histogram, indexed by opcode discriminant.
///
/// This replaces the former `HashMap<Opcode, u64>`: `retire` runs once per
/// simulated instruction, and a hash-and-probe on that path cost more than
/// the rest of the bookkeeping combined. The discriminant of [`Opcode`] *is*
/// its 7-bit encoding (see `risc1_isa::opcode`), so a flat 128-slot array
/// gives a branch-free single-store bump. The `HashMap` shape survives for
/// callers and serialization via [`OpcodeCounts::to_map`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpcodeCounts([u64; OPCODE_SLOTS]);

impl Default for OpcodeCounts {
    fn default() -> Self {
        OpcodeCounts([0; OPCODE_SLOTS])
    }
}

impl OpcodeCounts {
    /// All-zero histogram.
    pub fn new() -> OpcodeCounts {
        OpcodeCounts::default()
    }

    /// Increments the count for one retired opcode.
    #[inline]
    pub fn bump(&mut self, op: Opcode) {
        self.0[op as u8 as usize] += 1;
    }

    /// Adds `n` retirements of one opcode in a single update — the trace
    /// engine's bulk stat sink at trace exit.
    #[inline]
    pub fn add(&mut self, op: Opcode, n: u64) {
        self.0[op as u8 as usize] += n;
    }

    /// The count for one opcode (zero if never retired).
    #[inline]
    pub fn get(&self, op: Opcode) -> u64 {
        self.0[op as u8 as usize]
    }

    /// Overwrites the count for one opcode (snapshot deserialization).
    #[inline]
    pub fn set(&mut self, op: Opcode, n: u64) {
        self.0[op as u8 as usize] = n;
    }

    /// Iterates over `(opcode, count)` pairs with non-zero counts, in
    /// Table II order.
    pub fn iter(&self) -> impl Iterator<Item = (Opcode, u64)> + '_ {
        Opcode::ALL
            .iter()
            .map(|&op| (op, self.get(op)))
            .filter(|&(_, n)| n > 0)
    }

    /// Total retired instructions across all opcodes.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// The histogram in its former `HashMap` shape (non-zero entries only),
    /// for callers and serializers that want keyed access.
    pub fn to_map(&self) -> HashMap<Opcode, u64> {
        self.iter().collect()
    }
}

impl Index<Opcode> for OpcodeCounts {
    type Output = u64;
    fn index(&self, op: Opcode) -> &u64 {
        &self.0[op as u8 as usize]
    }
}

/// `&Opcode` indexing mirrors the old `HashMap<Opcode, u64>` call sites
/// (`counts[&Opcode::Add]`).
impl Index<&Opcode> for OpcodeCounts {
    type Output = u64;
    fn index(&self, op: &Opcode) -> &u64 {
        &self.0[*op as u8 as usize]
    }
}

/// The macro-op pair shapes the superblock engine fuses (see
/// `crate::superblock`). Mirrors the fusion-opportunity taxonomy of Celio
/// et al.'s renewed-RISC case, specialised to RISC I idioms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuseKind {
    /// SCC-setting ALU op immediately followed by a conditional JMP/JMPR
    /// that reads the flags it just set.
    CmpBranch,
    /// LDHI followed by an immediate ALU op completing a 32-bit constant.
    LdhiImm,
    /// A delayed transfer and its (safe) delay-slot instruction, executed
    /// as one unit.
    TransferSlot,
    /// An ALU op whose result feeds the address register of the next load.
    AddrFeed,
    /// Two adjacent plain ALU/LDHI ops retired through one handler. The
    /// catch-all pair — tried last, so the specialised kinds above keep
    /// their matches.
    AluPair,
}

impl FuseKind {
    /// Number of fusion kinds (array sizing).
    pub const COUNT: usize = 5;

    /// Every kind, in display order.
    pub const ALL: [FuseKind; FuseKind::COUNT] = [
        FuseKind::CmpBranch,
        FuseKind::LdhiImm,
        FuseKind::TransferSlot,
        FuseKind::AddrFeed,
        FuseKind::AluPair,
    ];

    /// Dense index for counter arrays.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short human/JSON name.
    pub fn name(self) -> &'static str {
        match self {
            FuseKind::CmpBranch => "cmp_branch",
            FuseKind::LdhiImm => "ldhi_imm",
            FuseKind::TransferSlot => "transfer_slot",
            FuseKind::AddrFeed => "addr_feed",
            FuseKind::AluPair => "alu_pair",
        }
    }
}

/// Counters accumulated over one simulation run.
///
/// Everything except the trailing telemetry block is *architectural*: a
/// function of the program and `SimConfig` alone, identical across execution
/// engines and across any chopping of the run into `step_n` bursts. The
/// trailing fields (`fused_pairs`, `blocks_entered`, `block_instructions`,
/// and the `trace*` counters) are **host-engine telemetry**: they describe
/// what the superblock/trace machinery did, which legitimately depends on
/// how the timeline was sliced (a `step()` prefix forms different blocks and
/// traces than a straight `run()`). `PartialEq` therefore compares only the
/// architectural fields — the equivalence and snapshot-round-trip laws stay
/// exact while telemetry remains observable.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Instructions retired (delay-slot instructions included).
    pub instructions: u64,
    /// Total cycles, including trap servicing and timing-model bubbles.
    pub cycles: u64,
    /// Bubble cycles added by the timing model (interlocks, suspended-
    /// pipeline penalties) — included in `cycles`.
    pub bubble_cycles: u64,
    /// Instruction fetches (one per retired instruction on RISC I).
    pub ifetches: u64,
    /// Data-memory reads issued by loads (and window fills).
    pub data_reads: u64,
    /// Data-memory writes issued by stores (and window spills).
    pub data_writes: u64,
    /// Procedure calls executed (`call`, `callr`).
    pub calls: u64,
    /// Returns executed.
    pub rets: u64,
    /// Transfers of control that were taken.
    pub taken_transfers: u64,
    /// Register-window overflow traps.
    pub window_overflows: u64,
    /// Register-window underflow traps.
    pub window_underflows: u64,
    /// Cycles spent inside window traps — included in `cycles`.
    pub trap_cycles: u64,
    /// Instructions executed in a delay slot.
    pub delay_slots: u64,
    /// Delay-slot instructions that were NOPs (unfilled slots).
    pub delay_slot_nops: u64,
    /// Deepest call depth reached.
    pub max_depth: u64,
    /// Vectored trap entries (faults delivered to an installed handler;
    /// window spill/fill servicing is *not* counted here).
    pub trap_entries: u64,
    /// Handler exits: `RETI` instructions that closed an active trap.
    pub trap_returns: u64,
    /// Cycles spent entering trap handlers (fixed overhead plus any
    /// entry-time window spill) — included in `cycles`.
    pub trap_entry_cycles: u64,
    /// Vectored trap entries by cause, indexed by [`TrapKind::index`].
    pub trap_counts: [u64; TrapKind::COUNT],
    /// External interrupts taken (the `CALLI` entry sequence).
    pub interrupts_taken: u64,
    /// Dynamic opcode histogram (dense, discriminant-indexed; see
    /// [`OpcodeCounts`]).
    pub opcode_counts: OpcodeCounts,
    /// Host telemetry: instruction pairs retired through a fused handler,
    /// by [`FuseKind::index`]. Excluded from `PartialEq` (see type docs).
    pub fused_pairs: [u64; FuseKind::COUNT],
    /// Host telemetry: superblock bodies entered. Excluded from `PartialEq`.
    pub blocks_entered: u64,
    /// Host telemetry: instructions retired inside superblock bodies (the
    /// numerator of mean block length). Excluded from `PartialEq`.
    pub block_instructions: u64,
    /// Host telemetry: traces compiled by the trace engine. Excluded from
    /// `PartialEq`.
    pub traces_built: u64,
    /// Host telemetry: trace bodies entered (each self-loop iteration
    /// counts once). Excluded from `PartialEq`.
    pub trace_entries: u64,
    /// Host telemetry: complete trace exits (the trace ran to its static
    /// end). Excluded from `PartialEq`.
    pub trace_exits: u64,
    /// Host telemetry: guarded side exits taken mid-trace (guard failures,
    /// faults, budget and code-dirty exits). Excluded from `PartialEq`.
    pub trace_side_exits: u64,
    /// Host telemetry: instructions retired inside compiled traces (the
    /// numerator of trace coverage). Excluded from `PartialEq`.
    pub trace_instructions: u64,
}

/// Architectural fields only — see the type docs. Telemetry fields
/// (`fused_pairs`, `blocks_entered`, `block_instructions`, `traces_built`,
/// `trace_entries`, `trace_exits`, `trace_side_exits`,
/// `trace_instructions`) are excluded on purpose: block and trace formation
/// depend on how the timeline is chopped into bursts, and the equivalence
/// laws quantify over choppings.
impl PartialEq for ExecStats {
    fn eq(&self, other: &Self) -> bool {
        self.instructions == other.instructions
            && self.cycles == other.cycles
            && self.bubble_cycles == other.bubble_cycles
            && self.ifetches == other.ifetches
            && self.data_reads == other.data_reads
            && self.data_writes == other.data_writes
            && self.calls == other.calls
            && self.rets == other.rets
            && self.taken_transfers == other.taken_transfers
            && self.window_overflows == other.window_overflows
            && self.window_underflows == other.window_underflows
            && self.trap_cycles == other.trap_cycles
            && self.delay_slots == other.delay_slots
            && self.delay_slot_nops == other.delay_slot_nops
            && self.max_depth == other.max_depth
            && self.trap_entries == other.trap_entries
            && self.trap_returns == other.trap_returns
            && self.trap_entry_cycles == other.trap_entry_cycles
            && self.trap_counts == other.trap_counts
            && self.interrupts_taken == other.interrupts_taken
            && self.opcode_counts == other.opcode_counts
    }
}

impl Eq for ExecStats {}

impl ExecStats {
    /// Fresh, all-zero statistics.
    pub fn new() -> ExecStats {
        ExecStats::default()
    }

    /// Records one retired instruction of the given opcode.
    #[inline]
    pub fn retire(&mut self, op: Opcode) {
        self.instructions += 1;
        self.ifetches += 1;
        self.opcode_counts.bump(op);
    }

    /// Total data-memory traffic (reads + writes).
    pub fn data_traffic(&self) -> u64 {
        self.data_reads + self.data_writes
    }

    /// Dynamic instruction count per category, for the instruction-mix
    /// table (E12).
    pub fn category_counts(&self) -> HashMap<Category, u64> {
        let mut out = HashMap::new();
        for (op, n) in self.opcode_counts.iter() {
            *out.entry(op.category()).or_insert(0) += n;
        }
        out
    }

    /// Fraction of delay slots the compiler filled with useful work
    /// (1.0 − NOP share). Returns `None` when no slots were executed.
    pub fn delay_slot_fill_rate(&self) -> Option<f64> {
        (self.delay_slots > 0).then(|| 1.0 - self.delay_slot_nops as f64 / self.delay_slots as f64)
    }

    /// Average cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }

    /// Fraction of all calls that overflowed the window file — the quantity
    /// the paper's window-count design study (E8) plots.
    pub fn overflow_rate(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.window_overflows as f64 / self.calls as f64
        }
    }

    /// Vectored trap entries of one cause.
    pub fn trap_count(&self, kind: TrapKind) -> u64 {
        self.trap_counts[kind.index()]
    }

    /// Average cycles per vectored trap entry. Returns `None` when no
    /// traps were taken.
    pub fn trap_entry_cost(&self) -> Option<f64> {
        (self.trap_entries > 0).then(|| self.trap_entry_cycles as f64 / self.trap_entries as f64)
    }

    /// Fused pairs of one kind (telemetry; superblock engine only).
    pub fn fused(&self, kind: FuseKind) -> u64 {
        self.fused_pairs[kind.index()]
    }

    /// Total fused pairs across all kinds (telemetry).
    pub fn fused_total(&self) -> u64 {
        self.fused_pairs.iter().sum()
    }

    /// Mean superblock body length in instructions, or `None` if no block
    /// was ever entered (telemetry).
    pub fn mean_block_len(&self) -> Option<f64> {
        (self.blocks_entered > 0)
            .then(|| self.block_instructions as f64 / self.blocks_entered as f64)
    }

    /// Fraction of all retired instructions that ran inside compiled traces
    /// (telemetry; trace engine only). Zero when nothing retired.
    pub fn trace_coverage(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.trace_instructions as f64 / self.instructions as f64
        }
    }
}

impl fmt::Display for ExecStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "instructions {:>12}  cycles {:>12}  cpi {:.3}",
            self.instructions,
            self.cycles,
            self.cpi()
        )?;
        writeln!(
            f,
            "data reads   {:>12}  data writes {:>8}  ifetches {:>12}",
            self.data_reads, self.data_writes, self.ifetches
        )?;
        writeln!(
            f,
            "calls {:>8}  rets {:>8}  overflows {:>6}  underflows {:>6}  trap cycles {:>8}",
            self.calls, self.rets, self.window_overflows, self.window_underflows, self.trap_cycles
        )?;
        write!(
            f,
            "delay slots {:>8} ({} nops)  max depth {}",
            self.delay_slots, self.delay_slot_nops, self.max_depth
        )?;
        if self.trap_entries > 0 || self.interrupts_taken > 0 {
            let by_cause = TrapKind::ALL
                .iter()
                .filter(|k| self.trap_count(**k) > 0)
                .map(|k| format!("{} {}", k, self.trap_count(*k)))
                .collect::<Vec<_>>()
                .join(", ");
            write!(
                f,
                "\ntraps {:>7} (returns {}, entry cycles {})  interrupts {}  [{}]",
                self.trap_entries,
                self.trap_returns,
                self.trap_entry_cycles,
                self.interrupts_taken,
                by_cause
            )?;
        }
        if self.blocks_entered > 0 {
            let by_kind = FuseKind::ALL
                .iter()
                .filter(|k| self.fused(**k) > 0)
                .map(|k| format!("{} {}", k.name(), self.fused(*k)))
                .collect::<Vec<_>>()
                .join(", ");
            write!(
                f,
                "\nsuperblocks {:>6} (mean len {:.2}, fused pairs {})  [{}]",
                self.blocks_entered,
                self.mean_block_len().unwrap_or(0.0),
                self.fused_total(),
                by_kind
            )?;
        }
        if self.trace_entries > 0 {
            write!(
                f,
                "\ntraces {:>10} built (entries {}, exits {}, side exits {}, coverage {:.1}%)",
                self.traces_built,
                self.trace_entries,
                self.trace_exits,
                self.trace_side_exits,
                100.0 * self.trace_coverage()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retire_updates_histogram() {
        let mut s = ExecStats::new();
        s.retire(Opcode::Add);
        s.retire(Opcode::Add);
        s.retire(Opcode::Ldl);
        assert_eq!(s.instructions, 3);
        assert_eq!(s.opcode_counts[&Opcode::Add], 2);
        assert_eq!(s.category_counts()[&Category::Load], 1);
    }

    #[test]
    fn every_opcode_discriminant_fits_the_dense_histogram() {
        // The histogram indexes by `op as u8`; the 7-bit opcode field
        // guarantees this stays below OPCODE_SLOTS.
        for &op in Opcode::ALL {
            assert!((op as u8 as usize) < OPCODE_SLOTS, "{op:?}");
        }
    }

    #[test]
    fn histogram_map_accessor_matches_dense_counts() {
        let mut s = ExecStats::new();
        s.retire(Opcode::Add);
        s.retire(Opcode::Ldl);
        s.retire(Opcode::Ldl);
        let map = s.opcode_counts.to_map();
        assert_eq!(map.len(), 2, "only non-zero entries survive");
        assert_eq!(map[&Opcode::Add], 1);
        assert_eq!(map[&Opcode::Ldl], 2);
        assert_eq!(s.opcode_counts.total(), 3);
        assert_eq!(s.opcode_counts[Opcode::Add], 1);
        assert_eq!(s.opcode_counts.get(Opcode::Xor), 0);
    }

    #[test]
    fn rates_handle_zero_denominators() {
        let s = ExecStats::new();
        assert_eq!(s.cpi(), 0.0);
        assert_eq!(s.overflow_rate(), 0.0);
        assert_eq!(s.delay_slot_fill_rate(), None);
    }

    #[test]
    fn fill_rate() {
        let s = ExecStats {
            delay_slots: 10,
            delay_slot_nops: 4,
            ..ExecStats::new()
        };
        assert!((s.delay_slot_fill_rate().unwrap() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!ExecStats::new().to_string().is_empty());
    }

    #[test]
    fn equality_ignores_host_telemetry() {
        let a = ExecStats {
            instructions: 10,
            ..ExecStats::new()
        };
        let b = ExecStats {
            instructions: 10,
            fused_pairs: [3, 0, 1, 0, 2],
            blocks_entered: 4,
            block_instructions: 17,
            ..ExecStats::new()
        };
        assert_eq!(a, b, "telemetry must not affect equivalence laws");
        let c = ExecStats {
            instructions: 11,
            ..ExecStats::new()
        };
        assert_ne!(a, c, "architectural fields still compare");
    }

    #[test]
    fn equality_ignores_trace_telemetry() {
        // Pins the satellite requirement: the trace engine's counters are
        // host telemetry exactly like `fused_pairs` — never part of the
        // equivalence laws or snapshot checksums (snapshots serialize an
        // explicit architectural field list, so any field excluded here is
        // automatically excluded there).
        let a = ExecStats {
            instructions: 10,
            cycles: 40,
            ..ExecStats::new()
        };
        let b = ExecStats {
            instructions: 10,
            cycles: 40,
            traces_built: 3,
            trace_entries: 1000,
            trace_exits: 990,
            trace_side_exits: 10,
            trace_instructions: 9,
            ..ExecStats::new()
        };
        assert_eq!(a, b, "trace telemetry must not affect equivalence laws");
        assert!((b.trace_coverage() - 0.9).abs() < 1e-12);
        assert_eq!(ExecStats::new().trace_coverage(), 0.0);
    }

    #[test]
    fn fusion_accessors() {
        let s = ExecStats {
            fused_pairs: [2, 3, 4, 5, 6],
            blocks_entered: 2,
            block_instructions: 9,
            ..ExecStats::new()
        };
        assert_eq!(s.fused(FuseKind::CmpBranch), 2);
        assert_eq!(s.fused_total(), 20);
        assert!((s.mean_block_len().unwrap() - 4.5).abs() < 1e-12);
        assert_eq!(ExecStats::new().mean_block_len(), None);
        for (i, k) in FuseKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
            assert!(!k.name().is_empty());
        }
    }
}
