//! Trace compilation: hot chained superblock sequences lowered to
//! register-allocated trace IR (the `--engine trace` tier).
//!
//! The superblock engine still pays, per retired instruction, a window-map
//! register translation, a full opcode dispatch and half a dozen statistic
//! counter bumps. All three are loop-invariant for a hot loop: the CWP
//! cannot move inside a trace (window-moving ops end trace formation), so
//! register names resolve to *flat physical store indices* once, at build
//! time; the opcode stream is fixed, so the per-instruction stat deltas sum
//! to one precomputed bulk update applied at trace exit; and the surviving
//! dispatch is over a six-variant IR whose operands are already virtual
//! register numbers or immediates.
//!
//! ## Formation
//!
//! Superblocks carry a promotion heat counter and an exit-direction profile
//! (see [`crate::superblock::Block`]), bumped on every completed execution
//! under the trace engine. When a block's heat reaches [`HOT_THRESHOLD`]
//! the builder walks the chain from its entry: each block's prepared lines
//! are lowered in order (classification comes from the spec table's
//! [`Lowering`] column, so the builder holds no opcode list of its own),
//! conditional transfers take the direction their profile favours, and the
//! walk extends across up to [`MAX_TRACE_BLOCKS`] blocks until it loops
//! back to the entry (a *self-loop* trace — the valuable kind: iterations
//! re-run the IR without reloading or writing back the virtual register
//! file), reaches an excluded instruction, or runs out of profiled
//! successors. Non-looping traces shorter than [`MIN_STRAIGHT_INSNS`] are
//! declined — the entry/exit register traffic would cost more than the
//! dispatch they save. A declined build is never retried for the same hot
//! block (the trigger fires on exact heat equality), so cold spots cannot
//! thrash the builder.
//!
//! ## Guards and side exits
//!
//! Three ops can leave a trace early, each restoring *exactly* the state
//! the superblock engine would have at the same architectural point:
//! loads/stores that fault (the trace applies the per-op stat deltas for
//! everything already committed plus the faulting op's retire-side
//! accounting, then funnels the very same `StepEvent` through
//! `Cpu::finish_exec`), stores that hit the code-dirty channel (exit after
//! the store so a fresh build sees the new bytes), and direction guards on
//! conditional branches (the guard *is* the branch: a mismatch retires the
//! branch with its actual direction and resumes at the fall-through with
//! the actual pending target). Per-op static metadata ([`TMeta`]) carries
//! everything those exits need; nothing is recomputed from memory.
//!
//! ## Invalidation
//!
//! Traces register every page their instructions came from with
//! [`Memory::note_code_page`], exactly like the icache and block cache, and
//! [`Cpu::drain_code_invalidations`](crate::Cpu) fans each code-dirty event
//! out to all three. Like them, the whole structure is *derived* state —
//! absent from snapshots, journals, and checksums — and the four-engine
//! equivalence law in `interp_equivalence` holds with no new escape
//! hatches.

use crate::config::{BranchModel, SimConfig};
use crate::icache::Line;
use crate::mem::{CodeDirty, MemError, Memory, PAGE_BYTES};
use crate::stats::ExecStats;
use crate::superblock::{BOp, BlockCache};
use crate::windows::WindowFile;
use risc1_isa::spec::{self, Lowering};
use risc1_isa::{Cond, Opcode, Short2};
use std::sync::Arc;

/// Completed block executions before promotion to a trace. Compiling a
/// trace costs on the order of a thousand retired instructions' worth of
/// host time, so promotion must be earned: a block entered 64 times is
/// overwhelmingly loop flesh that will be entered thousands more, while
/// warm-but-cold-tail entries (short recursion bodies, init code) never
/// repay the build and are left to the superblock tier.
pub(crate) const HOT_THRESHOLD: u32 = 64;

/// Longest chain of blocks one trace may span.
const MAX_TRACE_BLOCKS: usize = 8;

/// Hard cap on instructions per trace.
const MAX_TRACE_INSNS: usize = 256;

/// Most live trace variants kept per entry PC. A block promotes at most
/// once per lifetime (the heat trigger is an exact-equality match), so
/// chains longer than one live variant only arise across invalidation
/// epochs; this bounds them until compaction clears the dead.
const MAX_VARIANTS: usize = 4;

/// Non-looping traces shorter than this are declined: the virtual register
/// load/writeback at entry/exit would outweigh the dispatch saved.
const MIN_STRAIGHT_INSNS: usize = 32;

/// Size of the executor's value array. Operand indices are `u8`, so a
/// 256-slot array makes every `v[idx as usize]` access provably in bounds —
/// the hot loop carries no bounds checks at all.
pub(crate) const VREG_SLOTS: usize = 256;

/// Highest vreg index the builder will allocate (leaving the array's
/// headroom as proof of in-boundedness). Registers take at most 36 slots
/// (9 writable globals + 26 windowed + the sink); the rest intern the
/// trace's distinct immediates as entry-loaded constants.
const VREG_LIMIT: usize = VREG_SLOTS;

/// Virtual register index of the write sink for r0 destinations (never
/// loaded, never written back). r0 *reads* come from an interned zero
/// constant instead — the sink slot holds garbage after any r0-dest write.
const SINK: u8 = 0;

/// Unproductive entries tolerated before a trace is disabled — the escape
/// valve for traces whose visits can't amortise the per-entry register
/// traffic: a self-loop trace over a loop whose trip count collapsed to
/// one, or a straight trace built along a profile the workload has since
/// stopped following. Left enabled, such a trace pays entry/replay cost on
/// every visit and *loses* to the superblock engine.
const STRIKE_LIMIT: u8 = 4;

/// Sentinel for "no trace" in the entry map and variant chain.
const NO_TRACE: u32 = u32::MAX;

/// One trace-IR operation. All register operands are virtual indices into
/// the run's value array; immediates were interned into entry-loaded
/// constant slots at build time, so the hot loop never branches on operand
/// kind. Everything address- or direction-static was folded at build time.
#[derive(Debug, Clone, Copy)]
pub(crate) enum TOp {
    /// ALU/shift op that does not latch flags — the common case, and the
    /// executor's fastest: the flag computation is dead code here.
    Alu {
        /// The opcode (dispatched via [`crate::exec::alu`]).
        op: Opcode,
        /// Destination vreg.
        d: u8,
        /// First operand vreg.
        a: u8,
        /// Second operand vreg.
        b: u8,
    },
    /// ALU/shift op with the `scc` bit set: latches flags.
    AluScc {
        /// The opcode.
        op: Opcode,
        /// Destination vreg.
        d: u8,
        /// First operand vreg.
        a: u8,
        /// Second operand vreg.
        b: u8,
    },
    /// LDHI — the value is a build-time constant.
    Const {
        /// Destination vreg.
        d: u8,
        /// `imm19 << 13`.
        value: u32,
    },
    /// A load; faults side-exit.
    Load {
        /// The load opcode (selects width/extension).
        op: Opcode,
        /// Destination vreg.
        d: u8,
        /// Base operand vreg.
        a: u8,
        /// Offset operand vreg.
        b: u8,
    },
    /// A store; faults and code-dirty hits side-exit.
    Store {
        /// The store opcode (selects width).
        op: Opcode,
        /// Data operand vreg.
        data: u8,
        /// Base operand vreg.
        a: u8,
        /// Offset operand vreg.
        b: u8,
    },
    /// Conditional PC-relative branch with a statically expected direction
    /// — the guard *is* the branch: agreeing with the profile continues the
    /// trace, disagreeing retires the branch with its actual direction and
    /// side-exits.
    Branch {
        /// The condition, evaluated on the live flags.
        cond: Cond,
        /// Static target (`pc + imm19`).
        target: u32,
        /// The profiled direction the trace was built along.
        expect: bool,
    },
    /// Unconditional (ALW) JMPR: pure static glue — the successor is baked
    /// into the trace, only the accounting remains.
    Jump,
}

/// Why a trace run stopped — produced by the executor's hot loop in
/// [`crate::cpu`], consumed by its exit epilogue.
#[derive(Debug)]
pub(crate) enum TExit {
    /// Every op ran; exit at the trace's precomputed final state.
    Complete,
    /// The store at op `k` completed but hit the code-dirty channel; exit
    /// *after* it so a fresh build sees the new bytes.
    Dirty {
        /// Index of the store.
        k: usize,
    },
    /// The branch at op `k` disagreed with its profiled direction; it
    /// retires with the actual direction and the trace exits at the
    /// fall-through.
    Mismatch {
        /// Index of the branch.
        k: usize,
        /// The actual direction.
        taken: bool,
        /// The (static) branch target.
        target: u32,
    },
    /// The access at op `k` faulted before committing.
    Fault {
        /// Index of the faulting op.
        k: usize,
        /// The faulting address.
        addr: u32,
        /// The underlying memory fault.
        err: MemError,
    },
}

/// Per-op static metadata: everything a side exit needs to reconstruct the
/// exact per-instruction accounting and restart state of the superblock
/// engine at this op.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TMeta {
    /// The op's instruction address.
    pub pc: u32,
    /// The delayed-jump target in flight when this op executes (`Some`
    /// exactly when the op sits in a taken transfer's delay slot).
    pub pending_before: Option<u32>,
    /// The opcode (for retire histograms).
    pub op: Opcode,
    /// Base cycle cost.
    pub base: u8,
    /// Whether the op pays a suspended-model bubble on the expected path.
    pub bubble: bool,
    /// Whether the expected path counts a taken transfer here.
    pub taken: bool,
    /// Memory-read op (counts `data_reads` on success).
    pub is_load: bool,
    /// Memory-write op (counts `data_writes` on success).
    pub is_store: bool,
    /// Whether the instruction is a canonical NOP (delay-slot accounting).
    pub nop: bool,
}

/// The precomputed bulk statistics update of one complete trace pass — the
/// sum of what `exec_prepared` would have counted per instruction.
#[derive(Debug, Clone, Default)]
pub(crate) struct TAgg {
    /// Retired instructions (= trace length).
    pub instructions: u64,
    /// Cycles including expected-path bubbles.
    pub cycles: u64,
    /// Suspended-model bubbles alone.
    pub bubble_cycles: u64,
    /// Successful loads.
    pub data_reads: u64,
    /// Successful stores.
    pub data_writes: u64,
    /// Taken transfers on the expected path.
    pub taken_transfers: u64,
    /// Ops executed in delay slots.
    pub delay_slots: u64,
    /// Of those, canonical NOPs.
    pub delay_slot_nops: u64,
    /// Opcode histogram, compact.
    pub opcodes: Vec<(Opcode, u32)>,
}

impl TAgg {
    /// Applies `n` complete passes in one update — the self-loop executor
    /// counts iterations locally and settles them all here, so the hot loop
    /// touches no statistics at all.
    pub(crate) fn apply_n(&self, stats: &mut ExecStats, n: u64) {
        stats.instructions += self.instructions * n;
        stats.ifetches += self.instructions * n;
        stats.cycles += self.cycles * n;
        stats.bubble_cycles += self.bubble_cycles * n;
        stats.data_reads += self.data_reads * n;
        stats.data_writes += self.data_writes * n;
        stats.taken_transfers += self.taken_transfers * n;
        stats.delay_slots += self.delay_slots * n;
        stats.delay_slot_nops += self.delay_slot_nops * n;
        for &(op, c) in &self.opcodes {
            stats.opcode_counts.add(op, u64::from(c) * n);
        }
    }

    fn from_meta(meta: &[TMeta]) -> TAgg {
        let mut agg = TAgg {
            instructions: meta.len() as u64,
            ..TAgg::default()
        };
        for m in meta {
            agg.cycles += u64::from(m.base) + u64::from(m.bubble);
            agg.bubble_cycles += u64::from(m.bubble);
            agg.data_reads += u64::from(m.is_load);
            agg.data_writes += u64::from(m.is_store);
            agg.taken_transfers += u64::from(m.taken);
            if m.pending_before.is_some() {
                agg.delay_slots += 1;
                agg.delay_slot_nops += u64::from(m.nop);
            }
            match agg.opcodes.iter_mut().find(|(op, _)| *op == m.op) {
                Some((_, n)) => *n += 1,
                None => agg.opcodes.push((m.op, 1)),
            }
        }
        agg
    }
}

/// One compiled trace.
#[derive(Debug, Clone)]
pub(crate) struct Trace {
    /// Entry PC.
    pub start: u32,
    /// The CWP the register flattening was computed for; entering at any
    /// other CWP must miss (flat indices differ per window).
    pub cwp: u8,
    /// The IR body.
    pub ops: Arc<[TOp]>,
    /// Per-op side-exit metadata, same length as `ops`.
    pub meta: Arc<[TMeta]>,
    /// The complete-pass bulk stats update.
    pub agg: Arc<TAgg>,
    /// `(vreg, flat store index)` loads performed at trace entry — every
    /// allocated vreg except the sink, so any side exit can write back
    /// architecturally-current values.
    pub live_in: Arc<[(u8, u16)]>,
    /// `(vreg, flat store index)` writebacks at any exit — the written
    /// subset of `live_in`.
    pub live_out: Arc<[(u8, u16)]>,
    /// `(vreg, value)` constants materialised at trace entry: the interned
    /// short-2 immediates, the r0 zero, loaded once — loop-invariant, so
    /// the op stream addresses them like any other vreg.
    pub consts: Arc<[(u8, u32)]>,
    /// Instructions retired by one complete pass.
    pub insns: u32,
    /// Whether the trace's fall-out lands exactly on its own entry with no
    /// jump in flight — iterations then re-run the IR without touching the
    /// window file.
    pub self_loop: bool,
    /// PC after a complete pass.
    pub final_pc: u32,
    /// Delayed-jump target in flight after a complete pass.
    pub final_pending: Option<u32>,
    /// `last_pc` after a complete pass (the last op's address).
    pub final_last_pc: u32,
    /// Cleared when a page the trace spans is invalidated.
    pub alive: bool,
    /// Cleared after [`STRIKE_LIMIT`] unproductive runs: the trace stops
    /// resolving (the superblock engine takes over) but keeps its variant
    /// slot, so nothing rebuilds or thrashes in its place.
    pub enabled: bool,
    /// Unproductive-run counter; productive runs pay one back.
    pub strikes: u8,
    /// Next variant (different build CWP) at the same entry, or
    /// [`NO_TRACE`].
    pub alt: u32,
}

/// The trace cache: compiled traces by entry PC with per-page registration
/// for invalidation, mirroring [`BlockCache`]'s layout decisions (the
/// direct map over word addresses, clear-the-world compaction).
#[derive(Debug, Clone)]
pub(crate) struct TraceCache {
    /// Entry PC → head of the variant chain (`map[pc/4]`), or
    /// [`NO_TRACE`]. Grown lazily like the block map.
    map: Vec<u32>,
    /// `map`'s target length in words.
    map_words: usize,
    traces: Vec<Trace>,
    /// Trace indices registered per memory page (dead entries filtered on
    /// use; rebuilt wholesale on compaction).
    by_page: Vec<Vec<u32>>,
    /// Dead traces awaiting compaction.
    dead: usize,
}

/// Dead traces tolerated before a wholesale clear.
const COMPACT_DEAD_MIN: usize = 64;

impl TraceCache {
    /// An empty cache over `page_count` memory pages.
    pub(crate) fn new(page_count: usize) -> TraceCache {
        TraceCache {
            map: Vec::new(),
            map_words: page_count * (PAGE_BYTES / 4),
            traces: Vec::new(),
            by_page: vec![Vec::new(); page_count],
            dead: 0,
        }
    }

    /// The trace at `idx`.
    #[inline]
    pub(crate) fn trace(&self, idx: u32) -> &Trace {
        &self.traces[idx as usize]
    }

    /// Finds a live, still-enabled trace entered at `pc` that was built
    /// for `cwp`.
    #[inline]
    pub(crate) fn resolve(&self, pc: u32, cwp: u8) -> Option<u32> {
        let mut idx = *self.map.get(pc as usize / 4)?;
        while idx != NO_TRACE {
            let t = &self.traces[idx as usize];
            if t.alive && t.enabled && t.start == pc && t.cwp == cwp {
                return Some(idx);
            }
            idx = t.alt;
        }
        None
    }

    /// Whether any variant — enabled or demoted — exists at `pc` for
    /// `cwp`. The build guard uses this (not [`TraceCache::resolve`]) so a
    /// demoted trace blocks rebuilding in its place.
    fn variant_for(&self, pc: u32, cwp: u8) -> bool {
        let Some(&head) = self.map.get(pc as usize / 4) else {
            return false;
        };
        let mut idx = head;
        while idx != NO_TRACE {
            let t = &self.traces[idx as usize];
            if t.alive && t.start == pc && t.cwp == cwp {
                return true;
            }
            idx = t.alt;
        }
        false
    }

    /// Settles one run's productivity (the executor judges what counts —
    /// a self-loop trace must complete at least two passes, a straight
    /// trace must retire at least half its body): a productive run pays a
    /// strike back; an unproductive one earns one, and at [`STRIKE_LIMIT`]
    /// the trace is demoted for good — entering it repeatedly costs more
    /// than the superblock path it displaced.
    pub(crate) fn note_run(&mut self, idx: u32, productive: bool) {
        let t = &mut self.traces[idx as usize];
        if productive {
            t.strikes = t.strikes.saturating_sub(1);
        } else {
            t.strikes += 1;
            if t.strikes >= STRIKE_LIMIT {
                t.enabled = false;
            }
        }
    }

    /// Live variants at `pc` (any CWP) — bounds the chain against
    /// [`MAX_VARIANTS`] when invalidation epochs rebuild an entry.
    #[inline]
    pub(crate) fn variants_at(&self, pc: u32) -> usize {
        let Some(&head) = self.map.get(pc as usize / 4) else {
            return 0;
        };
        let mut n = 0;
        let mut idx = head;
        while idx != NO_TRACE {
            let t = &self.traces[idx as usize];
            n += usize::from(t.alive);
            idx = t.alt;
        }
        n
    }

    /// Applies one invalidation event: kills every trace registered on the
    /// named page (or everything). All variants at an entry span the same
    /// pages (the chain walk is CWP-independent), so a page kill never
    /// orphans part of a variant chain.
    #[cold]
    pub(crate) fn invalidate(&mut self, d: CodeDirty) {
        match d {
            CodeDirty::Page(idx) => {
                let Some(list) = self.by_page.get_mut(idx) else {
                    return;
                };
                for ti in list.drain(..) {
                    if let Some(t) = self.traces.get_mut(ti as usize) {
                        if t.alive {
                            t.alive = false;
                            self.dead += 1;
                            if let Some(slot) = self.map.get_mut(t.start as usize / 4) {
                                *slot = NO_TRACE;
                            }
                        }
                    }
                }
            }
            CodeDirty::All => self.clear(),
        }
    }

    /// Drops everything.
    fn clear(&mut self) {
        self.map.fill(NO_TRACE);
        self.traces.clear();
        self.by_page.iter_mut().for_each(Vec::clear);
        self.dead = 0;
    }

    /// Clear-the-world compaction once dead traces dominate, mirroring the
    /// block cache's reasoning: indices are never reused while stale
    /// references could exist.
    fn maybe_compact(&mut self) {
        if self.dead > COMPACT_DEAD_MIN && self.dead * 2 > self.traces.len() {
            self.clear();
        }
    }

    /// Attempts to compile a trace entered at `start` for the register
    /// file's current window. Returns `None` when the entry is not worth
    /// (or not possible to) trace — callers never retry for the same heat
    /// trigger, so a decline is cheap and final.
    pub(crate) fn build(
        &mut self,
        mem: &mut Memory,
        blocks: &BlockCache,
        regs: &WindowFile,
        cfg: &SimConfig,
        start: u32,
    ) -> Option<u32> {
        let cwp = regs.cwp();
        if self.variant_for(start, cwp) || self.variants_at(start) >= MAX_VARIANTS {
            return None;
        }
        let mut b = Builder::new(cwp, regs, cfg);
        b.cursor = start;
        let mut pc = start;
        let mut self_loop = false;
        'blocks: for _ in 0..MAX_TRACE_BLOCKS {
            let Some(bidx) = blocks.lookup(pc) else {
                break;
            };
            let block = blocks.block(bidx);
            let profile = block.hot_exits;
            // The block body *is* the decoded line stream (fused pairs
            // carry their original halves), so the walk re-decodes
            // nothing from memory and — unlike a fresh decode, which
            // would run to the block's end — stops at the trace cap.
            // This keeps declined promotion attempts cheap.
            for op in block.ops.iter() {
                let (first, second) = match op {
                    BOp::One(l) => (l, None),
                    BOp::CmpBranch { a, b }
                    | BOp::LdhiImm { a, b, .. }
                    | BOp::TransferSlot { a, b }
                    | BOp::AddrFeed { a, b }
                    | BOp::AluPair { a, b } => (a, Some(b)),
                };
                for line in std::iter::once(first).chain(second) {
                    if b.meta.len() >= MAX_TRACE_INSNS || !b.push(line, profile) {
                        break 'blocks;
                    }
                }
            }
            if b.pending.is_some() {
                // The block ended on a taken transfer whose slot was left
                // out: the trace exits with the jump still in flight and
                // the single-step path runs the slot.
                break;
            }
            pc = b.cursor;
            if pc == start {
                self_loop = true;
                break;
            }
        }
        let t = b.finish(start, self_loop)?;

        let word = start as usize / 4;
        if self.map.len() <= word {
            let len = (word + 1)
                .next_power_of_two()
                .clamp(word + 1, self.map_words);
            self.map.resize(len, NO_TRACE);
        }
        self.maybe_compact();
        let idx = self.traces.len() as u32;
        let mut t = t;
        t.alt = self.map.get(word).copied().unwrap_or(NO_TRACE);
        // Register every page an instruction was lowered from; taken
        // branches can hop pages, so the span is the set of op addresses,
        // not an interval.
        let mut pages: Vec<usize> = t.meta.iter().map(|m| m.pc as usize / PAGE_BYTES).collect();
        pages.sort_unstable();
        pages.dedup();
        for page in pages {
            mem.note_code_page(page);
            if let Some(list) = self.by_page.get_mut(page) {
                list.push(idx);
            }
        }
        self.traces.push(t);
        if let Some(slot) = self.map.get_mut(word) {
            *slot = idx;
        }
        Some(idx)
    }
}

/// Build-time state: the virtual register allocator plus the static replica
/// of the PC dance (`cursor`/`pending` evolve exactly as `pc`/
/// `pending_target` would).
struct Builder<'a> {
    cwp: u8,
    regs: &'a WindowFile,
    suspended: bool,
    ops: Vec<TOp>,
    meta: Vec<TMeta>,
    /// flat store index → (vreg, written) for every allocated register.
    alloc: Vec<(u16, u8, bool)>,
    /// Interned immediates: value → vreg, loaded once at entry.
    consts: Vec<(u32, u8)>,
    next_vreg: u8,
    cursor: u32,
    pending: Option<u32>,
}

impl<'a> Builder<'a> {
    fn new(cwp: u8, regs: &'a WindowFile, cfg: &SimConfig) -> Builder<'a> {
        Builder {
            cwp,
            regs,
            suspended: cfg.branch_model == BranchModel::Suspended,
            ops: Vec::new(),
            meta: Vec::new(),
            alloc: Vec::new(),
            consts: Vec::new(),
            next_vreg: SINK + 1,
            cursor: 0,
            pending: None,
        }
    }

    /// The vreg backing flat store index `flat`, allocating on first touch.
    /// Callers checked headroom (`push` reserves three slots per op), so
    /// allocation cannot overflow the operand index space.
    fn vreg_for(&mut self, flat: u16, write: bool) -> u8 {
        for entry in &mut self.alloc {
            if entry.0 == flat {
                entry.2 |= write;
                return entry.1;
            }
        }
        let v = self.next_vreg;
        debug_assert!((v as usize) < VREG_LIMIT, "vreg file overflow");
        self.next_vreg += 1;
        self.alloc.push((flat, v, write));
        v
    }

    /// The vreg holding constant `value`, interning on first use. The
    /// constants are loop-invariant: loaded once at trace entry, read like
    /// any register thereafter — the hot loop never branches on operand
    /// kind.
    fn const_vreg(&mut self, value: u32) -> u8 {
        if let Some(&(_, v)) = self.consts.iter().find(|&&(c, _)| c == value) {
            return v;
        }
        let v = self.next_vreg;
        debug_assert!((v as usize) < VREG_LIMIT, "vreg file overflow");
        self.next_vreg += 1;
        self.consts.push((value, v));
        v
    }

    fn read_reg(&mut self, r: risc1_isa::Reg) -> u8 {
        if r.is_zero() {
            // Not the sink: r0-dest writes leave garbage there, while the
            // interned zero is never written.
            return self.const_vreg(0);
        }
        let flat = self.regs.flat_index(self.cwp as usize, r);
        self.vreg_for(flat, false)
    }

    fn write_reg(&mut self, r: risc1_isa::Reg) -> u8 {
        if r.is_zero() {
            return SINK;
        }
        let flat = self.regs.flat_index(self.cwp as usize, r);
        self.vreg_for(flat, true)
    }

    fn read_s2(&mut self, s2: Short2) -> u8 {
        match s2 {
            Short2::Reg(r) => self.read_reg(r),
            Short2::Imm(v) => self.const_vreg(v as i32 as u32),
        }
    }

    /// Lowers one prepared line at the cursor. Returns `false` (consuming
    /// nothing) when the op ends trace formation; the cursor and pending
    /// state then already describe the continuation point.
    fn push(&mut self, line: &Line, profile: [u32; 2]) -> bool {
        let lowering = spec::entry(line.op).lowering();
        if lowering == Lowering::Excluded {
            return false;
        }
        // An op allocates at most three fresh vregs; reserving them up
        // front keeps every operand index inside the executor's value
        // array by construction.
        if self.next_vreg as usize + 3 > VREG_LIMIT {
            return false;
        }
        let pc = self.cursor;
        let pending_before = self.pending;
        let mut taken = false;
        let mut new_target = None;
        let op = match lowering {
            Lowering::Alu => {
                let a = self.read_reg(line.rs1);
                let b = self.read_s2(line.s2);
                let d = self.write_reg(line.dest);
                if line.scc {
                    TOp::AluScc {
                        op: line.op,
                        d,
                        a,
                        b,
                    }
                } else {
                    TOp::Alu {
                        op: line.op,
                        d,
                        a,
                        b,
                    }
                }
            }
            Lowering::Const => {
                let d = self.write_reg(line.dest);
                TOp::Const {
                    d,
                    value: (line.imm19 as u32) << 13,
                }
            }
            Lowering::Load => {
                let a = self.read_reg(line.rs1);
                let b = self.read_s2(line.s2);
                let d = self.write_reg(line.dest);
                TOp::Load {
                    op: line.op,
                    d,
                    a,
                    b,
                }
            }
            Lowering::Store => {
                let a = self.read_reg(line.rs1);
                let b = self.read_s2(line.s2);
                let data = self.read_reg(line.dest);
                TOp::Store {
                    op: line.op,
                    data,
                    a,
                    b,
                }
            }
            Lowering::RelBranch => {
                if !line.long {
                    return false;
                }
                debug_assert!(
                    pending_before.is_none(),
                    "collect_lines never puts a transfer in a delay slot"
                );
                let target = pc.wrapping_add(line.imm19 as u32);
                let expect = match line.cond {
                    Cond::Alw => true,
                    Cond::Nvr => false,
                    _ => profile[1] > profile[0],
                };
                taken = expect;
                new_target = expect.then_some(target);
                if line.cond == Cond::Alw {
                    TOp::Jump
                } else {
                    TOp::Branch {
                        cond: line.cond,
                        target,
                        expect,
                    }
                }
            }
            Lowering::Excluded => unreachable!(),
        };
        self.ops.push(op);
        self.meta.push(TMeta {
            pc,
            pending_before,
            op: line.op,
            base: line.base_cycles,
            bubble: self.suspended && taken,
            taken,
            is_load: lowering == Lowering::Load,
            is_store: lowering == Lowering::Store,
            nop: line.insn.is_nop(),
        });
        // The static replica of the executor's PC dance.
        let next = pending_before.unwrap_or_else(|| pc.wrapping_add(4));
        self.pending = new_target;
        self.cursor = next;
        true
    }

    fn finish(self, start: u32, self_loop: bool) -> Option<Trace> {
        if self.meta.is_empty() || !(self_loop || self.meta.len() >= MIN_STRAIGHT_INSNS) {
            return None;
        }
        debug_assert!(!self_loop || self.pending.is_none());
        let live_in: Vec<(u8, u16)> = self.alloc.iter().map(|&(f, v, _)| (v, f)).collect();
        let live_out: Vec<(u8, u16)> = self
            .alloc
            .iter()
            .filter(|&&(_, _, w)| w)
            .map(|&(f, v, _)| (v, f))
            .collect();
        let consts: Vec<(u8, u32)> = self.consts.iter().map(|&(c, v)| (v, c)).collect();
        let agg = TAgg::from_meta(&self.meta);
        let final_last_pc = self.meta.last().map(|m| m.pc).unwrap_or(start);
        Some(Trace {
            start,
            cwp: self.cwp,
            insns: self.meta.len() as u32,
            ops: self.ops.into(),
            meta: self.meta.into(),
            agg: Arc::new(agg),
            live_in: live_in.into(),
            live_out: live_out.into(),
            consts: consts.into(),
            self_loop,
            final_pc: self.cursor,
            final_pending: self.pending,
            final_last_pc,
            alive: true,
            enabled: true,
            strikes: 0,
            alt: NO_TRACE,
        })
    }
}

/// Builds a trace with its entry marked hot enough, for tests: constructs
/// the block, saturates its heat profile along `taken_exit`, then compiles.
#[cfg(test)]
fn build_hot(
    cache: &mut TraceCache,
    mem: &mut Memory,
    blocks: &mut BlockCache,
    regs: &WindowFile,
    cfg: &SimConfig,
    start: u32,
    taken_exit: bool,
) -> Option<u32> {
    let mut pc = start;
    for _ in 0..MAX_TRACE_BLOCKS {
        let Some(idx) = blocks.lookup(pc).or_else(|| blocks.build(mem, pc, cfg)) else {
            break;
        };
        for _ in 0..HOT_THRESHOLD {
            blocks.bump_heat(idx, taken_exit);
        }
        let b = blocks.block(idx);
        pc = if taken_exit {
            let transfer = b.end.wrapping_sub(if b.insns >= 2 { 8 } else { 4 });
            let line =
                crate::superblock::collect_lines(mem, transfer).and_then(|l| l.first().copied())?;
            transfer.wrapping_add(line.imm19 as u32)
        } else {
            b.end
        };
        if pc == start {
            break;
        }
    }
    cache.build(mem, blocks, regs, cfg, start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use risc1_isa::{Instruction, Reg};

    fn add(dest: Reg, rs1: Reg, imm: i32) -> u32 {
        Instruction::reg(Opcode::Add, dest, rs1, Short2::imm(imm).unwrap()).encode()
    }

    fn mem_with(words: &[u32]) -> Memory {
        let mut mem = Memory::new(4 * PAGE_BYTES);
        for (i, &w) in words.iter().enumerate() {
            mem.write_u32(4 * i as u32, w).unwrap();
        }
        mem
    }

    /// A two-block self loop: count down r16 from the entry, branch back
    /// while not equal.
    fn countdown_loop() -> Vec<u32> {
        vec![
            add(Reg::R17, Reg::R17, 3), // 0x0
            Instruction::reg_scc(Opcode::Sub, Reg::R16, Reg::R16, Short2::imm(1).unwrap()).encode(), // 0x4
            Instruction::jmpr(Cond::Ne, -8).encode(), // 0x8 → 0x0
            add(Reg::R18, Reg::R18, 1),               // 0xc (slot)
        ]
    }

    #[test]
    fn self_loop_trace_forms_with_flat_registers() {
        let cfg = SimConfig::default();
        let mut mem = mem_with(&countdown_loop());
        let mut blocks = BlockCache::new(mem.page_count());
        let regs = WindowFile::new(cfg.windows);
        let mut cache = TraceCache::new(mem.page_count());
        let idx =
            build_hot(&mut cache, &mut mem, &mut blocks, &regs, &cfg, 0, true).expect("promotes");
        let t = cache.trace(idx);
        assert!(t.self_loop, "loops back to its entry");
        assert_eq!(t.insns, 4);
        assert_eq!(t.final_pc, 0);
        assert_eq!(t.final_pending, None);
        assert_eq!(t.final_last_pc, 0xc, "the slot is the last op");
        // The slot rides in the taken branch's delay slot.
        assert_eq!(t.meta[3].pending_before, Some(0));
        assert_eq!(t.agg.instructions, 4);
        assert_eq!(t.agg.taken_transfers, 1);
        assert_eq!(t.agg.delay_slots, 1);
        // r16, r17, r18 live; r16/r17/r18 all written.
        assert_eq!(t.live_in.len(), 3);
        assert_eq!(t.live_out.len(), 3);
        assert_eq!(cache.resolve(0, regs.cwp()), Some(idx));
        assert_eq!(
            cache.resolve(0, regs.cwp() + 1),
            None,
            "other window misses"
        );
    }

    #[test]
    fn aggregate_matches_per_op_metadata() {
        let cfg = SimConfig::default();
        let mut mem = mem_with(&countdown_loop());
        let mut blocks = BlockCache::new(mem.page_count());
        let regs = WindowFile::new(cfg.windows);
        let mut cache = TraceCache::new(mem.page_count());
        let idx =
            build_hot(&mut cache, &mut mem, &mut blocks, &regs, &cfg, 0, true).expect("promotes");
        let t = cache.trace(idx);
        // Applying the bulk aggregate must equal replaying the per-op
        // metadata the side exits use — the exits' exactness rests on it.
        let mut bulk = ExecStats::new();
        t.agg.apply_n(&mut bulk, 1);
        let mut sum = ExecStats::new();
        for m in t.meta.iter() {
            sum.retire(m.op);
            if m.pending_before.is_some() {
                sum.delay_slots += 1;
                sum.delay_slot_nops += u64::from(m.nop);
            }
            sum.cycles += u64::from(m.base) + u64::from(m.bubble);
            sum.bubble_cycles += u64::from(m.bubble);
            sum.data_reads += u64::from(m.is_load);
            sum.data_writes += u64::from(m.is_store);
            sum.taken_transfers += u64::from(m.taken);
        }
        assert_eq!(bulk, sum);
        assert_eq!(bulk.ifetches, sum.ifetches);
        assert_eq!(bulk.cycles, sum.cycles);
        assert_eq!(bulk.opcode_counts, sum.opcode_counts);
    }

    #[test]
    fn short_straight_traces_are_declined_and_window_ops_end_formation() {
        let cfg = SimConfig::default();
        // add; add; ret — the RET excludes, leaving a 2-op straight trace:
        // below MIN_STRAIGHT_INSNS, so the build declines.
        let mut mem = mem_with(&[
            add(Reg::R16, Reg::R0, 1),
            add(Reg::R17, Reg::R16, 2),
            Instruction::ret(Reg::R25, Short2::imm(0).unwrap()).encode(),
            add(Reg::R0, Reg::R0, 0),
        ]);
        let mut blocks = BlockCache::new(mem.page_count());
        let regs = WindowFile::new(cfg.windows);
        let mut cache = TraceCache::new(mem.page_count());
        assert!(build_hot(&mut cache, &mut mem, &mut blocks, &regs, &cfg, 0, false).is_none());
    }

    #[test]
    fn invalidation_kills_traces_and_resolve_misses() {
        let cfg = SimConfig::default();
        let mut mem = mem_with(&countdown_loop());
        let mut blocks = BlockCache::new(mem.page_count());
        let regs = WindowFile::new(cfg.windows);
        let mut cache = TraceCache::new(mem.page_count());
        let idx =
            build_hot(&mut cache, &mut mem, &mut blocks, &regs, &cfg, 0, true).expect("promotes");
        assert_eq!(cache.resolve(0, regs.cwp()), Some(idx));
        cache.invalidate(CodeDirty::Page(0));
        assert_eq!(cache.resolve(0, regs.cwp()), None, "page kill");
        assert_eq!(cache.variants_at(0), 0);
        let idx2 =
            build_hot(&mut cache, &mut mem, &mut blocks, &regs, &cfg, 0, true).expect("rebuilds");
        cache.invalidate(CodeDirty::All);
        assert!(cache.traces.is_empty(), "All is a full clear");
        let _ = idx2;
    }

    #[test]
    fn variant_chain_is_per_cwp_and_capped() {
        let cfg = SimConfig::default();
        let mut mem = mem_with(&countdown_loop());
        let mut blocks = BlockCache::new(mem.page_count());
        let mut regs = WindowFile::new(cfg.windows);
        let mut cache = TraceCache::new(mem.page_count());
        let first =
            build_hot(&mut cache, &mut mem, &mut blocks, &regs, &cfg, 0, true).expect("cwp 0");
        // Duplicate build for the same cwp is refused.
        assert!(cache.build(&mut mem, &blocks, &regs, &cfg, 0).is_none());
        // New windows get their own variants up to the cap.
        let mut built = vec![first];
        for _ in 0..MAX_VARIANTS + 1 {
            regs.advance();
            if let Some(i) = cache.build(&mut mem, &blocks, &regs, &cfg, 0) {
                built.push(i);
            }
        }
        assert_eq!(built.len(), MAX_VARIANTS, "cap holds");
        // Every built variant resolves under its own cwp.
        for &i in &built {
            let t = cache.trace(i).clone();
            assert_eq!(cache.resolve(0, t.cwp), Some(i));
        }
    }
}
