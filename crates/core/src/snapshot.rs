//! Versioned, checksummed CPU snapshots and incremental checkpointing.
//!
//! A [`Snapshot`] is the complete state of a [`Cpu`] — register windows,
//! trap state, PSW, pc/lastpc, statistics, and memory — captured so that
//! [`Cpu::restore`] continues execution **bit-identically** to a run that
//! was never interrupted. Every snapshot carries a format version and an
//! FNV-1a checksum over its entire contents, verified on restore.
//!
//! A [`Checkpointer`] makes periodic snapshots cheap: it holds one snapshot
//! image and, at each checkpoint, copies only the memory pages written
//! since the previous one (the [`Memory`] dirty-page map), re-hashing just
//! those pages. The cost of each checkpoint is *modeled in cycles*
//! (deterministically, so experiments comparing checkpoint overhead are
//! reproducible in CI): a fixed [`CKPT_BASE_CYCLES`] for the register/state
//! copy plus one cycle per memory word copied.

use crate::config::{BranchModel, ExecEngine, SimConfig};
use crate::cpu::{Cpu, PhysId, Retired};
use crate::journal::{read_config, write_config};
use crate::json::{get, Json, JsonError, Parser, Writer};
use crate::mem::{MemTraffic, Memory, PAGE_BYTES};
use crate::stats::ExecStats;
use crate::trap::TrapKind;
use crate::windows::WindowFile;
use risc1_isa::psw::Flags;
use risc1_isa::{Instruction, Opcode};
use std::fmt;

/// Snapshot format version; bumped whenever the captured state changes
/// shape. Restore refuses snapshots from a different version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Admission limit on the simulated-memory size a *deserialized* snapshot
/// may declare. Wire snapshots are untrusted; without this bound a
/// one-line frame could make the server allocate arbitrary memory.
pub const MAX_SNAPSHOT_MEM_BYTES: usize = 64 << 20;

/// Admission limit on the register-window count a deserialized snapshot's
/// configuration may declare (the paper built 8; experiments sweep a few
/// dozen).
pub const MAX_SNAPSHOT_WINDOWS: usize = 1024;

/// Admission limit on the retired-instruction trace a deserialized
/// snapshot may carry.
pub const MAX_SNAPSHOT_TRACE: usize = 1 << 20;

/// Modeled fixed cost of one incremental checkpoint, in cycles: the
/// register file (138 words), the processor state words, and bookkeeping.
/// Dirty memory pages add one cycle per word copied on top.
pub const CKPT_BASE_CYCLES: u64 = 160;

/// A 64-bit FNV-1a hasher — small, deterministic, dependency-free. Used
/// for snapshot checksums and per-page memory digests.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv64 {
        Fnv64(Self::OFFSET)
    }

    /// Absorbs one byte.
    pub fn write_u8(&mut self, b: u8) {
        self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
    }

    /// Absorbs a byte slice.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    /// Absorbs a 64-bit word (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// The digest of everything absorbed so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// FNV-1a digest of one memory page — the per-page unit the snapshot
/// checksum, the incremental checkpointer and the shard stitcher's
/// dirty-page overlay law all agree on.
pub fn page_sum(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write_bytes(bytes);
    h.finish()
}

/// The register/state half of a snapshot: every field of the processor
/// except memory. Captured and applied by `Cpu::capture_state` /
/// `Cpu::apply_state` (the fields are module-private to `cpu`).
#[derive(Debug, Clone)]
pub(crate) struct CpuState {
    pub(crate) regs: WindowFile,
    pub(crate) pc: u32,
    pub(crate) last_pc: u32,
    pub(crate) flags: Flags,
    pub(crate) interrupts_enabled: bool,
    pub(crate) wstack_ptr: u32,
    pub(crate) pending_target: Option<u32>,
    pub(crate) last_write: Option<(PhysId, bool)>,
    pub(crate) halted: bool,
    pub(crate) stats: ExecStats,
    pub(crate) trace: Vec<Retired>,
    pub(crate) interrupt_handler: Option<u32>,
    pub(crate) interrupt_pending: bool,
    pub(crate) trap_handlers: [Option<u32>; TrapKind::COUNT],
    pub(crate) active_trap: Option<TrapKind>,
    pub(crate) pending_probe: Option<TrapKind>,
    pub(crate) fuel_limit: u64,
    pub(crate) last_snapshot: Option<u64>,
    pub(crate) journal_pos: Option<u64>,
}

fn hash_opt_u64(h: &mut Fnv64, v: Option<u64>) {
    match v {
        None => h.write_u64(0),
        Some(x) => {
            h.write_u64(1);
            h.write_u64(x);
        }
    }
}

/// Hashes the *architectural* counters only — the same set `ExecStats`'s
/// `PartialEq` compares. Host telemetry (`fused_pairs`, `blocks_entered`,
/// `block_instructions`) depends on how the timeline was chopped into
/// bursts, and the snapshot round-trip law quantifies over choppings.
fn hash_stats(h: &mut Fnv64, s: &ExecStats) {
    for v in [
        s.instructions,
        s.cycles,
        s.bubble_cycles,
        s.ifetches,
        s.data_reads,
        s.data_writes,
        s.calls,
        s.rets,
        s.taken_transfers,
        s.window_overflows,
        s.window_underflows,
        s.trap_cycles,
        s.delay_slots,
        s.delay_slot_nops,
        s.max_depth,
        s.trap_entries,
        s.trap_returns,
        s.trap_entry_cycles,
        s.interrupts_taken,
    ] {
        h.write_u64(v);
    }
    for &c in &s.trap_counts {
        h.write_u64(c);
    }
    // The opcode histogram, in the ISA's fixed order.
    for &op in Opcode::ALL {
        h.write_u64(s.opcode_counts.get(op));
    }
}

impl CpuState {
    fn hash_into(&self, h: &mut Fnv64) {
        self.hash_arch_into(h);
        // Host-side bookkeeping: which checkpoint/journal position was
        // last noted. Part of the full snapshot checksum (a restore brings
        // them back bit-for-bit) but deliberately *not* part of
        // `hash_arch_into` — see `Snapshot::arch_digest`.
        hash_opt_u64(h, self.last_snapshot);
        hash_opt_u64(h, self.journal_pos);
    }

    /// Hashes every field that belongs to the simulated machine itself:
    /// registers, pc/lastpc, PSW, window stack, pending delayed transfer,
    /// trap unit, fuel, architectural statistics and the retirement trace.
    /// Excludes `last_snapshot`/`journal_pos`, which describe what the
    /// *host* did around the run (checkpoint ids, journal cursors) and
    /// legitimately differ between a checkpointed first pass and a shard
    /// re-executing the same instructions.
    pub(crate) fn hash_arch_into(&self, h: &mut Fnv64) {
        self.regs.for_each_word(|w| h.write_u64(w));
        h.write_u64(u64::from(self.pc));
        h.write_u64(u64::from(self.last_pc));
        let Flags { z, n, v, c } = self.flags;
        h.write_u8(u8::from(z) | u8::from(n) << 1 | u8::from(v) << 2 | u8::from(c) << 3);
        h.write_u8(u8::from(self.interrupts_enabled));
        h.write_u64(u64::from(self.wstack_ptr));
        hash_opt_u64(h, self.pending_target.map(u64::from));
        match self.last_write {
            None => h.write_u64(0),
            Some((PhysId::Global(g), load)) => {
                h.write_u64(1);
                h.write_u64(u64::from(g));
                h.write_u8(u8::from(load));
            }
            Some((PhysId::Ring(i), load)) => {
                h.write_u64(2);
                h.write_u64(i as u64);
                h.write_u8(u8::from(load));
            }
        }
        h.write_u8(u8::from(self.halted));
        hash_stats(h, &self.stats);
        h.write_u64(self.trace.len() as u64);
        for r in &self.trace {
            h.write_u64(u64::from(r.pc));
            h.write_u64(u64::from(r.insn.encode()));
            h.write_u64(r.start_cycle);
            h.write_u64(r.cycles);
            h.write_u8(u8::from(r.in_delay_slot));
        }
        hash_opt_u64(h, self.interrupt_handler.map(u64::from));
        h.write_u8(u8::from(self.interrupt_pending));
        for t in self.trap_handlers {
            hash_opt_u64(h, t.map(u64::from));
        }
        hash_opt_u64(h, self.active_trap.map(|k| u64::from(k.code())));
        hash_opt_u64(h, self.pending_probe.map(|k| u64::from(k.code())));
        h.write_u64(self.fuel_limit);
    }
}

/// [`Snapshot::arch_digest`] computed straight off a live CPU, without
/// cloning its memory into a full snapshot first (the implementation
/// behind [`Cpu::arch_digest`]).
pub(crate) fn arch_digest_of(cpu: &Cpu) -> u64 {
    let mut h = Fnv64::new();
    cpu.capture_state().hash_arch_into(&mut h);
    h.write_u64(cpu.mem.page_count() as u64);
    for i in 0..cpu.mem.page_count() {
        h.write_u64(page_sum(cpu.mem.page(i)));
    }
    h.finish()
}

/// Stable FNV-1a digest of a complete [`SimConfig`] — every field that
/// affects simulated behaviour, including the engine tier and fusion
/// toggles. Used three ways: inside snapshot checksums, in
/// [`RestoreError::ConfigMismatch`] diagnostics (expected-vs-found), and
/// as the `config_hash` component of the serve layer's job-dedup key.
pub fn config_hash(cfg: &SimConfig) -> u64 {
    let mut h = Fnv64::new();
    hash_config(&mut h, cfg);
    h.finish()
}

fn hash_config(h: &mut Fnv64, cfg: &SimConfig) {
    h.write_u64(cfg.windows as u64);
    h.write_u64(cfg.mem_bytes as u64);
    h.write_u64(u64::from(cfg.code_base));
    h.write_u64(u64::from(cfg.stack_top));
    h.write_u64(u64::from(cfg.window_stack_top));
    h.write_u64(cfg.trap_overhead_cycles);
    h.write_u8(match cfg.branch_model {
        BranchModel::Delayed => 0,
        BranchModel::Suspended => 1,
    });
    h.write_u8(u8::from(cfg.forwarding));
    h.write_u64(cfg.fuel);
    hash_opt_u64(h, cfg.trap_base.map(u64::from));
    h.write_u8(u8::from(cfg.record_trace));
    h.write_u8(match cfg.engine {
        ExecEngine::Uncached => 0,
        ExecEngine::Cached => 1,
        ExecEngine::Superblock => 2,
        ExecEngine::Trace => 3,
    });
    h.write_u8(
        u8::from(cfg.fusion.cmp_branch)
            | u8::from(cfg.fusion.ldhi_imm) << 1
            | u8::from(cfg.fusion.transfer_slot) << 2
            | u8::from(cfg.fusion.addr_feed) << 3
            | u8::from(cfg.fusion.alu_pair) << 4,
    );
}

/// Why a snapshot could not be restored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestoreError {
    /// The snapshot was written by a different format version.
    Version {
        /// Version found in the snapshot.
        found: u32,
        /// Version this build restores.
        expected: u32,
    },
    /// The snapshot was captured under a different [`SimConfig`] than the
    /// CPU being restored (window count, memory size, timing model…). The
    /// digests are [`config_hash`] values; the engine names are carried
    /// separately because an engine-tier mismatch is by far the most
    /// common way to hit this in practice, and the hash alone cannot say
    /// which field diverged.
    ConfigMismatch {
        /// [`config_hash`] of the configuration the snapshot was captured
        /// under (what the restore expected to find on the CPU).
        expected: u64,
        /// [`config_hash`] of the CPU the restore was attempted on.
        found: u64,
        /// Engine tier recorded in the snapshot.
        expected_engine: &'static str,
        /// Engine tier of the CPU being restored.
        found_engine: &'static str,
    },
    /// The snapshot's contents no longer match its checksum.
    Corrupt {
        /// Checksum stored at capture time.
        expected: u64,
        /// Checksum recomputed over the current contents.
        found: u64,
    },
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::Version { found, expected } => {
                write!(
                    f,
                    "snapshot version {found} (this build restores {expected})"
                )
            }
            RestoreError::ConfigMismatch {
                expected,
                found,
                expected_engine,
                found_engine,
            } => {
                write!(
                    f,
                    "snapshot was captured under a different configuration: \
                     config hash {expected:#018x} (engine {expected_engine}) \
                     vs this CPU's {found:#018x} (engine {found_engine})"
                )
            }
            RestoreError::Corrupt { expected, found } => write!(
                f,
                "snapshot checksum mismatch: stored {expected:#018x}, recomputed {found:#018x}"
            ),
        }
    }
}

impl std::error::Error for RestoreError {}

/// A complete, self-verifying capture of one simulated machine.
#[derive(Debug, Clone)]
pub struct Snapshot {
    version: u32,
    id: u64,
    at_instruction: u64,
    cfg: SimConfig,
    state: CpuState,
    mem: Memory,
    page_sums: Vec<u64>,
    checksum: u64,
}

impl Snapshot {
    /// Captures the full state of `cpu` under the given id.
    pub(crate) fn capture(cpu: &Cpu, id: u64) -> Snapshot {
        let state = cpu.capture_state();
        let mem = cpu.mem.clone();
        let page_sums = (0..mem.page_count())
            .map(|i| page_sum(mem.page(i)))
            .collect();
        let mut snap = Snapshot {
            version: SNAPSHOT_VERSION,
            id,
            at_instruction: state.stats.instructions,
            cfg: cpu.config().clone(),
            state,
            mem,
            page_sums,
            checksum: 0,
        };
        snap.checksum = snap.compute_checksum();
        snap
    }

    /// Format version the snapshot was captured with.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The snapshot's id (0 for ad-hoc [`Cpu::snapshot`] captures,
    /// monotonically increasing for [`Checkpointer`] checkpoints).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Instructions retired when the snapshot was taken.
    pub fn at_instruction(&self) -> u64 {
        self.at_instruction
    }

    /// The checksum stored at capture time.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// The configuration the snapshot was captured under.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Per-page [`page_sum`] digests of the captured memory, in page
    /// order. The shard stitcher's overlay law folds per-shard dirty-page
    /// digests over a baseline's sums and compares against the final
    /// capture's sums.
    pub fn page_sums(&self) -> &[u64] {
        &self.page_sums
    }

    /// Digest of version, id, configuration, register/trap state, and the
    /// per-page memory digests.
    fn compute_checksum(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(u64::from(self.version));
        h.write_u64(self.id);
        h.write_u64(self.at_instruction);
        hash_config(&mut h, &self.cfg);
        self.state.hash_into(&mut h);
        h.write_u64(self.page_sums.len() as u64);
        for &s in &self.page_sums {
            h.write_u64(s);
        }
        h.finish()
    }

    /// Digest of the *simulated machine* alone: architectural register and
    /// trap state, architectural statistics, and the per-page memory
    /// digests. Excludes the snapshot id, the capture configuration and
    /// the host bookkeeping fields (`last_snapshot`/`journal_pos`).
    ///
    /// Two snapshots with equal `arch_digest` describe the same machine at
    /// the same point of the same run, no matter which engine tier got it
    /// there, whether checkpoints were taken along the way, or what id the
    /// capture carries. This is the equality the shard stitcher checks at
    /// every shard boundary (see `risc1-ir`'s `shard` module).
    pub fn arch_digest(&self) -> u64 {
        let mut h = Fnv64::new();
        self.state.hash_arch_into(&mut h);
        h.write_u64(self.page_sums.len() as u64);
        for &s in &self.page_sums {
            h.write_u64(s);
        }
        h.finish()
    }

    /// Rewrites the engine tier the snapshot restores into, recomputing
    /// the checksum so the result still verifies.
    ///
    /// This is sound because the engine tiers are architecturally
    /// bit-identical (the repository's four-engine equivalence law): no
    /// captured field depends on the tier, and the predecode/superblock/
    /// trace caches a tier maintains are derived state rebuilt after any
    /// restore. Rebinding only changes which `SimConfig` the snapshot
    /// expects at [`Cpu::restore`] time — it is how a trace-engine
    /// planning pass hands snapshots to shards running a different tier,
    /// and how the cross-engine resume law is stated.
    pub fn rebind_engine(&mut self, engine: ExecEngine) {
        self.cfg.engine = engine;
        self.checksum = self.compute_checksum();
    }

    /// Verifies the snapshot against its stored checksum.
    ///
    /// # Errors
    /// [`RestoreError::Corrupt`] when the contents have changed since
    /// capture.
    pub fn verify(&self) -> Result<(), RestoreError> {
        let found = self.compute_checksum();
        if found != self.checksum {
            return Err(RestoreError::Corrupt {
                expected: self.checksum,
                found,
            });
        }
        Ok(())
    }

    /// Restores `cpu` to this snapshot's exact state (the implementation
    /// behind [`Cpu::restore`]).
    pub(crate) fn restore_into(&self, cpu: &mut Cpu) -> Result<(), RestoreError> {
        if self.version != SNAPSHOT_VERSION {
            return Err(RestoreError::Version {
                found: self.version,
                expected: SNAPSHOT_VERSION,
            });
        }
        if *cpu.config() != self.cfg {
            return Err(RestoreError::ConfigMismatch {
                expected: config_hash(&self.cfg),
                found: config_hash(cpu.config()),
                expected_engine: self.cfg.engine.name(),
                found_engine: cpu.config().engine.name(),
            });
        }
        self.verify()?;
        cpu.apply_state(&self.state);
        cpu.mem = self.mem.clone();
        // The incremental baseline (if any) no longer matches this memory:
        // force the next checkpoint to treat every page as dirty unless a
        // Checkpointer re-establishes the baseline (see its `rollback`).
        cpu.mem.mark_all_dirty();
        Ok(())
    }

    /// Serializes the snapshot into the current position of `w` as one
    /// JSON object. Memory is sparse — only pages with a nonzero byte are
    /// emitted — so snapshots of mostly-empty address spaces stay small.
    pub fn write_json(&self, w: &mut Writer) {
        w.obj_open();
        w.key("version");
        w.num(i128::from(self.version));
        w.key("id");
        w.num(i128::from(self.id));
        w.key("at_instruction");
        w.num(i128::from(self.at_instruction));
        w.key("cfg");
        write_config(w, &self.cfg);
        w.key("state");
        self.write_state(w);
        w.key("mem_bytes");
        w.num(self.mem.size() as i128);
        w.key("traffic");
        w.obj_open();
        w.key("reads");
        w.num(i128::from(self.mem.traffic().reads));
        w.key("writes");
        w.num(i128::from(self.mem.traffic().writes));
        w.obj_close();
        w.key("pages");
        w.arr_open();
        for idx in 0..self.mem.page_count() {
            let page = self.mem.page(idx);
            if page.iter().all(|&b| b == 0) {
                continue;
            }
            w.arr_open();
            w.num(idx as i128);
            w.arr_open();
            for &b in page {
                w.num(i128::from(b));
            }
            w.arr_close();
            w.arr_close();
        }
        w.arr_close();
        w.key("checksum");
        w.num(i128::from(self.checksum));
        w.obj_close();
    }

    fn write_state(&self, w: &mut Writer) {
        let s = &self.state;
        w.obj_open();
        w.key("store");
        w.arr_open();
        for &word in s.regs.export_store() {
            w.num(i128::from(word));
        }
        w.arr_close();
        let (cwp, resident, depth, spilled, max_depth, overflows, underflows) =
            s.regs.export_counters();
        for (key, v) in [
            ("cwp", cwp),
            ("resident", resident),
            ("depth", depth),
            ("spilled", spilled),
            ("max_depth", max_depth),
            ("overflows", overflows),
            ("underflows", underflows),
        ] {
            w.key(key);
            w.num(i128::from(v));
        }
        w.key("pc");
        w.num(i128::from(s.pc));
        w.key("last_pc");
        w.num(i128::from(s.last_pc));
        let Flags { z, n, v, c } = s.flags;
        w.key("flags");
        w.num(i128::from(
            u8::from(z) | u8::from(n) << 1 | u8::from(v) << 2 | u8::from(c) << 3,
        ));
        w.key("interrupts_enabled");
        w.bool(s.interrupts_enabled);
        w.key("wstack_ptr");
        w.num(i128::from(s.wstack_ptr));
        w.key("pending_target");
        write_opt_num(w, s.pending_target.map(u64::from));
        w.key("last_write");
        match s.last_write {
            None => w.null(),
            Some((id, load)) => {
                w.obj_open();
                w.key("kind");
                w.str(match id {
                    PhysId::Global(_) => "global",
                    PhysId::Ring(_) => "ring",
                });
                w.key("index");
                w.num(match id {
                    PhysId::Global(g) => i128::from(g),
                    PhysId::Ring(i) => i as i128,
                });
                w.key("load");
                w.bool(load);
                w.obj_close();
            }
        }
        w.key("halted");
        w.bool(s.halted);
        w.key("stats");
        write_stats(w, &s.stats);
        w.key("trace");
        w.arr_open();
        for r in &s.trace {
            w.arr_open();
            w.num(i128::from(r.pc));
            w.num(i128::from(r.insn.encode()));
            w.num(i128::from(r.start_cycle));
            w.num(i128::from(r.cycles));
            w.bool(r.in_delay_slot);
            w.arr_close();
        }
        w.arr_close();
        w.key("interrupt_handler");
        write_opt_num(w, s.interrupt_handler.map(u64::from));
        w.key("interrupt_pending");
        w.bool(s.interrupt_pending);
        w.key("trap_handlers");
        w.arr_open();
        for t in s.trap_handlers {
            write_opt_num(w, t.map(u64::from));
        }
        w.arr_close();
        w.key("active_trap");
        write_opt_num(w, s.active_trap.map(|k| u64::from(k.code())));
        w.key("pending_probe");
        write_opt_num(w, s.pending_probe.map(|k| u64::from(k.code())));
        w.key("fuel_limit");
        w.num(i128::from(s.fuel_limit));
        w.key("last_snapshot");
        write_opt_num(w, s.last_snapshot);
        w.key("journal_pos");
        write_opt_num(w, s.journal_pos);
        w.obj_close();
    }

    /// The snapshot as a standalone JSON document.
    pub fn to_json(&self) -> String {
        let mut w = Writer::new();
        self.write_json(&mut w);
        w.finish()
    }

    /// Deserializes a snapshot from a parsed JSON value. The input is
    /// untrusted: structural problems and admission-limit violations
    /// ([`MAX_SNAPSHOT_MEM_BYTES`], [`MAX_SNAPSHOT_WINDOWS`],
    /// [`MAX_SNAPSHOT_TRACE`]) surface as [`JsonError`] before anything
    /// large is allocated. The stored checksum is carried as-is — call
    /// [`Snapshot::verify`] (or restore, which verifies) to detect
    /// byte-level corruption.
    ///
    /// # Errors
    /// [`JsonError`] on any shape or limit violation.
    pub fn from_json_value(v: &Json) -> Result<Snapshot, JsonError> {
        let obj = v.as_obj("snapshot")?;
        let version = get(obj, "version")?.as_u32("version")?;
        let id = get(obj, "id")?.as_u64("id")?;
        let at_instruction = get(obj, "at_instruction")?.as_u64("at_instruction")?;
        let cfg = read_config(get(obj, "cfg")?.as_obj("cfg")?)?;
        if cfg.windows < 2 || cfg.windows > MAX_SNAPSHOT_WINDOWS {
            return Err(JsonError::schema(&format!(
                "cfg.windows {} outside 2..={MAX_SNAPSHOT_WINDOWS}",
                cfg.windows
            )));
        }
        let declared = get(obj, "mem_bytes")?.as_usize("mem_bytes")?;
        if cfg.mem_bytes > MAX_SNAPSHOT_MEM_BYTES || declared != cfg.mem_bytes {
            return Err(JsonError::schema(&format!(
                "mem_bytes {declared} (cfg {}) exceeds the {MAX_SNAPSHOT_MEM_BYTES}-byte \
                 admission limit or disagrees with the configuration",
                cfg.mem_bytes
            )));
        }
        let state = read_state(get(obj, "state")?, &cfg)?;
        let mut mem = Memory::new(declared);
        let traffic = get(obj, "traffic")?.as_obj("traffic")?;
        for entry in get(obj, "pages")?.as_arr("pages")? {
            let pair = entry.as_arr("page entry")?;
            if pair.len() != 2 {
                return Err(JsonError::schema("page entry: expected [index, bytes]"));
            }
            let (idx, bytes) = (&pair[0], &pair[1]);
            let i = idx.as_usize("page index")?;
            if i >= mem.page_count() {
                return Err(JsonError::schema(&format!(
                    "page index {i} out of range ({} pages)",
                    mem.page_count()
                )));
            }
            let want = mem.page(i).len();
            let raw = bytes.as_arr("page bytes")?;
            if raw.len() != want {
                return Err(JsonError::schema(&format!(
                    "page {i} holds {} bytes, expected {want}",
                    raw.len()
                )));
            }
            let mut buf = Vec::with_capacity(want);
            for b in raw {
                buf.push(b.as_u8("page byte")?);
            }
            mem.load_image((i * PAGE_BYTES) as u32, &buf)
                .map_err(|e| JsonError::schema(&format!("page {i}: {e}")))?;
        }
        mem.set_traffic(MemTraffic {
            reads: get(traffic, "reads")?.as_u64("traffic.reads")?,
            writes: get(traffic, "writes")?.as_u64("traffic.writes")?,
        });
        // Page digests are recomputed from the rebuilt memory (they are
        // derivable); byte corruption then lands in `verify()` as a
        // checksum mismatch rather than a trusted-but-wrong digest.
        let page_sums = (0..mem.page_count())
            .map(|i| page_sum(mem.page(i)))
            .collect();
        Ok(Snapshot {
            version,
            id,
            at_instruction,
            cfg,
            state,
            mem,
            page_sums,
            checksum: get(obj, "checksum")?.as_u64("checksum")?,
        })
    }

    /// Deserializes a snapshot from JSON text (see
    /// [`Snapshot::from_json_value`]).
    ///
    /// # Errors
    /// [`JsonError`] on malformed text or any shape/limit violation.
    pub fn from_json(text: &str) -> Result<Snapshot, JsonError> {
        Snapshot::from_json_value(&Parser::new(text).parse_document()?)
    }
}

fn write_opt_num(w: &mut Writer, v: Option<u64>) {
    match v {
        None => w.null(),
        Some(x) => w.num(i128::from(x)),
    }
}

fn read_opt_u64(v: &Json, what: &str) -> Result<Option<u64>, JsonError> {
    match v {
        Json::Null => Ok(None),
        other => other.as_u64(what).map(Some),
    }
}

fn write_stats(w: &mut Writer, s: &ExecStats) {
    w.obj_open();
    for (key, v) in [
        ("instructions", s.instructions),
        ("cycles", s.cycles),
        ("bubble_cycles", s.bubble_cycles),
        ("ifetches", s.ifetches),
        ("data_reads", s.data_reads),
        ("data_writes", s.data_writes),
        ("calls", s.calls),
        ("rets", s.rets),
        ("taken_transfers", s.taken_transfers),
        ("window_overflows", s.window_overflows),
        ("window_underflows", s.window_underflows),
        ("trap_cycles", s.trap_cycles),
        ("delay_slots", s.delay_slots),
        ("delay_slot_nops", s.delay_slot_nops),
        ("max_depth", s.max_depth),
        ("trap_entries", s.trap_entries),
        ("trap_returns", s.trap_returns),
        ("trap_entry_cycles", s.trap_entry_cycles),
        ("interrupts_taken", s.interrupts_taken),
    ] {
        w.key(key);
        w.num(i128::from(v));
    }
    w.key("trap_counts");
    w.arr_open();
    for &c in &s.trap_counts {
        w.num(i128::from(c));
    }
    w.arr_close();
    // Sparse histogram: `[opcode code, count]` pairs, nonzero only. The
    // engine-telemetry fields (fused pairs, block counters) are host-side
    // and excluded from snapshot identity, so they are not serialized.
    w.key("opcodes");
    w.arr_open();
    for (op, n) in s.opcode_counts.iter() {
        w.arr_open();
        w.num(i128::from(op as u8));
        w.num(i128::from(n));
        w.arr_close();
    }
    w.arr_close();
    w.obj_close();
}

fn read_stats(v: &Json) -> Result<ExecStats, JsonError> {
    let obj = v.as_obj("stats")?;
    let f = |key: &str| -> Result<u64, JsonError> { get(obj, key)?.as_u64(key) };
    let mut s = ExecStats {
        instructions: f("instructions")?,
        cycles: f("cycles")?,
        bubble_cycles: f("bubble_cycles")?,
        ifetches: f("ifetches")?,
        data_reads: f("data_reads")?,
        data_writes: f("data_writes")?,
        calls: f("calls")?,
        rets: f("rets")?,
        taken_transfers: f("taken_transfers")?,
        window_overflows: f("window_overflows")?,
        window_underflows: f("window_underflows")?,
        trap_cycles: f("trap_cycles")?,
        delay_slots: f("delay_slots")?,
        delay_slot_nops: f("delay_slot_nops")?,
        max_depth: f("max_depth")?,
        trap_entries: f("trap_entries")?,
        trap_returns: f("trap_returns")?,
        trap_entry_cycles: f("trap_entry_cycles")?,
        interrupts_taken: f("interrupts_taken")?,
        ..ExecStats::default()
    };
    let counts = get(obj, "trap_counts")?.as_arr("trap_counts")?;
    if counts.len() != TrapKind::COUNT {
        return Err(JsonError::schema(&format!(
            "trap_counts holds {} entries, expected {}",
            counts.len(),
            TrapKind::COUNT
        )));
    }
    for (i, c) in counts.iter().enumerate() {
        s.trap_counts[i] = c.as_u64("trap_counts entry")?;
    }
    for pair in get(obj, "opcodes")?.as_arr("opcodes")? {
        let pair = pair.as_arr("opcode pair")?;
        if pair.len() != 2 {
            return Err(JsonError::schema("opcode pair: expected [code, count]"));
        }
        let code = pair[0].as_u8("opcode code")?;
        let op = Opcode::from_code(code)
            .ok_or_else(|| JsonError::schema(&format!("unknown opcode code {code}")))?;
        s.opcode_counts.set(op, pair[1].as_u64("opcode count")?);
    }
    Ok(s)
}

fn read_state(v: &Json, cfg: &SimConfig) -> Result<CpuState, JsonError> {
    let obj = v.as_obj("state")?;
    let u = |key: &str| -> Result<u64, JsonError> { get(obj, key)?.as_u64(key) };
    let store_raw = get(obj, "store")?.as_arr("store")?;
    let mut store = Vec::with_capacity(store_raw.len());
    for word in store_raw {
        store.push(word.as_u32("store word")?);
    }
    let regs = WindowFile::import(
        cfg.windows,
        &store,
        u("cwp")?,
        u("resident")?,
        u("depth")?,
        u("spilled")?,
        u("max_depth")?,
        u("overflows")?,
        u("underflows")?,
    )
    .map_err(|e| JsonError::schema(&format!("register file: {e}")))?;
    let packed = get(obj, "flags")?.as_u8("flags")?;
    if packed > 0b1111 {
        return Err(JsonError::schema(&format!(
            "flags byte {packed} out of range"
        )));
    }
    let flags = Flags {
        z: packed & 1 != 0,
        n: packed & 2 != 0,
        v: packed & 4 != 0,
        c: packed & 8 != 0,
    };
    let last_write = match get(obj, "last_write")? {
        Json::Null => None,
        lw => {
            let lw = lw.as_obj("last_write")?;
            let index = get(lw, "index")?;
            let id = match get(lw, "kind")?.as_str("last_write.kind")? {
                "global" => PhysId::Global(index.as_u8("last_write.index")?),
                "ring" => PhysId::Ring(index.as_usize("last_write.index")?),
                other => {
                    return Err(JsonError::schema(&format!(
                        "last_write.kind {other:?} (expected global|ring)"
                    )))
                }
            };
            Some((id, get(lw, "load")?.as_bool("last_write.load")?))
        }
    };
    let trace_raw = get(obj, "trace")?.as_arr("trace")?;
    if trace_raw.len() > MAX_SNAPSHOT_TRACE {
        return Err(JsonError::schema(&format!(
            "trace holds {} entries, admission limit is {MAX_SNAPSHOT_TRACE}",
            trace_raw.len()
        )));
    }
    let mut trace = Vec::with_capacity(trace_raw.len());
    for entry in trace_raw {
        let t = entry.as_arr("trace entry")?;
        if t.len() != 5 {
            return Err(JsonError::schema(
                "trace entry: expected [pc, word, start_cycle, cycles, delay]",
            ));
        }
        let word = t[1].as_u32("trace word")?;
        let insn = Instruction::decode(word)
            .map_err(|e| JsonError::schema(&format!("trace word {word:#010x}: {e}")))?;
        trace.push(Retired {
            pc: t[0].as_u32("trace pc")?,
            insn,
            start_cycle: t[2].as_u64("trace start_cycle")?,
            cycles: t[3].as_u64("trace cycles")?,
            in_delay_slot: t[4].as_bool("trace delay")?,
        });
    }
    let handlers_raw = get(obj, "trap_handlers")?.as_arr("trap_handlers")?;
    if handlers_raw.len() != TrapKind::COUNT {
        return Err(JsonError::schema(&format!(
            "trap_handlers holds {} entries, expected {}",
            handlers_raw.len(),
            TrapKind::COUNT
        )));
    }
    let mut trap_handlers = [None; TrapKind::COUNT];
    for (i, h) in handlers_raw.iter().enumerate() {
        trap_handlers[i] = read_opt_u64(h, "trap handler")?
            .map(|x| u32::try_from(x).map_err(|_| JsonError::schema("trap handler out of u32")))
            .transpose()?;
    }
    let trap_kind = |v: &Json, what: &str| -> Result<Option<TrapKind>, JsonError> {
        read_opt_u64(v, what)?
            .map(|code| {
                u32::try_from(code)
                    .ok()
                    .and_then(TrapKind::from_code)
                    .ok_or_else(|| JsonError::schema(&format!("{what}: unknown trap code {code}")))
            })
            .transpose()
    };
    Ok(CpuState {
        regs,
        pc: get(obj, "pc")?.as_u32("pc")?,
        last_pc: get(obj, "last_pc")?.as_u32("last_pc")?,
        flags,
        interrupts_enabled: get(obj, "interrupts_enabled")?.as_bool("interrupts_enabled")?,
        wstack_ptr: get(obj, "wstack_ptr")?.as_u32("wstack_ptr")?,
        pending_target: read_opt_u64(get(obj, "pending_target")?, "pending_target")?
            .map(|x| u32::try_from(x).map_err(|_| JsonError::schema("pending_target out of u32")))
            .transpose()?,
        last_write,
        halted: get(obj, "halted")?.as_bool("halted")?,
        stats: read_stats(get(obj, "stats")?)?,
        trace,
        interrupt_handler: read_opt_u64(get(obj, "interrupt_handler")?, "interrupt_handler")?
            .map(|x| {
                u32::try_from(x).map_err(|_| JsonError::schema("interrupt_handler out of u32"))
            })
            .transpose()?,
        interrupt_pending: get(obj, "interrupt_pending")?.as_bool("interrupt_pending")?,
        trap_handlers,
        active_trap: trap_kind(get(obj, "active_trap")?, "active_trap")?,
        pending_probe: trap_kind(get(obj, "pending_probe")?, "pending_probe")?,
        fuel_limit: u("fuel_limit")?,
        last_snapshot: read_opt_u64(get(obj, "last_snapshot")?, "last_snapshot")?,
        journal_pos: read_opt_u64(get(obj, "journal_pos")?, "journal_pos")?,
    })
}

/// Cost accounting of a [`Checkpointer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Incremental checkpoints taken (the baseline capture is not
    /// counted — its image is the program image the supervisor holds
    /// anyway).
    pub checkpoints: u64,
    /// Dirty memory pages copied across all checkpoints.
    pub pages_copied: u64,
    /// Bytes those pages amounted to.
    pub bytes_copied: u64,
    /// Deterministic modeled cost in cycles: [`CKPT_BASE_CYCLES`] per
    /// checkpoint plus one cycle per word copied. Kept separate from the
    /// CPU's own cycle counter so checkpointing never perturbs execution.
    pub modeled_cycles: u64,
}

/// Incremental checkpointing driver: holds the latest snapshot and
/// refreshes it cheaply using the memory dirty-page map.
#[derive(Debug, Clone)]
pub struct Checkpointer {
    snap: Snapshot,
    stats: CheckpointStats,
}

impl Checkpointer {
    /// Captures the baseline snapshot (id 1) of `cpu` and arms dirty-page
    /// tracking. Call right after program load, before execution.
    pub fn new(cpu: &mut Cpu) -> Checkpointer {
        cpu.note_checkpoint(1);
        let snap = Snapshot::capture(cpu, 1);
        cpu.mem.clear_dirty();
        Checkpointer {
            snap,
            stats: CheckpointStats::default(),
        }
    }

    /// Takes an incremental checkpoint: syncs dirty pages into the held
    /// image, re-digests only those pages, recaptures the register/state
    /// half, and re-checksums. Returns the new snapshot id.
    pub fn checkpoint(&mut self, cpu: &mut Cpu) -> u64 {
        let mut bytes = 0u64;
        let mut pages_copied = 0u64;
        for idx in cpu.mem.dirty_pages() {
            self.snap.mem.sync_page_from(&cpu.mem, idx);
            let page = self.snap.mem.page(idx);
            bytes += page.len() as u64;
            self.snap.page_sums[idx] = page_sum(page);
            pages_copied += 1;
        }
        self.snap.mem.set_traffic(cpu.mem.traffic());
        self.snap.id += 1;
        cpu.mem.clear_dirty();
        cpu.note_checkpoint(self.snap.id);
        self.snap.state = cpu.capture_state();
        self.snap.at_instruction = self.snap.state.stats.instructions;
        self.snap.checksum = self.snap.compute_checksum();
        self.stats.checkpoints += 1;
        self.stats.pages_copied += pages_copied;
        self.stats.bytes_copied += bytes;
        self.stats.modeled_cycles += CKPT_BASE_CYCLES + bytes / 4;
        self.snap.id
    }

    /// Rolls `cpu` back to the latest checkpoint. The dirty-page baseline
    /// is re-established (memory now equals the held image exactly), so
    /// subsequent checkpoints stay incremental.
    ///
    /// # Errors
    /// [`RestoreError`] when the held snapshot fails verification or no
    /// longer matches the CPU's configuration.
    pub fn rollback(&self, cpu: &mut Cpu) -> Result<(), RestoreError> {
        self.snap.restore_into(cpu)?;
        cpu.mem.clear_dirty();
        cpu.note_checkpoint(self.snap.id);
        Ok(())
    }

    /// Restores an *older* snapshot (e.g. a campaign baseline) into `cpu`
    /// and re-anchors the checkpointer on it, so escalated rollbacks past
    /// the latest checkpoint keep incremental tracking consistent. The
    /// latest checkpoint may have captured already-corrupted state — a
    /// fault can manifest long after the perturbation that caused it —
    /// and this is the escape hatch. Cost accounting carries over.
    ///
    /// # Errors
    /// [`RestoreError`] when `snap` fails verification or no longer
    /// matches the CPU's configuration.
    pub fn revert_to(&mut self, cpu: &mut Cpu, snap: &Snapshot) -> Result<(), RestoreError> {
        snap.restore_into(cpu)?;
        cpu.mem.clear_dirty();
        cpu.note_checkpoint(snap.id());
        self.snap = snap.clone();
        Ok(())
    }

    /// The latest checkpointed snapshot.
    pub fn latest(&self) -> &Snapshot {
        &self.snap
    }

    /// Cost accounting so far.
    pub fn stats(&self) -> CheckpointStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;
    use risc1_isa::{Cond, Instruction, Opcode, Reg, Short2};

    fn imm(v: i32) -> Short2 {
        Short2::imm(v).unwrap()
    }

    /// A small loop program: sum 1..=n into r17, store each partial into
    /// memory, return the sum. Keeps writing so checkpoints see dirt.
    fn loop_program() -> Program {
        Program::from_instructions(vec![
            /* 0  */ Instruction::reg(Opcode::Add, Reg::R16, Reg::R0, imm(50)), // n
            /* 4  */ Instruction::reg(Opcode::Add, Reg::R17, Reg::R0, imm(0)), // sum
            /* 8  */ Instruction::ldhi(Reg::R18, 1), // scratch at 0x2000
            /* 12 loop: */
            Instruction::reg(Opcode::Add, Reg::R17, Reg::R17, Reg::R16.into()),
            /* 16 */ Instruction::reg(Opcode::Stl, Reg::R17, Reg::R18, imm(0)),
            /* 20 */ Instruction::reg_scc(Opcode::Sub, Reg::R16, Reg::R16, imm(1)),
            /* 24 */ Instruction::jmpr(Cond::Ne, -12),
            /* 28 */ Instruction::nop(),
            /* 32 */ Instruction::reg(Opcode::Add, Reg::R26, Reg::R17, Short2::ZERO),
            /* 36 */ Instruction::ret(Reg::R0, imm(0)),
            /* 40 */ Instruction::nop(),
        ])
    }

    fn fresh_cpu() -> Cpu {
        let mut cpu = Cpu::new(SimConfig::default());
        cpu.load_program(&loop_program()).unwrap();
        cpu
    }

    #[test]
    fn snapshot_restore_continues_bit_identically() {
        // Reference: run to completion untouched.
        let mut reference = fresh_cpu();
        reference.run().unwrap();

        // Interrupted: run half, snapshot, run to completion; then restore
        // a second CPU from the snapshot and finish there too.
        let mut cpu = fresh_cpu();
        for _ in 0..100 {
            cpu.step().unwrap();
        }
        let snap = cpu.snapshot();
        snap.verify().unwrap();
        assert_eq!(snap.at_instruction(), 100);
        cpu.run().unwrap();

        let mut twin = Cpu::new(SimConfig::default());
        twin.restore(&snap).unwrap();
        twin.run().unwrap();

        for c in [&cpu, &twin] {
            assert_eq!(c.result(), reference.result());
            let a = c.stats();
            let b = reference.stats();
            assert_eq!(a, b, "stats must be bit-identical");
        }
        // Full-state digests agree too (registers, memory, everything).
        assert!(cpu.snapshot().checksum() != 0, "checksum is computed");
        assert_eq!(
            Snapshot::capture(&cpu, 7).compute_checksum(),
            Snapshot::capture(&twin, 7).compute_checksum(),
            "final machine states are identical"
        );
    }

    #[test]
    fn restore_rejects_config_mismatch_and_corruption() {
        let mut cpu = fresh_cpu();
        for _ in 0..10 {
            cpu.step().unwrap();
        }
        let mut snap = cpu.snapshot();

        let mut other = Cpu::new(SimConfig::with_windows(4));
        match other.restore(&snap) {
            Err(RestoreError::ConfigMismatch {
                expected,
                found,
                expected_engine,
                found_engine,
            }) => {
                assert_eq!(expected, config_hash(&SimConfig::default()));
                assert_eq!(found, config_hash(&SimConfig::with_windows(4)));
                assert_eq!(expected_engine, "superblock");
                assert_eq!(found_engine, "superblock");
                assert_ne!(expected, found, "differing configs must hash apart");
            }
            other => panic!("expected a config mismatch, got {other:?}"),
        }
        // An engine-tier mismatch names both tiers in the diagnostic.
        let mut cached = Cpu::new(SimConfig {
            engine: ExecEngine::Cached,
            ..SimConfig::default()
        });
        let msg = cached.restore(&snap).unwrap_err().to_string();
        assert!(
            msg.contains("engine superblock") && msg.contains("engine cached"),
            "{msg}"
        );

        // Tamper with the captured state: verification must fail.
        snap.state.pc ^= 4;
        assert!(matches!(snap.verify(), Err(RestoreError::Corrupt { .. })));
        let mut twin = Cpu::new(SimConfig::default());
        assert!(matches!(
            twin.restore(&snap),
            Err(RestoreError::Corrupt { .. })
        ));

        // And a version from the future is refused before anything else.
        snap.state.pc ^= 4;
        snap.checksum = snap.compute_checksum();
        snap.version = SNAPSHOT_VERSION + 1;
        assert!(matches!(
            twin.restore(&snap),
            Err(RestoreError::Version { .. })
        ));
    }

    #[test]
    fn checkpointer_is_incremental_and_rolls_back_exactly() {
        let mut cpu = fresh_cpu();
        let mut ckpt = Checkpointer::new(&mut cpu);
        assert_eq!(ckpt.latest().id(), 1);
        assert_eq!(ckpt.stats().checkpoints, 0);

        for _ in 0..60 {
            cpu.step().unwrap();
        }
        let id = ckpt.checkpoint(&mut cpu);
        assert_eq!(id, 2);
        let s = ckpt.stats();
        assert_eq!(s.checkpoints, 1);
        assert!(s.pages_copied > 0, "the loop writes memory");
        assert!(
            (s.pages_copied as usize) < cpu.mem.page_count() / 2,
            "incremental: far fewer pages than the whole memory"
        );
        assert_eq!(s.modeled_cycles, CKPT_BASE_CYCLES + s.bytes_copied / 4);

        // Checkpoint digest equals a from-scratch full capture's state.
        ckpt.latest().verify().unwrap();
        let mark = cpu.snapshot();

        // Run further, then roll back: the machine must be bit-identical
        // to the checkpoint, and re-running must reproduce the future.
        for _ in 0..40 {
            cpu.step().unwrap();
        }
        let ahead = cpu.stats().instructions;
        ckpt.rollback(&mut cpu).unwrap();
        assert_eq!(cpu.stats().instructions, mark.at_instruction());
        assert_eq!(
            Snapshot::capture(&cpu, 0).compute_checksum(),
            Snapshot::capture_from_mark(&mark),
            "rollback restores the exact checkpointed state"
        );
        for _ in 0..40 {
            cpu.step().unwrap();
        }
        assert_eq!(cpu.stats().instructions, ahead, "re-execution is exact");

        // A second checkpoint after rollback is still incremental.
        let id = ckpt.checkpoint(&mut cpu);
        assert_eq!(id, 3);
        assert!(ckpt.stats().pages_copied < 2 * cpu.mem.page_count() as u64);
    }

    impl Snapshot {
        /// Test helper: digest of a snapshot re-captured at id 0 so it can
        /// be compared against another id-0 capture.
        fn capture_from_mark(mark: &Snapshot) -> u64 {
            let mut m = mark.clone();
            m.id = 0;
            m.compute_checksum()
        }
    }

    #[test]
    fn snapshot_json_round_trips_bit_identically() {
        let mut cpu = fresh_cpu();
        for _ in 0..100 {
            cpu.step().unwrap();
        }
        let snap = cpu.snapshot();
        let text = snap.to_json();
        let back = Snapshot::from_json(&text).unwrap();
        back.verify().unwrap();
        assert_eq!(back.checksum(), snap.checksum());
        assert_eq!(back.at_instruction(), snap.at_instruction());

        // A CPU restored from the deserialized snapshot finishes exactly
        // like an uninterrupted run.
        let mut reference = fresh_cpu();
        reference.run().unwrap();
        let mut twin = Cpu::new(SimConfig::default());
        twin.restore(&back).unwrap();
        twin.run().unwrap();
        assert_eq!(twin.result(), reference.result());
        assert_eq!(twin.stats(), reference.stats());

        // Serializing again is byte-identical (stable key order).
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn snapshot_json_rejects_corruption_and_oversized_declarations() {
        let mut cpu = fresh_cpu();
        for _ in 0..20 {
            cpu.step().unwrap();
        }
        let text = cpu.snapshot().to_json();

        // Field tampering parses fine but fails checksum verification.
        let tampered = text.replace("\"halted\":false", "\"halted\":true");
        assert_ne!(tampered, text);
        let snap = Snapshot::from_json(&tampered).unwrap();
        assert!(matches!(snap.verify(), Err(RestoreError::Corrupt { .. })));
        let mut twin = Cpu::new(SimConfig::default());
        assert!(matches!(
            twin.restore(&snap),
            Err(RestoreError::Corrupt { .. })
        ));

        // A declared memory size beyond the admission limit is refused
        // before any allocation (both the cfg and the outer declaration
        // carry the same number, so a global replace keeps them agreeing).
        let huge = (MAX_SNAPSHOT_MEM_BYTES + 1).to_string();
        let oversized = text.replace("\"mem_bytes\":1048576", &format!("\"mem_bytes\":{huge}"));
        assert!(Snapshot::from_json(&oversized).is_err());

        // Garbage documents are structured errors, never panics.
        for bad in ["", "{}", "[1,2]", "{\"version\":1}", "not json at all"] {
            assert!(Snapshot::from_json(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn fnv_is_stable() {
        let mut h = Fnv64::new();
        h.write_bytes(b"risc1");
        // Reference value computed once; guards against accidental changes
        // to the hashing scheme (which would invalidate stored digests).
        assert_eq!(h.finish(), {
            let mut r = Fnv64::new();
            for b in [0x72u8, 0x69, 0x73, 0x63, 0x31] {
                r.write_u8(b);
            }
            r.finish()
        });
        assert_ne!(Fnv64::new().finish(), h.finish());
    }
}
