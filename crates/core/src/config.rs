//! Simulator configuration.

/// How transfers of control are timed.
///
/// RISC I's argument (and the subject of experiment E9): a *delayed* jump
/// costs one cycle and exposes the slot to the compiler, whereas the naive
/// *suspended pipeline* freezes instruction fetch for one cycle on every
/// taken transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BranchModel {
    /// The paper's design: the instruction after every transfer executes;
    /// no timing penalty beyond the slot itself.
    #[default]
    Delayed,
    /// The alternative the paper rejects: every *taken* transfer inserts one
    /// bubble cycle. (Delay slots still execute — the program semantics do
    /// not change, only the accounting — so the same binary is comparable
    /// under both models.)
    Suspended,
}

/// Complete configuration of one simulated RISC I machine.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Number of register windows in the file (the paper built 8; the
    /// window-sweep experiment varies this from 2 to 16). Must be ≥ 2.
    pub windows: usize,
    /// Memory size in bytes.
    pub mem_bytes: usize,
    /// Byte address at which programs are loaded.
    pub code_base: u32,
    /// Initial program stack pointer (grows down). Used by compiled code for
    /// the rare spills that do not fit the window.
    pub stack_top: u32,
    /// Top of the window-save stack (grows down). Spilled windows go here.
    pub window_stack_top: u32,
    /// Fixed cycle overhead of taking a window overflow/underflow trap, on
    /// top of the 16 stores/loads themselves (models trap entry/exit).
    pub trap_overhead_cycles: u64,
    /// Branch timing model.
    pub branch_model: BranchModel,
    /// Whether the datapath has internal forwarding. Without it, an
    /// instruction that reads the register written by its immediate
    /// predecessor pays a one-cycle interlock bubble; RISC I had forwarding,
    /// so the default is `true`. (Load results are never forwardable from
    /// the same cycle: a load-use pair always pays one bubble when
    /// forwarding is off, and none when on, matching the paper's
    /// "internal forwarding" discussion.)
    pub forwarding: bool,
    /// Maximum number of instructions to execute before the simulator gives
    /// up (guards against runaway programs in tests and fuzzing).
    pub fuel: u64,
    /// Base address of a vectored trap table. When set, every trap cause
    /// gets a handler pre-installed at
    /// `trap_base + index · TRAP_VECTOR_STRIDE` (see
    /// [`crate::trap::TrapKind`] and [`crate::cpu::TRAP_VECTOR_STRIDE`]);
    /// when `None` (the default) faults surface as structured
    /// [`crate::ExecError`]s unless handlers are installed one by one via
    /// [`crate::Cpu::set_trap_handler`].
    pub trap_base: Option<u32>,
    /// Record a full retired-instruction trace (needed only by the pipeline
    /// diagram experiment; costs memory).
    pub record_trace: bool,
    /// Which execution engine drives the interpreter loop. Purely a speed
    /// knob: architectural state, statistics and trap behaviour are
    /// bit-identical across all four tiers, which the `interp_equivalence`
    /// suite asserts four ways.
    pub engine: ExecEngine,
    /// Per-kind macro-op fusion toggles, consulted only by the superblock
    /// engine (see `crate::superblock`). All on by default; experiment e15
    /// sweeps them off one at a time.
    pub fusion: FusionConfig,
}

/// The interpreter tier driving instruction execution. Each tier is strictly
/// a host-speed optimisation over the one below it; all four funnel through
/// the same `exec_prepared` executor (or, for the trace tier, through IR
/// lowered from the same prepared lines with bit-exact side exits), so
/// architectural behaviour is bit-identical (the four-way equivalence law in
/// `interp_equivalence`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecEngine {
    /// Fetch → decode → prepare → execute, one instruction at a time. The
    /// baseline tier the bench harness measures the others against.
    Uncached,
    /// PR 4's predecoded instruction cache: prepared lines are cached per
    /// page and invalidated through the code-dirty channel.
    Cached,
    /// Superblocks formed over the predecoded lines: straight-line runs
    /// execute as chained blocks with one PC lookup per block and macro-op
    /// fusion of common adjacent pairs (see `crate::superblock`).
    #[default]
    Superblock,
    /// Hot chained superblock sequences compiled to register-allocated
    /// trace IR: window-relative registers resolved to flat physical
    /// indices at build time, stats sunk to trace exit, guarded side exits
    /// falling back to the superblock engine bit-exactly (see
    /// `crate::trace`).
    Trace,
}

impl ExecEngine {
    /// The CLI / serialization spelling.
    pub fn name(self) -> &'static str {
        match self {
            ExecEngine::Uncached => "uncached",
            ExecEngine::Cached => "cached",
            ExecEngine::Superblock => "superblock",
            ExecEngine::Trace => "trace",
        }
    }

    /// Parses the CLI / serialization spelling.
    pub fn from_name(s: &str) -> Option<ExecEngine> {
        match s {
            "uncached" => Some(ExecEngine::Uncached),
            "cached" => Some(ExecEngine::Cached),
            "superblock" => Some(ExecEngine::Superblock),
            "trace" => Some(ExecEngine::Trace),
            _ => None,
        }
    }
}

/// Per-kind macro-op fusion switches (superblock engine only). Fusion never
/// changes architectural behaviour — these exist so e15 can measure how much
/// each kind contributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusionConfig {
    /// Fuse SCC-setting ALU op + conditional JMP/JMPR reading those flags.
    pub cmp_branch: bool,
    /// Fuse LDHI + dependent immediate-ALU constant construction.
    pub ldhi_imm: bool,
    /// Fuse a delayed transfer with a safe delay-slot instruction.
    pub transfer_slot: bool,
    /// Fuse an ALU op feeding the address register of the next load.
    pub addr_feed: bool,
    /// Fuse two adjacent plain ALU/LDHI ops (the catch-all pair, tried
    /// after every specialised kind).
    pub alu_pair: bool,
}

impl Default for FusionConfig {
    fn default() -> Self {
        FusionConfig {
            cmp_branch: true,
            ldhi_imm: true,
            transfer_slot: true,
            addr_feed: true,
            alu_pair: true,
        }
    }
}

impl FusionConfig {
    /// All kinds disabled (superblocks still form; pairs never fuse).
    pub fn none() -> FusionConfig {
        FusionConfig {
            cmp_branch: false,
            ldhi_imm: false,
            transfer_slot: false,
            addr_feed: false,
            alu_pair: false,
        }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            windows: 8,
            mem_bytes: 1 << 20,
            code_base: 0x1000,
            stack_top: 0xe0000,
            window_stack_top: 0xf0000,
            trap_overhead_cycles: 8,
            branch_model: BranchModel::Delayed,
            forwarding: true,
            fuel: 200_000_000,
            trap_base: None,
            record_trace: false,
            engine: ExecEngine::Superblock,
            fusion: FusionConfig::default(),
        }
    }
}

impl SimConfig {
    /// A configuration with a specific number of register windows, other
    /// parameters at their defaults.
    pub fn with_windows(windows: usize) -> Self {
        SimConfig {
            windows,
            ..SimConfig::default()
        }
    }

    /// Total physical registers implied by this configuration:
    /// 10 globals + 16 per window (the paper's `10 + 16·w`; 138 for w = 8).
    pub fn physical_registers(&self) -> usize {
        crate::windows::GLOBALS + crate::windows::WINDOW_STRIDE * self.windows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = SimConfig::default();
        assert_eq!(c.windows, 8);
        assert_eq!(c.physical_registers(), 138, "the paper's register count");
        assert_eq!(c.branch_model, BranchModel::Delayed);
        assert!(c.forwarding);
        assert_eq!(c.engine, ExecEngine::Superblock);
        assert_eq!(c.fusion, FusionConfig::default());
    }

    #[test]
    fn engine_names_round_trip() {
        for e in [
            ExecEngine::Uncached,
            ExecEngine::Cached,
            ExecEngine::Superblock,
            ExecEngine::Trace,
        ] {
            assert_eq!(ExecEngine::from_name(e.name()), Some(e));
        }
        assert_eq!(ExecEngine::from_name("fast"), None);
    }

    #[test]
    fn window_sweep_register_counts() {
        assert_eq!(SimConfig::with_windows(2).physical_registers(), 42);
        assert_eq!(SimConfig::with_windows(4).physical_registers(), 74);
        assert_eq!(SimConfig::with_windows(16).physical_registers(), 266);
    }
}
