//! # `risc1-core` — cycle-level simulator for the RISC I processor
//!
//! This crate is the paper's machine: a functional + timing simulator of the
//! RISC I microarchitecture described in Patterson & Séquin (ISCA 1981).
//! It provides:
//!
//! * [`mem::Memory`] — a byte-addressable little-endian memory with
//!   alignment checking and traffic accounting,
//! * [`windows::WindowFile`] — the overlapped register-window file (the
//!   paper's central mechanism), with configurable window count, circular
//!   overlap, and overflow/underflow spill machinery,
//! * [`cpu::Cpu`] — the executor: delayed jumps, condition codes, window
//!   traps serviced by a built-in (cycle-accounted) spill/fill sequence,
//! * [`pipeline`] — the timing model: the paper's delayed-branch pipeline,
//!   the "suspended pipeline" alternative it argues against, and load-use
//!   interlock modelling with or without internal forwarding,
//! * [`stats::ExecStats`] — every counter the evaluation experiments need.
//!
//! ## Example: run a tiny program
//!
//! ```
//! use risc1_core::{Cpu, Program, SimConfig};
//! use risc1_isa::{Instruction, Opcode, Reg, Short2};
//!
//! // main: r16 := 2 + 3, then return (halts at depth 0)
//! let prog = Program::from_instructions(vec![
//!     Instruction::reg(Opcode::Add, Reg::R16, Reg::R0, Short2::imm(2).unwrap()),
//!     Instruction::reg(Opcode::Add, Reg::R16, Reg::R16, Short2::imm(3).unwrap()),
//!     Instruction::ret(Reg::R25, Short2::imm(0).unwrap()),
//!     Instruction::nop(), // delay slot of the ret
//! ]);
//! let mut cpu = Cpu::new(SimConfig::default());
//! cpu.load_program(&prog).unwrap();
//! cpu.run().unwrap();
//! assert_eq!(cpu.reg(risc1_isa::Reg::R16), 5);
//! ```

pub mod config;
pub mod cpu;
pub mod deadline;
pub mod exec;
mod icache;
pub mod inject;
pub mod journal;
pub mod json;
pub mod mem;
pub mod pipeline;
pub mod program;
pub mod snapshot;
pub mod stats;
mod superblock;
mod trace;
pub mod trap;
pub mod windows;

pub use config::{BranchModel, ExecEngine, FusionConfig, SimConfig};
pub use cpu::{Cpu, ExecError, Halt, ReplayContext, TooManyArgs, TRAP_VECTOR_STRIDE};
pub use deadline::Deadline;
pub use icache::prepared_base_cycles;
pub use inject::{FaultInjector, InjectConfig, InjectEvent, InjectKind, XorShift64};
pub use journal::{Journal, JournalError, JournalEvent, RecordedOutcome, JOURNAL_VERSION};
pub use mem::{MemError, Memory, CODE_DIRTY_PENDING_CAP, PAGE_BYTES};
pub use program::Program;
pub use snapshot::{
    config_hash, page_sum, CheckpointStats, Checkpointer, RestoreError, Snapshot, CKPT_BASE_CYCLES,
    MAX_SNAPSHOT_MEM_BYTES, MAX_SNAPSHOT_TRACE, MAX_SNAPSHOT_WINDOWS, SNAPSHOT_VERSION,
};
pub use stats::{ExecStats, FuseKind, OpcodeCounts};
pub use trap::{TrapCause, TrapKind};
pub use windows::WindowFile;
