//! The architectural trap unit: cause codes and the software-visible trap
//! convention.
//!
//! The real RISC I did not abort on a fault. Misaligned accesses,
//! undecodable words and window-save-stack exhaustion were serviced
//! through the same mechanism as external interrupts: force a `CALLI`-like
//! entry into a handler running in a *fresh register window*, with the
//! `lastpc` register providing a precise restart point even across delayed
//! jumps. This module gives the simulator that machinery.
//!
//! ## Convention
//!
//! On trap entry the hardware sequence (see `Cpu::vector_trap`):
//!
//! 1. advances the register window (spilling the oldest frame if the file
//!    is full, using the reserved emergency frame of the save stack if the
//!    trap *is* the exhaustion trap),
//! 2. writes the **restart PC** into `r25` of the new window — the
//!    faulting instruction's address, or, when the fault happened in a
//!    delay slot, the address of the transfer that owns the slot (the
//!    paper's `lastpc` rule),
//! 3. writes the **cause code** ([`TrapKind::code`]) into `r24`,
//! 4. writes a cause-specific **info word** into `r23` (fault address,
//!    undecodable word, save-stack pointer…),
//! 5. disables interrupts and jumps to the handler — no delay slot, like
//!    `CALLI`.
//!
//! The handler returns with `reti r25, #0` to *re-execute* the faulting
//! instruction or `reti r25, #4` to *skip* it and continue. A fault taken
//! while a handler is running does not recurse: it terminates the run with
//! a structured double-fault error.

use std::fmt;

/// The architectural cause of a trap — one entry per vector in the trap
/// table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrapKind {
    /// Instruction fetch fell outside physical memory.
    InstructionAccess,
    /// A load or store address fell outside physical memory.
    DataAccess,
    /// A load or store address was not aligned to its width.
    Misaligned,
    /// The fetched word does not decode to a RISC I instruction.
    Decode,
    /// A transfer of control sat in the delay slot of another transfer
    /// (architecturally undefined; trapped rather than executed).
    TransferInDelaySlot,
    /// A window spill found the save stack full (deep recursion ran the
    /// save area into the program stack region).
    WindowStackExhausted,
}

impl TrapKind {
    /// Number of trap vectors.
    pub const COUNT: usize = 6;

    /// Every kind, in vector order.
    pub const ALL: [TrapKind; TrapKind::COUNT] = [
        TrapKind::InstructionAccess,
        TrapKind::DataAccess,
        TrapKind::Misaligned,
        TrapKind::Decode,
        TrapKind::TransferInDelaySlot,
        TrapKind::WindowStackExhausted,
    ];

    /// Index of this kind's vector in the trap table.
    pub fn index(self) -> usize {
        match self {
            TrapKind::InstructionAccess => 0,
            TrapKind::DataAccess => 1,
            TrapKind::Misaligned => 2,
            TrapKind::Decode => 3,
            TrapKind::TransferInDelaySlot => 4,
            TrapKind::WindowStackExhausted => 5,
        }
    }

    /// The cause code the trap sequence writes into `r24` (vector index
    /// plus one, so that zero never names a cause).
    pub fn code(self) -> u32 {
        self.index() as u32 + 1
    }

    /// The kind with the given cause code, if any.
    pub fn from_code(code: u32) -> Option<TrapKind> {
        (code >= 1)
            .then(|| TrapKind::ALL.get(code as usize - 1).copied())
            .flatten()
    }

    /// Short lowercase name, used in tables and logs.
    pub fn name(self) -> &'static str {
        match self {
            TrapKind::InstructionAccess => "ifetch",
            TrapKind::DataAccess => "daccess",
            TrapKind::Misaligned => "misalign",
            TrapKind::Decode => "decode",
            TrapKind::TransferInDelaySlot => "xfer-slot",
            TrapKind::WindowStackExhausted => "wstack",
        }
    }
}

impl fmt::Display for TrapKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A fully-described trap: what happened, where, and the info word the
/// handler would have received in `r23`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrapCause {
    /// The architectural cause.
    pub kind: TrapKind,
    /// The precise restart PC (`lastpc` rule: the faulting instruction, or
    /// the owning transfer when the fault sat in a delay slot).
    pub pc: u32,
    /// Cause-specific detail: the fault address for access/alignment
    /// faults, the raw word for decode faults, the save-stack pointer for
    /// exhaustion.
    pub info: u32,
}

impl fmt::Display for TrapCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} trap at pc {:#010x} (info {:#010x})",
            self.kind, self.pc, self.info
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip_and_are_nonzero() {
        for k in TrapKind::ALL {
            assert!(k.code() != 0);
            assert_eq!(TrapKind::from_code(k.code()), Some(k));
            assert_eq!(TrapKind::ALL[k.index()], k);
        }
        assert_eq!(TrapKind::from_code(0), None);
        assert_eq!(TrapKind::from_code(99), None);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = TrapKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), TrapKind::COUNT);
    }

    #[test]
    fn cause_displays_kind_and_pc() {
        let c = TrapCause {
            kind: TrapKind::Misaligned,
            pc: 0x1000,
            info: 0x2002,
        };
        let s = c.to_string();
        assert!(s.contains("misalign") && s.contains("0x00001000"));
    }
}
