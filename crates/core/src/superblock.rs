//! Superblock execution: block formation, chaining, and macro-op fusion
//! over the predecoded instruction cache.
//!
//! The cached engine (PR 4) removed decode from the hot loop but still pays
//! a PC→line lookup, an invalidation-channel poll and a full dispatch per
//! retired instruction. This module removes the per-instruction overheads
//! for straight-line runs: consecutive prepared [`Line`]s are grouped into
//! **superblocks** that end at a transfer of control (including its delay
//! slot) or at a page boundary, and a block body executes as a tight loop —
//! one PC lookup, one channel poll and one boundary check per *block*
//! instead of per instruction. Hot loops additionally skip the PC lookup
//! via **chaining**: each block remembers the block index of its last taken
//! and fall-through successors, validated before reuse.
//!
//! On top of formation, a **macro-op fusion** pass (in the spirit of Celio
//! et al.'s renewed-RISC fusion study) rewrites common adjacent pairs into
//! single fused ops — compare+conditional-jump, LDHI+immediate-ALU constant
//! construction, delayed transfer+safe slot, ALU→load address feeding, and
//! a catch-all adjacent ALU/LDHI pair (tried last, so the specialised
//! shapes keep their matches) — executed by dedicated handlers in `Cpu`
//! whose observable effects are
//! proved bit-identical to running the two instructions through
//! `exec_prepared` (the three-way `interp_equivalence` law).
//!
//! Correctness of invalidation rides the same code-dirty channel as the
//! icache: every page a block's instructions were decoded from is
//! registered with [`Memory`], and `Cpu::drain_code_invalidations` fans
//! each channel event out to both caches. Invalidation is
//! block-granular: a dirtied page kills exactly the blocks that read it.
//! Like the icache, the whole structure is *derived* state — absent from
//! snapshots, journals, and checksums.

use crate::config::SimConfig;
use crate::exec::alu;
use crate::icache::Line;
use crate::mem::{CodeDirty, Memory, PAGE_BYTES};
use risc1_isa::psw::Flags;
use risc1_isa::{Instruction, Opcode, Short2};
use std::sync::Arc;

/// Sentinel for "no successor cached" in [`Block::succ`].
const NO_BLOCK: u32 = u32::MAX;

/// Dead blocks tolerated before a wholesale rebuild of the cache (see
/// [`BlockCache::maybe_compact`]).
const COMPACT_DEAD_MIN: usize = 64;

/// One operation of a superblock body: either a single prepared line or a
/// fused pair. Fused variants carry both original lines — `a` executes
/// first — plus any values the builder could precompute.
#[derive(Debug, Clone)]
pub(crate) enum BOp {
    /// An unfused prepared instruction, executed via `exec_prepared`.
    One(Line),
    /// SCC-setting ALU op `a` + conditional JMP/JMPR `b` reading its flags.
    CmpBranch {
        /// The flag-setting ALU instruction.
        a: Line,
        /// The conditional transfer.
        b: Line,
    },
    /// LDHI `a` + immediate ALU op `b` completing a constant; the result
    /// is a build-time constant.
    LdhiImm {
        /// The LDHI.
        a: Line,
        /// The dependent immediate ALU op.
        b: Line,
        /// `a`'s value: `imm19 << 13`.
        hi: u32,
        /// `b`'s precomputed result.
        value: u32,
        /// `b`'s precomputed flags (latched only if `b.scc`).
        flags: Flags,
    },
    /// Conditional transfer `a` + safe (ALU/LDHI) delay-slot instruction
    /// `b`, executed as one unit.
    TransferSlot {
        /// The transfer.
        a: Line,
        /// The delay-slot instruction.
        b: Line,
    },
    /// ALU op `a` feeding the address register of load `b`.
    AddrFeed {
        /// The address-forming ALU instruction.
        a: Line,
        /// The dependent load.
        b: Line,
    },
    /// Two adjacent plain ALU/LDHI ops retired through one handler — the
    /// catch-all pair, tried after every specialised kind.
    AluPair {
        /// The first instruction.
        a: Line,
        /// The second instruction.
        b: Line,
    },
}

impl BOp {
    /// Instructions this op retires when it completes.
    #[cfg(test)]
    fn insns(&self) -> u32 {
        match self {
            BOp::One(_) => 1,
            _ => 2,
        }
    }
}

/// A formed superblock: the ops, the worst-case retire count (for fuel
/// accounting), and the chaining slots.
#[derive(Debug, Clone)]
pub(crate) struct Block {
    /// Entry PC.
    pub start: u32,
    /// Address just past the last included instruction — the fall-through
    /// PC when the block exits without a taken transfer.
    pub end: u32,
    /// The block body. `Arc` so execution can hold the ops while `Cpu`
    /// mutates itself (and so `Cpu: Clone + Send` stays cheap).
    pub ops: Arc<[BOp]>,
    /// Total instructions if every op completes (= `end − start` in words).
    pub insns: u32,
    /// Completed executions since build — the trace engine's promotion
    /// heat. Bumped only under `--engine trace`; dies with the block.
    pub heat: u32,
    /// Completed executions by exit direction (`[fall-through, taken]`) —
    /// the trace builder's branch-direction profile. Bumped with `heat`.
    pub hot_exits: [u32; 2],
    /// Cleared when a page the block spans is invalidated.
    pub alive: bool,
    /// Cached successor block indices: `succ[1]` for a taken exit,
    /// `succ[0]` for fall-through. Hints only — validated (`alive` and
    /// matching `start`) before use.
    pub succ: [u32; 2],
}

/// The superblock cache: blocks by entry PC, with per-page registration
/// for block-granular invalidation and chaining state.
#[derive(Debug, Clone)]
pub(crate) struct BlockCache {
    /// Entry PC → block index, direct-mapped by word address: `map[pc/4]`
    /// is the index of the block starting at `pc`, or [`NO_BLOCK`]. A
    /// plain indexed load keeps the per-block-entry lookup at a couple of
    /// nanoseconds — call/return-heavy code enters a block every three or
    /// four instructions, where a hashed map's probe cost alone erased
    /// most of the engine's win. Entries are cleared when the block dies,
    /// so a present entry is always alive. Sized to cover memory lazily
    /// on first build, so non-superblock configurations never pay the
    /// allocation.
    map: Vec<u32>,
    /// `map`'s target length in words (memory size / 4).
    map_words: usize,
    blocks: Vec<Block>,
    /// For each memory page, the indices of blocks decoded from it. May
    /// retain indices of dead blocks (filtered on use); fully rebuilt on
    /// compaction.
    by_page: Vec<Vec<u32>>,
    /// Dead blocks awaiting compaction.
    dead: usize,
    /// The block most recently executed to completion, and whether it
    /// exited via a taken transfer — the chaining source for the next
    /// resolve.
    last: Option<(u32, bool)>,
}

impl BlockCache {
    /// An empty cache over `page_count` memory pages.
    pub(crate) fn new(page_count: usize) -> BlockCache {
        BlockCache {
            map: Vec::new(),
            map_words: page_count * (PAGE_BYTES / 4),
            blocks: Vec::new(),
            by_page: vec![Vec::new(); page_count],
            dead: 0,
            last: None,
        }
    }

    /// The block at `idx`.
    #[inline]
    pub(crate) fn block(&self, idx: u32) -> &Block {
        &self.blocks[idx as usize]
    }

    /// Bumps the promotion heat of the block at `idx` and records the exit
    /// direction it just took, returning the new heat (saturating; a
    /// promoted block's heat is left saturated so it is never re-promoted
    /// while the trace lives).
    #[inline]
    pub(crate) fn bump_heat(&mut self, idx: u32, taken: bool) -> u32 {
        let b = &mut self.blocks[idx as usize];
        let d = &mut b.hot_exits[taken as usize];
        *d = d.saturating_add(1);
        b.heat = b.heat.saturating_add(1);
        b.heat
    }

    /// Finds a live block starting at `pc` without touching chaining state —
    /// the trace builder's read-only resolver.
    #[inline]
    pub(crate) fn lookup(&self, pc: u32) -> Option<u32> {
        let idx = *self.map.get(pc as usize / 4)?;
        if idx == NO_BLOCK {
            return None;
        }
        let b = &self.blocks[idx as usize];
        (b.alive && b.start == pc).then_some(idx)
    }

    /// Finds a live block starting at `pc`: first via the previous block's
    /// chain slot (no hashing), then via the map. Chains the previous
    /// block to the result.
    #[inline]
    pub(crate) fn resolve(&mut self, pc: u32) -> Option<u32> {
        if let Some((p, taken)) = self.last {
            if let Some(pb) = self.blocks.get(p as usize) {
                if pb.alive {
                    let cand = pb.succ[taken as usize];
                    if let Some(cb) = self.blocks.get(cand as usize) {
                        if cb.alive && cb.start == pc {
                            return Some(cand);
                        }
                    }
                }
            }
        }
        let idx = *self.map.get(pc as usize / 4)?;
        if idx == NO_BLOCK {
            return None;
        }
        let b = &self.blocks[idx as usize];
        // A misaligned `pc` lands in some aligned block's map slot; the
        // start check rejects it (alive is implied by map presence, but
        // stays cheap insurance).
        if !b.alive || b.start != pc {
            return None;
        }
        self.chain_to(idx);
        Some(idx)
    }

    /// Records that the block at `idx` just completed, exiting taken or
    /// fall-through — the source end of the next chain link.
    #[inline]
    pub(crate) fn note_exit(&mut self, idx: u32, taken: bool) {
        self.last = Some((idx, taken));
    }

    /// Drops the chaining source (the last block aborted mid-body, so its
    /// successor would be bogus).
    #[inline]
    pub(crate) fn forget_last(&mut self) {
        self.last = None;
    }

    /// Caches `idx` as the successor of the previously completed block.
    fn chain_to(&mut self, idx: u32) {
        if let Some((p, taken)) = self.last {
            if let Some(pb) = self.blocks.get_mut(p as usize) {
                if pb.alive {
                    pb.succ[taken as usize] = idx;
                }
            }
        }
    }

    /// Applies one invalidation event: kills every block registered on the
    /// named page (or everything).
    #[cold]
    pub(crate) fn invalidate(&mut self, d: CodeDirty) {
        match d {
            CodeDirty::Page(idx) => {
                let Some(list) = self.by_page.get_mut(idx) else {
                    return;
                };
                for bi in list.drain(..) {
                    if let Some(b) = self.blocks.get_mut(bi as usize) {
                        if b.alive {
                            b.alive = false;
                            self.dead += 1;
                            if let Some(slot) = self.map.get_mut(b.start as usize / 4) {
                                *slot = NO_BLOCK;
                            }
                        }
                    }
                }
            }
            CodeDirty::All => self.clear(),
        }
    }

    /// Drops everything (wholesale restore, channel overflow, compaction).
    fn clear(&mut self) {
        self.map.fill(NO_BLOCK);
        self.blocks.clear();
        self.by_page.iter_mut().for_each(Vec::clear);
        self.dead = 0;
        self.last = None;
    }

    /// Rebuilds from scratch once dead blocks dominate — block indices are
    /// never reused while any stale reference could exist, so a full clear
    /// is the only compaction that keeps chain validation trivial.
    fn maybe_compact(&mut self) {
        if self.dead > COMPACT_DEAD_MIN && self.dead * 2 > self.blocks.len() {
            self.clear();
        }
    }

    /// Forms, fuses and registers a new block starting at `pc`. Returns
    /// `None` when not even the first word yields a prepared line
    /// (misaligned, out of range, undecodable) — the caller must take the
    /// architectural one-step path, which raises the proper trap.
    pub(crate) fn build(&mut self, mem: &mut Memory, start: u32, cfg: &SimConfig) -> Option<u32> {
        let lines = collect_lines(mem, start)?;
        let word = start as usize / 4;
        if self.map.len() <= word {
            // Grow the direct map just past the highest entry PC seen,
            // power-of-two stepped (code clusters near `code_base`, so
            // this stays a few KB; covering all of memory up front would
            // cost a megabyte-scale fill on the first build — measurable
            // against a short program's whole runtime).
            let len = (word + 1)
                .next_power_of_two()
                .clamp(word + 1, self.map_words);
            self.map.resize(len, NO_BLOCK);
        }
        self.maybe_compact();
        let ops = fuse(&lines, cfg);
        let insns = lines.len() as u32;
        let end = start.wrapping_add(4 * insns);
        let idx = self.blocks.len() as u32;
        self.blocks.push(Block {
            start,
            end,
            ops: ops.into(),
            insns,
            heat: 0,
            hot_exits: [0; 2],
            alive: true,
            succ: [NO_BLOCK; 2],
        });
        if let Some(slot) = self.map.get_mut(start as usize / 4) {
            *slot = idx;
        }
        let first = start as usize / PAGE_BYTES;
        let last = (end as usize - 4) / PAGE_BYTES;
        for page in first..=last {
            mem.note_code_page(page);
            if let Some(list) = self.by_page.get_mut(page) {
                list.push(idx);
            }
        }
        self.chain_to(idx);
        Some(idx)
    }
}

/// Collects the prepared lines of one superblock: consecutive decodable
/// words from `start`, ending after a transfer (and, when safe, its delay
/// slot) or at a page boundary. Returns `None` if not even the first word
/// prepares. Shared with the trace builder, which re-collects the lines of
/// each chained block.
pub(crate) fn collect_lines(mem: &Memory, start: u32) -> Option<Vec<Line>> {
    if start & 3 != 0 {
        return None;
    }
    let mut lines = Vec::new();
    let mut pc = start;
    while let Some(line) = prepare_at(mem, pc) {
        lines.push(line);
        pc = pc.wrapping_add(4);
        if line.is_transfer {
            // CALLI traps in place (no slot); every other transfer exposes
            // a delay slot, included when it is itself block-safe. A slot
            // that is another transfer raises TransferInDelaySlot — left
            // out so the one-step path delivers the trap.
            if line.op.has_delay_slot() {
                if let Some(slot) = prepare_at(mem, pc) {
                    if !slot.is_transfer {
                        lines.push(slot);
                    }
                }
            }
            break;
        }
        if (pc as usize).is_multiple_of(PAGE_BYTES) {
            break;
        }
    }
    (!lines.is_empty()).then_some(lines)
}

/// Prepares the word at `pc`, or `None` for anything the slow path must
/// handle (never cached, mirroring `ICache::fetch`).
fn prepare_at(mem: &Memory, pc: u32) -> Option<Line> {
    let word = mem.peek_u32(pc).ok()?;
    Some(Line::prepare(Instruction::decode(word).ok()?))
}

/// Whether the opcode is a plain ALU/shift op (the `alu` dispatch set) —
/// the spec table's ALU group.
fn is_alu(op: Opcode) -> bool {
    risc1_isa::spec::entry(op).is_alu()
}

/// ALU ops that consult the incoming carry flag — excluded from build-time
/// constant folding. The spec table's `FlagsRead::Carry` rows.
fn reads_carry(op: Opcode) -> bool {
    risc1_isa::spec::entry(op).reads_carry()
}

/// The left-to-right fusion pass: non-overlapping adjacent pairs, first
/// matching kind wins, with one pair of lookahead so the catch-all never
/// *steals* the left half of a specialised pair — greedy pairing used to
/// let `alu_pair` consume the address-forming ALU (or flag-setter, or
/// LDHI) that the *next* pair would have fused as `addr_feed`/`cmp_branch`/
/// `ldhi_imm`, which is why whole workloads reported zero `addr_feed`
/// pairs. Fusion is attempted only under the default datapath (forwarding
/// on, no trace recording): the fused handlers elide the hazard bookkeeping
/// and trace pushes those modes need, and gating here keeps them exact
/// rather than conditional.
fn fuse(lines: &[Line], cfg: &SimConfig) -> Vec<BOp> {
    let fusable = cfg.forwarding && !cfg.record_trace;
    let mut ops = Vec::with_capacity(lines.len());
    let mut i = 0;
    while i < lines.len() {
        if fusable && i + 1 < lines.len() {
            if let Some(op) = try_fuse(&lines[i], &lines[i + 1], cfg) {
                // Lookahead: a catch-all pair here yields exactly one fused
                // pair either way, but a specialised pair starting at the
                // *second* element is a strictly better handler (and what
                // e15 ablates). Defer when one is available.
                let steals_specialised = matches!(op, BOp::AluPair { .. })
                    && i + 2 < lines.len()
                    && try_fuse_specialised(&lines[i + 1], &lines[i + 2], cfg).is_some();
                if !steals_specialised {
                    ops.push(op);
                    i += 2;
                    continue;
                }
            }
        }
        ops.push(BOp::One(lines[i]));
        i += 1;
    }
    ops
}

/// Attempts to fuse the adjacent pair `(a, b)`: every specialised kind
/// first, then the catch-all.
fn try_fuse(a: &Line, b: &Line, cfg: &SimConfig) -> Option<BOp> {
    if let Some(op) = try_fuse_specialised(a, b, cfg) {
        return Some(op);
    }
    let f = &cfg.fusion;
    // Catch-all: any two adjacent plain ALU/LDHI ops. Tried last so the
    // specialised kinds keep their matches; neither half can fault.
    if f.alu_pair
        && (is_alu(a.op) || a.op == Opcode::Ldhi)
        && (is_alu(b.op) || b.op == Opcode::Ldhi)
    {
        return Some(BOp::AluPair { a: *a, b: *b });
    }
    None
}

/// Attempts the four specialised fusion kinds on `(a, b)` — everything but
/// the `alu_pair` catch-all, which `fuse` also consults for lookahead.
fn try_fuse_specialised(a: &Line, b: &Line, cfg: &SimConfig) -> Option<BOp> {
    let f = &cfg.fusion;
    // Compare + conditional jump: `a` deterministically latches the flags
    // `b` tests, and nothing between them can fault.
    if f.cmp_branch && is_alu(a.op) && a.scc && b.op.uses_condition() {
        return Some(BOp::CmpBranch { a: *a, b: *b });
    }
    // Transfer + safe slot: target operands are read before the slot runs
    // in the unfused sequence too, so executing them as a unit is exact.
    // Only ALU/LDHI slots qualify — no faults, no window moves, no PSW.
    if f.transfer_slot && a.op.uses_condition() && (is_alu(b.op) || b.op == Opcode::Ldhi) {
        return Some(BOp::TransferSlot { a: *a, b: *b });
    }
    // LDHI + immediate ALU: the whole pair is a build-time constant when
    // the ALU op ignores carry and its only dynamic input is `a`'s result.
    if f.ldhi_imm
        && a.op == Opcode::Ldhi
        && !a.dest.is_zero()
        && is_alu(b.op)
        && !reads_carry(b.op)
        && b.rs1 == a.dest
    {
        if let Short2::Imm(imm) = b.s2 {
            let hi = (a.imm19 as u32) << 13;
            let out = alu(b.op, hi, imm as i32 as u32, false);
            return Some(BOp::LdhiImm {
                a: *a,
                b: *b,
                hi,
                value: out.value,
                flags: out.flags,
            });
        }
    }
    // ALU feeding the address register of the next load.
    if f.addr_feed && is_alu(a.op) && b.op.is_load() && b.rs1 == a.dest && !a.dest.is_zero() {
        return Some(BOp::AddrFeed { a: *a, b: *b });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use risc1_isa::{Cond, Reg};

    fn mem_with(words: &[u32]) -> Memory {
        let mut mem = Memory::new(4 * PAGE_BYTES);
        for (i, &w) in words.iter().enumerate() {
            mem.write_u32(4 * i as u32, w).unwrap();
        }
        mem
    }

    fn add(dest: Reg, rs1: Reg, imm: i32) -> u32 {
        Instruction::reg(Opcode::Add, dest, rs1, Short2::imm(imm).unwrap()).encode()
    }

    fn add_scc(dest: Reg, rs1: Reg, imm: i32) -> u32 {
        Instruction::reg_scc(Opcode::Add, dest, rs1, Short2::imm(imm).unwrap()).encode()
    }

    fn jmpr(cond: Cond, off: i32) -> u32 {
        Instruction::jmpr(cond, off).encode()
    }

    #[test]
    fn block_ends_after_transfer_and_slot() {
        let mem = mem_with(&[
            add(Reg::R16, Reg::R0, 1),
            add(Reg::R17, Reg::R0, 2),
            jmpr(Cond::Alw, -8),
            add(Reg::R18, Reg::R0, 3), // delay slot, included
            add(Reg::R19, Reg::R0, 4), // past the block
        ]);
        let lines = collect_lines(&mem, 0).unwrap();
        assert_eq!(lines.len(), 4, "two ALUs + transfer + slot");
        assert_eq!(lines[2].op, Opcode::Jmpr);
    }

    #[test]
    fn transfer_slot_that_is_a_transfer_is_left_out() {
        let mem = mem_with(&[jmpr(Cond::Alw, 8), jmpr(Cond::Alw, 8)]);
        let lines = collect_lines(&mem, 0).unwrap();
        assert_eq!(lines.len(), 1, "the trapping slot takes the slow path");
    }

    #[test]
    fn block_stops_at_page_boundary() {
        let words: Vec<u32> = (0..40).map(|_| add(Reg::R16, Reg::R16, 1)).collect();
        let mem = mem_with(&words);
        let lines = collect_lines(&mem, 0).unwrap();
        assert_eq!(lines.len(), PAGE_BYTES / 4, "one page of instructions");
    }

    #[test]
    fn undecodable_or_misaligned_start_is_refused() {
        let mem = mem_with(&[0xffff_ffff]);
        assert!(collect_lines(&mem, 0).is_none(), "undecodable first word");
        assert!(collect_lines(&mem, 2).is_none(), "misaligned");
        let far = 16 * PAGE_BYTES as u32;
        assert!(collect_lines(&mem, far).is_none(), "out of range");
    }

    #[test]
    fn fusion_finds_all_four_kinds() {
        let cfg = SimConfig::default();
        let ldl = Instruction::reg(Opcode::Ldl, Reg::R17, Reg::R16, Short2::imm(0).unwrap());
        let mem = mem_with(&[
            Instruction::ldhi(Reg::R16, 5).encode(),
            add(Reg::R16, Reg::R16, 9), // ldhi+imm pair
            add(Reg::R16, Reg::R16, 4),
            ldl.encode(), // addr-feed pair
            add_scc(Reg::R0, Reg::R17, -1),
            jmpr(Cond::Eq, 8),         // cmp+branch pair
            add(Reg::R18, Reg::R0, 1), // its slot, unfused
        ]);
        let lines = collect_lines(&mem, 0).unwrap();
        let ops = fuse(&lines, &cfg);
        assert!(matches!(ops[0], BOp::LdhiImm { value, .. } if value == (5 << 13) + 9));
        assert!(matches!(ops[1], BOp::AddrFeed { .. }));
        assert!(matches!(ops[2], BOp::CmpBranch { .. }));
        assert!(matches!(ops[3], BOp::One(_)));
        assert_eq!(ops.iter().map(BOp::insns).sum::<u32>(), 7);

        // Bare transfer + slot (no preceding scc ALU) fuses as a unit.
        let mem2 = mem_with(&[
            add(Reg::R16, Reg::R0, 1),
            jmpr(Cond::Alw, -4),
            add(Reg::R17, Reg::R0, 2),
        ]);
        let ops2 = fuse(&collect_lines(&mem2, 0).unwrap(), &cfg);
        assert!(matches!(ops2[1], BOp::TransferSlot { .. }));
    }

    #[test]
    fn catch_all_defers_to_a_following_specialised_pair() {
        let cfg = SimConfig::default();
        let ldl = Instruction::reg(Opcode::Ldl, Reg::R18, Reg::R17, Short2::imm(0).unwrap());
        // add; add (address-forming); ldl — greedy pairing used to emit
        // AluPair(add, add) + One(ldl), hiding the addr_feed shape that
        // whole workloads then reported as zero.
        let mem = mem_with(&[
            add(Reg::R16, Reg::R0, 1),
            add(Reg::R17, Reg::R16, 8),
            ldl.encode(),
        ]);
        let lines = collect_lines(&mem, 0).unwrap();
        let ops = fuse(&lines, &cfg);
        assert!(matches!(ops[0], BOp::One(_)), "first ALU yields");
        assert!(matches!(ops[1], BOp::AddrFeed { .. }), "addr_feed wins");
        // With addr_feed knocked out the catch-all reclaims the pair, so
        // the e15 monotonicity invariant (knockouts never fuse more) holds.
        let no_feed = SimConfig {
            fusion: crate::config::FusionConfig {
                addr_feed: false,
                ..crate::config::FusionConfig::default()
            },
            ..SimConfig::default()
        };
        let ops2 = fuse(&lines, &no_feed);
        assert!(matches!(ops2[0], BOp::AluPair { .. }));
        assert!(matches!(ops2[1], BOp::One(_)));
    }

    #[test]
    fn fusion_respects_config_gates() {
        let mem = mem_with(&[
            add_scc(Reg::R0, Reg::R17, -1),
            jmpr(Cond::Eq, 8),
            add(Reg::R18, Reg::R0, 1),
        ]);
        let lines = collect_lines(&mem, 0).unwrap();
        let cfg = SimConfig {
            fusion: crate::config::FusionConfig::none(),
            ..SimConfig::default()
        };
        assert!(fuse(&lines, &cfg)
            .iter()
            .all(|op| matches!(op, BOp::One(_))));
        let traced = SimConfig {
            record_trace: true,
            ..SimConfig::default()
        };
        assert!(
            fuse(&lines, &traced)
                .iter()
                .all(|op| matches!(op, BOp::One(_))),
            "tracing disables fusion entirely"
        );
    }

    #[test]
    fn invalidation_is_block_granular_and_compaction_clears() {
        let cfg = SimConfig::default();
        let mut mem = Memory::new(4 * PAGE_BYTES);
        // One block in page 0, one in page 1.
        mem.write_u32(0, jmpr(Cond::Alw, 0)).unwrap();
        mem.write_u32(4, add(Reg::R16, Reg::R0, 1)).unwrap();
        mem.write_u32(PAGE_BYTES as u32, jmpr(Cond::Alw, 0))
            .unwrap();
        let mut cache = BlockCache::new(mem.page_count());
        let b0 = cache.build(&mut mem, 0, &cfg).unwrap();
        let b1 = cache.build(&mut mem, PAGE_BYTES as u32, &cfg).unwrap();
        assert_eq!(cache.resolve(0), Some(b0));
        cache.invalidate(CodeDirty::Page(0));
        assert_eq!(cache.resolve(0), None, "page-0 block died");
        assert_eq!(
            cache.resolve(PAGE_BYTES as u32),
            Some(b1),
            "page-1 block survives"
        );
        cache.invalidate(CodeDirty::All);
        assert_eq!(cache.resolve(PAGE_BYTES as u32), None);
        assert!(cache.blocks.is_empty(), "All is a full clear");
    }

    #[test]
    fn chaining_links_and_validates_successors() {
        let cfg = SimConfig::default();
        let mut mem = Memory::new(4 * PAGE_BYTES);
        mem.write_u32(0, jmpr(Cond::Alw, (PAGE_BYTES) as i32))
            .unwrap();
        mem.write_u32(4, add(Reg::R16, Reg::R0, 1)).unwrap();
        mem.write_u32(PAGE_BYTES as u32, jmpr(Cond::Alw, 0))
            .unwrap();
        let mut cache = BlockCache::new(mem.page_count());
        let b0 = cache.build(&mut mem, 0, &cfg).unwrap();
        cache.note_exit(b0, true);
        let b1 = cache.build(&mut mem, PAGE_BYTES as u32, &cfg).unwrap();
        assert_eq!(cache.block(b0).succ[1], b1, "build chained the exit");
        cache.note_exit(b0, true);
        assert_eq!(cache.resolve(PAGE_BYTES as u32), Some(b1), "chain hit");
        // Kill the successor: the stale chain slot must not resolve.
        cache.invalidate(CodeDirty::Page(1));
        cache.note_exit(b0, true);
        assert_eq!(cache.resolve(PAGE_BYTES as u32), None);
    }
}
