//! Pipeline-timing views over an execution trace.
//!
//! RISC I overlaps instruction fetch with execution: while instruction *i*
//! occupies the datapath, instruction *i+1* is being fetched. That overlap
//! is precisely why every transfer of control has a delay slot (the next
//! instruction is already in flight) and why loads/stores cost a second
//! cycle (the single memory port is busy with data).
//!
//! This module renders the retired-instruction trace recorded by
//! [`crate::Cpu`] as the classic timing diagram the paper uses to explain
//! delayed jumps (experiment E11), and provides summary figures.

use crate::cpu::Retired;
use std::fmt::Write as _;

/// Summary occupancy figures for a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineSummary {
    /// Instructions retired.
    pub instructions: u64,
    /// Total cycles.
    pub cycles: u64,
    /// Instructions per cycle (the paper's goal: as close to 1 as memory
    /// instructions allow).
    pub ipc: f64,
    /// Cycles lost to bubbles (interlocks / suspended-pipeline penalties).
    pub bubble_cycles: u64,
}

/// Computes summary figures from a trace.
pub fn summarize(trace: &[Retired]) -> PipelineSummary {
    let instructions = trace.len() as u64;
    let cycles: u64 = trace.iter().map(|r| r.cycles).sum();
    let bubble_cycles: u64 = trace
        .iter()
        .map(|r| r.cycles.saturating_sub(r.insn.opcode.base_cycles()))
        .sum();
    PipelineSummary {
        instructions,
        cycles,
        ipc: if cycles == 0 {
            0.0
        } else {
            instructions as f64 / cycles as f64
        },
        bubble_cycles,
    }
}

/// Renders a cycle-by-cycle timing diagram of (a prefix of) the trace.
///
/// Columns are cycles; each row is one retired instruction showing its
/// overlapped fetch (`F`, one cycle before execute), any interlock bubbles
/// (`b`), execute (`E`) and the extra memory cycle of loads/stores (`M`).
///
/// ```
/// use risc1_core::{pipeline, Cpu, Program, SimConfig};
/// use risc1_isa::{Instruction, Reg, Short2};
///
/// let cfg = SimConfig { record_trace: true, ..SimConfig::default() };
/// let mut cpu = Cpu::new(cfg);
/// cpu.load_program(&Program::from_instructions(vec![
///     Instruction::nop(),
///     Instruction::ret(Reg::R25, Short2::ZERO),
///     Instruction::nop(),
/// ])).unwrap();
/// cpu.run().unwrap();
/// let diagram = pipeline::render_timing(cpu.trace(), 10);
/// assert!(diagram.contains('E'));
/// ```
pub fn render_timing(trace: &[Retired], max_rows: usize) -> String {
    let rows = &trace[..trace.len().min(max_rows)];
    let mut out = String::new();
    if rows.is_empty() {
        return out;
    }
    let base = rows[0].start_cycle.saturating_sub(1);
    let end = rows
        .iter()
        .map(|r| r.start_cycle + r.cycles)
        .max()
        .unwrap_or(base);
    let width = (end - base) as usize;

    // Header: cycle numbers mod 10.
    let label_w = 34;
    let _ = write!(out, "{:label_w$} ", "cycle:");
    for c in 0..width {
        let _ = write!(out, "{}", (base as usize + c) % 10);
    }
    out.push('\n');

    for r in rows {
        let label = format!(
            "{:#06x} {}{}",
            r.pc,
            r.insn,
            if r.in_delay_slot { "  <slot>" } else { "" }
        );
        let mut line = vec![b' '; width];
        let fetch = r.start_cycle.saturating_sub(1);
        if fetch >= base {
            line[(fetch - base) as usize] = b'F';
        }
        let bubbles = r.cycles.saturating_sub(r.insn.opcode.base_cycles());
        let mut c = r.start_cycle - base;
        for _ in 0..bubbles {
            line[c as usize] = b'b';
            c += 1;
        }
        line[c as usize] = b'E';
        c += 1;
        for _ in 1..r.insn.opcode.base_cycles() {
            line[c as usize] = b'M';
            c += 1;
        }
        let _ = writeln!(
            out,
            "{:label_w$} {}",
            truncate(&label, label_w),
            String::from_utf8_lossy(&line)
        );
    }
    out
}

fn truncate(s: &str, w: usize) -> String {
    if s.len() <= w {
        s.to_string()
    } else {
        format!("{}…", &s[..w.saturating_sub(1)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cpu, Program, SimConfig};
    use risc1_isa::{Instruction, Opcode, Reg, Short2};

    fn traced_run(insns: Vec<Instruction>, forwarding: bool) -> Vec<Retired> {
        let cfg = SimConfig {
            record_trace: true,
            forwarding,
            ..SimConfig::default()
        };
        let mut cpu = Cpu::new(cfg);
        cpu.load_program(&Program::from_instructions(insns))
            .unwrap();
        cpu.run().unwrap();
        cpu.trace().to_vec()
    }

    fn halt_seq() -> Vec<Instruction> {
        vec![Instruction::ret(Reg::R0, Short2::ZERO), Instruction::nop()]
    }

    #[test]
    fn summary_counts_instructions_and_cycles() {
        let mut p = vec![
            Instruction::nop(),
            Instruction::ldhi(Reg::R16, 1),
            Instruction::reg(Opcode::Stl, Reg::R0, Reg::R16, Short2::ZERO),
        ];
        p.extend(halt_seq());
        let t = traced_run(p, true);
        let s = summarize(&t);
        assert_eq!(s.instructions, 4); // halting ret retires, its slot does not
        assert_eq!(s.cycles, 1 + 1 + 2 + 1, "store costs the extra M cycle");
        assert_eq!(s.bubble_cycles, 0);
        assert!(s.ipc > 0.7 && s.ipc <= 1.0);
    }

    #[test]
    fn diagram_shows_stages_in_order() {
        let mut p = vec![
            Instruction::ldhi(Reg::R16, 1),
            Instruction::reg(Opcode::Ldl, Reg::R17, Reg::R16, Short2::ZERO),
        ];
        p.extend(halt_seq());
        let t = traced_run(p, true);
        let d = render_timing(&t, 16);
        let lines: Vec<&str> = d.lines().collect();
        assert!(lines.len() >= 4);
        assert!(lines[1].contains('E'));
        assert!(
            lines[2].contains("EM"),
            "load occupies execute + memory: {d}"
        );
    }

    #[test]
    fn diagram_marks_interlock_bubbles() {
        let mut p = vec![
            Instruction::ldhi(Reg::R16, 1),
            Instruction::reg(Opcode::Add, Reg::R17, Reg::R16, Short2::ZERO), // RAW on r16
        ];
        p.extend(halt_seq());
        let t = traced_run(p, false); // forwarding off
        let d = render_timing(&t, 16);
        assert!(d.contains('b'), "expected a bubble in:\n{d}");
        let s = summarize(&t);
        assert_eq!(s.bubble_cycles, 1);
    }

    #[test]
    fn empty_trace_renders_empty() {
        assert!(render_timing(&[], 5).is_empty());
        let s = summarize(&[]);
        assert_eq!(s.instructions, 0);
        assert_eq!(s.ipc, 0.0);
    }

    #[test]
    fn max_rows_limits_output() {
        let mut p = vec![Instruction::nop(); 10];
        p.extend(halt_seq());
        let t = traced_run(p, true);
        let d = render_timing(&t, 3);
        assert_eq!(d.lines().count(), 4, "header + 3 rows");
    }
}
