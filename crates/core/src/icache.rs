//! Predecoded instruction cache.
//!
//! `exec_one` used to pay a `peek_u32` → [`Instruction::decode`] round-trip
//! for every retired instruction, then re-match the operand shape inside
//! the dispatch arm. All of that is a pure function of memory content, so
//! this module shadows memory with lazily-filled pages of fully *prepared*
//! lines ([`Line`]): the decoded instruction plus its pre-extracted
//! operands, base cycle cost and transfer flag. The first fetch of a word
//! decodes and prepares it once; every later fetch is two array indexes.
//!
//! Correctness hinges on invalidation, and invalidation rides the existing
//! dirty-page machinery: [`crate::mem::Memory`] feeds a dedicated
//! decode-cache channel from the same `mark_dirty` entry point that the
//! checkpoint subsystem uses. Before trusting any cached line the CPU polls
//! that channel (an O(1) flag check, `Cpu::drain_code_invalidations`) and
//! fans each event out to this cache *and* the superblock cache, dropping
//! exactly the pages that were written — so self-modifying code, snapshot
//! `restore()`, and `revert_to()` all see freshly decoded text. The cache
//! holds *derived* state only: it never appears in snapshots, journals, or
//! checksums, and the `interp_equivalence` suite asserts runs with and
//! without it are bit-identical.
//!
//! Scope note: the whole address space is shadowed, not just the text
//! segment — recovery stubs (e.g. at `RECOVERY_STUB_BASE`, below
//! `code_base`) and trap handlers execute from arbitrary addresses and
//! deserve caching too. Pages are allocated on first execution from them,
//! so data-only pages cost one `Option` pointer each.

use crate::mem::{CodeDirty, Memory, PAGE_BYTES};
use risc1_isa::insn::Operands;
use risc1_isa::spec::{self, Transfer};
use risc1_isa::{Cond, Instruction, Opcode, Reg, Short2};

/// Decoded slots per page: one per 32-bit word.
const LINES_PER_PAGE: usize = PAGE_BYTES / 4;

/// One prepared instruction: the decode result plus everything the
/// execute loop would otherwise recompute per retirement. The operand
/// fields are a *flattened* view of [`Operands`] — each shape fills the
/// fields it has and leaves the rest at neutral values the dispatch arms
/// for that opcode never read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Line {
    /// The decoded instruction (kept whole for trace records and the
    /// hazard model's read-set computation).
    pub insn: Instruction,
    /// Copy of `insn.opcode`, the dispatch key.
    pub op: Opcode,
    /// Copy of `insn.scc`.
    pub scc: bool,
    /// Whether the operands were a long (19-bit immediate) shape.
    pub long: bool,
    /// Precomputed transfer flag, from the spec table's `transfer` column.
    pub is_transfer: bool,
    /// Precomputed base cycle cost, from the spec table's `base_cycles`
    /// column.
    pub base_cycles: u8,
    /// Destination / link / store-data register (short shapes).
    pub dest: Reg,
    /// First source register (short shapes).
    pub rs1: Reg,
    /// Second source operand (short shapes).
    pub s2: Short2,
    /// The 19-bit immediate (long shapes).
    pub imm19: i32,
    /// Jump condition (conditional shapes).
    pub cond: Cond,
}

impl Line {
    /// Flattens a decoded instruction into its prepared form. This is the
    /// work the cache amortises: the uncached path runs it on every
    /// retirement, a cache hit never runs it at all.
    #[inline]
    pub(crate) fn prepare(insn: Instruction) -> Line {
        let (dest, rs1, s2, imm19, cond, long) = match insn.operands {
            Operands::Short { dest, rs1, s2 } => (dest, rs1, s2, 0, Cond::Nvr, false),
            Operands::Long { dest, imm19 } => (dest, Reg::R0, Short2::ZERO, imm19, Cond::Nvr, true),
            Operands::ShortCond { cond, rs1, s2 } => (Reg::R0, rs1, s2, 0, cond, false),
            Operands::LongCond { cond, imm19 } => {
                (Reg::R0, Reg::R0, Short2::ZERO, imm19, cond, true)
            }
        };
        let entry = spec::entry(insn.opcode);
        Line {
            insn,
            op: insn.opcode,
            scc: insn.scc,
            long,
            is_transfer: entry.transfer != Transfer::None,
            base_cycles: entry.base_cycles,
            dest,
            rs1,
            s2,
            imm19,
            cond,
        }
    }
}

/// The base cycle cost a prepared cache line carries for `insn`. Exposed so
/// the `--spec-audit` pass can cross-check the engine's per-line cost
/// against the spec table without reaching into the private cache type.
pub fn prepared_base_cycles(insn: &Instruction) -> u8 {
    Line::prepare(*insn).base_cycles
}

/// The cache proper: one lazily-allocated line array per memory page.
///
/// A line is `None` until the word at that address has been fetched and
/// successfully decoded. Undecodable or out-of-range words are never
/// cached — those fetches fall back to the slow path, which produces the
/// architecturally-correct trap.
#[derive(Debug, Clone)]
pub(crate) struct ICache {
    pages: Vec<Option<Box<[Option<Line>; LINES_PER_PAGE]>>>,
}

impl ICache {
    /// An empty cache shadowing `page_count` memory pages.
    pub(crate) fn new(page_count: usize) -> ICache {
        ICache {
            pages: vec![None; page_count],
        }
    }

    /// Fetches the prepared line at `pc`, filling it on first use. Returns
    /// `None` for anything the cache does not handle — misaligned or
    /// out-of-range addresses and undecodable words — which the caller
    /// must route through the uncached fetch path for proper trap
    /// delivery.
    ///
    /// The caller is responsible for draining the memory's code-dirty
    /// channel first (`Cpu::drain_code_invalidations`): the drain is shared
    /// with the superblock cache, and a one-sided drain here would swallow
    /// invalidations the block cache still needs.
    #[inline]
    pub(crate) fn fetch(&mut self, mem: &mut Memory, pc: u32) -> Option<Line> {
        if pc & 3 != 0 {
            return None;
        }
        let page = pc as usize / PAGE_BYTES;
        let slot = (pc as usize % PAGE_BYTES) / 4;
        let entry = self.pages.get_mut(page)?;
        if entry.is_none() {
            // First line in this page: allocate the array and register the
            // page with memory, which arms the invalidation channel for
            // writes to it (writes to unregistered pages bypass the
            // channel entirely).
            *entry = Some(Box::new([None; LINES_PER_PAGE]));
            mem.note_code_page(page);
        }
        let lines = entry.as_mut().expect("just ensured");
        if let Some(line) = lines[slot] {
            return Some(line);
        }
        let word = mem.peek_u32(pc).ok()?;
        let line = Line::prepare(Instruction::decode(word).ok()?);
        lines[slot] = Some(line);
        Some(line)
    }

    /// Applies one invalidation event from the code-dirty channel, dropping
    /// the page it names (or everything, after a wholesale restore or
    /// channel overflow).
    #[cold]
    pub(crate) fn invalidate(&mut self, d: CodeDirty) {
        match d {
            CodeDirty::Page(idx) => {
                if let Some(p) = self.pages.get_mut(idx) {
                    *p = None;
                }
            }
            CodeDirty::All => self.pages.iter_mut().for_each(|p| *p = None),
        }
    }

    /// Test helper: drain the channel into this cache alone.
    #[cfg(test)]
    fn sync(&mut self, mem: &mut Memory) {
        if mem.code_dirty_pending() {
            mem.drain_code_dirty(|d| self.invalidate(d));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add_word() -> u32 {
        Instruction::reg(Opcode::Add, Reg::R16, Reg::R17, Short2::Reg(Reg::R18)).encode()
    }

    #[test]
    fn first_fetch_decodes_then_hits() {
        let mut mem = Memory::new(4 * PAGE_BYTES);
        mem.write_u32(8, add_word()).unwrap();
        let mut ic = ICache::new(mem.page_count());
        ic.sync(&mut mem);
        let a = ic.fetch(&mut mem, 8).expect("decodes");
        assert_eq!(a.op, Opcode::Add);
        // Hit path: same line, channel still quiet.
        assert!(!mem.code_dirty_pending(), "no new invalidations");
        let b = ic.fetch(&mut mem, 8).expect("hits");
        assert_eq!(a, b);
    }

    #[test]
    fn prepared_lines_flatten_every_operand_shape() {
        // Short: all fields extracted.
        let add = Line::prepare(Instruction::reg(
            Opcode::Add,
            Reg::R16,
            Reg::R17,
            Short2::Reg(Reg::R18),
        ));
        assert_eq!((add.dest, add.rs1), (Reg::R16, Reg::R17));
        assert!(!add.long && !add.is_transfer);
        assert_eq!(u64::from(add.base_cycles), Opcode::Add.base_cycles());
        // Long: imm19 extracted, transfer/cycle attributes precomputed.
        let ldhi = Line::prepare(Instruction::ldhi(Reg::R20, 7));
        assert!(ldhi.long);
        assert_eq!((ldhi.dest, ldhi.imm19), (Reg::R20, 7));
        let call = Line::prepare(Instruction::decode(add_word()).unwrap());
        assert_eq!(call.insn.opcode, call.op);
    }

    #[test]
    fn stores_invalidate_exactly_their_page() {
        let mut mem = Memory::new(4 * PAGE_BYTES);
        let sub = Instruction::reg(Opcode::Sub, Reg::R16, Reg::R17, Short2::Reg(Reg::R18)).encode();
        mem.write_u32(0, add_word()).unwrap();
        let mut ic = ICache::new(mem.page_count());
        assert_eq!(ic.fetch(&mut mem, 0).unwrap().op, Opcode::Add);
        // Overwrite the cached word: after a drain the next fetch must
        // re-decode.
        mem.write_u32(0, sub).unwrap();
        assert!(mem.code_dirty_pending());
        ic.sync(&mut mem);
        assert_eq!(ic.fetch(&mut mem, 0).unwrap().op, Opcode::Sub);
    }

    #[test]
    fn junk_misalignment_and_out_of_range_are_never_cached() {
        let mut mem = Memory::new(PAGE_BYTES);
        mem.write_u32(4, 0xffff_ffff).unwrap();
        let mut ic = ICache::new(mem.page_count());
        assert!(ic.fetch(&mut mem, 4).is_none(), "undecodable");
        assert!(ic.fetch(&mut mem, 2).is_none(), "misaligned");
        assert!(ic.fetch(&mut mem, 4 * PAGE_BYTES as u32).is_none(), "oob");
    }

    #[test]
    fn mark_all_dirty_flushes_every_cached_page() {
        let mut mem = Memory::new(2 * PAGE_BYTES);
        mem.write_u32(0, add_word()).unwrap();
        mem.write_u32(PAGE_BYTES as u32, add_word()).unwrap();
        let mut ic = ICache::new(mem.page_count());
        ic.fetch(&mut mem, 0).unwrap();
        ic.fetch(&mut mem, PAGE_BYTES as u32).unwrap();
        mem.mark_all_dirty();
        ic.sync(&mut mem);
        // Still correct after the flush (content unchanged), and the
        // internal pages were rebuilt from scratch.
        assert_eq!(ic.fetch(&mut mem, 0).unwrap().op, Opcode::Add);
        assert!(ic.pages[1].is_none(), "page 1 dropped, not yet refilled");
    }
}
