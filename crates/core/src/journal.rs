//! Record–replay journals: every nondeterministic input of a run, in a
//! self-contained, serializable form.
//!
//! The simulator itself is deterministic; the only nondeterminism comes
//! from the *outside* — the fault injector's perturbations (bit flips,
//! spurious interrupts, probes, fuel jitter). A [`Journal`] captures a
//! complete campaign: the program image, its arguments, the configuration,
//! and every applied perturbation keyed by **step index** (the count of
//! `pre_step` calls, *not* the retired-instruction count — trap and
//! interrupt delivery steps do not retire an instruction, so several
//! events can share one instruction index but never one step index).
//! Re-applying the events at the recorded steps reproduces the run bit
//! for bit.
//!
//! Journals serialize to plain JSON ([`Journal::to_json`] /
//! [`Journal::from_json`]) with a hand-rolled writer and parser — the
//! workspace deliberately has no external dependencies.

use crate::config::{BranchModel, ExecEngine, FusionConfig, SimConfig};
use crate::cpu::Cpu;
use crate::inject::InjectKind;
use crate::json::{get, Json, JsonError, Parser, Writer};
use crate::program::Program;
use crate::trap::TrapKind;
use std::collections::HashMap;
use std::fmt;

/// Journal format version; bumped whenever the JSON shape changes.
pub const JOURNAL_VERSION: u32 = 1;

/// One recorded perturbation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalEvent {
    /// Step index (count of pre-step points since reset) at which the
    /// event was applied. This is the replay key.
    pub step: u64,
    /// Instructions retired at that point — diagnostic only; several
    /// events can share an instruction index.
    pub at_instruction: u64,
    /// What was applied.
    pub kind: InjectKind,
}

impl fmt::Display for JournalEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "step {:<10} (insn {:<10}) {}",
            self.step, self.at_instruction, self.kind
        )
    }
}

/// The outcome the recorded run ended with, for replay comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordedOutcome {
    /// Stable textual signature: `halt <result>` or the fault's Display
    /// string (which deliberately omits replay context).
    pub signature: String,
    /// Instructions retired in total.
    pub instructions: u64,
    /// Per-cause trap counts, indexed by [`TrapKind::index`].
    pub trap_counts: [u64; TrapKind::COUNT],
}

/// A complete, self-contained record of one injected run.
#[derive(Debug, Clone, PartialEq)]
pub struct Journal {
    /// Format version ([`JOURNAL_VERSION`] when produced by this build).
    pub version: u32,
    /// Seed of the campaign that produced the events (provenance only —
    /// replay applies the recorded events, it does not re-roll).
    pub seed: u64,
    /// Injection rate of the recording campaign (provenance only).
    pub rate: u32,
    /// Whether recovery handlers were installed for the recorded run.
    pub recovery: bool,
    /// Simulator configuration of the recorded run.
    pub cfg: SimConfig,
    /// Program text, one word per instruction.
    pub words: Vec<u32>,
    /// Entry offset into the text, in bytes.
    pub entry_offset: u32,
    /// Initial data images `(addr, bytes)`.
    pub data: Vec<(u32, Vec<u8>)>,
    /// Arguments passed to the program.
    pub args: Vec<i32>,
    /// The perturbations, ordered by step index.
    pub events: Vec<JournalEvent>,
    /// The outcome the recording ended with, if the recorder stored one.
    pub outcome: Option<RecordedOutcome>,
}

impl Journal {
    /// Reconstructs the recorded program image.
    pub fn program(&self) -> Program {
        Program {
            words: self.words.clone(),
            entry_offset: self.entry_offset,
            data: self.data.clone(),
            symbols: HashMap::new(),
        }
    }

    /// Re-applies one recorded perturbation to `cpu`, exactly as the
    /// injector originally did.
    pub fn apply_event(cpu: &mut Cpu, kind: InjectKind) {
        match kind {
            InjectKind::BitFlip { addr, bit } | InjectKind::WstackCorruption { addr, bit } => {
                let _ = cpu.mem.flip_bit(addr, bit);
            }
            InjectKind::SpuriousInterrupt => cpu.raise_interrupt(),
            InjectKind::DecodeProbe => cpu.inject_probe(TrapKind::Decode),
            InjectKind::MisalignProbe => cpu.inject_probe(TrapKind::Misaligned),
            InjectKind::FuelJitter { new_limit } => cpu.set_fuel_limit(new_limit),
        }
    }

    /// Serializes the journal to JSON.
    pub fn to_json(&self) -> String {
        let mut w = Writer::new();
        w.obj_open();
        w.key("version");
        w.num(i128::from(self.version));
        w.key("seed");
        w.num(i128::from(self.seed));
        w.key("rate");
        w.num(i128::from(self.rate));
        w.key("recovery");
        w.bool(self.recovery);
        w.key("config");
        write_config(&mut w, &self.cfg);
        w.key("program");
        w.obj_open();
        w.key("entry_offset");
        w.num(i128::from(self.entry_offset));
        w.key("words");
        w.arr_open();
        for &word in &self.words {
            w.num(i128::from(word));
        }
        w.arr_close();
        w.key("data");
        w.arr_open();
        for (addr, bytes) in &self.data {
            w.obj_open();
            w.key("addr");
            w.num(i128::from(*addr));
            w.key("bytes");
            w.arr_open();
            for &b in bytes {
                w.num(i128::from(b));
            }
            w.arr_close();
            w.obj_close();
        }
        w.arr_close();
        w.obj_close();
        w.key("args");
        w.arr_open();
        for &a in &self.args {
            w.num(i128::from(a));
        }
        w.arr_close();
        w.key("events");
        w.arr_open();
        for ev in &self.events {
            write_event(&mut w, ev);
        }
        w.arr_close();
        w.key("outcome");
        match &self.outcome {
            None => w.null(),
            Some(o) => {
                w.obj_open();
                w.key("signature");
                w.str(&o.signature);
                w.key("instructions");
                w.num(i128::from(o.instructions));
                w.key("trap_counts");
                w.arr_open();
                for &c in &o.trap_counts {
                    w.num(i128::from(c));
                }
                w.arr_close();
                w.obj_close();
            }
        }
        w.obj_close();
        w.finish()
    }

    /// Parses a journal from JSON.
    ///
    /// # Errors
    /// [`JournalError`] on malformed JSON, a schema mismatch, or an
    /// unsupported format version.
    pub fn from_json(text: &str) -> Result<Journal, JournalError> {
        let root = Parser::new(text).parse_document()?;
        let obj = root.as_obj("journal")?;
        let version = get(obj, "version")?.as_u32("version")?;
        if version != JOURNAL_VERSION {
            return Err(JournalError::Version { found: version });
        }
        let prog = get(obj, "program")?.as_obj("program")?;
        let mut data = Vec::new();
        for (i, item) in get(prog, "data")?.as_arr("data")?.iter().enumerate() {
            let o = item.as_obj("data entry")?;
            let addr = get(o, "addr")?.as_u32("data addr")?;
            let bytes = get(o, "bytes")?
                .as_arr("data bytes")?
                .iter()
                .map(|v| v.as_u8("data byte"))
                .collect::<Result<Vec<u8>, _>>()
                .map_err(|e| e.in_context(&format!("data[{i}]")))?;
            data.push((addr, bytes));
        }
        let mut events = Vec::new();
        for item in get(obj, "events")?.as_arr("events")? {
            events.push(read_event(item.as_obj("event")?)?);
        }
        let outcome = match get(obj, "outcome")? {
            Json::Null => None,
            v => {
                let o = v.as_obj("outcome")?;
                let counts = get(o, "trap_counts")?.as_arr("trap_counts")?;
                if counts.len() != TrapKind::COUNT {
                    return Err(JournalError::schema("trap_counts must have 6 entries"));
                }
                let mut trap_counts = [0u64; TrapKind::COUNT];
                for (slot, v) in trap_counts.iter_mut().zip(counts) {
                    *slot = v.as_u64("trap count")?;
                }
                Some(RecordedOutcome {
                    signature: get(o, "signature")?.as_str("signature")?.to_owned(),
                    instructions: get(o, "instructions")?.as_u64("instructions")?,
                    trap_counts,
                })
            }
        };
        Ok(Journal {
            version,
            seed: get(obj, "seed")?.as_u64("seed")?,
            rate: get(obj, "rate")?.as_u32("rate")?,
            recovery: get(obj, "recovery")?.as_bool("recovery")?,
            cfg: read_config(get(obj, "config")?.as_obj("config")?)?,
            words: get(prog, "words")?
                .as_arr("words")?
                .iter()
                .map(|v| v.as_u32("word"))
                .collect::<Result<_, _>>()?,
            entry_offset: get(prog, "entry_offset")?.as_u32("entry_offset")?,
            data,
            args: get(obj, "args")?
                .as_arr("args")?
                .iter()
                .map(|v| v.as_i32("arg"))
                .collect::<Result<_, _>>()?,
            events,
            outcome,
        })
    }
}

/// Writes a [`SimConfig`] as a JSON object (shared by journals and the
/// serve wire format).
pub fn write_config(w: &mut Writer, cfg: &SimConfig) {
    w.obj_open();
    w.key("windows");
    w.num(cfg.windows as i128);
    w.key("mem_bytes");
    w.num(cfg.mem_bytes as i128);
    w.key("code_base");
    w.num(i128::from(cfg.code_base));
    w.key("stack_top");
    w.num(i128::from(cfg.stack_top));
    w.key("window_stack_top");
    w.num(i128::from(cfg.window_stack_top));
    w.key("trap_overhead_cycles");
    w.num(i128::from(cfg.trap_overhead_cycles));
    w.key("branch_model");
    w.str(match cfg.branch_model {
        BranchModel::Delayed => "delayed",
        BranchModel::Suspended => "suspended",
    });
    w.key("forwarding");
    w.bool(cfg.forwarding);
    w.key("fuel");
    w.num(i128::from(cfg.fuel));
    w.key("trap_base");
    match cfg.trap_base {
        None => w.null(),
        Some(b) => w.num(i128::from(b)),
    }
    w.key("record_trace");
    w.bool(cfg.record_trace);
    w.key("engine");
    w.str(cfg.engine.name());
    w.key("fusion");
    w.obj_open();
    w.key("cmp_branch");
    w.bool(cfg.fusion.cmp_branch);
    w.key("ldhi_imm");
    w.bool(cfg.fusion.ldhi_imm);
    w.key("transfer_slot");
    w.bool(cfg.fusion.transfer_slot);
    w.key("addr_feed");
    w.bool(cfg.fusion.addr_feed);
    w.key("alu_pair");
    w.bool(cfg.fusion.alu_pair);
    w.obj_close();
    w.obj_close();
}

/// Reads a [`SimConfig`] written by [`write_config`] (tolerating the
/// documented legacy field spellings).
///
/// # Errors
/// [`JsonError`] on a malformed or unknown field.
pub fn read_config(obj: &[(String, Json)]) -> Result<SimConfig, JsonError> {
    Ok(SimConfig {
        windows: get(obj, "windows")?.as_u64("windows")? as usize,
        mem_bytes: get(obj, "mem_bytes")?.as_u64("mem_bytes")? as usize,
        code_base: get(obj, "code_base")?.as_u32("code_base")?,
        stack_top: get(obj, "stack_top")?.as_u32("stack_top")?,
        window_stack_top: get(obj, "window_stack_top")?.as_u32("window_stack_top")?,
        trap_overhead_cycles: get(obj, "trap_overhead_cycles")?.as_u64("trap_overhead_cycles")?,
        branch_model: match get(obj, "branch_model")?.as_str("branch_model")? {
            "delayed" => BranchModel::Delayed,
            "suspended" => BranchModel::Suspended,
            other => {
                return Err(JsonError::schema(&format!(
                    "unknown branch_model {other:?}"
                )))
            }
        },
        forwarding: get(obj, "forwarding")?.as_bool("forwarding")?,
        fuel: get(obj, "fuel")?.as_u64("fuel")?,
        trap_base: match get(obj, "trap_base")? {
            Json::Null => None,
            v => Some(v.as_u32("trap_base")?),
        },
        record_trace: get(obj, "record_trace")?.as_bool("record_trace")?,
        engine: read_engine(obj)?,
        fusion: match get(obj, "fusion") {
            Ok(v) => {
                let f = v.as_obj("fusion")?;
                FusionConfig {
                    cmp_branch: get(f, "cmp_branch")?.as_bool("cmp_branch")?,
                    ldhi_imm: get(f, "ldhi_imm")?.as_bool("ldhi_imm")?,
                    transfer_slot: get(f, "transfer_slot")?.as_bool("transfer_slot")?,
                    addr_feed: get(f, "addr_feed")?.as_bool("addr_feed")?,
                    // Absent in journals written before this kind existed;
                    // the default reproduces their behaviour (fusion never
                    // changes architectural state).
                    alu_pair: match get(f, "alu_pair") {
                        Ok(v) => v.as_bool("alu_pair")?,
                        Err(_) => true,
                    },
                }
            }
            // Journals written before the superblock engine carry no
            // fusion block; the defaults reproduce their behaviour.
            Err(_) => FusionConfig::default(),
        },
    })
}

/// Reads the execution-engine field, accepting the legacy `"predecode"`
/// boolean of pre-superblock journals (`true` → cached, `false` →
/// uncached) so old recordings stay replayable.
fn read_engine(obj: &[(String, Json)]) -> Result<ExecEngine, JsonError> {
    if let Ok(v) = get(obj, "engine") {
        let name = v.as_str("engine")?;
        return ExecEngine::from_name(name)
            .ok_or_else(|| JsonError::schema(&format!("unknown engine {name:?}")));
    }
    match get(obj, "predecode")?.as_bool("predecode")? {
        true => Ok(ExecEngine::Cached),
        false => Ok(ExecEngine::Uncached),
    }
}

/// Writes one [`JournalEvent`] as a JSON object.
pub fn write_event(w: &mut Writer, ev: &JournalEvent) {
    w.obj_open();
    w.key("step");
    w.num(i128::from(ev.step));
    w.key("at_instruction");
    w.num(i128::from(ev.at_instruction));
    w.key("kind");
    match ev.kind {
        InjectKind::BitFlip { addr, bit } => {
            w.str("bit-flip");
            w.key("addr");
            w.num(i128::from(addr));
            w.key("bit");
            w.num(i128::from(bit));
        }
        InjectKind::SpuriousInterrupt => w.str("spurious-interrupt"),
        InjectKind::DecodeProbe => w.str("decode-probe"),
        InjectKind::MisalignProbe => w.str("misalign-probe"),
        InjectKind::FuelJitter { new_limit } => {
            w.str("fuel-jitter");
            w.key("new_limit");
            w.num(i128::from(new_limit));
        }
        InjectKind::WstackCorruption { addr, bit } => {
            w.str("wstack-corruption");
            w.key("addr");
            w.num(i128::from(addr));
            w.key("bit");
            w.num(i128::from(bit));
        }
    }
    w.obj_close();
}

/// Reads one [`JournalEvent`] written by [`write_event`].
///
/// # Errors
/// [`JsonError`] on a malformed or unknown event.
pub fn read_event(obj: &[(String, Json)]) -> Result<JournalEvent, JsonError> {
    let kind = match get(obj, "kind")?.as_str("kind")? {
        "bit-flip" => InjectKind::BitFlip {
            addr: get(obj, "addr")?.as_u32("addr")?,
            bit: get(obj, "bit")?.as_u8("bit")?,
        },
        "spurious-interrupt" => InjectKind::SpuriousInterrupt,
        "decode-probe" => InjectKind::DecodeProbe,
        "misalign-probe" => InjectKind::MisalignProbe,
        "fuel-jitter" => InjectKind::FuelJitter {
            new_limit: get(obj, "new_limit")?.as_u64("new_limit")?,
        },
        "wstack-corruption" => InjectKind::WstackCorruption {
            addr: get(obj, "addr")?.as_u32("addr")?,
            bit: get(obj, "bit")?.as_u8("bit")?,
        },
        other => return Err(JsonError::schema(&format!("unknown event kind {other:?}"))),
    };
    Ok(JournalEvent {
        step: get(obj, "step")?.as_u64("step")?,
        at_instruction: get(obj, "at_instruction")?.as_u64("at_instruction")?,
        kind,
    })
}

/// Why a journal could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// The text is not well-formed JSON.
    Parse {
        /// Byte offset of the problem.
        pos: usize,
        /// What was expected.
        msg: String,
    },
    /// The JSON is well-formed but does not match the journal schema.
    Schema(String),
    /// The journal was written by an unsupported format version.
    Version {
        /// Version found in the file.
        found: u32,
    },
}

impl JournalError {
    fn schema(msg: &str) -> JournalError {
        JournalError::Schema(msg.to_owned())
    }
}

impl From<JsonError> for JournalError {
    fn from(e: JsonError) -> JournalError {
        match e {
            JsonError::Parse { pos, msg } => JournalError::Parse { pos, msg },
            JsonError::Schema(m) => JournalError::Schema(m),
        }
    }
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Parse { pos, msg } => write!(f, "invalid JSON at byte {pos}: {msg}"),
            JournalError::Schema(msg) => write!(f, "journal schema error: {msg}"),
            JournalError::Version { found } => write!(
                f,
                "journal version {found} (this build reads {JOURNAL_VERSION})"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_journal() -> Journal {
        Journal {
            version: JOURNAL_VERSION,
            seed: u64::MAX - 3, // exercises the full u64 range in JSON
            rate: 150,
            recovery: true,
            cfg: SimConfig {
                trap_base: Some(0x40),
                ..SimConfig::default()
            },
            words: vec![0xdead_beef, 0x0000_0001, u32::MAX],
            entry_offset: 8,
            data: vec![(0x2000, vec![1, 2, 255]), (0x3000, vec![])],
            args: vec![-7, 0, 1 << 30],
            events: vec![
                JournalEvent {
                    step: 3,
                    at_instruction: 3,
                    kind: InjectKind::BitFlip {
                        addr: 0x1234,
                        bit: 7,
                    },
                },
                JournalEvent {
                    step: 4,
                    at_instruction: 3,
                    kind: InjectKind::SpuriousInterrupt,
                },
                JournalEvent {
                    step: 90,
                    at_instruction: 81,
                    kind: InjectKind::FuelJitter {
                        new_limit: u64::MAX / 2,
                    },
                },
                JournalEvent {
                    step: 91,
                    at_instruction: 81,
                    kind: InjectKind::DecodeProbe,
                },
                JournalEvent {
                    step: 92,
                    at_instruction: 82,
                    kind: InjectKind::MisalignProbe,
                },
                JournalEvent {
                    step: 100,
                    at_instruction: 88,
                    kind: InjectKind::WstackCorruption {
                        addr: 0xe0004,
                        bit: 0,
                    },
                },
            ],
            outcome: Some(RecordedOutcome {
                signature: "double fault: \"quoted\"\nnext".to_owned(),
                instructions: 12345,
                trap_counts: [1, 0, 2, 0, 0, 3],
            }),
        }
    }

    #[test]
    fn journal_round_trips_through_json() {
        let j = sample_journal();
        let text = j.to_json();
        let back = Journal::from_json(&text).unwrap();
        assert_eq!(back, j);

        // No outcome round-trips as JSON null.
        let mut j2 = j;
        j2.outcome = None;
        assert_eq!(Journal::from_json(&j2.to_json()).unwrap(), j2);
    }

    #[test]
    fn parser_accepts_whitespace_and_rejects_garbage() {
        // Use a journal whose strings contain no ':' or ',' so the
        // whitespace-injecting replace below cannot corrupt them.
        let mut j = sample_journal();
        j.outcome.as_mut().unwrap().signature = "halt 42".to_owned();
        // Re-serialize with gratuitous whitespace: still parses.
        let spaced = j.to_json().replace(',', " ,\n  ").replace(':', " : ");
        assert_eq!(Journal::from_json(&spaced).unwrap(), j);

        for bad in [
            "",
            "{",
            "{\"version\":}",
            "{\"version\":1} trailing",
            "[1,2,",
            "{\"a\" 1}",
            "\"unterminated",
            "{\"version\":99999999999999999999999999999999999999999}",
        ] {
            assert!(
                matches!(Journal::from_json(bad), Err(JournalError::Parse { .. })),
                "{bad:?} should be a parse error"
            );
        }
    }

    #[test]
    fn schema_and_version_errors_are_distinguished() {
        assert!(matches!(
            Journal::from_json("{\"no_version\":true}"),
            Err(JournalError::Schema(_))
        ));
        assert!(matches!(
            Journal::from_json("{\"version\":2}"),
            Err(JournalError::Version { found: 2 })
        ));
        assert!(matches!(
            Journal::from_json("[1,2,3]"),
            Err(JournalError::Schema(_))
        ));
    }

    #[test]
    fn program_reconstruction_matches() {
        let j = sample_journal();
        let p = j.program();
        assert_eq!(p.words, j.words);
        assert_eq!(p.entry_offset, j.entry_offset);
        assert_eq!(p.data, j.data);
        assert!(p.symbols.is_empty());
    }
}
