//! The RISC I processor: functional execution plus the paper's timing model.
//!
//! Semantics implemented here, all per the paper / tech report:
//!
//! * **Delayed jumps.** Every transfer of control executes the instruction
//!   that follows it before the target (there is no annulment in RISC I).
//!   A transfer *in* a delay slot is architecturally undefined; the
//!   simulator reports it as an error.
//! * **Register windows.** `CALL`/`CALLR` advance the window before writing
//!   the return address, so the link register is named in the *callee's*
//!   window. `RET` reads its target in the callee's window, then retreats.
//!   Overflow/underflow traps are serviced by a built-in 16-transfer
//!   spill/fill sequence against a save stack in memory, fully accounted in
//!   cycles and memory traffic.
//! * **Timing.** 1 cycle per instruction, 2 for memory access instructions,
//!   plus model-dependent bubbles (see [`crate::config::BranchModel`] and
//!   the `forwarding` flag).
//! * **Halt convention.** A `RET` (or `RETI`) executed at call depth 0
//!   terminates the program; the return value is read from `r26` by
//!   [`Cpu::result`].

use crate::config::{BranchModel, SimConfig};
use crate::exec::alu;
use crate::mem::{MemError, Memory};
use crate::program::Program;
use crate::stats::ExecStats;
use crate::windows::{WindowFile, SPILL_REGS};
use risc1_isa::insn::Operands;
use risc1_isa::psw::Flags;
use risc1_isa::{Cond, DecodeError, Instruction, Opcode, Psw, Reg, Short2, INSN_BYTES};
use std::fmt;

/// Why the simulator stopped with an error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A data or instruction access faulted.
    Mem {
        /// PC of the faulting instruction.
        pc: u32,
        /// The underlying fault.
        err: MemError,
    },
    /// The word at `pc` does not decode to an instruction.
    Decode {
        /// PC of the undecodable word.
        pc: u32,
        /// The decode failure.
        err: DecodeError,
    },
    /// The configured fuel limit was exhausted (runaway program).
    OutOfFuel,
    /// A transfer of control sat in the delay slot of another transfer —
    /// architecturally undefined on RISC I.
    TransferInDelaySlot {
        /// PC of the offending (second) transfer.
        pc: u32,
    },
    /// The window-save stack ran into the program stack region.
    WindowStackOverflow {
        /// Save-stack pointer at the time of the failure.
        ptr: u32,
    },
    /// `step` was called after the program halted.
    AlreadyHalted,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Mem { pc, err } => write!(f, "memory fault at pc {pc:#010x}: {err}"),
            ExecError::Decode { pc, err } => write!(f, "decode fault at pc {pc:#010x}: {err}"),
            ExecError::OutOfFuel => write!(f, "instruction fuel exhausted"),
            ExecError::TransferInDelaySlot { pc } => {
                write!(f, "transfer of control in a delay slot at pc {pc:#010x}")
            }
            ExecError::WindowStackOverflow { ptr } => {
                write!(f, "window-save stack overflow at {ptr:#010x}")
            }
            ExecError::AlreadyHalted => write!(f, "cpu is halted"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Outcome of [`Cpu::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Halt {
    /// The program is still running.
    Running,
    /// A `RET` at depth 0 terminated the program.
    Returned,
}

/// Identity of a physical register, used by the hazard model (visible names
/// are window-relative, so hazards must be tracked physically).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PhysId {
    Global(u8),
    Ring(usize),
}

/// One retired instruction in the optional execution trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Retired {
    /// Address the instruction was fetched from.
    pub pc: u32,
    /// The instruction itself.
    pub insn: Instruction,
    /// Cycle at which the instruction entered execute.
    pub start_cycle: u64,
    /// Cycles the instruction occupied (base + bubbles + traps).
    pub cycles: u64,
    /// Whether it sat in a delay slot.
    pub in_delay_slot: bool,
}

/// The simulated processor.
#[derive(Debug, Clone)]
pub struct Cpu {
    cfg: SimConfig,
    /// Main memory (public so tests and experiments can inspect results).
    pub mem: Memory,
    regs: WindowFile,
    pc: u32,
    last_pc: u32,
    flags: Flags,
    interrupts_enabled: bool,
    wstack_ptr: u32,
    pending_target: Option<u32>,
    last_write: Option<(PhysId, bool)>,
    halted: bool,
    stats: ExecStats,
    trace: Vec<Retired>,
    interrupt_handler: Option<u32>,
    interrupt_pending: bool,
}

impl Cpu {
    /// A processor with the given configuration, memory zeroed, at reset.
    pub fn new(cfg: SimConfig) -> Cpu {
        let mem = Memory::new(cfg.mem_bytes);
        let regs = WindowFile::new(cfg.windows);
        let wstack_ptr = cfg.window_stack_top;
        let pc = cfg.code_base;
        Cpu {
            cfg,
            mem,
            regs,
            pc,
            last_pc: 0,
            flags: Flags::default(),
            interrupts_enabled: false,
            wstack_ptr,
            pending_target: None,
            last_write: None,
            halted: false,
            stats: ExecStats::new(),
            trace: Vec::new(),
            interrupt_handler: None,
            interrupt_pending: false,
        }
    }

    /// The configuration this CPU was built with.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Loads a program: code at the code base, data images, PC at the entry
    /// point, global `r1` initialised as the program stack pointer, and all
    /// traffic counters cleared.
    ///
    /// # Errors
    /// Fails if any image falls outside memory.
    pub fn load_program(&mut self, prog: &Program) -> Result<(), MemError> {
        self.mem
            .load_image(self.cfg.code_base, &prog.code_image())?;
        for (addr, bytes) in &prog.data {
            self.mem.load_image(*addr, bytes)?;
        }
        self.pc = self.cfg.code_base + prog.entry_offset;
        self.regs.write(Reg::R1, self.cfg.stack_top);
        self.mem.reset_traffic();
        Ok(())
    }

    /// Writes procedure arguments into the incoming-parameter registers
    /// (`r26`, `r27`, …) of the entry frame.
    ///
    /// # Panics
    /// Panics if more than 6 arguments are supplied (the window has six
    /// HIGH registers; larger argument lists go through memory).
    pub fn set_args(&mut self, args: &[i32]) {
        assert!(args.len() <= 6, "at most 6 register arguments");
        for (i, &a) in args.iter().enumerate() {
            self.regs.write(Reg::new(26 + i as u8).unwrap(), a as u32);
        }
    }

    /// The entry frame's return value (`r26` by convention).
    pub fn result(&self) -> i32 {
        self.regs.read(Reg::R26) as i32
    }

    /// Reads a visible register of the current window.
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs.read(r)
    }

    /// Reads a visible register as a signed value.
    pub fn reg_i32(&self, r: Reg) -> i32 {
        self.regs.read(r) as i32
    }

    /// Writes a visible register of the current window.
    pub fn set_reg(&mut self, r: Reg, v: u32) {
        self.regs.write(r, v);
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Current condition flags.
    pub fn flags(&self) -> Flags {
        self.flags
    }

    /// The PSW as `GETPSW` would read it.
    pub fn psw(&self) -> Psw {
        Psw {
            flags: self.flags,
            interrupts_enabled: self.interrupts_enabled,
            cwp: self.regs.cwp(),
            swp: self.regs.swp(),
        }
    }

    /// Installs the interrupt handler address and enables interrupts.
    /// Handlers run in their own register window (`CALLI` advances it and
    /// leaves the interrupted PC in `r25`); they return with
    /// `reti r25, #4`.
    pub fn set_interrupt_handler(&mut self, addr: u32) {
        self.interrupt_handler = Some(addr);
        self.interrupts_enabled = true;
    }

    /// Posts an external interrupt. It is taken before the next
    /// instruction at which interrupts are enabled and no delayed jump is
    /// in flight (RISC I holds interrupts off during delay slots so the
    /// saved PC always restarts a clean sequence).
    pub fn raise_interrupt(&mut self) {
        self.interrupt_pending = true;
    }

    /// Whether an interrupt is posted but not yet taken.
    pub fn interrupt_pending(&self) -> bool {
        self.interrupt_pending
    }

    /// Statistics accumulated so far (window counters synced).
    pub fn stats(&self) -> ExecStats {
        let mut s = self.stats.clone();
        s.max_depth = self.regs.max_depth();
        s.window_overflows = self.regs.overflows();
        s.window_underflows = self.regs.underflows();
        s
    }

    /// The register-window file (read-only), for experiments that inspect
    /// residency.
    pub fn windows(&self) -> &WindowFile {
        &self.regs
    }

    /// The retired-instruction trace (empty unless
    /// [`SimConfig::record_trace`] is set).
    pub fn trace(&self) -> &[Retired] {
        &self.trace
    }

    /// Whether the program has halted.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Runs until the program returns from its entry frame.
    ///
    /// # Errors
    /// Any [`ExecError`]; on error the CPU state is left at the faulting
    /// instruction for inspection.
    pub fn run(&mut self) -> Result<(), ExecError> {
        while self.step()? == Halt::Running {}
        Ok(())
    }

    /// Executes one instruction.
    ///
    /// # Errors
    /// See [`ExecError`].
    pub fn step(&mut self) -> Result<Halt, ExecError> {
        if self.halted {
            return Err(ExecError::AlreadyHalted);
        }
        if self.stats.instructions >= self.cfg.fuel {
            return Err(ExecError::OutOfFuel);
        }
        if self.interrupt_pending && self.interrupts_enabled && self.pending_target.is_none() {
            self.take_interrupt()?;
        }
        let pc = self.pc;
        let word = self
            .mem
            .peek_u32(pc)
            .map_err(|err| ExecError::Mem { pc, err })?;
        let insn = Instruction::decode(word).map_err(|err| ExecError::Decode { pc, err })?;

        let in_delay_slot = self.pending_target.is_some();
        if in_delay_slot && insn.opcode.is_transfer() {
            return Err(ExecError::TransferInDelaySlot { pc });
        }

        self.stats.retire(insn.opcode);
        if in_delay_slot {
            self.stats.delay_slots += 1;
            if insn.is_nop() {
                self.stats.delay_slot_nops += 1;
            }
        }

        let start_cycle = self.stats.cycles;
        let mut cycles = insn.opcode.base_cycles();
        cycles += self.hazard_bubbles(&insn);

        let mut new_target: Option<u32> = None;
        let mut new_write: Option<(PhysId, bool)> = None;
        let mut halted = false;

        match insn.opcode {
            Opcode::Add
            | Opcode::Addc
            | Opcode::Sub
            | Opcode::Subc
            | Opcode::Subr
            | Opcode::Subcr
            | Opcode::And
            | Opcode::Or
            | Opcode::Xor
            | Opcode::Sll
            | Opcode::Srl
            | Opcode::Sra => {
                let (dest, a, b) = self.short_operands(&insn);
                let out = alu(insn.opcode, a, b, self.flags.c);
                self.regs.write(dest, out.value);
                if insn.scc {
                    self.flags = out.flags;
                }
                new_write = self.phys(dest).map(|p| (p, false));
            }
            Opcode::Ldl | Opcode::Ldsu | Opcode::Ldss | Opcode::Ldbu | Opcode::Ldbs => {
                let (dest, a, b) = self.short_operands(&insn);
                let addr = a.wrapping_add(b);
                let v = self
                    .load_value(insn.opcode, addr)
                    .map_err(|err| ExecError::Mem { pc, err })?;
                self.regs.write(dest, v);
                self.stats.data_reads += 1;
                new_write = self.phys(dest).map(|p| (p, true));
            }
            Opcode::Stl | Opcode::Sts | Opcode::Stb => {
                let (data_reg, a, b) = self.short_operands(&insn);
                let addr = a.wrapping_add(b);
                let data = self.regs.read(data_reg);
                self.store_value(insn.opcode, addr, data)
                    .map_err(|err| ExecError::Mem { pc, err })?;
                self.stats.data_writes += 1;
            }
            Opcode::Jmp | Opcode::Jmpr => {
                let (cond, target) = self.jump_operands(&insn, pc);
                if cond.eval(self.flags) {
                    new_target = Some(target);
                    self.stats.taken_transfers += 1;
                }
            }
            Opcode::Call | Opcode::Callr => {
                let (link, target) = match insn.operands {
                    Operands::Short { dest, rs1, s2 } => {
                        let a = self.regs.read(rs1);
                        (dest, a.wrapping_add(self.s2_value(s2)))
                    }
                    Operands::Long { dest, imm19 } => (dest, pc.wrapping_add(imm19 as u32)),
                    _ => unreachable!("call operand shapes"),
                };
                if self.regs.call_would_overflow() {
                    cycles += self.spill_window()?;
                }
                self.regs.advance();
                // The link register is named in the *new* window.
                self.regs.write(link, pc);
                new_write = self.phys(link).map(|p| (p, false));
                new_target = Some(target);
                self.stats.calls += 1;
                self.stats.taken_transfers += 1;
            }
            Opcode::Ret | Opcode::Reti => {
                let (_, a, b) = self.short_operands(&insn);
                let target = a.wrapping_add(b);
                if self.regs.ret_would_underflow() {
                    cycles += self.fill_window(pc)?;
                }
                if self.regs.retreat() {
                    new_target = Some(target);
                    self.stats.rets += 1;
                    self.stats.taken_transfers += 1;
                    if insn.opcode == Opcode::Reti {
                        self.interrupts_enabled = true;
                    }
                } else {
                    halted = true;
                }
            }
            Opcode::Calli => {
                let (dest, _, _) = self.short_operands(&insn);
                if self.regs.call_would_overflow() {
                    cycles += self.spill_window()?;
                }
                self.regs.advance();
                self.regs.write(dest, self.last_pc);
                new_write = self.phys(dest).map(|p| (p, false));
                self.interrupts_enabled = false;
                self.stats.calls += 1;
            }
            Opcode::Ldhi => {
                let (dest, imm19) = match insn.operands {
                    Operands::Long { dest, imm19 } => (dest, imm19),
                    _ => unreachable!("ldhi is long format"),
                };
                self.regs.write(dest, (imm19 as u32) << 13);
                new_write = self.phys(dest).map(|p| (p, false));
            }
            Opcode::Gtlpc => {
                let (dest, _, _) = self.short_operands(&insn);
                self.regs.write(dest, self.last_pc);
                new_write = self.phys(dest).map(|p| (p, false));
            }
            Opcode::Getpsw => {
                let (dest, _, _) = self.short_operands(&insn);
                let w = self.psw().to_word();
                self.regs.write(dest, w);
                new_write = self.phys(dest).map(|p| (p, false));
            }
            Opcode::Putpsw => {
                let (_, a, b) = self.short_operands(&insn);
                let psw = Psw::from_word(a.wrapping_add(b));
                // CWP/SWP are owned by the window hardware; software writes
                // to them are ignored (a full context switch would also
                // reload the window file, which this simulator models via
                // fresh `Cpu` instances instead).
                self.flags = psw.flags;
                self.interrupts_enabled = psw.interrupts_enabled;
            }
        }

        if self.cfg.branch_model == BranchModel::Suspended && new_target.is_some() {
            cycles += 1;
            self.stats.bubble_cycles += 1;
        }

        self.stats.cycles += cycles;
        self.last_write = new_write;
        self.last_pc = pc;

        if self.cfg.record_trace {
            self.trace.push(Retired {
                pc,
                insn,
                start_cycle,
                cycles,
                in_delay_slot,
            });
        }

        if halted {
            self.halted = true;
            return Ok(Halt::Returned);
        }

        let next = match self.pending_target.take() {
            Some(t) => t,
            None => pc.wrapping_add(INSN_BYTES),
        };
        self.pending_target = new_target;
        self.pc = next;
        Ok(Halt::Running)
    }

    /// Extracts `(dest, rs1 value, s2 value)` from a short-format
    /// instruction.
    fn short_operands(&self, insn: &Instruction) -> (Reg, u32, u32) {
        match insn.operands {
            Operands::Short { dest, rs1, s2 } => (dest, self.regs.read(rs1), self.s2_value(s2)),
            _ => unreachable!("short operands on {insn}"),
        }
    }

    fn s2_value(&self, s2: Short2) -> u32 {
        match s2 {
            Short2::Reg(r) => self.regs.read(r),
            Short2::Imm(v) => v as i32 as u32,
        }
    }

    fn jump_operands(&self, insn: &Instruction, pc: u32) -> (Cond, u32) {
        match insn.operands {
            Operands::ShortCond { cond, rs1, s2 } => {
                let t = self.regs.read(rs1).wrapping_add(self.s2_value(s2));
                (cond, t)
            }
            Operands::LongCond { cond, imm19 } => (cond, pc.wrapping_add(imm19 as u32)),
            _ => unreachable!("jump operand shapes"),
        }
    }

    fn load_value(&mut self, op: Opcode, addr: u32) -> Result<u32, MemError> {
        Ok(match op {
            Opcode::Ldl => self.mem.read_u32(addr)?,
            Opcode::Ldsu => self.mem.read_u16(addr)? as u32,
            Opcode::Ldss => self.mem.read_u16(addr)? as i16 as i32 as u32,
            Opcode::Ldbu => self.mem.read_u8(addr)? as u32,
            Opcode::Ldbs => self.mem.read_u8(addr)? as i8 as i32 as u32,
            _ => unreachable!("not a load"),
        })
    }

    fn store_value(&mut self, op: Opcode, addr: u32, v: u32) -> Result<(), MemError> {
        match op {
            Opcode::Stl => self.mem.write_u32(addr, v),
            Opcode::Sts => self.mem.write_u16(addr, v as u16),
            Opcode::Stb => self.mem.write_u8(addr, v as u8),
            _ => unreachable!("not a store"),
        }
    }

    /// Physical identity of a visible register in the *current* window.
    fn phys(&self, r: Reg) -> Option<PhysId> {
        if r.is_zero() {
            return None;
        }
        Some(match self.regs.physical_slot(self.regs.cwp() as usize, r) {
            None => PhysId::Global(r.number()),
            Some(i) => PhysId::Ring(i),
        })
    }

    /// Forces the `CALLI` sequence: advance the window (spilling if
    /// needed), save the interrupted PC in the new window's `r25`, disable
    /// interrupts, and vector to the handler.
    fn take_interrupt(&mut self) -> Result<(), ExecError> {
        let handler = self.interrupt_handler.expect("pending implies handler");
        self.interrupt_pending = false;
        let mut cycles = self.cfg.trap_overhead_cycles;
        if self.regs.call_would_overflow() {
            cycles += self.spill_window()?;
        }
        self.regs.advance();
        self.regs.write(Reg::R25, self.pc);
        self.interrupts_enabled = false;
        self.last_pc = self.pc;
        self.pc = handler;
        self.stats.cycles += cycles;
        self.stats.trap_cycles += self.cfg.trap_overhead_cycles;
        self.stats.calls += 1;
        Ok(())
    }

    /// Interlock bubbles between the previous instruction's write and this
    /// instruction's reads (see [`SimConfig::forwarding`]).
    ///
    /// With internal forwarding (the RISC I datapath, and the default) there
    /// is no penalty: result buses bypass the register file. Without it,
    /// reading a register written by the immediately preceding instruction
    /// costs one bubble while the write drains.
    fn hazard_bubbles(&mut self, insn: &Instruction) -> u64 {
        if self.cfg.forwarding {
            return 0;
        }
        let Some((written, _was_load)) = self.last_write else {
            return 0;
        };
        let hazard = insn
            .reads()
            .into_iter()
            .filter_map(|r| self.phys(r))
            .any(|p| p == written);
        if hazard {
            self.stats.bubble_cycles += 1;
            1
        } else {
            0
        }
    }

    /// Services a window overflow: 16 stores to the save stack. Returns the
    /// cycles consumed.
    fn spill_window(&mut self) -> Result<u64, ExecError> {
        if self.wstack_ptr < self.cfg.stack_top + (SPILL_REGS as u32 * 4) {
            return Err(ExecError::WindowStackOverflow {
                ptr: self.wstack_ptr,
            });
        }
        let saved = self.regs.spill_oldest();
        for v in saved {
            self.wstack_ptr -= 4;
            let ptr = self.wstack_ptr;
            self.mem
                .write_u32(ptr, v)
                .map_err(|err| ExecError::Mem { pc: self.pc, err })?;
        }
        self.stats.data_writes += SPILL_REGS as u64;
        let cost = self.cfg.trap_overhead_cycles + SPILL_REGS as u64 * 2;
        self.stats.trap_cycles += cost;
        Ok(cost)
    }

    /// Services a window underflow: 16 loads from the save stack. Returns
    /// the cycles consumed.
    fn fill_window(&mut self, pc: u32) -> Result<u64, ExecError> {
        let mut regs = [0u32; SPILL_REGS];
        for slot in regs.iter_mut().rev() {
            let ptr = self.wstack_ptr;
            *slot = self
                .mem
                .read_u32(ptr)
                .map_err(|err| ExecError::Mem { pc, err })?;
            self.wstack_ptr += 4;
        }
        self.regs.fill_previous(regs);
        self.stats.data_reads += SPILL_REGS as u64;
        let cost = self.cfg.trap_overhead_cycles + SPILL_REGS as u64 * 2;
        self.stats.trap_cycles += cost;
        Ok(cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use risc1_isa::Short2;

    fn imm(v: i32) -> Short2 {
        Short2::imm(v).unwrap()
    }

    /// Builds, loads and runs a program, returning the CPU for inspection.
    fn run_program(insns: Vec<Instruction>) -> Cpu {
        run_with(SimConfig::default(), insns, &[])
    }

    fn run_with(cfg: SimConfig, insns: Vec<Instruction>, args: &[i32]) -> Cpu {
        let mut cpu = Cpu::new(cfg);
        cpu.load_program(&Program::from_instructions(insns))
            .unwrap();
        cpu.set_args(args);
        cpu.run().expect("program should halt cleanly");
        cpu
    }

    fn halt_seq() -> Vec<Instruction> {
        vec![Instruction::ret(Reg::R0, imm(0)), Instruction::nop()]
    }

    #[test]
    fn arithmetic_and_halt() {
        let mut p = vec![
            Instruction::reg(Opcode::Add, Reg::R16, Reg::R0, imm(40)),
            Instruction::reg(Opcode::Add, Reg::R16, Reg::R16, imm(2)),
            Instruction::reg(Opcode::Add, Reg::R26, Reg::R16, Short2::ZERO),
        ];
        p.extend(halt_seq());
        let cpu = run_program(p);
        assert_eq!(cpu.result(), 42);
        assert!(cpu.is_halted());
    }

    #[test]
    fn loads_and_stores_roundtrip_through_memory() {
        let mut p = vec![
            // r16 := 0x2000 (data scratch; built with ldhi since 0x2000
            // exceeds the 13-bit immediate), store −2, reload as halves
            Instruction::ldhi(Reg::R16, 1),
            Instruction::reg(Opcode::Add, Reg::R17, Reg::R0, imm(-2)), // 0xFFFF_FFFE
            Instruction::reg(Opcode::Stl, Reg::R17, Reg::R16, imm(0)),
            Instruction::reg(Opcode::Ldsu, Reg::R18, Reg::R16, imm(0)),
            Instruction::reg(Opcode::Ldss, Reg::R19, Reg::R16, imm(0)),
            Instruction::reg(Opcode::Ldbu, Reg::R20, Reg::R16, imm(3)),
            Instruction::reg(Opcode::Ldbs, Reg::R21, Reg::R16, imm(3)),
            Instruction::reg(Opcode::Ldl, Reg::R22, Reg::R16, imm(0)),
        ];
        p.extend(halt_seq());
        let cpu = run_program(p);
        assert_eq!(cpu.reg(Reg::R18), 0xfffe);
        assert_eq!(cpu.reg_i32(Reg::R19), -2);
        assert_eq!(cpu.reg(Reg::R20), 0xff);
        assert_eq!(cpu.reg_i32(Reg::R21), -1);
        assert_eq!(cpu.reg(Reg::R22), 0xffff_fffe);
    }

    #[test]
    fn delayed_jump_executes_slot_then_target() {
        // jmpr alw +12 skips exactly one instruction beyond its slot.
        let mut p = vec![
            Instruction::jmpr(Cond::Alw, 12), // 0: jump to 12
            Instruction::reg(Opcode::Add, Reg::R16, Reg::R0, imm(1)), // 4: delay slot RUNS
            Instruction::reg(Opcode::Add, Reg::R17, Reg::R0, imm(99)), // 8: skipped
            Instruction::reg(Opcode::Add, Reg::R18, Reg::R0, imm(2)), // 12: target
        ];
        p.extend(halt_seq());
        let cpu = run_program(p);
        assert_eq!(cpu.reg(Reg::R16), 1, "delay slot executed");
        assert_eq!(cpu.reg(Reg::R17), 0, "skipped instruction did not run");
        assert_eq!(cpu.reg(Reg::R18), 2, "target executed");
    }

    #[test]
    fn conditional_jump_taken_and_not_taken() {
        // r16 = 5; compare to 5; jeq taken. Then compare to 6; jeq not taken.
        let mut p = vec![
            Instruction::reg(Opcode::Add, Reg::R16, Reg::R0, imm(5)),
            Instruction::reg_scc(Opcode::Sub, Reg::R0, Reg::R16, imm(5)),
            Instruction::jmpr(Cond::Eq, 12), // to +12 (skip the poison)
            Instruction::nop(),
            Instruction::reg(Opcode::Add, Reg::R20, Reg::R0, imm(1)), // poison: skipped
            Instruction::reg_scc(Opcode::Sub, Reg::R0, Reg::R16, imm(6)),
            Instruction::jmpr(Cond::Eq, 12), // NOT taken
            Instruction::nop(),
            Instruction::reg(Opcode::Add, Reg::R21, Reg::R0, imm(1)), // runs
        ];
        p.extend(halt_seq());
        let cpu = run_program(p);
        assert_eq!(cpu.reg(Reg::R20), 0);
        assert_eq!(cpu.reg(Reg::R21), 1);
    }

    #[test]
    fn call_and_ret_pass_parameters_through_window_overlap() {
        // main: r10 := 7; call f; result comes back in r10.
        // f: r26 (== caller r10) += 1; write into r26; ret.
        let p = vec![
            /* 0  */ Instruction::reg(Opcode::Add, Reg::R10, Reg::R0, imm(7)),
            /* 4  */ Instruction::callr(Reg::R25, 12), // f at 4+12=16
            /* 8  */ Instruction::nop(), // call delay slot
            /* 12 */
            Instruction::reg(Opcode::Add, Reg::R26, Reg::R10, Short2::ZERO), // result to r26
            // (falls through to f? no: execution continues at 12 after ret, then needs halt)
            /* 16 */
            Instruction::reg(Opcode::Add, Reg::R26, Reg::R26, imm(1)), // f body
            /* 20 */ Instruction::ret(Reg::R25, imm(8)),
            /* 24 */ Instruction::nop(), // ret delay slot
        ];
        // After ret, control returns to call_pc+8 = 12, which copies r10
        // to r26 and falls through to 16... that would re-enter f. Add an
        // explicit halt by making 12 the last "main" instruction jump to a
        // halt stub instead — simpler: rebuild with halt at 12.
        let p = {
            let mut q = p;
            q[3] = Instruction::ret(Reg::R0, imm(0)); // halt at depth 0 (r10 holds result)
            q
        };
        let mut cpu = Cpu::new(SimConfig::default());
        cpu.load_program(&Program::from_instructions(p)).unwrap();
        cpu.run().unwrap();
        assert_eq!(cpu.reg(Reg::R10), 8, "callee wrote r26 == caller r10");
        let s = cpu.stats();
        assert_eq!(s.calls, 1);
        assert_eq!(s.rets, 1);
        assert_eq!(s.max_depth, 1);
    }

    #[test]
    fn ret_at_depth_zero_halts_without_jumping() {
        let cpu = run_program(halt_seq());
        assert!(cpu.is_halted());
        assert_eq!(cpu.stats().rets, 0, "a halting ret is not a return");
    }

    #[test]
    fn deep_recursion_overflows_and_recovers() {
        // f(n): if n == 0 return 0; return f(n-1) + n  — triangular number,
        // forcing window traps with a small file.
        // Layout (entry = main at 0, f at 16):
        let f_entry = 16;
        let p = vec![
            /* 0: main */
            Instruction::reg(Opcode::Add, Reg::R10, Reg::R0, imm(20)), // arg n=20
            Instruction::callr(Reg::R25, f_entry - 4),                 // call f
            Instruction::nop(),
            Instruction::ret(Reg::R0, imm(0)), // halt; result in r10
            /* 16: f(n in r26) */
            Instruction::reg_scc(Opcode::Sub, Reg::R0, Reg::R26, imm(0)),
            Instruction::jmpr(Cond::Ne, 16), // if n != 0 goto recurse (at 20+16=36)
            Instruction::nop(),
            Instruction::reg(Opcode::Add, Reg::R26, Reg::R0, imm(0)), // base: return 0
            Instruction::ret(Reg::R25, imm(8)),
            Instruction::nop(),
            /* 36: recurse */
            Instruction::reg(Opcode::Sub, Reg::R10, Reg::R26, imm(1)), // arg = n-1
            Instruction::callr(Reg::R25, f_entry - 44),                // call f (callr sits at 44)
            Instruction::nop(),
            /* 48: after call: r10 = f(n-1); return r10 + n */
            Instruction::reg(Opcode::Add, Reg::R26, Reg::R10, Reg::R26.into()),
            Instruction::ret(Reg::R25, imm(8)),
            Instruction::nop(),
        ];
        let cfg = SimConfig::with_windows(4);
        let mut cpu = Cpu::new(cfg);
        cpu.load_program(&Program::from_instructions(p)).unwrap();
        cpu.run().unwrap();
        assert_eq!(cpu.reg(Reg::R10), 210, "sum 1..=20");
        let s = cpu.stats();
        assert_eq!(s.calls, 21);
        assert!(
            s.window_overflows > 0,
            "4-window file must spill at depth 21"
        );
        assert_eq!(s.window_overflows, s.window_underflows);
        assert_eq!(s.max_depth, 21);
        assert!(s.trap_cycles > 0);
        // Spills and fills balance: 16 writes per overflow, 16 reads per
        // underflow, plus no other memory traffic in this program.
        assert_eq!(s.data_writes, 16 * s.window_overflows);
        assert_eq!(s.data_reads, 16 * s.window_underflows);
    }

    #[test]
    fn eight_window_default_never_spills_at_shallow_depth() {
        // Same program as above but depth 5 on the default 8-window file.
        let f_entry = 16;
        let p = vec![
            Instruction::reg(Opcode::Add, Reg::R10, Reg::R0, imm(5)),
            Instruction::callr(Reg::R25, f_entry - 4),
            Instruction::nop(),
            Instruction::ret(Reg::R0, imm(0)),
            Instruction::reg_scc(Opcode::Sub, Reg::R0, Reg::R26, imm(0)),
            Instruction::jmpr(Cond::Ne, 16),
            Instruction::nop(),
            Instruction::reg(Opcode::Add, Reg::R26, Reg::R0, imm(0)),
            Instruction::ret(Reg::R25, imm(8)),
            Instruction::nop(),
            Instruction::reg(Opcode::Sub, Reg::R10, Reg::R26, imm(1)),
            Instruction::callr(Reg::R25, f_entry - 44),
            Instruction::nop(),
            Instruction::reg(Opcode::Add, Reg::R26, Reg::R10, Reg::R26.into()),
            Instruction::ret(Reg::R25, imm(8)),
            Instruction::nop(),
        ];
        let mut cpu = Cpu::new(SimConfig::default());
        cpu.load_program(&Program::from_instructions(p)).unwrap();
        cpu.run().unwrap();
        assert_eq!(cpu.reg(Reg::R10), 15);
        assert_eq!(cpu.stats().window_overflows, 0);
    }

    #[test]
    fn transfer_in_delay_slot_is_rejected() {
        let p = vec![
            Instruction::jmpr(Cond::Alw, 8),
            Instruction::jmpr(Cond::Alw, 8), // in the delay slot: illegal
        ];
        let mut cpu = Cpu::new(SimConfig::default());
        cpu.load_program(&Program::from_instructions(p)).unwrap();
        let err = cpu.run().unwrap_err();
        assert!(matches!(err, ExecError::TransferInDelaySlot { .. }));
    }

    #[test]
    fn fuel_limit_stops_runaway_loops() {
        let p = vec![
            Instruction::jmpr(Cond::Alw, 0), // jump to self
            Instruction::nop(),
        ];
        let cfg = SimConfig {
            fuel: 1000,
            ..SimConfig::default()
        };
        let mut cpu = Cpu::new(cfg);
        cpu.load_program(&Program::from_instructions(p)).unwrap();
        assert_eq!(cpu.run().unwrap_err(), ExecError::OutOfFuel);
    }

    #[test]
    fn misaligned_access_faults() {
        let mut p = vec![
            Instruction::ldhi(Reg::R16, 1), // r16 := 0x2000
            Instruction::nop(),
            Instruction::reg(Opcode::Ldl, Reg::R17, Reg::R16, imm(2)), // misaligned
        ];
        p.extend(halt_seq());
        let mut cpu = Cpu::new(SimConfig::default());
        cpu.load_program(&Program::from_instructions(p)).unwrap();
        let err = cpu.run().unwrap_err();
        assert!(matches!(
            err,
            ExecError::Mem {
                err: MemError::Misaligned { .. },
                ..
            }
        ));
    }

    #[test]
    fn load_constant_builds_full_constants() {
        // Exercise the ldhi+add idiom across sign-extension edge cases.
        for big in [
            0xdead_beefu32,
            0x0000_1000,
            0xffff_f000,
            0x7fff_ffff,
            0x8000_0000,
            123,
            (-5i32) as u32,
        ] {
            let mut p = Instruction::load_constant(Reg::R16, big);
            p.extend(halt_seq());
            let cpu = run_program(p);
            assert_eq!(cpu.reg(Reg::R16), big, "constant {big:#x}");
        }
    }

    #[test]
    fn getpsw_reflects_flags_and_putpsw_restores_them() {
        let mut p = vec![
            Instruction::reg_scc(Opcode::Sub, Reg::R0, Reg::R0, imm(0)), // Z=1, C=1
            Instruction::reg(Opcode::Getpsw, Reg::R16, Reg::R0, Short2::ZERO),
            Instruction::reg_scc(Opcode::Sub, Reg::R0, Reg::R0, imm(1)), // clobber flags
            Instruction::reg(Opcode::Putpsw, Reg::R0, Reg::R16, Short2::ZERO),
            Instruction::reg(Opcode::Getpsw, Reg::R17, Reg::R0, Short2::ZERO),
        ];
        p.extend(halt_seq());
        let cpu = run_program(p);
        let a = Psw::from_word(cpu.reg(Reg::R16));
        let b = Psw::from_word(cpu.reg(Reg::R17));
        assert_eq!(a.flags, b.flags, "putpsw restored the flags");
        assert!(a.flags.z && a.flags.c);
    }

    #[test]
    fn gtlpc_returns_previous_pc() {
        let mut p = vec![
            Instruction::nop(),                                               // pc 0x1000
            Instruction::reg(Opcode::Gtlpc, Reg::R16, Reg::R0, Short2::ZERO), // pc 0x1004
        ];
        p.extend(halt_seq());
        let cpu = run_program(p);
        assert_eq!(cpu.reg(Reg::R16), 0x1000);
    }

    #[test]
    fn suspended_model_charges_taken_transfers() {
        let body = |_: ()| {
            let mut p = vec![Instruction::jmpr(Cond::Alw, 8), Instruction::nop()];
            p.extend(halt_seq());
            p
        };
        let delayed = run_with(SimConfig::default(), body(()), &[]);
        let suspended = run_with(
            SimConfig {
                branch_model: BranchModel::Suspended,
                ..SimConfig::default()
            },
            body(()),
            &[],
        );
        assert_eq!(
            suspended.stats().cycles,
            delayed.stats().cycles + 1,
            "one taken jmpr costs one extra bubble under the suspended model"
        );
        assert_eq!(suspended.stats().bubble_cycles, 1);
    }

    #[test]
    fn load_use_interlock_without_forwarding() {
        let body = || {
            let mut p = vec![
                Instruction::ldhi(Reg::R16, 1), // r16 := 0x2000
                Instruction::nop(),             // break the ldhi->ldl dependency
                Instruction::reg(Opcode::Ldl, Reg::R16, Reg::R16, Short2::ZERO),
                Instruction::reg(Opcode::Add, Reg::R17, Reg::R16, imm(1)), // uses loaded value
            ];
            p.extend(halt_seq());
            p
        };
        let with_fwd = run_with(SimConfig::default(), body(), &[]);
        let no_fwd = run_with(
            SimConfig {
                forwarding: false,
                ..SimConfig::default()
            },
            body(),
            &[],
        );
        assert_eq!(no_fwd.stats().cycles, with_fwd.stats().cycles + 1);
    }

    #[test]
    fn window_stack_exhaustion_is_detected() {
        // Infinite recursion: call self forever. The window save stack is
        // finite, so the simulator must fail with WindowStackOverflow (not
        // silently corrupt memory).
        let p = vec![
            Instruction::callr(Reg::R25, 0), // call self
            Instruction::nop(),
        ];
        let cfg = SimConfig {
            windows: 2,
            stack_top: 0xe0000,
            window_stack_top: 0xe0100, // tiny save area: 4 spills
            ..SimConfig::default()
        };
        let mut cpu = Cpu::new(cfg);
        cpu.load_program(&Program::from_instructions(p)).unwrap();
        let err = cpu.run().unwrap_err();
        assert!(
            matches!(err, ExecError::WindowStackOverflow { .. }),
            "{err:?}"
        );
    }

    #[test]
    fn step_after_halt_errors() {
        let mut cpu = Cpu::new(SimConfig::default());
        cpu.load_program(&Program::from_instructions(halt_seq()))
            .unwrap();
        cpu.run().unwrap();
        assert_eq!(cpu.step(), Err(ExecError::AlreadyHalted));
    }

    #[test]
    fn trace_records_when_enabled() {
        let cfg = SimConfig {
            record_trace: true,
            ..SimConfig::default()
        };
        let mut prog = vec![Instruction::nop()];
        prog.extend(halt_seq());
        let cpu = run_with(cfg, prog, &[]);
        // nop + halting ret retire; the ret's delay slot never runs because
        // the machine stops at depth 0.
        assert_eq!(cpu.trace().len(), 2);
        assert_eq!(cpu.trace()[0].pc, 0x1000);
        assert!(!cpu.trace()[1].in_delay_slot);
        // Disabled by default:
        let cpu2 = run_program(halt_seq());
        assert!(cpu2.trace().is_empty());
    }
}
