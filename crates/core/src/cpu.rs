//! The RISC I processor: functional execution plus the paper's timing model.
//!
//! Semantics implemented here, all per the paper / tech report:
//!
//! * **Delayed jumps.** Every transfer of control executes the instruction
//!   that follows it before the target (there is no annulment in RISC I).
//!   A transfer *in* a delay slot is architecturally undefined; the
//!   simulator reports it as an error.
//! * **Register windows.** `CALL`/`CALLR` advance the window before writing
//!   the return address, so the link register is named in the *callee's*
//!   window. `RET` reads its target in the callee's window, then retreats.
//!   Overflow/underflow traps are serviced by a built-in 16-transfer
//!   spill/fill sequence against a save stack in memory, fully accounted in
//!   cycles and memory traffic.
//! * **Timing.** 1 cycle per instruction, 2 for memory access instructions,
//!   plus model-dependent bubbles (see [`crate::config::BranchModel`] and
//!   the `forwarding` flag).
//! * **Halt convention.** A `RET` (or `RETI`) executed at call depth 0
//!   terminates the program; the return value is read from `r26` by
//!   [`Cpu::result`].

use crate::config::{BranchModel, ExecEngine, SimConfig};
use crate::exec::alu;
use crate::icache::{ICache, Line};
use crate::mem::{MemError, Memory};
use crate::program::Program;
use crate::snapshot::{CpuState, RestoreError, Snapshot};
use crate::stats::{ExecStats, FuseKind};
use crate::superblock::{BOp, BlockCache};
use crate::trace::{self, TExit, TMeta, TOp, TraceCache};
use crate::trap::{TrapCause, TrapKind};
use crate::windows::{WindowFile, SPILL_REGS};
use risc1_isa::psw::Flags;
use risc1_isa::{DecodeError, Instruction, Opcode, Psw, Reg, Short2, INSN_BYTES};
use std::fmt;
use std::sync::Arc;

/// Why the simulator stopped with an error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A data or instruction access faulted.
    Mem {
        /// PC of the faulting instruction.
        pc: u32,
        /// The underlying fault.
        err: MemError,
    },
    /// The word at `pc` does not decode to an instruction.
    Decode {
        /// PC of the undecodable word.
        pc: u32,
        /// The decode failure.
        err: DecodeError,
    },
    /// The configured fuel limit was exhausted (runaway program).
    OutOfFuel,
    /// A transfer of control sat in the delay slot of another transfer —
    /// architecturally undefined on RISC I.
    TransferInDelaySlot {
        /// PC of the offending (second) transfer.
        pc: u32,
    },
    /// The window-save stack ran into the program stack region.
    WindowStackOverflow {
        /// Save-stack pointer at the time of the failure.
        ptr: u32,
    },
    /// A second fault arrived while a trap handler was already running.
    /// The trap unit refuses to recurse: the run terminates with both
    /// causes preserved.
    DoubleFault {
        /// PC of the second fault.
        pc: u32,
        /// The trap being serviced when the second fault hit.
        first: TrapKind,
        /// The fault that arrived inside the handler.
        second: TrapKind,
        /// Where to pick the failure up again: the last checkpoint taken
        /// and the journal position reached, when a checkpointer and/or
        /// recorder was attached to this CPU.
        ctx: ReplayContext,
    },
    /// Historical: `step` after halt now idempotently returns
    /// [`Halt::Returned`] instead of this error. The variant is retained
    /// for API stability and is no longer produced by the simulator.
    AlreadyHalted,
}

impl ExecError {
    /// The architectural trap this error corresponds to, if it is a
    /// vectorable fault (fuel exhaustion, double faults and the historical
    /// `AlreadyHalted` are not traps).
    ///
    /// For memory faults, an out-of-range access at the faulting PC itself
    /// is classified as an instruction-access fault, anything else as a
    /// data-access fault.
    pub fn trap_cause(&self) -> Option<TrapCause> {
        match *self {
            ExecError::Mem { pc, err } => Some(match err {
                MemError::Misaligned { addr, .. } => TrapCause {
                    kind: TrapKind::Misaligned,
                    pc,
                    info: addr,
                },
                MemError::OutOfRange { addr, .. } => TrapCause {
                    kind: if addr == pc {
                        TrapKind::InstructionAccess
                    } else {
                        TrapKind::DataAccess
                    },
                    pc,
                    info: addr,
                },
            }),
            ExecError::Decode { pc, .. } => Some(TrapCause {
                kind: TrapKind::Decode,
                pc,
                info: 0,
            }),
            ExecError::TransferInDelaySlot { pc } => Some(TrapCause {
                kind: TrapKind::TransferInDelaySlot,
                pc,
                info: pc,
            }),
            ExecError::WindowStackOverflow { ptr } => Some(TrapCause {
                kind: TrapKind::WindowStackExhausted,
                pc: 0,
                info: ptr,
            }),
            ExecError::OutOfFuel | ExecError::DoubleFault { .. } | ExecError::AlreadyHalted => None,
        }
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Mem { pc, err } => write!(f, "memory fault at pc {pc:#010x}: {err}"),
            ExecError::Decode { pc, err } => write!(f, "decode fault at pc {pc:#010x}: {err}"),
            ExecError::OutOfFuel => write!(f, "instruction fuel exhausted"),
            ExecError::TransferInDelaySlot { pc } => {
                write!(f, "transfer of control in a delay slot at pc {pc:#010x}")
            }
            ExecError::WindowStackOverflow { ptr } => {
                write!(f, "window-save stack overflow at {ptr:#010x}")
            }
            // `ctx` is deliberately not rendered: the Display string is the
            // stable outcome signature that record–replay and journal
            // minimization compare across runs.
            ExecError::DoubleFault {
                pc, first, second, ..
            } => write!(
                f,
                "double fault at pc {pc:#010x}: {second} trap while servicing {first}"
            ),
            ExecError::AlreadyHalted => write!(f, "cpu is halted"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Replay coordinates attached to a terminal fault: which snapshot the
/// execution could be resumed from and how far into the recorded journal it
/// had progressed. Both are `None` when no checkpointer or journal was
/// attached — a bare `Cpu::run` loses nothing it ever had.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayContext {
    /// Id of the last snapshot taken (see [`crate::snapshot::Checkpointer`]).
    pub snapshot: Option<u64>,
    /// Number of journal events applied when the fault hit (an index into
    /// the recorded event list).
    pub journal_pos: Option<u64>,
}

/// Byte stride between trap vectors when a vectored table is configured
/// via [`SimConfig::trap_base`]: four instruction words per vector, enough
/// for a `reti`+slot stub or a jump to a larger handler.
pub const TRAP_VECTOR_STRIDE: u32 = 16;

/// Outcome of [`Cpu::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Halt {
    /// The program is still running.
    Running,
    /// A `RET` at depth 0 terminated the program.
    Returned,
}

/// Identity of a physical register, used by the hazard model (visible names
/// are window-relative, so hazards must be tracked physically).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PhysId {
    Global(u8),
    Ring(usize),
}

/// More arguments than the entry window's six HIGH registers can hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TooManyArgs {
    /// How many arguments were supplied.
    pub given: usize,
}

impl fmt::Display for TooManyArgs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} register arguments supplied, but the window has six \
             (larger argument lists go through memory)",
            self.given
        )
    }
}

impl std::error::Error for TooManyArgs {}

/// Internal outcome of one execution attempt: either an unrecoverable
/// host-level stop, or an architectural fault that the trap unit may
/// vector to a handler.
enum StepEvent {
    /// Not vectorable (fuel, faults inside spill/fill servicing, …).
    Fatal(ExecError),
    /// A vectorable architectural fault.
    Trap {
        kind: TrapKind,
        /// PC of the faulting instruction (before the delay-slot restart
        /// rule is applied).
        pc: u32,
        /// The info word the handler receives in `r23`.
        info: u32,
        /// The error to surface if no handler is installed.
        err: ExecError,
    },
}

/// Why a window spill could not be serviced.
enum SpillFail {
    /// The save stack is out of room (vectorable).
    Exhausted { ptr: u32 },
    /// A memory fault mid-spill (fatal: the frame is partially written).
    Mem(ExecError),
}

/// One retired instruction in the optional execution trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Retired {
    /// Address the instruction was fetched from.
    pub pc: u32,
    /// The instruction itself.
    pub insn: Instruction,
    /// Cycle at which the instruction entered execute.
    pub start_cycle: u64,
    /// Cycles the instruction occupied (base + bubbles + traps).
    pub cycles: u64,
    /// Whether it sat in a delay slot.
    pub in_delay_slot: bool,
}

/// The simulated processor.
#[derive(Debug, Clone)]
pub struct Cpu {
    cfg: SimConfig,
    /// Main memory (public so tests and experiments can inspect results).
    pub mem: Memory,
    regs: WindowFile,
    pc: u32,
    last_pc: u32,
    flags: Flags,
    interrupts_enabled: bool,
    wstack_ptr: u32,
    pending_target: Option<u32>,
    last_write: Option<(PhysId, bool)>,
    halted: bool,
    stats: ExecStats,
    trace: Vec<Retired>,
    interrupt_handler: Option<u32>,
    interrupt_pending: bool,
    trap_handlers: [Option<u32>; TrapKind::COUNT],
    /// The trap currently being serviced; a second fault while this is set
    /// terminates the run with [`ExecError::DoubleFault`].
    active_trap: Option<TrapKind>,
    /// An injected (forced) trap, delivered at the next clean instruction
    /// boundary — see [`Cpu::inject_probe`].
    pending_probe: Option<TrapKind>,
    /// Runtime fuel limit; starts at [`SimConfig::fuel`] and can be
    /// tightened (fault-injection "fuel jitter").
    fuel_limit: u64,
    /// Id of the last snapshot taken of this CPU (set by the checkpoint
    /// machinery via [`Cpu::note_checkpoint`]); attached to terminal
    /// double faults.
    last_snapshot: Option<u64>,
    /// Journal position (events applied so far) noted by the fault
    /// injector or replayer via [`Cpu::note_journal_position`].
    journal_pos: Option<u64>,
    /// Predecoded instruction cache — *derived* state only (rebuilt from
    /// memory on demand), so it is deliberately absent from
    /// [`CpuState`]/snapshots/journals and from every checksum.
    icache: ICache,
    /// Superblock cache (engine `Superblock` only) — derived state, same
    /// snapshot/checksum exemption as the icache. Invalidated in lockstep
    /// with it by [`Cpu::drain_code_invalidations`].
    blocks: BlockCache,
    /// Compiled trace cache (engine `Trace` only) — derived state like the
    /// icache and block cache, and the third consumer of the code-dirty
    /// channel.
    traces: TraceCache,
}

impl Cpu {
    /// A processor with the given configuration, memory zeroed, at reset.
    pub fn new(cfg: SimConfig) -> Cpu {
        let mem = Memory::new(cfg.mem_bytes);
        let regs = WindowFile::new(cfg.windows);
        let wstack_ptr = cfg.window_stack_top;
        let pc = cfg.code_base;
        let mut trap_handlers = [None; TrapKind::COUNT];
        if let Some(base) = cfg.trap_base {
            for kind in TrapKind::ALL {
                trap_handlers[kind.index()] = Some(base + kind.index() as u32 * TRAP_VECTOR_STRIDE);
            }
        }
        let fuel_limit = cfg.fuel;
        let icache = ICache::new(mem.page_count());
        let blocks = BlockCache::new(mem.page_count());
        let traces = TraceCache::new(mem.page_count());
        Cpu {
            cfg,
            mem,
            regs,
            pc,
            last_pc: 0,
            flags: Flags::default(),
            interrupts_enabled: false,
            wstack_ptr,
            pending_target: None,
            last_write: None,
            halted: false,
            stats: ExecStats::new(),
            trace: Vec::new(),
            interrupt_handler: None,
            interrupt_pending: false,
            trap_handlers,
            active_trap: None,
            pending_probe: None,
            fuel_limit,
            last_snapshot: None,
            journal_pos: None,
            icache,
            blocks,
            traces,
        }
    }

    /// The configuration this CPU was built with.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Loads a program: code at the code base, data images, PC at the entry
    /// point, global `r1` initialised as the program stack pointer, and all
    /// traffic counters cleared.
    ///
    /// # Errors
    /// Fails if any image falls outside memory.
    pub fn load_program(&mut self, prog: &Program) -> Result<(), MemError> {
        self.mem
            .load_image(self.cfg.code_base, &prog.code_image())?;
        for (addr, bytes) in &prog.data {
            self.mem.load_image(*addr, bytes)?;
        }
        self.pc = self.cfg.code_base + prog.entry_offset;
        self.regs.write(Reg::R1, self.cfg.stack_top);
        self.mem.reset_traffic();
        Ok(())
    }

    /// Writes procedure arguments into the incoming-parameter registers
    /// (`r26`, `r27`, …) of the entry frame.
    ///
    /// # Panics
    /// Panics if more than 6 arguments are supplied (the window has six
    /// HIGH registers; larger argument lists go through memory). Use
    /// [`Cpu::try_set_args`] where the argument list is user input.
    pub fn set_args(&mut self, args: &[i32]) {
        self.try_set_args(args)
            .expect("at most 6 register arguments");
    }

    /// Fallible form of [`Cpu::set_args`].
    ///
    /// # Errors
    /// [`TooManyArgs`] if more than 6 arguments are supplied; no registers
    /// are written in that case.
    pub fn try_set_args(&mut self, args: &[i32]) -> Result<(), TooManyArgs> {
        if args.len() > 6 {
            return Err(TooManyArgs { given: args.len() });
        }
        for (i, &a) in args.iter().enumerate() {
            self.regs.write(Reg::new(26 + i as u8).unwrap(), a as u32);
        }
        Ok(())
    }

    /// The entry frame's return value (`r26` by convention).
    pub fn result(&self) -> i32 {
        self.regs.read(Reg::R26) as i32
    }

    /// Reads a visible register of the current window.
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs.read(r)
    }

    /// Reads a visible register as a signed value.
    pub fn reg_i32(&self, r: Reg) -> i32 {
        self.regs.read(r) as i32
    }

    /// Writes a visible register of the current window.
    pub fn set_reg(&mut self, r: Reg, v: u32) {
        self.regs.write(r, v);
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Current condition flags.
    pub fn flags(&self) -> Flags {
        self.flags
    }

    /// The PSW as `GETPSW` would read it.
    pub fn psw(&self) -> Psw {
        Psw {
            flags: self.flags,
            interrupts_enabled: self.interrupts_enabled,
            cwp: self.regs.cwp(),
            swp: self.regs.swp(),
        }
    }

    /// Installs the interrupt handler address and enables interrupts.
    /// Handlers run in their own register window (`CALLI` advances it and
    /// leaves the interrupted PC in `r25`); they return with
    /// `reti r25, #4`.
    pub fn set_interrupt_handler(&mut self, addr: u32) {
        self.interrupt_handler = Some(addr);
        self.interrupts_enabled = true;
    }

    /// Posts an external interrupt. It is taken before the next
    /// instruction at which interrupts are enabled and no delayed jump is
    /// in flight (RISC I holds interrupts off during delay slots so the
    /// saved PC always restarts a clean sequence).
    pub fn raise_interrupt(&mut self) {
        self.interrupt_pending = true;
    }

    /// Whether an interrupt is posted but not yet taken.
    pub fn interrupt_pending(&self) -> bool {
        self.interrupt_pending
    }

    /// Installs a handler for one trap cause. With a handler installed the
    /// corresponding fault no longer terminates the run: the trap unit
    /// enters the handler in a fresh window with the restart PC in `r25`,
    /// the cause code in `r24` and the info word in `r23`; the handler
    /// returns with `reti r25, #0` (re-execute) or `reti r25, #4` (skip).
    pub fn set_trap_handler(&mut self, kind: TrapKind, addr: u32) {
        self.trap_handlers[kind.index()] = Some(addr);
    }

    /// Removes the handler for one trap cause (faults of that kind revert
    /// to structured [`ExecError`]s).
    pub fn clear_trap_handler(&mut self, kind: TrapKind) {
        self.trap_handlers[kind.index()] = None;
    }

    /// The handler installed for a trap cause, if any.
    pub fn trap_handler(&self, kind: TrapKind) -> Option<u32> {
        self.trap_handlers[kind.index()]
    }

    /// The trap currently being serviced (set on trap entry, cleared by
    /// the handler's `RETI`).
    pub fn active_trap(&self) -> Option<TrapKind> {
        self.active_trap
    }

    /// Forces a trap of the given kind at the next clean instruction
    /// boundary (not in a delay slot, not inside a handler) — the fault
    /// injector's hook. The forced trap is *extra-architectural*: no
    /// instruction actually faulted, so a handler that resumes with
    /// `reti r25, #0` continues the program exactly where it was
    /// interrupted. Without a handler the probe surfaces as the
    /// corresponding structured [`ExecError`].
    pub fn inject_probe(&mut self, kind: TrapKind) {
        self.pending_probe = Some(kind);
    }

    /// The current fuel limit (instructions the run may retire in total).
    pub fn fuel_limit(&self) -> u64 {
        self.fuel_limit
    }

    /// Tightens or raises the fuel limit at runtime (the injector's "fuel
    /// jitter" perturbation). A limit at or below the instructions already
    /// retired makes the next `step` report [`ExecError::OutOfFuel`].
    pub fn set_fuel_limit(&mut self, fuel: u64) {
        self.fuel_limit = fuel;
    }

    /// Captures a complete, checksummed snapshot of this CPU (registers,
    /// window stack, trap state, PSW, pc/lastpc, statistics and memory).
    /// Restoring it with [`Cpu::restore`] guarantees bit-identical
    /// continuation. Ad-hoc snapshots carry id 0; the incremental
    /// [`crate::snapshot::Checkpointer`] hands out increasing ids.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::capture(self, 0)
    }

    /// Digest of the simulated machine alone — registers, PSW, trap unit,
    /// pending delayed transfer, architectural statistics and memory —
    /// excluding host bookkeeping (checkpoint ids, journal cursors) and
    /// the engine configuration. Equal digests mean "same machine at the
    /// same point of the same run" regardless of which engine tier or
    /// burst chopping got it there; see [`Snapshot::arch_digest`].
    pub fn arch_digest(&self) -> u64 {
        crate::snapshot::arch_digest_of(self)
    }

    /// Restores this CPU to a snapshot's exact state.
    ///
    /// # Errors
    /// [`RestoreError`] when the snapshot's version or configuration does
    /// not match, or its checksum no longer verifies.
    pub fn restore(&mut self, snap: &Snapshot) -> Result<(), RestoreError> {
        snap.restore_into(self)
    }

    /// Records that a snapshot with the given id was just taken — called
    /// by the checkpoint machinery so terminal faults can carry their
    /// resume point (see [`ReplayContext`]).
    pub fn note_checkpoint(&mut self, id: u64) {
        self.last_snapshot = Some(id);
    }

    /// Records the journal position (events applied so far) — called by
    /// the fault injector and the replayer after each applied event.
    pub fn note_journal_position(&mut self, pos: u64) {
        self.journal_pos = Some(pos);
    }

    /// The replay coordinates attached to terminal faults.
    pub fn replay_context(&self) -> ReplayContext {
        ReplayContext {
            snapshot: self.last_snapshot,
            journal_pos: self.journal_pos,
        }
    }

    /// Clones every field of the processor into a [`CpuState`] (the
    /// register/state half of a snapshot; memory is captured separately).
    pub(crate) fn capture_state(&self) -> CpuState {
        CpuState {
            regs: self.regs.clone(),
            pc: self.pc,
            last_pc: self.last_pc,
            flags: self.flags,
            interrupts_enabled: self.interrupts_enabled,
            wstack_ptr: self.wstack_ptr,
            pending_target: self.pending_target,
            last_write: self.last_write,
            halted: self.halted,
            stats: self.stats.clone(),
            trace: self.trace.clone(),
            interrupt_handler: self.interrupt_handler,
            interrupt_pending: self.interrupt_pending,
            trap_handlers: self.trap_handlers,
            active_trap: self.active_trap,
            pending_probe: self.pending_probe,
            fuel_limit: self.fuel_limit,
            last_snapshot: self.last_snapshot,
            journal_pos: self.journal_pos,
        }
    }

    /// Overwrites every field of the processor from a [`CpuState`].
    pub(crate) fn apply_state(&mut self, s: &CpuState) {
        self.regs = s.regs.clone();
        self.pc = s.pc;
        self.last_pc = s.last_pc;
        self.flags = s.flags;
        self.interrupts_enabled = s.interrupts_enabled;
        self.wstack_ptr = s.wstack_ptr;
        self.pending_target = s.pending_target;
        self.last_write = s.last_write;
        self.halted = s.halted;
        self.stats = s.stats.clone();
        self.trace = s.trace.clone();
        self.interrupt_handler = s.interrupt_handler;
        self.interrupt_pending = s.interrupt_pending;
        self.trap_handlers = s.trap_handlers;
        self.active_trap = s.active_trap;
        self.pending_probe = s.pending_probe;
        self.fuel_limit = s.fuel_limit;
        self.last_snapshot = s.last_snapshot;
        self.journal_pos = s.journal_pos;
    }

    /// Instructions retired so far — the cheap accessor for per-step
    /// boundary checks (shard boundaries, watchdogs) that must not clone
    /// the full statistics block every step the way [`Cpu::stats`] does.
    pub fn instructions_retired(&self) -> u64 {
        self.stats.instructions
    }

    /// Statistics accumulated so far (window counters synced).
    pub fn stats(&self) -> ExecStats {
        let mut s = self.stats.clone();
        s.max_depth = self.regs.max_depth();
        s.window_overflows = self.regs.overflows();
        s.window_underflows = self.regs.underflows();
        s
    }

    /// The register-window file (read-only), for experiments that inspect
    /// residency.
    pub fn windows(&self) -> &WindowFile {
        &self.regs
    }

    /// The retired-instruction trace (empty unless
    /// [`SimConfig::record_trace`] is set).
    pub fn trace(&self) -> &[Retired] {
        &self.trace
    }

    /// Whether the program has halted.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Runs until the program returns from its entry frame.
    ///
    /// ## Halt convention
    /// A `RET` (or `RETI`) executed at call depth 0 halts the machine; the
    /// program's result is then read from `r26` of the entry window by
    /// [`Cpu::result`]. Once halted, further `run`/`step` calls are
    /// idempotent no-ops ([`Halt::Returned`]).
    ///
    /// # Errors
    /// Any [`ExecError`]; on error the CPU state is left at the faulting
    /// instruction for inspection.
    pub fn run(&mut self) -> Result<(), ExecError> {
        self.run_to_halt()
    }

    /// Runs until the program returns from its entry frame, using the
    /// batched fast path of [`Cpu::step_n`]. Identical architectural
    /// behaviour to calling [`Cpu::step`] in a loop — this is merely the
    /// cheap way to do it.
    ///
    /// # Errors
    /// As [`Cpu::run`].
    pub fn run_to_halt(&mut self) -> Result<(), ExecError> {
        // Any large chunk works; bounded so a single call cannot monopolise
        // a supervisor that interleaves other work between calls.
        while self.step_n(1 << 20)? == Halt::Running {}
        Ok(())
    }

    /// Runs until exactly `target` instructions have retired (or the
    /// program halts or faults first), and stops on that boundary.
    ///
    /// The stopping point is *boundary-exact*: [`Cpu::step_n`] never
    /// executes more step units than asked, and trap deliveries retire no
    /// instruction, so the loop can only land on `stats.instructions ==
    /// target`, never past it. Because the condition is purely
    /// architectural, every engine tier stops in the identical machine
    /// state — including mid-delay-slot points where a delayed transfer
    /// is still pending — which is what makes instruction counts usable
    /// as shard boundaries (see `risc1-ir`'s `shard` module).
    ///
    /// Returns [`Halt::Returned`] if the program halted at or before the
    /// boundary, otherwise [`Halt::Running`] with the boundary reached.
    ///
    /// # Errors
    /// As [`Cpu::step`]; the CPU stops at the faulting instruction.
    pub fn run_until_instructions(&mut self, target: u64) -> Result<Halt, ExecError> {
        while self.stats.instructions < target {
            if self.halted {
                return Ok(Halt::Returned);
            }
            // Budget only the instructions still missing: trap deliveries
            // consume step units without retiring, so each call retires at
            // most the remaining count and the boundary cannot overshoot.
            if self.step_n(target - self.stats.instructions)? == Halt::Returned {
                return Ok(Halt::Returned);
            }
        }
        Ok(if self.halted {
            Halt::Returned
        } else {
            Halt::Running
        })
    }

    /// Executes up to `n` steps (instruction executions or trap/interrupt
    /// deliveries — the same unit [`Cpu::step`] counts one at a time).
    ///
    /// Architecturally equivalent to `n` calls to `step()`, but batched:
    /// while no probe or interrupt is pending, the loop runs a *burst* that
    /// skips the per-step probe/interrupt/fuel checks. The burst length is
    /// pre-computed from the fuel remaining, and nothing inside a burst can
    /// arm a probe or raise an interrupt (those come only from the outside
    /// — injectors, supervisors, tests), so deferring the checks to burst
    /// boundaries is exact, not approximate. Traps raised *by* executed
    /// instructions still vector immediately, exactly as in `step()`.
    ///
    /// Returns [`Halt::Returned`] as soon as the program halts, otherwise
    /// [`Halt::Running`] after `n` steps.
    ///
    /// # Errors
    /// As [`Cpu::step`]; the CPU stops at the faulting instruction.
    pub fn step_n(&mut self, n: u64) -> Result<Halt, ExecError> {
        let mut left = n;
        while left > 0 {
            // Slow boundary: halt, armed events and fuel exhaustion take
            // the canonical one-step path.
            if self.halted {
                return Ok(Halt::Returned);
            }
            if self.pending_probe.is_some()
                || self.interrupt_pending
                || self.stats.instructions >= self.fuel_limit
            {
                if self.step()? == Halt::Returned {
                    return Ok(Halt::Returned);
                }
                left -= 1;
                continue;
            }
            // Fast burst: long enough to amortise the boundary checks,
            // short enough that fuel cannot overshoot (trap deliveries
            // retire no instruction, so the burst can only *under*-consume
            // fuel, never overrun it).
            let burst = left.min(self.fuel_limit - self.stats.instructions);
            let mut done = 0;
            if matches!(self.cfg.engine, ExecEngine::Superblock | ExecEngine::Trace) {
                if self.exec_block_burst(burst, &mut done)? == Halt::Returned {
                    return Ok(Halt::Returned);
                }
            } else {
                while done < burst {
                    done += 1;
                    match self.exec_one() {
                        Ok(Halt::Running) => {}
                        other => {
                            if self.finish_exec(other)? == Halt::Returned {
                                return Ok(Halt::Returned);
                            }
                            // A trap vectored; fall back to the boundary so
                            // the fuel bound is recomputed.
                            break;
                        }
                    }
                }
            }
            left -= done;
        }
        Ok(Halt::Running)
    }

    /// The superblock burst: up to `burst` step units, block at a time.
    /// `done` is incremented by the step units consumed (one per retired
    /// instruction or trapping execution attempt — exactly what the
    /// one-at-a-time loop would count). Returns early — with the fuel
    /// boundary to be recomputed by the caller — after any vectored trap,
    /// mirroring the cached burst's `break`.
    fn exec_block_burst(&mut self, burst: u64, done: &mut u64) -> Result<Halt, ExecError> {
        // The trace engine rides the superblock burst: blocks accumulate
        // heat here, and hot entries promote to compiled traces. Tracing
        // needs the same preconditions as fusion (no hazard bookkeeping,
        // no retirement trace), so it degrades to plain superblock
        // execution under `--no-forwarding` or recording.
        let tracing =
            self.cfg.engine == ExecEngine::Trace && self.cfg.forwarding && !self.cfg.record_trace;
        while *done < burst {
            // A delayed jump in flight means the next instruction is a
            // delay slot whose successor depends on the pending target:
            // single-step it (blocks are entered only on clean boundaries).
            if self.pending_target.is_some() {
                *done += 1;
                match self.exec_one() {
                    Ok(Halt::Running) => continue,
                    other => return self.finish_exec(other),
                }
            }
            self.drain_code_invalidations();
            let pc = self.pc;
            if tracing {
                // A miss — wrong window, demoted trace, or never promoted —
                // falls straight through to the superblock path: building
                // aggressively on misses (e.g. per-window variants for
                // recursive code) costs more in build walks than the short
                // per-window loops ever repay.
                if let Some(tidx) = self.traces.resolve(pc, self.regs.cwp()) {
                    let insns = u64::from(self.traces.trace(tidx).insns);
                    // Budget-insufficient entries fall through to the block
                    // path, preserving the exact `n`-step contract.
                    if insns <= burst - *done {
                        // A trace run breaks the block-to-block succession
                        // the chain hinting assumes; drop the hint rather
                        // than record a false edge.
                        self.blocks.forget_last();
                        match self.exec_trace_burst(tidx, burst, done) {
                            Ok(()) => continue,
                            other => return self.finish_exec(other.map(|()| Halt::Running)),
                        }
                    }
                }
            }
            let idx = match self.blocks.resolve(pc) {
                Some(idx) => Some(idx),
                None => self.blocks.build(&mut self.mem, pc, &self.cfg),
            };
            let Some(idx) = idx else {
                // Unblockable text (about to trap): the canonical one-step
                // path raises the architectural fault.
                *done += 1;
                match self.exec_one() {
                    Ok(Halt::Running) => continue,
                    other => return self.finish_exec(other),
                }
            };
            let (insns, end, ops) = {
                let b = self.blocks.block(idx);
                (u64::from(b.insns), b.end, Arc::clone(&b.ops))
            };
            if insns > burst - *done {
                // The block could overrun the step/fuel budget; preserve
                // the exact `n`-step contract by single-stepping instead.
                *done += 1;
                match self.exec_one() {
                    Ok(Halt::Running) => continue,
                    other => return self.finish_exec(other),
                }
            }
            self.stats.blocks_entered += 1;
            let before = self.stats.instructions;
            let mut dirtied = false;
            for op in ops.iter() {
                let pc = self.pc;
                let r = match op {
                    BOp::One(line) => {
                        let r = self.exec_prepared(pc, line);
                        // Instructions that write memory (stores; window
                        // spills on the call/return ops) can overwrite
                        // text later in this very block. The channel poll
                        // is O(1); if anything is pending, bail to the
                        // boundary where the drain and a fresh build see
                        // the new bytes — exactly what the
                        // per-instruction engines observe.
                        if (line.op.is_store() || line.op.moves_window())
                            && self.mem.code_dirty_pending()
                        {
                            dirtied = true;
                        }
                        r
                    }
                    BOp::CmpBranch { a, b } => {
                        self.fuse_cmp_branch(pc, a, b);
                        Ok(Halt::Running)
                    }
                    BOp::LdhiImm {
                        a,
                        b,
                        hi,
                        value,
                        flags,
                    } => {
                        self.fuse_ldhi_imm(pc, a, b, *hi, *value, *flags);
                        Ok(Halt::Running)
                    }
                    BOp::TransferSlot { a, b } => {
                        self.fuse_transfer_slot(pc, a, b);
                        Ok(Halt::Running)
                    }
                    BOp::AddrFeed { a, b } => self.fuse_addr_feed(pc, a, b).map(|()| Halt::Running),
                    BOp::AluPair { a, b } => {
                        self.fuse_alu_pair(pc, a, b);
                        Ok(Halt::Running)
                    }
                };
                match r {
                    Ok(Halt::Running) => {}
                    other => {
                        let retired = self.stats.instructions - before;
                        self.stats.block_instructions += retired;
                        *done += retired;
                        self.blocks.forget_last();
                        return self.finish_exec(other);
                    }
                }
                if dirtied {
                    break;
                }
            }
            let retired = self.stats.instructions - before;
            self.stats.block_instructions += retired;
            *done += retired;
            if dirtied {
                self.blocks.forget_last();
            } else {
                let taken = self.pending_target.is_some() || self.pc != end;
                self.blocks.note_exit(idx, taken);
                if tracing {
                    // Exact equality: one promotion attempt per block, so a
                    // declined build (too short, untraceable text) is never
                    // retried on every subsequent pass.
                    let heat = self.blocks.bump_heat(idx, taken);
                    if heat == trace::HOT_THRESHOLD {
                        let built = self.traces.build(
                            &mut self.mem,
                            &self.blocks,
                            &self.regs,
                            &self.cfg,
                            pc,
                        );
                        self.stats.traces_built += u64::from(built.is_some());
                    }
                }
            }
        }
        Ok(Halt::Running)
    }

    /// Runs one compiled trace (engine `Trace`): loads the live registers
    /// into the virtual register file, executes the IR with *no*
    /// per-instruction statistics or PC maintenance, and settles everything
    /// at exit — a complete pass applies the precomputed bulk aggregate and
    /// the final PC/pending/`last_pc` in O(1); self-loop traces iterate in
    /// place while the step budget allows, paying the register traffic only
    /// once per entry.
    ///
    /// Side exits (guard mismatches, faults, code-dirty stores) replay the
    /// committed prefix's per-op accounting from the trace's static
    /// metadata and restore exactly the architectural state the superblock
    /// engine would hold at that point; faults return the identical
    /// [`StepEvent`] the per-instruction executor would have raised, so the
    /// caller funnels them through the same `finish_exec` (lastpc rule and
    /// all).
    ///
    /// Caller guarantees: no delayed jump in flight, the whole trace fits
    /// in `burst - *done`, and `forwarding && !record_trace` (so
    /// `last_write` is constantly `None` and no retirement trace is due).
    fn exec_trace_burst(&mut self, tidx: u32, burst: u64, done: &mut u64) -> Result<(), StepEvent> {
        // Borrowing the trace directly (no `Arc` clone per entry) is the
        // point of this routine's shape: all the state it touches lives in
        // *other* fields of `self`, so the borrows stay disjoint as long as
        // no whole-`self` method is called while `t` is alive — which is
        // why the load/store and replay helpers are free functions.
        let t = self.traces.trace(tidx);
        let insns = u64::from(t.insns);
        let self_loop = t.self_loop;
        let finals = (t.final_pc, t.final_pending, t.final_last_pc);
        let before = self.stats.instructions;
        let avail = burst - *done;
        // Operand indices are u8 and the array covers the full index space,
        // so every access below is in bounds by construction — the hot loop
        // carries no bounds checks and touches no statistics.
        let mut v = [0u32; trace::VREG_SLOTS];
        for &(vr, value) in t.consts.iter() {
            v[vr as usize] = value;
        }
        for &(vr, flat) in t.live_in.iter() {
            v[vr as usize] = self.regs.load_flat(flat);
        }
        let mut flags = self.flags;
        let mut passes: u64 = 0;
        let exit = 'run: loop {
            for (k, op) in t.ops.iter().enumerate() {
                match *op {
                    TOp::Alu { op, d, a, b } => {
                        // `.value` alone: the flag computation inside the
                        // inlined ALU is dead code on this arm.
                        v[d as usize] = alu(op, v[a as usize], v[b as usize], flags.c).value;
                    }
                    TOp::AluScc { op, d, a, b } => {
                        let out = alu(op, v[a as usize], v[b as usize], flags.c);
                        v[d as usize] = out.value;
                        flags = out.flags;
                    }
                    TOp::Const { d, value } => v[d as usize] = value,
                    TOp::Load { op, d, a, b } => {
                        let addr = v[a as usize].wrapping_add(v[b as usize]);
                        match load_op(&mut self.mem, op, addr) {
                            Ok(val) => v[d as usize] = val,
                            Err(err) => break 'run TExit::Fault { k, addr, err },
                        }
                    }
                    TOp::Store { op, data, a, b } => {
                        let addr = v[a as usize].wrapping_add(v[b as usize]);
                        match store_op(&mut self.mem, op, addr, v[data as usize]) {
                            Ok(()) => {
                                if self.mem.code_dirty_pending() {
                                    break 'run TExit::Dirty { k };
                                }
                            }
                            Err(err) => break 'run TExit::Fault { k, addr, err },
                        }
                    }
                    TOp::Branch {
                        cond,
                        target,
                        expect,
                    } => {
                        let taken = cond.eval(flags);
                        if taken != expect {
                            break 'run TExit::Mismatch { k, taken, target };
                        }
                    }
                    TOp::Jump => {}
                }
            }
            passes += 1;
            if self_loop && (passes + 1) * insns <= avail {
                continue;
            }
            break TExit::Complete;
        };
        // All completed passes settle as one bulk update; only a partial
        // final pass (a side exit) needs the per-op metadata replay below.
        if passes > 0 {
            t.agg.apply_n(&mut self.stats, passes);
        }
        self.stats.trace_entries += passes + u64::from(!matches!(exit, TExit::Complete));
        let fault = match exit {
            TExit::Complete => {
                (self.pc, self.pending_target, self.last_pc) = finals;
                self.stats.trace_exits += 1;
                None
            }
            TExit::Dirty { k } => {
                // The store committed; account it and everything before it,
                // then exit where its PC dance lands. Stores produce no
                // target, so nothing is in flight afterwards.
                replay_meta(&mut self.stats, &t.meta, k + 1);
                let m = t.meta[k];
                self.pc = m.pending_before.unwrap_or(m.pc.wrapping_add(INSN_BYTES));
                self.pending_target = None;
                self.last_pc = m.pc;
                self.stats.trace_side_exits += 1;
                None
            }
            TExit::Mismatch { k, taken, target } => {
                // The guard *is* the branch: retire it with its actual
                // direction (branches never sit in delay slots inside a
                // trace, so no slot accounting applies).
                replay_meta(&mut self.stats, &t.meta, k);
                let m = t.meta[k];
                self.stats.retire(m.op);
                let mut cycles = u64::from(m.base);
                if taken {
                    self.stats.taken_transfers += 1;
                    if self.cfg.branch_model == BranchModel::Suspended {
                        cycles += 1;
                        self.stats.bubble_cycles += 1;
                    }
                }
                self.stats.cycles += cycles;
                self.pc = m.pc.wrapping_add(INSN_BYTES);
                self.pending_target = taken.then_some(target);
                self.last_pc = m.pc;
                self.stats.trace_side_exits += 1;
                None
            }
            TExit::Fault { k, addr, err } => {
                // Mirror `exec_prepared` mid-fault exactly: the op retired
                // (with delay-slot accounting) but charged no cycles and
                // committed nothing else; PC/pending/`last_pc` still
                // describe the attempt, so `finish_exec`'s lastpc rule sees
                // the same state the per-instruction engines would have.
                replay_meta(&mut self.stats, &t.meta, k);
                let m = t.meta[k];
                self.stats.retire(m.op);
                if m.pending_before.is_some() {
                    self.stats.delay_slots += 1;
                    if m.nop {
                        self.stats.delay_slot_nops += 1;
                    }
                }
                self.pc = m.pc;
                self.pending_target = m.pending_before;
                if k > 0 {
                    self.last_pc = t.meta[k - 1].pc;
                }
                self.stats.trace_side_exits += 1;
                Some((m.pc, addr, err))
            }
        };
        for &(vr, flat) in t.live_out.iter() {
            self.regs.store_flat(flat, v[vr as usize]);
        }
        self.flags = flags;
        // Tracing requires forwarding, under which `note_write` never
        // records anything — constant, like the fused-pair handlers.
        self.last_write = None;
        let used = self.stats.instructions - before;
        self.stats.trace_instructions += used;
        *done += used;
        // Productivity bookkeeping: the per-entry overhead (register file
        // traffic in and out, aggregate settle) only amortises when a visit
        // retires well past it. A self-loop trace must actually *loop* —
        // two completed passes — to count; the common failure mode is a
        // short-trip-count loop that side-exits on its first backedge every
        // visit, which beats the half-a-pass yardstick while losing to the
        // superblock engine outright. Straight traces are productive when
        // they retire at least half their body. Enough strikes demote the
        // trace and the superblock tier takes the entry back.
        let productive = if self_loop {
            passes >= 2
        } else {
            2 * used >= insns
        };
        self.traces.note_run(tidx, productive);
        match fault {
            Some((pc, addr, err)) => Err(data_trap(pc, addr, err)),
            None => Ok(()),
        }
    }

    /// Executes one instruction (or delivers one pending trap/interrupt).
    ///
    /// After the program has halted this is an idempotent no-op returning
    /// [`Halt::Returned`].
    ///
    /// # Errors
    /// See [`ExecError`]. A fault whose cause has a handler installed (see
    /// [`Cpu::set_trap_handler`]) does not surface here: it vectors into
    /// the handler and the step reports [`Halt::Running`].
    pub fn step(&mut self) -> Result<Halt, ExecError> {
        if self.halted {
            return Ok(Halt::Returned);
        }
        if self.stats.instructions >= self.fuel_limit {
            return Err(ExecError::OutOfFuel);
        }
        // Pending probes and interrupts are delivered only at a clean
        // boundary: no delayed jump in flight (the paper holds interrupts
        // off during delay slots so the saved PC always restarts a clean
        // sequence) and no handler already running.
        if self.pending_target.is_none() && self.active_trap.is_none() {
            if let Some(kind) = self.pending_probe.take() {
                let pc = self.pc;
                let (info, err) = self.probe_fault(kind, pc);
                self.vector_trap(kind, pc, info, err)?;
                return Ok(Halt::Running);
            }
            if self.interrupt_pending && self.interrupts_enabled {
                match self.take_interrupt() {
                    Ok(()) => {}
                    Err(StepEvent::Fatal(e)) => return Err(e),
                    Err(StepEvent::Trap {
                        kind,
                        pc,
                        info,
                        err,
                    }) => {
                        self.vector_trap(kind, pc, info, err)?;
                        return Ok(Halt::Running);
                    }
                }
            }
        }
        let r = self.exec_one();
        self.finish_exec(r)
    }

    /// The epilogue shared by [`Cpu::step`] and the [`Cpu::step_n`] burst
    /// loop: surfaces fatal errors, vectors trappable faults.
    fn finish_exec(&mut self, r: Result<Halt, StepEvent>) -> Result<Halt, ExecError> {
        match r {
            Ok(h) => Ok(h),
            Err(StepEvent::Fatal(e)) => Err(e),
            Err(StepEvent::Trap {
                kind,
                pc,
                info,
                err,
            }) => {
                // The paper's `lastpc` rule: a fault in a delay slot
                // restarts at the transfer that owns the slot, because the
                // slot alone cannot re-establish the in-flight target.
                let restart = if self.pending_target.is_some() {
                    self.last_pc
                } else {
                    pc
                };
                self.vector_trap(kind, restart, info, err)?;
                Ok(Halt::Running)
            }
        }
    }

    /// Fetches and decodes the word at `pc` the slow way, mapping failures
    /// onto their architectural traps. The predecode cache never caches a
    /// failing fetch, so this is also the only source of fetch traps.
    fn fetch_decode(&mut self, pc: u32) -> Result<Instruction, StepEvent> {
        let word = self.mem.peek_u32(pc).map_err(|err| StepEvent::Trap {
            kind: match err {
                MemError::Misaligned { .. } => TrapKind::Misaligned,
                MemError::OutOfRange { .. } => TrapKind::InstructionAccess,
            },
            pc,
            info: pc,
            err: ExecError::Mem { pc, err },
        })?;
        Instruction::decode(word).map_err(|err| StepEvent::Trap {
            kind: TrapKind::Decode,
            pc,
            info: word,
            err: ExecError::Decode { pc, err },
        })
    }

    /// Drains the code-dirty channel, fanning every invalidation event out
    /// to the predecode cache, the superblock cache *and* the trace cache.
    /// Always combined: the drain clears page registrations as it goes, so
    /// a one-sided drain would silently starve the other consumers.
    #[inline]
    fn drain_code_invalidations(&mut self) {
        if !self.mem.code_dirty_pending() {
            return;
        }
        let (mem, icache, blocks, traces) = (
            &mut self.mem,
            &mut self.icache,
            &mut self.blocks,
            &mut self.traces,
        );
        mem.drain_code_dirty(|d| {
            icache.invalidate(d);
            blocks.invalidate(d);
            traces.invalidate(d);
        });
    }

    /// Fetches, decodes and executes exactly one instruction.
    fn exec_one(&mut self) -> Result<Halt, StepEvent> {
        let pc = self.pc;
        // Fast fetch: the prepared line, when the cache can serve one
        // (fills lazily; the channel drain first re-decodes self-modified
        // text). Anything it cannot serve — including every faulting
        // fetch — takes the architectural slow path, which pays the full
        // decode + prepare cost per step. Both paths feed the same
        // executor, so caching cannot change semantics. The superblock
        // engine lands here too for its single-step cases (delay slots,
        // unblockable text, `step()` calls).
        let line = match self.cfg.engine {
            ExecEngine::Uncached => Line::prepare(self.fetch_decode(pc)?),
            ExecEngine::Cached | ExecEngine::Superblock | ExecEngine::Trace => {
                self.drain_code_invalidations();
                match self.icache.fetch(&mut self.mem, pc) {
                    Some(line) => line,
                    None => Line::prepare(self.fetch_decode(pc)?),
                }
            }
        };
        self.exec_prepared(pc, &line)
    }

    /// Executes one prepared instruction. This is the single executor body
    /// shared by the cached and uncached fetch paths: all semantics live
    /// here, operating on the pre-extracted fields of [`Line`].
    #[inline]
    fn exec_prepared(&mut self, pc: u32, line: &Line) -> Result<Halt, StepEvent> {
        let in_delay_slot = self.pending_target.is_some();
        if in_delay_slot && line.is_transfer {
            return Err(StepEvent::Trap {
                kind: TrapKind::TransferInDelaySlot,
                pc,
                info: pc,
                err: ExecError::TransferInDelaySlot { pc },
            });
        }

        self.stats.retire(line.op);
        if in_delay_slot {
            self.stats.delay_slots += 1;
            if line.insn.is_nop() {
                self.stats.delay_slot_nops += 1;
            }
        }

        let start_cycle = self.stats.cycles;
        let mut cycles = u64::from(line.base_cycles);
        if !self.cfg.forwarding {
            cycles += self.hazard_bubbles(&line.insn);
        }

        let mut new_target: Option<u32> = None;
        let mut new_write: Option<(PhysId, bool)> = None;
        let mut halted = false;

        match line.op {
            Opcode::Add
            | Opcode::Addc
            | Opcode::Sub
            | Opcode::Subc
            | Opcode::Subr
            | Opcode::Subcr
            | Opcode::And
            | Opcode::Or
            | Opcode::Xor
            | Opcode::Sll
            | Opcode::Srl
            | Opcode::Sra => {
                let a = self.regs.read(line.rs1);
                let b = self.s2_value(line.s2);
                let out = alu(line.op, a, b, self.flags.c);
                self.regs.write(line.dest, out.value);
                if line.scc {
                    self.flags = out.flags;
                }
                new_write = self.note_write(line.dest, false);
            }
            Opcode::Ldl | Opcode::Ldsu | Opcode::Ldss | Opcode::Ldbu | Opcode::Ldbs => {
                let addr = self
                    .regs
                    .read(line.rs1)
                    .wrapping_add(self.s2_value(line.s2));
                let v = self
                    .load_value(line.op, addr)
                    .map_err(|err| data_trap(pc, addr, err))?;
                self.regs.write(line.dest, v);
                self.stats.data_reads += 1;
                new_write = self.note_write(line.dest, true);
            }
            Opcode::Stl | Opcode::Sts | Opcode::Stb => {
                // `dest` names the data register in store encodings.
                let addr = self
                    .regs
                    .read(line.rs1)
                    .wrapping_add(self.s2_value(line.s2));
                let data = self.regs.read(line.dest);
                self.store_value(line.op, addr, data)
                    .map_err(|err| data_trap(pc, addr, err))?;
                self.stats.data_writes += 1;
            }
            Opcode::Jmp | Opcode::Jmpr => {
                if line.cond.eval(self.flags) {
                    new_target = Some(self.transfer_target(line, pc));
                    self.stats.taken_transfers += 1;
                }
            }
            Opcode::Call | Opcode::Callr => {
                let link = line.dest;
                let target = self.transfer_target(line, pc);
                if self.regs.call_would_overflow() {
                    cycles += self.spill_window(false).map_err(|f| spill_event(pc, f))?;
                }
                self.regs.advance();
                // The link register is named in the *new* window.
                self.regs.write(link, pc);
                new_write = self.note_write(link, false);
                new_target = Some(target);
                self.stats.calls += 1;
                self.stats.taken_transfers += 1;
            }
            Opcode::Ret | Opcode::Reti => {
                let target = self
                    .regs
                    .read(line.rs1)
                    .wrapping_add(self.s2_value(line.s2));
                if self.regs.ret_would_underflow() {
                    cycles += self.fill_window(pc).map_err(StepEvent::Fatal)?;
                }
                if self.regs.retreat() {
                    new_target = Some(target);
                    self.stats.rets += 1;
                    self.stats.taken_transfers += 1;
                    if line.op == Opcode::Reti {
                        self.interrupts_enabled = true;
                        // A RETI while a trap is being serviced is the
                        // handler's exit: the trap unit is re-armed.
                        if self.active_trap.take().is_some() {
                            self.stats.trap_returns += 1;
                        }
                    }
                } else {
                    halted = true;
                }
            }
            Opcode::Calli => {
                if self.regs.call_would_overflow() {
                    cycles += self.spill_window(false).map_err(|f| spill_event(pc, f))?;
                }
                self.regs.advance();
                self.regs.write(line.dest, self.last_pc);
                new_write = self.note_write(line.dest, false);
                self.interrupts_enabled = false;
                self.stats.calls += 1;
            }
            Opcode::Ldhi => {
                self.regs.write(line.dest, (line.imm19 as u32) << 13);
                new_write = self.note_write(line.dest, false);
            }
            Opcode::Gtlpc => {
                self.regs.write(line.dest, self.last_pc);
                new_write = self.note_write(line.dest, false);
            }
            Opcode::Getpsw => {
                let w = self.psw().to_word();
                self.regs.write(line.dest, w);
                new_write = self.note_write(line.dest, false);
            }
            Opcode::Putpsw => {
                let word = self
                    .regs
                    .read(line.rs1)
                    .wrapping_add(self.s2_value(line.s2));
                let psw = Psw::from_word(word);
                // CWP/SWP are owned by the window hardware; software writes
                // to them are ignored (a full context switch would also
                // reload the window file, which this simulator models via
                // fresh `Cpu` instances instead).
                self.flags = psw.flags;
                self.interrupts_enabled = psw.interrupts_enabled;
            }
        }

        if self.cfg.branch_model == BranchModel::Suspended && new_target.is_some() {
            cycles += 1;
            self.stats.bubble_cycles += 1;
        }

        self.stats.cycles += cycles;
        self.last_write = new_write;
        self.last_pc = pc;

        if self.cfg.record_trace {
            self.trace.push(Retired {
                pc,
                insn: line.insn,
                start_cycle,
                cycles,
                in_delay_slot,
            });
        }

        if halted {
            self.halted = true;
            return Ok(Halt::Returned);
        }

        let next = match self.pending_target.take() {
            Some(t) => t,
            None => pc.wrapping_add(INSN_BYTES),
        };
        self.pending_target = new_target;
        self.pc = next;
        Ok(Halt::Running)
    }

    fn s2_value(&self, s2: Short2) -> u32 {
        match s2 {
            Short2::Reg(r) => self.regs.read(r),
            Short2::Imm(v) => v as i32 as u32,
        }
    }

    /// Target of a control transfer: PC-relative for long shapes,
    /// register + short-source-2 for short shapes.
    #[inline]
    fn transfer_target(&self, line: &Line, pc: u32) -> u32 {
        if line.long {
            pc.wrapping_add(line.imm19 as u32)
        } else {
            self.regs
                .read(line.rs1)
                .wrapping_add(self.s2_value(line.s2))
        }
    }

    // ── Fused-pair handlers (superblock engine) ─────────────────────────
    //
    // Each handler is the two-instruction `exec_prepared` sequence with
    // the per-instruction scaffolding collapsed. Fusion is gated (at block
    // build time) on `forwarding && !record_trace`, so the hazard
    // bookkeeping is a constant `last_write = None` and there is no trace
    // push; and blocks are entered only with no delayed jump in flight, so
    // the pair's first instruction is never in a delay slot. `pa` is the
    // first instruction's address; `pb = pa + 4` the second's.

    /// SCC-setting ALU op + conditional JMP/JMPR reading its flags.
    /// Neither half can fault or halt.
    fn fuse_cmp_branch(&mut self, pa: u32, a: &Line, b: &Line) {
        self.stats.retire(a.op);
        let out = alu(
            a.op,
            self.regs.read(a.rs1),
            self.s2_value(a.s2),
            self.flags.c,
        );
        self.regs.write(a.dest, out.value);
        // `a.scc` is a fusion precondition, so the latch is unconditional.
        self.flags = out.flags;
        let pb = pa.wrapping_add(INSN_BYTES);
        self.stats.retire(b.op);
        let mut cycles = u64::from(a.base_cycles) + u64::from(b.base_cycles);
        let mut target = None;
        if b.cond.eval(self.flags) {
            // Short-form targets read registers after `a`'s write — the
            // same order the unfused sequence observes.
            target = Some(self.transfer_target(b, pb));
            self.stats.taken_transfers += 1;
            if self.cfg.branch_model == BranchModel::Suspended {
                cycles += 1;
                self.stats.bubble_cycles += 1;
            }
        }
        self.stats.cycles += cycles;
        self.last_write = None;
        self.last_pc = pb;
        self.stats.fused_pairs[FuseKind::CmpBranch.index()] += 1;
        self.pending_target = target;
        self.pc = pb.wrapping_add(INSN_BYTES);
    }

    /// LDHI + immediate ALU constant construction; both results were
    /// computed at block build. Cannot fault.
    fn fuse_ldhi_imm(&mut self, pa: u32, a: &Line, b: &Line, hi: u32, value: u32, flags: Flags) {
        self.stats.retire(a.op);
        self.regs.write(a.dest, hi);
        self.stats.retire(b.op);
        self.regs.write(b.dest, value);
        if b.scc {
            self.flags = flags;
        }
        self.stats.cycles += u64::from(a.base_cycles) + u64::from(b.base_cycles);
        self.last_write = None;
        self.last_pc = pa.wrapping_add(INSN_BYTES);
        self.stats.fused_pairs[FuseKind::LdhiImm.index()] += 1;
        self.pc = pa.wrapping_add(2 * INSN_BYTES);
    }

    /// Conditional transfer + safe (ALU/LDHI) delay-slot instruction,
    /// retired as one unit that leaves no jump in flight. Cannot fault.
    fn fuse_transfer_slot(&mut self, pa: u32, a: &Line, b: &Line) {
        self.stats.retire(a.op);
        let mut cycles = u64::from(a.base_cycles) + u64::from(b.base_cycles);
        let mut target = None;
        // The condition is evaluated on the pre-slot flags, and short-form
        // target operands are read before the slot writes — both exactly
        // as the unfused transfer, which executes first.
        if a.cond.eval(self.flags) {
            target = Some(self.transfer_target(a, pa));
            self.stats.taken_transfers += 1;
            if self.cfg.branch_model == BranchModel::Suspended {
                cycles += 1;
                self.stats.bubble_cycles += 1;
            }
        }
        let pb = pa.wrapping_add(INSN_BYTES);
        self.stats.retire(b.op);
        if target.is_some() {
            // The slot sits in a delay slot only when the transfer took
            // (an untaken conditional leaves no target pending, and the
            // unfused accounting checks exactly that).
            self.stats.delay_slots += 1;
            if b.insn.is_nop() {
                self.stats.delay_slot_nops += 1;
            }
        }
        if b.op == Opcode::Ldhi {
            self.regs.write(b.dest, (b.imm19 as u32) << 13);
        } else {
            let out = alu(
                b.op,
                self.regs.read(b.rs1),
                self.s2_value(b.s2),
                self.flags.c,
            );
            self.regs.write(b.dest, out.value);
            if b.scc {
                self.flags = out.flags;
            }
        }
        self.stats.cycles += cycles;
        self.last_write = None;
        self.last_pc = pb;
        self.stats.fused_pairs[FuseKind::TransferSlot.index()] += 1;
        self.pending_target = None;
        self.pc = match target {
            Some(t) => t,
            None => pb.wrapping_add(INSN_BYTES),
        };
    }

    /// ALU op feeding the address register of the next load. The load can
    /// fault; `a` is committed fully first, so a trap on `b` leaves
    /// precisely the state the unfused sequence would — restart at `pb`.
    fn fuse_addr_feed(&mut self, pa: u32, a: &Line, b: &Line) -> Result<(), StepEvent> {
        self.stats.retire(a.op);
        let out = alu(
            a.op,
            self.regs.read(a.rs1),
            self.s2_value(a.s2),
            self.flags.c,
        );
        self.regs.write(a.dest, out.value);
        if a.scc {
            self.flags = out.flags;
        }
        self.stats.cycles += u64::from(a.base_cycles);
        self.last_write = None;
        self.last_pc = pa;
        let pb = pa.wrapping_add(INSN_BYTES);
        self.pc = pb;
        self.stats.retire(b.op);
        let addr = self.regs.read(b.rs1).wrapping_add(self.s2_value(b.s2));
        let v = self
            .load_value(b.op, addr)
            .map_err(|err| data_trap(pb, addr, err))?;
        self.regs.write(b.dest, v);
        self.stats.data_reads += 1;
        self.stats.cycles += u64::from(b.base_cycles);
        self.last_pc = pb;
        self.stats.fused_pairs[FuseKind::AddrFeed.index()] += 1;
        self.pc = pb.wrapping_add(INSN_BYTES);
        Ok(())
    }

    /// Two adjacent plain ALU/LDHI ops retired back-to-back — the
    /// catch-all pair. Neither half can fault or halt.
    fn fuse_alu_pair(&mut self, pa: u32, a: &Line, b: &Line) {
        self.stats.retire(a.op);
        if a.op == Opcode::Ldhi {
            self.regs.write(a.dest, (a.imm19 as u32) << 13);
        } else {
            let out = alu(
                a.op,
                self.regs.read(a.rs1),
                self.s2_value(a.s2),
                self.flags.c,
            );
            self.regs.write(a.dest, out.value);
            if a.scc {
                self.flags = out.flags;
            }
        }
        let pb = pa.wrapping_add(INSN_BYTES);
        self.stats.retire(b.op);
        if b.op == Opcode::Ldhi {
            self.regs.write(b.dest, (b.imm19 as u32) << 13);
        } else {
            // `b`'s operands are read after `a`'s write — the order the
            // unfused sequence observes.
            let out = alu(
                b.op,
                self.regs.read(b.rs1),
                self.s2_value(b.s2),
                self.flags.c,
            );
            self.regs.write(b.dest, out.value);
            if b.scc {
                self.flags = out.flags;
            }
        }
        self.stats.cycles += u64::from(a.base_cycles) + u64::from(b.base_cycles);
        self.last_write = None;
        self.last_pc = pb;
        self.stats.fused_pairs[FuseKind::AluPair.index()] += 1;
        self.pc = pb.wrapping_add(INSN_BYTES);
    }

    fn load_value(&mut self, op: Opcode, addr: u32) -> Result<u32, MemError> {
        load_op(&mut self.mem, op, addr)
    }

    fn store_value(&mut self, op: Opcode, addr: u32, v: u32) -> Result<(), MemError> {
        store_op(&mut self.mem, op, addr, v)
    }

    /// Hazard-model bookkeeping for a register write: the physical
    /// identity the *next* instruction's reads are checked against. With
    /// internal forwarding (the RISC I datapath, and the default) the
    /// hazard model never fires, so the translation — two extra window
    /// computations per instruction — is skipped entirely.
    #[inline]
    fn note_write(&self, r: Reg, was_load: bool) -> Option<(PhysId, bool)> {
        if self.cfg.forwarding {
            None
        } else {
            self.phys(r).map(|p| (p, was_load))
        }
    }

    /// Physical identity of a visible register in the *current* window.
    fn phys(&self, r: Reg) -> Option<PhysId> {
        if r.is_zero() {
            return None;
        }
        Some(match self.regs.physical_slot(self.regs.cwp() as usize, r) {
            None => PhysId::Global(r.number()),
            Some(i) => PhysId::Ring(i),
        })
    }

    /// Forces the `CALLI` sequence: advance the window (spilling if
    /// needed), save the interrupted PC in the new window's `r25`, disable
    /// interrupts, and vector to the handler.
    ///
    /// An interrupt with no handler installed (e.g. a spurious one raised
    /// by the fault injector) is dropped: the real machine would fetch a
    /// null vector, but the simulator has nothing meaningful to run there.
    fn take_interrupt(&mut self) -> Result<(), StepEvent> {
        let Some(handler) = self.interrupt_handler else {
            self.interrupt_pending = false;
            return Ok(());
        };
        let mut cycles = self.cfg.trap_overhead_cycles;
        if self.regs.call_would_overflow() {
            // On failure the interrupt stays pending: it retries once the
            // exhaustion handler (if any) has made room.
            cycles += self
                .spill_window(false)
                .map_err(|f| spill_event(self.pc, f))?;
        }
        self.interrupt_pending = false;
        self.regs.advance();
        self.regs.write(Reg::R25, self.pc);
        self.interrupts_enabled = false;
        self.last_pc = self.pc;
        self.pc = handler;
        self.stats.cycles += cycles;
        self.stats.trap_cycles += self.cfg.trap_overhead_cycles;
        self.stats.calls += 1;
        self.stats.interrupts_taken += 1;
        Ok(())
    }

    /// Forces the trap-entry sequence — a `CALLI` carrying cause state:
    /// fresh window, `r25` = restart PC, `r24` = cause code, `r23` = info
    /// word, interrupts off, PC at the handler (no delay slot). Returns
    /// the structured error instead when no handler is installed, or a
    /// double fault when one is already running.
    fn vector_trap(
        &mut self,
        kind: TrapKind,
        restart: u32,
        info: u32,
        err: ExecError,
    ) -> Result<(), ExecError> {
        let Some(handler) = self.trap_handlers[kind.index()] else {
            return Err(err);
        };
        if let Some(first) = self.active_trap {
            return Err(ExecError::DoubleFault {
                pc: restart,
                first,
                second: kind,
                ctx: self.replay_context(),
            });
        }
        let mut cycles = self.cfg.trap_overhead_cycles;
        if self.regs.call_would_overflow() {
            // The exhaustion trap may spill into the reserved emergency
            // frame — that is what the reserve exists for. If even that
            // fails, no handler can be entered: surface the original
            // fault.
            let emergency = kind == TrapKind::WindowStackExhausted;
            match self.spill_window(emergency) {
                Ok(c) => cycles += c,
                Err(_) => return Err(err),
            }
        }
        self.regs.advance();
        self.regs.write(Reg::R25, restart);
        self.regs.write(Reg::R24, kind.code());
        self.regs.write(Reg::R23, info);
        self.interrupts_enabled = false;
        self.active_trap = Some(kind);
        self.pending_target = None;
        self.last_write = None;
        self.last_pc = restart;
        self.pc = handler;
        self.stats.cycles += cycles;
        self.stats.trap_cycles += self.cfg.trap_overhead_cycles;
        self.stats.trap_entries += 1;
        self.stats.trap_entry_cycles += cycles;
        self.stats.trap_counts[kind.index()] += 1;
        self.stats.calls += 1;
        Ok(())
    }

    /// The `(info word, unhandled error)` pair for a forced probe of
    /// `kind` delivered at `pc` (see [`Cpu::inject_probe`]).
    fn probe_fault(&self, kind: TrapKind, pc: u32) -> (u32, ExecError) {
        match kind {
            TrapKind::InstructionAccess | TrapKind::DataAccess => (
                pc,
                ExecError::Mem {
                    pc,
                    err: MemError::OutOfRange { addr: pc, width: 4 },
                },
            ),
            TrapKind::Misaligned => {
                let addr = pc | 2;
                (
                    addr,
                    ExecError::Mem {
                        pc,
                        err: MemError::Misaligned { addr, width: 4 },
                    },
                )
            }
            TrapKind::Decode => (
                self.mem.peek_u32(pc).unwrap_or(0),
                ExecError::Decode {
                    pc,
                    err: DecodeError::UnknownOpcode(0x7f),
                },
            ),
            TrapKind::TransferInDelaySlot => (pc, ExecError::TransferInDelaySlot { pc }),
            TrapKind::WindowStackExhausted => (
                self.wstack_ptr,
                ExecError::WindowStackOverflow {
                    ptr: self.wstack_ptr,
                },
            ),
        }
    }

    /// Interlock bubbles between the previous instruction's write and this
    /// instruction's reads (see [`SimConfig::forwarding`]).
    ///
    /// With internal forwarding (the RISC I datapath, and the default) there
    /// is no penalty: result buses bypass the register file. Without it,
    /// reading a register written by the immediately preceding instruction
    /// costs one bubble while the write drains.
    fn hazard_bubbles(&mut self, insn: &Instruction) -> u64 {
        if self.cfg.forwarding {
            return 0;
        }
        let Some((written, _was_load)) = self.last_write else {
            return 0;
        };
        let hazard = insn
            .reads()
            .into_iter()
            .filter_map(|r| self.phys(r))
            .any(|p| p == written);
        if hazard {
            self.stats.bubble_cycles += 1;
            1
        } else {
            0
        }
    }

    /// Services a window overflow: 16 stores to the save stack. Returns the
    /// cycles consumed.
    ///
    /// Program-initiated spills (`emergency == false`) keep one frame of
    /// head-room free below themselves — the emergency reserve that lets
    /// the exhaustion trap itself still enter a handler in a fresh window.
    fn spill_window(&mut self, emergency: bool) -> Result<u64, SpillFail> {
        let frame = SPILL_REGS as u32 * 4;
        let reserve = if emergency { 0 } else { frame };
        if self.wstack_ptr < self.cfg.stack_top + frame + reserve {
            return Err(SpillFail::Exhausted {
                ptr: self.wstack_ptr,
            });
        }
        let saved = self.regs.spill_oldest();
        for v in saved {
            self.wstack_ptr -= 4;
            let ptr = self.wstack_ptr;
            self.mem
                .write_u32(ptr, v)
                .map_err(|err| SpillFail::Mem(ExecError::Mem { pc: self.pc, err }))?;
        }
        self.stats.data_writes += SPILL_REGS as u64;
        let cost = self.cfg.trap_overhead_cycles + SPILL_REGS as u64 * 2;
        self.stats.trap_cycles += cost;
        Ok(cost)
    }

    /// Services a window underflow: 16 loads from the save stack. Returns
    /// the cycles consumed.
    fn fill_window(&mut self, pc: u32) -> Result<u64, ExecError> {
        let mut regs = [0u32; SPILL_REGS];
        for slot in regs.iter_mut().rev() {
            let ptr = self.wstack_ptr;
            *slot = self
                .mem
                .read_u32(ptr)
                .map_err(|err| ExecError::Mem { pc, err })?;
            self.wstack_ptr += 4;
        }
        self.regs.fill_previous(regs);
        self.stats.data_reads += SPILL_REGS as u64;
        let cost = self.cfg.trap_overhead_cycles + SPILL_REGS as u64 * 2;
        self.stats.trap_cycles += cost;
        Ok(cost)
    }
}

/// The memory access for a load opcode, with its width and sign extension.
/// Free-standing (not a `Cpu` method) so the trace executor can call it
/// while holding a borrow of the trace cache.
#[inline]
fn load_op(mem: &mut Memory, op: Opcode, addr: u32) -> Result<u32, MemError> {
    Ok(match op {
        Opcode::Ldl => mem.read_u32(addr)?,
        Opcode::Ldsu => mem.read_u16(addr)? as u32,
        Opcode::Ldss => mem.read_u16(addr)? as i16 as i32 as u32,
        Opcode::Ldbu => mem.read_u8(addr)? as u32,
        Opcode::Ldbs => mem.read_u8(addr)? as i8 as i32 as u32,
        _ => unreachable!("not a load"),
    })
}

/// The memory access for a store opcode at its width.
#[inline]
fn store_op(mem: &mut Memory, op: Opcode, addr: u32, v: u32) -> Result<(), MemError> {
    match op {
        Opcode::Stl => mem.write_u32(addr, v),
        Opcode::Sts => mem.write_u16(addr, v as u16),
        Opcode::Stb => mem.write_u8(addr, v as u8),
        _ => unreachable!("not a store"),
    }
}

/// Replays the per-instruction statistics of `meta[..n]` — the committed
/// prefix of a side-exiting trace run. Field for field what
/// `exec_prepared` bumps per op (tracing preconditions pin the rest:
/// forwarding ⇒ no hazard bubbles, and traced ops are never calls,
/// returns or window traps).
fn replay_meta(stats: &mut ExecStats, meta: &[TMeta], n: usize) {
    for m in &meta[..n] {
        stats.retire(m.op);
        if m.pending_before.is_some() {
            stats.delay_slots += 1;
            stats.delay_slot_nops += u64::from(m.nop);
        }
        stats.cycles += u64::from(m.base) + u64::from(m.bubble);
        stats.bubble_cycles += u64::from(m.bubble);
        stats.data_reads += u64::from(m.is_load);
        stats.data_writes += u64::from(m.is_store);
        stats.taken_transfers += u64::from(m.taken);
    }
}

/// The trap event for a data-access fault at `addr` by the instruction at
/// `pc`.
fn data_trap(pc: u32, addr: u32, err: MemError) -> StepEvent {
    StepEvent::Trap {
        kind: match err {
            MemError::Misaligned { .. } => TrapKind::Misaligned,
            MemError::OutOfRange { .. } => TrapKind::DataAccess,
        },
        pc,
        info: addr,
        err: ExecError::Mem { pc, err },
    }
}

/// The step event for a failed window spill requested by the instruction
/// at `pc`.
fn spill_event(pc: u32, f: SpillFail) -> StepEvent {
    match f {
        SpillFail::Exhausted { ptr } => StepEvent::Trap {
            kind: TrapKind::WindowStackExhausted,
            pc,
            info: ptr,
            err: ExecError::WindowStackOverflow { ptr },
        },
        SpillFail::Mem(e) => StepEvent::Fatal(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use risc1_isa::{Cond, Short2};

    fn imm(v: i32) -> Short2 {
        Short2::imm(v).unwrap()
    }

    /// Builds, loads and runs a program, returning the CPU for inspection.
    fn run_program(insns: Vec<Instruction>) -> Cpu {
        run_with(SimConfig::default(), insns, &[])
    }

    fn run_with(cfg: SimConfig, insns: Vec<Instruction>, args: &[i32]) -> Cpu {
        let mut cpu = Cpu::new(cfg);
        cpu.load_program(&Program::from_instructions(insns))
            .unwrap();
        cpu.set_args(args);
        cpu.run().expect("program should halt cleanly");
        cpu
    }

    fn halt_seq() -> Vec<Instruction> {
        vec![Instruction::ret(Reg::R0, imm(0)), Instruction::nop()]
    }

    #[test]
    fn arithmetic_and_halt() {
        let mut p = vec![
            Instruction::reg(Opcode::Add, Reg::R16, Reg::R0, imm(40)),
            Instruction::reg(Opcode::Add, Reg::R16, Reg::R16, imm(2)),
            Instruction::reg(Opcode::Add, Reg::R26, Reg::R16, Short2::ZERO),
        ];
        p.extend(halt_seq());
        let cpu = run_program(p);
        assert_eq!(cpu.result(), 42);
        assert!(cpu.is_halted());
    }

    #[test]
    fn loads_and_stores_roundtrip_through_memory() {
        let mut p = vec![
            // r16 := 0x2000 (data scratch; built with ldhi since 0x2000
            // exceeds the 13-bit immediate), store −2, reload as halves
            Instruction::ldhi(Reg::R16, 1),
            Instruction::reg(Opcode::Add, Reg::R17, Reg::R0, imm(-2)), // 0xFFFF_FFFE
            Instruction::reg(Opcode::Stl, Reg::R17, Reg::R16, imm(0)),
            Instruction::reg(Opcode::Ldsu, Reg::R18, Reg::R16, imm(0)),
            Instruction::reg(Opcode::Ldss, Reg::R19, Reg::R16, imm(0)),
            Instruction::reg(Opcode::Ldbu, Reg::R20, Reg::R16, imm(3)),
            Instruction::reg(Opcode::Ldbs, Reg::R21, Reg::R16, imm(3)),
            Instruction::reg(Opcode::Ldl, Reg::R22, Reg::R16, imm(0)),
        ];
        p.extend(halt_seq());
        let cpu = run_program(p);
        assert_eq!(cpu.reg(Reg::R18), 0xfffe);
        assert_eq!(cpu.reg_i32(Reg::R19), -2);
        assert_eq!(cpu.reg(Reg::R20), 0xff);
        assert_eq!(cpu.reg_i32(Reg::R21), -1);
        assert_eq!(cpu.reg(Reg::R22), 0xffff_fffe);
    }

    #[test]
    fn delayed_jump_executes_slot_then_target() {
        // jmpr alw +12 skips exactly one instruction beyond its slot.
        let mut p = vec![
            Instruction::jmpr(Cond::Alw, 12), // 0: jump to 12
            Instruction::reg(Opcode::Add, Reg::R16, Reg::R0, imm(1)), // 4: delay slot RUNS
            Instruction::reg(Opcode::Add, Reg::R17, Reg::R0, imm(99)), // 8: skipped
            Instruction::reg(Opcode::Add, Reg::R18, Reg::R0, imm(2)), // 12: target
        ];
        p.extend(halt_seq());
        let cpu = run_program(p);
        assert_eq!(cpu.reg(Reg::R16), 1, "delay slot executed");
        assert_eq!(cpu.reg(Reg::R17), 0, "skipped instruction did not run");
        assert_eq!(cpu.reg(Reg::R18), 2, "target executed");
    }

    #[test]
    fn conditional_jump_taken_and_not_taken() {
        // r16 = 5; compare to 5; jeq taken. Then compare to 6; jeq not taken.
        let mut p = vec![
            Instruction::reg(Opcode::Add, Reg::R16, Reg::R0, imm(5)),
            Instruction::reg_scc(Opcode::Sub, Reg::R0, Reg::R16, imm(5)),
            Instruction::jmpr(Cond::Eq, 12), // to +12 (skip the poison)
            Instruction::nop(),
            Instruction::reg(Opcode::Add, Reg::R20, Reg::R0, imm(1)), // poison: skipped
            Instruction::reg_scc(Opcode::Sub, Reg::R0, Reg::R16, imm(6)),
            Instruction::jmpr(Cond::Eq, 12), // NOT taken
            Instruction::nop(),
            Instruction::reg(Opcode::Add, Reg::R21, Reg::R0, imm(1)), // runs
        ];
        p.extend(halt_seq());
        let cpu = run_program(p);
        assert_eq!(cpu.reg(Reg::R20), 0);
        assert_eq!(cpu.reg(Reg::R21), 1);
    }

    #[test]
    fn call_and_ret_pass_parameters_through_window_overlap() {
        // main: r10 := 7; call f; result comes back in r10.
        // f: r26 (== caller r10) += 1; write into r26; ret.
        let p = vec![
            /* 0  */ Instruction::reg(Opcode::Add, Reg::R10, Reg::R0, imm(7)),
            /* 4  */ Instruction::callr(Reg::R25, 12), // f at 4+12=16
            /* 8  */ Instruction::nop(), // call delay slot
            /* 12 */
            Instruction::reg(Opcode::Add, Reg::R26, Reg::R10, Short2::ZERO), // result to r26
            // (falls through to f? no: execution continues at 12 after ret, then needs halt)
            /* 16 */
            Instruction::reg(Opcode::Add, Reg::R26, Reg::R26, imm(1)), // f body
            /* 20 */ Instruction::ret(Reg::R25, imm(8)),
            /* 24 */ Instruction::nop(), // ret delay slot
        ];
        // After ret, control returns to call_pc+8 = 12, which copies r10
        // to r26 and falls through to 16... that would re-enter f. Add an
        // explicit halt by making 12 the last "main" instruction jump to a
        // halt stub instead — simpler: rebuild with halt at 12.
        let p = {
            let mut q = p;
            q[3] = Instruction::ret(Reg::R0, imm(0)); // halt at depth 0 (r10 holds result)
            q
        };
        let mut cpu = Cpu::new(SimConfig::default());
        cpu.load_program(&Program::from_instructions(p)).unwrap();
        cpu.run().unwrap();
        assert_eq!(cpu.reg(Reg::R10), 8, "callee wrote r26 == caller r10");
        let s = cpu.stats();
        assert_eq!(s.calls, 1);
        assert_eq!(s.rets, 1);
        assert_eq!(s.max_depth, 1);
    }

    #[test]
    fn ret_at_depth_zero_halts_without_jumping() {
        let cpu = run_program(halt_seq());
        assert!(cpu.is_halted());
        assert_eq!(cpu.stats().rets, 0, "a halting ret is not a return");
    }

    #[test]
    fn deep_recursion_overflows_and_recovers() {
        // f(n): if n == 0 return 0; return f(n-1) + n  — triangular number,
        // forcing window traps with a small file.
        // Layout (entry = main at 0, f at 16):
        let f_entry = 16;
        let p = vec![
            /* 0: main */
            Instruction::reg(Opcode::Add, Reg::R10, Reg::R0, imm(20)), // arg n=20
            Instruction::callr(Reg::R25, f_entry - 4),                 // call f
            Instruction::nop(),
            Instruction::ret(Reg::R0, imm(0)), // halt; result in r10
            /* 16: f(n in r26) */
            Instruction::reg_scc(Opcode::Sub, Reg::R0, Reg::R26, imm(0)),
            Instruction::jmpr(Cond::Ne, 16), // if n != 0 goto recurse (at 20+16=36)
            Instruction::nop(),
            Instruction::reg(Opcode::Add, Reg::R26, Reg::R0, imm(0)), // base: return 0
            Instruction::ret(Reg::R25, imm(8)),
            Instruction::nop(),
            /* 36: recurse */
            Instruction::reg(Opcode::Sub, Reg::R10, Reg::R26, imm(1)), // arg = n-1
            Instruction::callr(Reg::R25, f_entry - 44),                // call f (callr sits at 44)
            Instruction::nop(),
            /* 48: after call: r10 = f(n-1); return r10 + n */
            Instruction::reg(Opcode::Add, Reg::R26, Reg::R10, Reg::R26.into()),
            Instruction::ret(Reg::R25, imm(8)),
            Instruction::nop(),
        ];
        let cfg = SimConfig::with_windows(4);
        let mut cpu = Cpu::new(cfg);
        cpu.load_program(&Program::from_instructions(p)).unwrap();
        cpu.run().unwrap();
        assert_eq!(cpu.reg(Reg::R10), 210, "sum 1..=20");
        let s = cpu.stats();
        assert_eq!(s.calls, 21);
        assert!(
            s.window_overflows > 0,
            "4-window file must spill at depth 21"
        );
        assert_eq!(s.window_overflows, s.window_underflows);
        assert_eq!(s.max_depth, 21);
        assert!(s.trap_cycles > 0);
        // Spills and fills balance: 16 writes per overflow, 16 reads per
        // underflow, plus no other memory traffic in this program.
        assert_eq!(s.data_writes, 16 * s.window_overflows);
        assert_eq!(s.data_reads, 16 * s.window_underflows);
    }

    #[test]
    fn eight_window_default_never_spills_at_shallow_depth() {
        // Same program as above but depth 5 on the default 8-window file.
        let f_entry = 16;
        let p = vec![
            Instruction::reg(Opcode::Add, Reg::R10, Reg::R0, imm(5)),
            Instruction::callr(Reg::R25, f_entry - 4),
            Instruction::nop(),
            Instruction::ret(Reg::R0, imm(0)),
            Instruction::reg_scc(Opcode::Sub, Reg::R0, Reg::R26, imm(0)),
            Instruction::jmpr(Cond::Ne, 16),
            Instruction::nop(),
            Instruction::reg(Opcode::Add, Reg::R26, Reg::R0, imm(0)),
            Instruction::ret(Reg::R25, imm(8)),
            Instruction::nop(),
            Instruction::reg(Opcode::Sub, Reg::R10, Reg::R26, imm(1)),
            Instruction::callr(Reg::R25, f_entry - 44),
            Instruction::nop(),
            Instruction::reg(Opcode::Add, Reg::R26, Reg::R10, Reg::R26.into()),
            Instruction::ret(Reg::R25, imm(8)),
            Instruction::nop(),
        ];
        let mut cpu = Cpu::new(SimConfig::default());
        cpu.load_program(&Program::from_instructions(p)).unwrap();
        cpu.run().unwrap();
        assert_eq!(cpu.reg(Reg::R10), 15);
        assert_eq!(cpu.stats().window_overflows, 0);
    }

    #[test]
    fn transfer_in_delay_slot_is_rejected() {
        let p = vec![
            Instruction::jmpr(Cond::Alw, 8),
            Instruction::jmpr(Cond::Alw, 8), // in the delay slot: illegal
        ];
        let mut cpu = Cpu::new(SimConfig::default());
        cpu.load_program(&Program::from_instructions(p)).unwrap();
        let err = cpu.run().unwrap_err();
        assert!(matches!(err, ExecError::TransferInDelaySlot { .. }));
    }

    #[test]
    fn fuel_limit_stops_runaway_loops() {
        let p = vec![
            Instruction::jmpr(Cond::Alw, 0), // jump to self
            Instruction::nop(),
        ];
        let cfg = SimConfig {
            fuel: 1000,
            ..SimConfig::default()
        };
        let mut cpu = Cpu::new(cfg);
        cpu.load_program(&Program::from_instructions(p)).unwrap();
        assert_eq!(cpu.run().unwrap_err(), ExecError::OutOfFuel);
    }

    #[test]
    fn misaligned_access_faults() {
        let mut p = vec![
            Instruction::ldhi(Reg::R16, 1), // r16 := 0x2000
            Instruction::nop(),
            Instruction::reg(Opcode::Ldl, Reg::R17, Reg::R16, imm(2)), // misaligned
        ];
        p.extend(halt_seq());
        let mut cpu = Cpu::new(SimConfig::default());
        cpu.load_program(&Program::from_instructions(p)).unwrap();
        let err = cpu.run().unwrap_err();
        assert!(matches!(
            err,
            ExecError::Mem {
                err: MemError::Misaligned { .. },
                ..
            }
        ));
    }

    #[test]
    fn load_constant_builds_full_constants() {
        // Exercise the ldhi+add idiom across sign-extension edge cases.
        for big in [
            0xdead_beefu32,
            0x0000_1000,
            0xffff_f000,
            0x7fff_ffff,
            0x8000_0000,
            123,
            (-5i32) as u32,
        ] {
            let mut p = Instruction::load_constant(Reg::R16, big);
            p.extend(halt_seq());
            let cpu = run_program(p);
            assert_eq!(cpu.reg(Reg::R16), big, "constant {big:#x}");
        }
    }

    #[test]
    fn getpsw_reflects_flags_and_putpsw_restores_them() {
        let mut p = vec![
            Instruction::reg_scc(Opcode::Sub, Reg::R0, Reg::R0, imm(0)), // Z=1, C=1
            Instruction::reg(Opcode::Getpsw, Reg::R16, Reg::R0, Short2::ZERO),
            Instruction::reg_scc(Opcode::Sub, Reg::R0, Reg::R0, imm(1)), // clobber flags
            Instruction::reg(Opcode::Putpsw, Reg::R0, Reg::R16, Short2::ZERO),
            Instruction::reg(Opcode::Getpsw, Reg::R17, Reg::R0, Short2::ZERO),
        ];
        p.extend(halt_seq());
        let cpu = run_program(p);
        let a = Psw::from_word(cpu.reg(Reg::R16));
        let b = Psw::from_word(cpu.reg(Reg::R17));
        assert_eq!(a.flags, b.flags, "putpsw restored the flags");
        assert!(a.flags.z && a.flags.c);
    }

    #[test]
    fn gtlpc_returns_previous_pc() {
        let mut p = vec![
            Instruction::nop(),                                               // pc 0x1000
            Instruction::reg(Opcode::Gtlpc, Reg::R16, Reg::R0, Short2::ZERO), // pc 0x1004
        ];
        p.extend(halt_seq());
        let cpu = run_program(p);
        assert_eq!(cpu.reg(Reg::R16), 0x1000);
    }

    #[test]
    fn suspended_model_charges_taken_transfers() {
        let body = |_: ()| {
            let mut p = vec![Instruction::jmpr(Cond::Alw, 8), Instruction::nop()];
            p.extend(halt_seq());
            p
        };
        let delayed = run_with(SimConfig::default(), body(()), &[]);
        let suspended = run_with(
            SimConfig {
                branch_model: BranchModel::Suspended,
                ..SimConfig::default()
            },
            body(()),
            &[],
        );
        assert_eq!(
            suspended.stats().cycles,
            delayed.stats().cycles + 1,
            "one taken jmpr costs one extra bubble under the suspended model"
        );
        assert_eq!(suspended.stats().bubble_cycles, 1);
    }

    #[test]
    fn load_use_interlock_without_forwarding() {
        let body = || {
            let mut p = vec![
                Instruction::ldhi(Reg::R16, 1), // r16 := 0x2000
                Instruction::nop(),             // break the ldhi->ldl dependency
                Instruction::reg(Opcode::Ldl, Reg::R16, Reg::R16, Short2::ZERO),
                Instruction::reg(Opcode::Add, Reg::R17, Reg::R16, imm(1)), // uses loaded value
            ];
            p.extend(halt_seq());
            p
        };
        let with_fwd = run_with(SimConfig::default(), body(), &[]);
        let no_fwd = run_with(
            SimConfig {
                forwarding: false,
                ..SimConfig::default()
            },
            body(),
            &[],
        );
        assert_eq!(no_fwd.stats().cycles, with_fwd.stats().cycles + 1);
    }

    #[test]
    fn window_stack_exhaustion_is_detected() {
        // Infinite recursion: call self forever. The window save stack is
        // finite, so the simulator must fail with WindowStackOverflow (not
        // silently corrupt memory).
        let p = vec![
            Instruction::callr(Reg::R25, 0), // call self
            Instruction::nop(),
        ];
        let cfg = SimConfig {
            windows: 2,
            stack_top: 0xe0000,
            window_stack_top: 0xe0100, // tiny save area: 4 spills
            ..SimConfig::default()
        };
        let mut cpu = Cpu::new(cfg);
        cpu.load_program(&Program::from_instructions(p)).unwrap();
        let err = cpu.run().unwrap_err();
        assert!(
            matches!(err, ExecError::WindowStackOverflow { .. }),
            "{err:?}"
        );
    }

    #[test]
    fn step_after_halt_is_idempotent() {
        let mut cpu = Cpu::new(SimConfig::default());
        cpu.load_program(&Program::from_instructions(halt_seq()))
            .unwrap();
        cpu.run().unwrap();
        let stats = cpu.stats();
        // Further steps (and runs) are no-ops, not errors.
        assert_eq!(cpu.step(), Ok(Halt::Returned));
        assert_eq!(cpu.step(), Ok(Halt::Returned));
        assert_eq!(cpu.run(), Ok(()));
        assert_eq!(cpu.stats(), stats, "no work is done after halt");
    }

    /// Writes a `reti r25, #s2; nop` stub at `addr` and installs it as the
    /// handler for `kind`.
    fn install_stub(cpu: &mut Cpu, kind: TrapKind, addr: u32, s2: i32) {
        let stub = [Instruction::reti(Reg::R25, imm(s2)), Instruction::nop()];
        for (i, insn) in stub.iter().enumerate() {
            cpu.mem
                .load_image(addr + 4 * i as u32, &insn.encode().to_le_bytes())
                .unwrap();
        }
        cpu.set_trap_handler(kind, addr);
    }

    #[test]
    fn misaligned_fault_vectors_skips_and_continues() {
        // Same program as `misaligned_access_faults`, but with a skip
        // handler installed: the faulting load is dropped, r17 stays 0,
        // and the program halts cleanly.
        let mut p = vec![
            Instruction::ldhi(Reg::R16, 1), // r16 := 0x2000
            Instruction::nop(),
            Instruction::reg(Opcode::Ldl, Reg::R17, Reg::R16, imm(2)), // misaligned
            Instruction::reg(Opcode::Add, Reg::R18, Reg::R0, imm(7)),
        ];
        p.extend(halt_seq());
        let mut cpu = Cpu::new(SimConfig::default());
        cpu.load_program(&Program::from_instructions(p)).unwrap();
        install_stub(&mut cpu, TrapKind::Misaligned, 0x100, 4);
        cpu.run().unwrap();
        assert!(cpu.is_halted());
        assert_eq!(cpu.reg(Reg::R17), 0, "faulting load was skipped");
        assert_eq!(cpu.reg(Reg::R18), 7, "execution continued after the skip");
        let s = cpu.stats();
        assert_eq!(s.trap_entries, 1);
        assert_eq!(s.trap_returns, 1);
        assert_eq!(s.trap_count(TrapKind::Misaligned), 1);
        assert!(s.trap_entry_cycles >= cpu.config().trap_overhead_cycles);
    }

    #[test]
    fn trap_handler_sees_cause_and_info_registers() {
        // Handler copies r23/r24 (info, cause) to globals r2/r3 so the
        // test can observe them after resume.
        let mut p = vec![
            Instruction::ldhi(Reg::R16, 1),
            Instruction::nop(),
            Instruction::reg(Opcode::Ldl, Reg::R17, Reg::R16, imm(2)), // misaligned at 0x2002
        ];
        p.extend(halt_seq());
        let mut cpu = Cpu::new(SimConfig::default());
        cpu.load_program(&Program::from_instructions(p)).unwrap();
        let handler = [
            Instruction::reg(Opcode::Add, Reg::R2, Reg::R23, Short2::ZERO),
            Instruction::reg(Opcode::Add, Reg::R3, Reg::R24, Short2::ZERO),
            Instruction::reg(Opcode::Add, Reg::R4, Reg::R25, Short2::ZERO),
            Instruction::reti(Reg::R25, imm(4)),
            Instruction::nop(),
        ];
        for (i, insn) in handler.iter().enumerate() {
            cpu.mem
                .load_image(0x200 + 4 * i as u32, &insn.encode().to_le_bytes())
                .unwrap();
        }
        cpu.set_trap_handler(TrapKind::Misaligned, 0x200);
        cpu.run().unwrap();
        assert_eq!(cpu.reg(Reg::R2), 0x2002, "info word = fault address");
        assert_eq!(cpu.reg(Reg::R3), TrapKind::Misaligned.code(), "cause code");
        assert_eq!(cpu.reg(Reg::R4), 0x1008, "restart PC = faulting load");
    }

    #[test]
    fn unhandled_faults_keep_structured_errors_with_cause() {
        let mut p = vec![
            Instruction::ldhi(Reg::R16, 1),
            Instruction::nop(),
            Instruction::reg(Opcode::Ldl, Reg::R17, Reg::R16, imm(2)),
        ];
        p.extend(halt_seq());
        let mut cpu = Cpu::new(SimConfig::default());
        cpu.load_program(&Program::from_instructions(p)).unwrap();
        let err = cpu.run().unwrap_err();
        let cause = err.trap_cause().expect("vectorable fault has a cause");
        assert_eq!(cause.kind, TrapKind::Misaligned);
        assert_eq!(cause.info, 0x2002);
    }

    #[test]
    fn fault_in_delay_slot_restarts_at_the_transfer() {
        // jmpr jumps over a poison instruction; its delay slot loads
        // through global r2, which holds a misaligned address. The lastpc
        // rule: restart = the jmpr itself, so after the handler fixes r2
        // and re-executes, the jump is replayed, the slot succeeds, and
        // the poison instruction never runs.
        let mut p = vec![
            Instruction::ldhi(Reg::R2, 1),                           // 0x1000
            Instruction::reg(Opcode::Add, Reg::R2, Reg::R2, imm(2)), // 0x1004: 0x2002
            Instruction::jmpr(Cond::Alw, 12),                        // 0x1008 -> 0x1014
            Instruction::reg(Opcode::Ldl, Reg::R17, Reg::R2, Short2::ZERO), // 0x100c slot
            Instruction::reg(Opcode::Add, Reg::R20, Reg::R0, imm(1)), // 0x1010 poison
            Instruction::reg(Opcode::Add, Reg::R21, Reg::R0, imm(2)), // 0x1014 target
        ];
        p.extend(halt_seq());
        let mut cpu = Cpu::new(SimConfig::default());
        cpu.load_program(&Program::from_instructions(p)).unwrap();
        // Handler: record the restart PC, repair the address, re-execute.
        let handler = [
            Instruction::reg(Opcode::Add, Reg::R4, Reg::R25, Short2::ZERO),
            Instruction::reg(Opcode::Sub, Reg::R2, Reg::R2, imm(2)),
            Instruction::reti(Reg::R25, imm(0)),
            Instruction::nop(),
        ];
        for (i, insn) in handler.iter().enumerate() {
            cpu.mem
                .load_image(0x200 + 4 * i as u32, &insn.encode().to_le_bytes())
                .unwrap();
        }
        cpu.set_trap_handler(TrapKind::Misaligned, 0x200);
        cpu.run().unwrap();
        assert_eq!(cpu.reg(Reg::R4), 0x1008, "restart is the transfer's PC");
        assert_eq!(
            cpu.reg(Reg::R20),
            0,
            "poison in the jumped-over gap never runs"
        );
        assert_eq!(cpu.reg(Reg::R21), 2);
        assert_eq!(cpu.stats().trap_entries, 1, "re-execution succeeds");
    }

    #[test]
    fn probe_resume_is_bit_for_bit_transparent() {
        let build = || {
            let mut p = vec![
                Instruction::reg(Opcode::Add, Reg::R16, Reg::R0, imm(40)),
                Instruction::reg(Opcode::Add, Reg::R16, Reg::R16, imm(2)),
                Instruction::reg(Opcode::Add, Reg::R26, Reg::R16, Short2::ZERO),
            ];
            p.extend(halt_seq());
            p
        };
        let clean = run_program(build());
        let mut cpu = Cpu::new(SimConfig::default());
        cpu.load_program(&Program::from_instructions(build()))
            .unwrap();
        install_stub(&mut cpu, TrapKind::Misaligned, 0x100, 0);
        cpu.inject_probe(TrapKind::Misaligned);
        cpu.step().unwrap(); // delivers the probe
        assert_eq!(cpu.stats().trap_entries, 1);
        cpu.run().unwrap();
        assert_eq!(cpu.result(), clean.result());
        assert_eq!(cpu.reg(Reg::R16), clean.reg(Reg::R16));
    }

    #[test]
    fn probe_without_handler_is_a_structured_fault() {
        let mut cpu = Cpu::new(SimConfig::default());
        cpu.load_program(&Program::from_instructions(halt_seq()))
            .unwrap();
        cpu.inject_probe(TrapKind::Decode);
        let err = cpu.run().unwrap_err();
        assert!(matches!(err, ExecError::Decode { .. }), "{err:?}");
    }

    #[test]
    fn faulting_handler_double_faults_instead_of_recursing() {
        // The Misaligned handler itself performs a misaligned load.
        let mut p = vec![
            Instruction::ldhi(Reg::R16, 1),
            Instruction::nop(),
            Instruction::reg(Opcode::Ldl, Reg::R17, Reg::R16, imm(2)),
        ];
        p.extend(halt_seq());
        let mut cpu = Cpu::new(SimConfig::default());
        cpu.load_program(&Program::from_instructions(p)).unwrap();
        let handler = [
            Instruction::ldhi(Reg::R16, 1),
            Instruction::reg(Opcode::Ldl, Reg::R17, Reg::R16, imm(2)), // faults again
            Instruction::reti(Reg::R25, imm(4)),
            Instruction::nop(),
        ];
        for (i, insn) in handler.iter().enumerate() {
            cpu.mem
                .load_image(0x200 + 4 * i as u32, &insn.encode().to_le_bytes())
                .unwrap();
        }
        cpu.set_trap_handler(TrapKind::Misaligned, 0x200);
        let err = cpu.run().unwrap_err();
        assert_eq!(
            err,
            ExecError::DoubleFault {
                pc: 0x204,
                first: TrapKind::Misaligned,
                second: TrapKind::Misaligned,
                ctx: ReplayContext::default(),
            }
        );
    }

    #[test]
    fn window_exhaustion_recovers_through_the_emergency_reserve() {
        // Deep recursion on a 2-window file with a tiny save area. The
        // skip handler drops calls that can no longer be serviced, so the
        // recursion unwinds and the program halts cleanly instead of
        // dying with WindowStackOverflow.
        let f_entry = 16;
        let p = vec![
            Instruction::reg(Opcode::Add, Reg::R10, Reg::R0, imm(20)),
            Instruction::callr(Reg::R25, f_entry - 4),
            Instruction::nop(),
            Instruction::ret(Reg::R0, imm(0)),
            Instruction::reg_scc(Opcode::Sub, Reg::R0, Reg::R26, imm(0)),
            Instruction::jmpr(Cond::Ne, 16),
            Instruction::nop(),
            Instruction::reg(Opcode::Add, Reg::R26, Reg::R0, imm(0)),
            Instruction::ret(Reg::R25, imm(8)),
            Instruction::nop(),
            Instruction::reg(Opcode::Sub, Reg::R10, Reg::R26, imm(1)),
            Instruction::callr(Reg::R25, f_entry - 44),
            Instruction::nop(),
            Instruction::reg(Opcode::Add, Reg::R26, Reg::R10, Reg::R26.into()),
            Instruction::ret(Reg::R25, imm(8)),
            Instruction::nop(),
        ];
        let cfg = SimConfig {
            windows: 2,
            stack_top: 0xe0000,
            window_stack_top: 0xe0100, // 4 frames incl. the reserve
            ..SimConfig::default()
        };
        let mut cpu = Cpu::new(cfg);
        cpu.load_program(&Program::from_instructions(p)).unwrap();
        install_stub(&mut cpu, TrapKind::WindowStackExhausted, 0x100, 4);
        cpu.run().unwrap();
        assert!(cpu.is_halted(), "recovered to a clean halt");
        let s = cpu.stats();
        assert!(s.trap_count(TrapKind::WindowStackExhausted) > 0);
        assert_eq!(s.trap_entries, s.trap_returns);
    }

    #[test]
    fn try_set_args_rejects_more_than_six() {
        let mut cpu = Cpu::new(SimConfig::default());
        assert!(cpu.try_set_args(&[1, 2, 3, 4, 5, 6]).is_ok());
        let err = cpu.try_set_args(&[0; 7]).unwrap_err();
        assert_eq!(err.given, 7);
        assert!(err.to_string().contains("7"));
    }

    #[test]
    fn fuel_jitter_surface_works() {
        let p = vec![
            Instruction::jmpr(Cond::Alw, 0), // spin forever
            Instruction::nop(),
        ];
        let mut cpu = Cpu::new(SimConfig::default());
        cpu.load_program(&Program::from_instructions(p)).unwrap();
        assert_eq!(cpu.fuel_limit(), SimConfig::default().fuel);
        cpu.set_fuel_limit(100);
        assert_eq!(cpu.run().unwrap_err(), ExecError::OutOfFuel);
        assert!(cpu.stats().instructions <= 100);
    }

    #[test]
    fn config_trap_base_preinstalls_the_vector_table() {
        let cfg = SimConfig {
            trap_base: Some(0x400),
            ..SimConfig::default()
        };
        let cpu = Cpu::new(cfg);
        for kind in TrapKind::ALL {
            assert_eq!(
                cpu.trap_handler(kind),
                Some(0x400 + kind.index() as u32 * TRAP_VECTOR_STRIDE)
            );
        }
    }

    #[test]
    fn trace_records_when_enabled() {
        let cfg = SimConfig {
            record_trace: true,
            ..SimConfig::default()
        };
        let mut prog = vec![Instruction::nop()];
        prog.extend(halt_seq());
        let cpu = run_with(cfg, prog, &[]);
        // nop + halting ret retire; the ret's delay slot never runs because
        // the machine stops at depth 0.
        assert_eq!(cpu.trace().len(), 2);
        assert_eq!(cpu.trace()[0].pc, 0x1000);
        assert!(!cpu.trace()[1].in_delay_slot);
        // Disabled by default:
        let cpu2 = run_program(halt_seq());
        assert!(cpu2.trace().is_empty());
    }

    /// A loop dense in fusable idioms: LDHI+imm constant, ALU→load address
    /// feed, compare+branch, and a bare transfer+slot, iterated enough to
    /// exercise block chaining *and* clear the trace tier's promotion
    /// threshold.
    fn fusion_workout() -> Vec<Instruction> {
        let mut p = vec![
            // r16 := 0x2000 + 8 (LDHI + imm pair), seed [r16] with 7.
            Instruction::ldhi(Reg::R16, 1),
            Instruction::reg(Opcode::Add, Reg::R16, Reg::R16, imm(8)),
            Instruction::reg(Opcode::Add, Reg::R17, Reg::R0, imm(7)),
            Instruction::reg(Opcode::Stl, Reg::R17, Reg::R16, imm(0)),
            Instruction::reg(Opcode::Add, Reg::R20, Reg::R0, imm(0)), // i
            Instruction::reg(Opcode::Add, Reg::R26, Reg::R0, imm(0)), // acc
            // loop: r18 := r16 + 0 (addr feed) ; r19 := [r18]
            Instruction::reg(Opcode::Add, Reg::R18, Reg::R16, imm(0)),
            Instruction::reg(Opcode::Ldl, Reg::R19, Reg::R18, imm(0)),
            Instruction::reg(Opcode::Add, Reg::R26, Reg::R26, Short2::reg(Reg::R19)),
            Instruction::reg(Opcode::Add, Reg::R20, Reg::R20, imm(1)),
            // compare + conditional branch back to loop (8 insns up).
            Instruction::reg_scc(Opcode::Sub, Reg::R0, Reg::R20, imm(100)),
            Instruction::jmpr(Cond::Lt, -5 * INSN_BYTES as i32),
            Instruction::nop(), // the branch's delay slot
        ];
        p.extend(halt_seq());
        p
    }

    #[test]
    fn engines_agree_and_superblocks_fuse() {
        let run_engine = |engine| {
            let cfg = SimConfig {
                engine,
                ..SimConfig::default()
            };
            run_with(cfg, fusion_workout(), &[])
        };
        let unc = run_engine(ExecEngine::Uncached);
        let cac = run_engine(ExecEngine::Cached);
        let sup = run_engine(ExecEngine::Superblock);
        let trc = run_engine(ExecEngine::Trace);
        assert_eq!(unc.result(), 7 * 100);
        assert_eq!(unc.stats(), cac.stats());
        assert_eq!(cac.stats(), sup.stats());
        assert_eq!(sup.stats(), trc.stats());
        for r in [Reg::R16, Reg::R18, Reg::R19, Reg::R20, Reg::R26] {
            assert_eq!(unc.reg(r), sup.reg(r), "{r:?}");
            assert_eq!(unc.reg(r), trc.reg(r), "{r:?} (trace)");
        }
        // And the superblock engine actually engaged.
        assert!(sup.stats().blocks_entered > 0, "blocks formed");
        assert!(sup.stats().mean_block_len().unwrap() > 1.0);
        assert!(
            sup.stats().fused(FuseKind::CmpBranch) >= 100,
            "loop branch fused each iteration"
        );
        assert!(sup.stats().fused(FuseKind::AddrFeed) >= 100);
        assert!(sup.stats().fused(FuseKind::LdhiImm) >= 1);
        assert_eq!(unc.stats().fused_total(), 0, "uncached engine never fuses");
        // The trace tier promoted the hot loop and ran it from trace IR.
        assert!(trc.stats().traces_built >= 1, "loop promoted to a trace");
        assert!(trc.stats().trace_entries >= 1, "trace entered");
        assert!(
            trc.stats().trace_instructions > 0,
            "instructions retired from trace IR"
        );
    }

    /// The superblock and trace engines must be exact under any chopping
    /// of the timeline: `step()` one at a time, odd `step_n` sizes, and
    /// one straight `run()` all retire the same architectural stats.
    #[test]
    fn superblock_is_exact_under_any_step_chopping() {
        let run_chopped = |engine, chunk: u64| {
            let cfg = SimConfig {
                engine,
                ..SimConfig::default()
            };
            let mut cpu = Cpu::new(cfg);
            cpu.load_program(&Program::from_instructions(fusion_workout()))
                .unwrap();
            loop {
                let halt = if chunk == 0 {
                    cpu.step().unwrap()
                } else {
                    cpu.step_n(chunk).unwrap()
                };
                if halt == Halt::Returned {
                    break;
                }
            }
            cpu
        };
        let straight = run_program(fusion_workout());
        for engine in [ExecEngine::Superblock, ExecEngine::Trace] {
            for chunk in [0, 1, 3, 7, 100] {
                let chopped = run_chopped(engine, chunk);
                assert_eq!(
                    chopped.stats(),
                    straight.stats(),
                    "{engine:?} chunk {chunk}"
                );
                assert_eq!(
                    chopped.result(),
                    straight.result(),
                    "{engine:?} chunk {chunk}"
                );
            }
        }
    }

    /// Exact-`n` contract: `step_n(n)` performs exactly `n` step units
    /// even when blocks (or whole traces) would overrun the budget
    /// mid-flight.
    #[test]
    fn step_n_is_exact_about_n_under_superblock() {
        for engine in [ExecEngine::Superblock, ExecEngine::Trace] {
            let cfg = SimConfig {
                engine,
                ..SimConfig::default()
            };
            let mut a = Cpu::new(cfg);
            a.load_program(&Program::from_instructions(fusion_workout()))
                .unwrap();
            let mut b = a.clone();
            // 17 deliberately lands mid-block; under the trace engine the
            // second call lands mid-trace once the loop is promoted.
            for _ in 0..8 {
                assert_eq!(a.step_n(17).unwrap(), Halt::Running, "{engine:?}");
            }
            for _ in 0..8 * 17 {
                b.step().unwrap();
            }
            assert_eq!(a.stats(), b.stats(), "{engine:?}");
            assert_eq!(a.pc(), b.pc(), "{engine:?}");
        }
    }
}
