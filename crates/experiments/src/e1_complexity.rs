//! E1 — Table I: design complexity of contemporary machines vs RISC I.
//!
//! The CISC rows are the paper's published figures (we cannot re-measure
//! 1978 silicon); the RISC I row is computed live from this repository's
//! ISA tables, so it can never drift from the implementation.

use risc1_isa::summary::{published_cisc_profiles, risc1_profile, MachineProfile};
use risc1_stats::Table;

/// All rows of Table I, RISC I last.
pub fn compute() -> Vec<MachineProfile> {
    let mut rows = published_cisc_profiles();
    rows.push(risc1_profile());
    rows
}

/// Renders Table I.
pub fn run() -> String {
    let mut t = Table::new(&[
        "machine",
        "year",
        "instrs",
        "microcode (Kbit)",
        "insn size (bits)",
        "execution model",
    ]);
    for p in compute() {
        t.row(vec![
            p.name.to_string(),
            p.year.to_string(),
            p.instructions.to_string(),
            if p.microcode_bits == 0 {
                "none (hardwired)".to_string()
            } else {
                (p.microcode_bits / 8192).to_string()
            },
            if p.insn_size_bits.0 == p.insn_size_bits.1 {
                format!("{}", p.insn_size_bits.0)
            } else {
                format!("{}-{}", p.insn_size_bits.0, p.insn_size_bits.1)
            },
            p.execution_model.to_string(),
        ]);
    }
    format!("E1 — Table I: architectural complexity comparison\n\n{t}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn risc_is_the_only_unmicrocoded_machine() {
        let rows = compute();
        let (risc, cisc): (Vec<_>, Vec<_>) = rows.iter().partition(|p| p.name == "RISC I");
        assert_eq!(risc.len(), 1);
        assert_eq!(risc[0].microcode_bits, 0);
        assert!(cisc.iter().all(|p| p.microcode_bits > 0));
    }

    #[test]
    fn risc_has_the_fewest_instructions_and_fixed_size() {
        let rows = compute();
        let risc = rows.last().unwrap();
        assert!(rows[..rows.len() - 1]
            .iter()
            .all(|p| p.instructions > risc.instructions * 6));
        assert_eq!(risc.insn_size_bits, (32, 32));
    }

    #[test]
    fn report_renders() {
        let s = run();
        assert!(s.contains("VAX-11/780") && s.contains("RISC I"));
    }
}
