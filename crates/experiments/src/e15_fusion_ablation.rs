//! E15 — macro-op fusion ablation: what each pair shape contributes.
//!
//! The superblock engine (DESIGN.md §12) fuses five adjacent-pair idioms
//! into single handlers: SCC-setting compare + conditional branch, LDHI +
//! immediate-ALU constant construction, delayed transfer + safe delay
//! slot, ALU → dependent-load address feed, and the catch-all adjacent
//! ALU/LDHI pair. Fusion is a host-speed
//! trick with *zero* architectural effect — so its value is entirely in
//! how much of the dynamic instruction stream the pairs cover. This
//! experiment measures that coverage per workload and per kind, then
//! knocks each kind out one at a time (and all at once) to show where
//! the pairs migrate: the shapes overlap — a compare+branch pair at a
//! block end is also a transfer+slot candidate — so switching one kind
//! off lets the greedy fuser claim some of the same pairs under another
//! name, and the ablation columns price exactly that.
//!
//! Every run here is also an equivalence check: every fusion setting
//! of a workload must produce bit-identical architectural statistics and
//! results, or `compute` panics. The sweep runs on the campaign runner's
//! thread pool (`RISC1_THREADS` overrides the worker count), and its
//! report is byte-identical for any thread count.

use risc1_core::{Cpu, ExecEngine, ExecStats, FuseKind, FusionConfig, Program, SimConfig};
use risc1_ir::layout::ARGV_BASE;
use risc1_ir::{compile_risc, default_threads, parallel_map, RiscOpts};
use risc1_stats::Table;
use risc1_workloads::all;

/// One workload's fusion coverage and ablation tallies.
#[derive(Debug, Clone, PartialEq)]
pub struct FusionRow {
    /// Workload id.
    pub id: &'static str,
    /// Dynamic instructions retired (identical across all settings).
    pub instructions: u64,
    /// Mean formed-block length (instructions per entered block).
    pub mean_block_len: f64,
    /// Fused pairs by kind, all kinds enabled (`FuseKind::ALL` order).
    pub fused: [u64; FuseKind::COUNT],
    /// Total fused pairs with the matching kind switched *off*
    /// (`FuseKind::ALL` order) — the migration measurement.
    pub pairs_without: [u64; FuseKind::COUNT],
}

impl FusionRow {
    /// Total fused pairs with every kind enabled.
    pub fn pairs(&self) -> u64 {
        self.fused.iter().sum()
    }

    /// Share of the dynamic instruction stream covered by fused pairs of
    /// `kind` (each pair covers two retired instructions).
    pub fn coverage(&self, kind: FuseKind) -> f64 {
        (2 * self.fused[kind.index()]) as f64 / self.instructions.max(1) as f64
    }

    /// Share of the dynamic stream covered by any fused pair.
    pub fn total_coverage(&self) -> f64 {
        (2 * self.pairs()) as f64 / self.instructions.max(1) as f64
    }
}

/// Runs one workload under the superblock engine with the given fusion
/// setting and returns its stats and result.
fn run_one(prog: &Program, args: &[i32], fusion: FusionConfig) -> (ExecStats, i32) {
    let cfg = SimConfig {
        engine: ExecEngine::Superblock,
        fusion,
        ..SimConfig::default()
    };
    let mut cpu = Cpu::new(cfg);
    cpu.load_program(prog).expect("suite fits memory");
    cpu.set_args(args);
    for (i, &a) in args.iter().enumerate() {
        let _ = cpu
            .mem
            .load_image(ARGV_BASE + 4 * i as u32, &(a as u32).to_le_bytes());
    }
    cpu.run().expect("suite runs clean");
    (cpu.stats(), cpu.result())
}

/// `FusionConfig::default()` with exactly one kind switched off.
fn config_without(kind: FuseKind) -> FusionConfig {
    let mut f = FusionConfig::default();
    match kind {
        FuseKind::CmpBranch => f.cmp_branch = false,
        FuseKind::LdhiImm => f.ldhi_imm = false,
        FuseKind::TransferSlot => f.transfer_slot = false,
        FuseKind::AddrFeed => f.addr_feed = false,
        FuseKind::AluPair => f.alu_pair = false,
    }
    f
}

/// Sweeps the whole suite (small arguments) on the machine's available
/// parallelism.
pub fn compute() -> Vec<FusionRow> {
    compute_with_threads(default_threads())
}

/// [`compute`] with an explicit worker count (the determinism test runs
/// it at 1 and N and asserts identical rows).
pub fn compute_with_threads(threads: usize) -> Vec<FusionRow> {
    let suite = all();
    parallel_map(&suite, threads, |_, w| {
        let prog = compile_risc(&w.module, RiscOpts::default()).expect("suite compiles");
        let (base_stats, base_result) = run_one(&prog, &w.small_args, FusionConfig::default());
        let mut pairs_without = [0u64; FuseKind::COUNT];
        for kind in FuseKind::ALL {
            let (stats, result) = run_one(&prog, &w.small_args, config_without(kind));
            // ExecStats equality is architectural-only by design, so this
            // is the fusion-invisibility law, enforced on every ablation.
            assert_eq!(
                (&base_stats, base_result),
                (&stats, result),
                "{}: disabling {} changed architectural behaviour",
                w.id,
                kind.name()
            );
            // The one hard law per ablation: a disabled kind must
            // contribute zero pairs, whatever the others reclaim.
            assert_eq!(
                stats.fused(kind),
                0,
                "{}: {} fused while disabled",
                w.id,
                kind.name()
            );
            pairs_without[kind.index()] = stats.fused_total();
        }
        let (none_stats, none_result) = run_one(&prog, &w.small_args, FusionConfig::none());
        assert_eq!(
            (&base_stats, base_result),
            (&none_stats, none_result),
            "{}: disabling all fusion changed architectural behaviour",
            w.id
        );
        assert_eq!(none_stats.fused_total(), 0, "{}: none() still fused", w.id);
        FusionRow {
            id: w.id,
            instructions: base_stats.instructions,
            mean_block_len: base_stats.mean_block_len().unwrap_or(0.0),
            fused: std::array::from_fn(|i| base_stats.fused(FuseKind::ALL[i])),
            pairs_without,
        }
    })
}

/// Renders the experiment report.
pub fn run() -> String {
    render(&compute())
}

fn render(rows: &[FusionRow]) -> String {
    let pct = |v: f64| format!("{:.1}%", 100.0 * v);
    let mut coverage = Table::new(&[
        "workload",
        "instructions",
        "blk len",
        "cmp+branch",
        "ldhi+imm",
        "xfer+slot",
        "addr feed",
        "alu pair",
        "total",
    ]);
    for r in rows {
        let mut row = vec![
            r.id.to_string(),
            r.instructions.to_string(),
            format!("{:.1}", r.mean_block_len),
        ];
        row.extend(FuseKind::ALL.iter().map(|&k| pct(r.coverage(k))));
        row.push(pct(r.total_coverage()));
        coverage.row(row);
    }

    let mut ablation = Table::new(&[
        "workload",
        "pairs (all on)",
        "-cmp+branch",
        "-ldhi+imm",
        "-xfer+slot",
        "-addr feed",
        "-alu pair",
    ]);
    for r in rows {
        let mut row = vec![r.id.to_string(), r.pairs().to_string()];
        row.extend(
            FuseKind::ALL
                .iter()
                .map(|&k| r.pairs_without[k.index()].to_string()),
        );
        ablation.row(row);
    }

    let dyn_total: u64 = rows.iter().map(|r| r.instructions).sum();
    let pair_total: u64 = rows.iter().map(FusionRow::pairs).sum();
    format!(
        "E15 — macro-op fusion ablation (superblock engine, small arguments)\n\n\
         Dynamic coverage: share of retired instructions executed inside a\n\
         fused pair of each kind, all kinds enabled.\n\n{coverage}\n\
         Ablation: total fused pairs when one kind is switched off. The\n\
         shapes overlap, so pairs lost to one kind are partly reclaimed by\n\
         another — and because a fused pair blocks candidates on both its\n\
         flanks, the realigned boundaries occasionally fuse *more* pairs\n\
         than the all-on pass. The delta is what that kind's presence\n\
         changes, not a strict lower bound.\n\n{ablation}\n\
         Across the suite, fused pairs cover {} of {} dynamic instructions\n\
         ({}). Every ablation above was verified bit-identical to the\n\
         all-on run in architectural state and statistics; fusion is a\n\
         pure host-speed transform.\n",
        2 * pair_total,
        dyn_total,
        pct((2 * pair_total) as f64 / dyn_total.max(1) as f64)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_deterministic_for_any_thread_count_and_fusion_fires() {
        let serial = compute_with_threads(1);
        assert_eq!(serial.len(), 11, "the paper's full benchmark count");
        assert_eq!(serial, compute_with_threads(4));
        let total: u64 = serial.iter().map(FusionRow::pairs).sum();
        assert!(total > 0, "no workload fused anything");
        for r in &serial {
            assert!(r.instructions > 0, "{}", r.id);
            assert!(r.mean_block_len > 1.0, "{}: blocks never formed", r.id);
        }
        // Knocking a kind out realigns the greedy pair boundaries, so the
        // ablation totals can move in either direction (one fused pair can
        // block two candidate pairs on its flanks); the hard per-ablation
        // law — a disabled kind contributes zero pairs — is asserted
        // inside `compute`. What must hold suite-wide is that the
        // ALU → dependent-load address feed actually fires now that the
        // one-line fuser no longer shadows it behind the generic ALU pair.
        let addr_feed: u64 = serial
            .iter()
            .map(|r| r.fused[FuseKind::AddrFeed.index()])
            .sum();
        assert!(addr_feed > 0, "addr_feed never fused suite-wide");
    }

    #[test]
    fn report_renders_both_tables() {
        let rows = vec![FusionRow {
            id: "fib",
            instructions: 1000,
            mean_block_len: 5.5,
            fused: [100, 10, 20, 30, 0],
            pairs_without: [80, 150, 140, 130, 160],
        }];
        let out = render(&rows);
        assert!(out.contains("E15"), "{out}");
        assert!(out.contains("fib"), "{out}");
        assert!(out.contains("20.0%"), "{out}"); // cmp+branch coverage
        assert!(out.contains("32.0%"), "{out}"); // total coverage
        assert!(out.contains("-cmp+branch"), "{out}");
    }
}
