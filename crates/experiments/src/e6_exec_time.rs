//! E6 — the headline table: execution time on RISC I, on the VAX-class CX
//! and on the 16-bit-class MC, over the full benchmark suite. The paper
//! reports RISC I roughly 2–4× the commercial machines on compiled C; the
//! shape to reproduce is "RISC I wins nearly everywhere, by more on
//! call-heavy code, by less (or not at all) on multiply-bound code".

use risc1_stats::{measure, table::ratio, Measurement, Table};
use risc1_workloads::all;

/// One measurement per workload, paper-scale arguments.
pub fn compute() -> Vec<Measurement> {
    all().iter().map(measure).collect()
}

/// Renders the table.
pub fn run() -> String {
    let rows = compute();
    let mut t = Table::new(&[
        "benchmark",
        "RISC I cycles",
        "CX cycles",
        "MC cycles",
        "CX/RISC",
        "MC/RISC",
    ]);
    let mut product = 1.0;
    let mut product_mc = 1.0;
    for m in &rows {
        product *= m.speedup();
        product_mc *= m.speedup_mc();
        t.row(vec![
            m.id.to_string(),
            m.risc.cycles.to_string(),
            m.cx.cycles.to_string(),
            m.mc.cycles.to_string(),
            ratio(m.cx.cycles as f64, m.risc.cycles as f64),
            ratio(m.mc.cycles as f64, m.risc.cycles as f64),
        ]);
    }
    let geomean = product.powf(1.0 / rows.len() as f64);
    let geomean_mc = product_mc.powf(1.0 / rows.len() as f64);
    format!(
        "E6 — execution time (cycles), same source compiled for all machines\n\n{t}\n\
         geometric-mean speedup of RISC I: {geomean:.2}x over CX (VAX-class), \
{geomean_mc:.2}x over MC (16-bit-class)\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use risc1_core::SimConfig;
    use risc1_stats::measure_with;
    use risc1_workloads::by_id;

    fn small_measurements() -> Vec<Measurement> {
        all()
            .iter()
            .map(|w| measure_with(w, &w.small_args, SimConfig::default()))
            .collect()
    }

    #[test]
    fn risc_wins_the_geometric_mean_by_a_paper_like_margin() {
        let rows = small_measurements();
        let gm = rows
            .iter()
            .map(Measurement::speedup)
            .product::<f64>()
            .powf(1.0 / rows.len() as f64);
        assert!(
            (1.5..6.0).contains(&gm),
            "geomean speedup {gm:.2} outside the paper's plausible band"
        );
    }

    #[test]
    fn call_heavy_beats_multiply_bound() {
        // fib (call-heavy, no multiplies) must show a larger RISC advantage
        // than intmm (multiply-bound) — the paper's crossover structure.
        let fib = measure_with(&by_id("fib").unwrap(), &[12], SimConfig::default());
        let intmm = measure_with(&by_id("intmm").unwrap(), &[6], SimConfig::default());
        assert!(
            fib.speedup() > intmm.speedup(),
            "fib {:.2} vs intmm {:.2}",
            fib.speedup(),
            intmm.speedup()
        );
    }

    #[test]
    fn risc_wins_every_non_multiply_workload() {
        for m in small_measurements() {
            if m.id != "intmm" {
                assert!(m.speedup() > 1.0, "{} speedup {:.2}", m.id, m.speedup());
            }
        }
    }

    #[test]
    fn risc_beats_the_16_bit_machine_too() {
        // The paper's comparisons against the 68000/Z8002 class: RISC I
        // wins there as well (the 16-bit bus pays per instruction word).
        let rows = small_measurements();
        let gm = rows
            .iter()
            .map(Measurement::speedup_mc)
            .product::<f64>()
            .powf(1.0 / rows.len() as f64);
        assert!(gm > 1.5, "geomean vs MC {gm:.2}");
    }
}
