//! Offline interpreter benchmark — the decode cache's receipt.
//!
//! PR 4 added a predecoded instruction cache to the simulator core
//! (DESIGN.md §11): prepared instruction lines shadow memory so the hot
//! loop skips fetch → `peek_u32` → decode → operand extraction on every
//! step, and `run_to_halt` executes in bursts that hoist the per-step
//! probe/interrupt/fuel checks out to burst boundaries. This module
//! measures what the whole fast path buys, *host-side*, against the
//! interpreter's canonical baseline:
//!
//! - **cached**: `predecode: true` (the default) driven through the
//!   batched `run_to_halt` fast path;
//! - **uncached**: `predecode: false` driven through the one-at-a-time
//!   `step()` loop — fetch, decode, prepare, and every boundary check
//!   paid per instruction, exactly the pre-cache execution model.
//!
//! No external benchmarking crate is involved — plain
//! `std::time::Instant`, best-of-N — so the numbers regenerate in the
//! offline CI image. The machine-readable output, `BENCH_interp.json`,
//! is the repo's canonical perf gate: CI runs `risc1 bench --quick` and
//! fails if the cached mode is not faster in aggregate.
//!
//! The two modes are *bit-identical* in simulated behaviour (same
//! result, stats, memory image — `tests/interp_equivalence.rs` is the
//! proof); only host wall time may differ. The harness asserts the
//! result/instruction agreement outright on every run.

use risc1_core::{Cpu, Halt, Program, SimConfig};
use risc1_ir::layout::ARGV_BASE;
use risc1_ir::{compile_risc, RiscOpts};
use risc1_stats::Table;
use risc1_workloads::all;
use std::time::{Duration, Instant};

/// One workload's cached-vs-uncached timing.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRow {
    /// Workload id.
    pub id: &'static str,
    /// Simulated instructions one run retires (identical in both modes).
    pub instructions: u64,
    /// Simulated instructions per host second, decode cache on.
    pub cached_ips: f64,
    /// Simulated instructions per host second, decode cache off.
    pub uncached_ips: f64,
}

impl BenchRow {
    /// Host-time speedup of the cached mode over the uncached one.
    pub fn speedup(&self) -> f64 {
        self.cached_ips / self.uncached_ips.max(1e-9)
    }
}

/// The whole suite's timings plus the run mode that produced them.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Whether the run used small arguments and a short timing budget.
    pub quick: bool,
    /// One row per suite workload, in suite order.
    pub rows: Vec<BenchRow>,
}

impl BenchReport {
    /// Geometric mean of the per-workload speedups — the aggregate the
    /// CI gate checks against 1.0.
    pub fn geomean_speedup(&self) -> f64 {
        if self.rows.is_empty() {
            return 1.0;
        }
        let ln_sum: f64 = self.rows.iter().map(|r| r.speedup().ln()).sum();
        (ln_sum / self.rows.len() as f64).exp()
    }

    /// Renders the report as the `BENCH_interp.json` document. The
    /// writer is hand-rolled (no serde in the offline image); the schema
    /// is documented in README.md §Benchmarks.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"schema\": \"risc1-bench-interp/v1\",\n");
        s.push_str(&format!("  \"quick\": {},\n", self.quick));
        s.push_str("  \"unit\": \"simulated instructions per host second\",\n");
        s.push_str("  \"workloads\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"id\": \"{}\", \"instructions\": {}, \"cached_ips\": {:.1}, \
                 \"uncached_ips\": {:.1}, \"speedup\": {:.3}}}{}\n",
                r.id,
                r.instructions,
                r.cached_ips,
                r.uncached_ips,
                r.speedup(),
                if i + 1 == self.rows.len() { "" } else { "," }
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            "  \"geomean_speedup\": {:.3}\n",
            self.geomean_speedup()
        ));
        s.push_str("}\n");
        s
    }

    /// Renders the report as a text table for the CLI.
    pub fn render(&self) -> String {
        let mut t = Table::new(&[
            "benchmark",
            "instructions",
            "cached (insns/s)",
            "uncached (insns/s)",
            "speedup",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.id.to_string(),
                r.instructions.to_string(),
                format!("{:.2e}", r.cached_ips),
                format!("{:.2e}", r.uncached_ips),
                format!("{:.2}x", r.speedup()),
            ]);
        }
        format!(
            "Interpreter benchmark — predecoded instruction cache on vs. off\n\
             ({} arguments; best-of-N host timing, simulated behaviour is\n\
             bit-identical in both modes)\n\n{t}\n\
             geomean speedup: {:.2}x\n",
            if self.quick { "small" } else { "paper-scale" },
            self.geomean_speedup()
        )
    }
}

/// One measured execution: the cpu is built and loaded outside the timed
/// region, so the reading is the interpreter loop itself, not setup. The
/// cached mode runs the batched `run_to_halt` fast path; the uncached
/// mode steps one instruction at a time — the canonical baseline the
/// fast path exists to beat.
fn timed_run(prog: &Program, args: &[i32], predecode: bool) -> (u64, i32, Duration) {
    let cfg = SimConfig {
        predecode,
        ..SimConfig::default()
    };
    let mut cpu = Cpu::new(cfg);
    cpu.load_program(prog).expect("program fits memory");
    cpu.set_args(args);
    for (i, &a) in args.iter().enumerate() {
        let _ = cpu
            .mem
            .load_image(ARGV_BASE + 4 * i as u32, &(a as u32).to_le_bytes());
    }
    let t = Instant::now();
    if predecode {
        cpu.run().expect("suite runs clean");
    } else {
        while cpu.step().expect("suite runs clean") == Halt::Running {}
    }
    let dt = t.elapsed();
    (cpu.stats().instructions, cpu.result(), dt)
}

/// Reps per same-mode block (see [`best_pair`]).
const BLOCK: u32 = 3;

/// Best-of-N timing for one program, both modes at once: after a warmup,
/// repeat alternating *blocks* of cached and uncached reps until `budget`
/// host time is spent (always at least two block pairs), keeping each
/// mode's fastest rep. The block structure matters twice over on a shared
/// host: alternating the modes exposes both to the same frequency/quota
/// drift instead of letting it bias the ratio, while running each mode a
/// few reps at a stretch lets the host's branch predictors reach steady
/// state — the two interpreter paths evict each other's state, and for
/// short workloads that retraining is a visible fraction of a rep, which
/// best-of keeps out of the reading by discarding each block's cold lap.
/// Asserts the modes agree on simulated behaviour; returns
/// `(instructions, cached ips, uncached ips)`.
fn best_pair(id: &str, prog: &Program, args: &[i32], budget: Duration) -> (u64, f64, f64) {
    let (mut best_c, mut best_u) = (Duration::MAX, Duration::MAX);
    let mut spent = Duration::ZERO;
    let (mut cached, mut uncached) = ((0u64, 0i32), (0u64, 0i32));
    let mut blocks = 0u32;
    while blocks < 2 || (spent < budget && blocks < 200) {
        for _ in 0..BLOCK {
            let (n, r, dt) = timed_run(prog, args, true);
            cached = (n, r);
            best_c = best_c.min(dt);
            spent += dt;
        }
        for _ in 0..BLOCK {
            let (n, r, dt) = timed_run(prog, args, false);
            uncached = (n, r);
            best_u = best_u.min(dt);
            spent += dt;
        }
        assert_eq!(
            cached, uncached,
            "{id}: cached and uncached runs must agree on simulated behaviour"
        );
        blocks += 1;
    }
    let ips = |d: Duration| cached.0 as f64 / d.as_secs_f64().max(1e-9);
    (cached.0, ips(best_c), ips(best_u))
}

/// Benchmarks the full suite. `quick` uses each workload's small
/// arguments and a short per-mode budget (the CI smoke configuration);
/// the full run uses paper-scale arguments and a longer budget.
pub fn run_suite(quick: bool) -> BenchReport {
    let budget = if quick {
        Duration::from_millis(20)
    } else {
        Duration::from_millis(300)
    };
    let rows = all()
        .iter()
        .map(|w| {
            let prog = compile_risc(&w.module, RiscOpts::default()).expect("suite compiles");
            let args = if quick { &w.small_args } else { &w.args };
            let (instructions, cached_ips, uncached_ips) = best_pair(w.id, &prog, args, budget);
            BenchRow {
                id: w.id,
                instructions,
                cached_ips,
                uncached_ips,
            }
        })
        .collect();
    BenchReport { quick, rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_times_every_workload_and_emits_valid_rows() {
        let rep = run_suite(true);
        assert_eq!(rep.rows.len(), 11, "the paper's full benchmark count");
        for r in &rep.rows {
            assert!(r.instructions > 0, "{}", r.id);
            assert!(r.cached_ips > 0.0 && r.uncached_ips > 0.0, "{}", r.id);
        }
        // Host timing is noisy in debug tests, so only sanity-bound the
        // aggregate here; the real ≥-gate runs in release via the CLI.
        assert!(rep.geomean_speedup() > 0.0);
    }

    #[test]
    fn json_document_carries_the_schema_and_every_workload() {
        let rep = BenchReport {
            quick: true,
            rows: vec![
                BenchRow {
                    id: "fib",
                    instructions: 1000,
                    cached_ips: 4.0e7,
                    uncached_ips: 1.0e7,
                },
                BenchRow {
                    id: "qsort",
                    instructions: 2000,
                    cached_ips: 3.0e7,
                    uncached_ips: 1.5e7,
                },
            ],
        };
        let json = rep.to_json();
        assert!(json.contains("\"schema\": \"risc1-bench-interp/v1\""));
        assert!(json.contains("\"id\": \"fib\""));
        assert!(json.contains("\"speedup\": 4.000"));
        assert!(json.contains("\"geomean_speedup\": 2.828"));
        // Balanced braces/brackets — the document parses as JSON.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn geomean_of_an_empty_report_is_neutral() {
        let rep = BenchReport {
            quick: true,
            rows: vec![],
        };
        assert_eq!(rep.geomean_speedup(), 1.0);
    }
}
