//! Offline interpreter benchmark — the execution engines' receipt.
//!
//! PR 4 added a predecoded instruction cache to the simulator core
//! (DESIGN.md §11), PR 5 layered a superblock engine over it
//! (DESIGN.md §12): straight-line blocks formed over the cached lines,
//! chained block-to-block so hot loops re-enter without a map lookup,
//! with macro-op fusion collapsing adjacent pair idioms into one
//! handler, and PR 9 added the trace tier (DESIGN.md §16): hot chained
//! superblocks compiled to register-allocated trace IR with statistics
//! sunk to trace exit. This module measures what each tier buys,
//! *host-side*, against the interpreter's canonical baseline:
//!
//! - **trace**: `engine: trace` — hot-path execution from compiled
//!   traces, falling back to the superblock engine everywhere else;
//! - **superblock**: `engine: superblock` (the default) driven through
//!   the batched `run_to_halt` fast path — blocks, chaining, fusion;
//! - **cached**: `engine: cached` through the same batched path — the
//!   PR 4 line cache without block formation;
//! - **uncached**: `engine: uncached` driven through the one-at-a-time
//!   `step()` loop — fetch, decode, prepare, and every boundary check
//!   paid per instruction, exactly the pre-cache execution model.
//!
//! No external benchmarking crate is involved — plain
//! `std::time::Instant`, best-of-N — so the numbers regenerate in the
//! offline CI image. The machine-readable output, `BENCH_interp.json`
//! (schema `risc1-bench-interp/v4`), is the repo's canonical perf gate:
//! CI runs `risc1 bench --quick` and fails unless *every* tier's ratio
//! beats 1.0 in aggregate — cached over uncached, superblock over
//! cached, and trace over cached. Since PR 10 the report also carries
//! checkpoint-parallel (sharded) rows on scaled workloads; their
//! sharded-over-sequential speedup is gated above 1.0 only when the host
//! has ≥ 2 effective workers (on one core the planning pass is pure
//! overhead). An optional `--baseline <file>` comparison additionally
//! fails the gate if any aggregate regressed more than 10% against a
//! stored report.
//!
//! The four engines are *bit-identical* in simulated behaviour (same
//! result, stats, memory image — `tests/interp_equivalence.rs` is the
//! proof); only host wall time may differ. The harness asserts the
//! result/stats agreement outright on every run.

use risc1_core::{Cpu, ExecEngine, ExecStats, FuseKind, Halt, Program, SimConfig};
use risc1_ir::layout::ARGV_BASE;
use risc1_ir::{compile_risc, default_threads, run_sharded_with, RiscOpts};
use risc1_stats::Table;
use risc1_workloads::{all, by_id_scaled};
use std::time::{Duration, Instant};

/// One workload's four-engine timing.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRow {
    /// Workload id.
    pub id: &'static str,
    /// Simulated instructions one run retires (identical in all modes).
    pub instructions: u64,
    /// Simulated instructions per host second, trace engine.
    pub trace_ips: f64,
    /// Fraction of the trace run's retired instructions executed from
    /// compiled trace IR (0.0 when nothing promoted).
    pub trace_coverage: f64,
    /// Simulated instructions per host second, superblock engine.
    pub superblock_ips: f64,
    /// Simulated instructions per host second, plain decode cache.
    pub cached_ips: f64,
    /// Simulated instructions per host second, no caching at all.
    pub uncached_ips: f64,
    /// Fused pairs the superblock run retired, by kind
    /// (`FuseKind::ALL` order).
    pub fused: [u64; FuseKind::COUNT],
    /// Mean formed-block length (instructions per entered block) in the
    /// superblock run.
    pub mean_block_len: f64,
}

impl BenchRow {
    /// Host-time speedup of the cached engine over the uncached one.
    pub fn cached_speedup(&self) -> f64 {
        self.cached_ips / self.uncached_ips.max(1e-9)
    }

    /// Host-time speedup of the superblock engine over the cached one —
    /// the tier PR 5 adds, measured against the tier it builds on.
    pub fn superblock_speedup(&self) -> f64 {
        self.superblock_ips / self.cached_ips.max(1e-9)
    }

    /// Host-time speedup of the trace engine over the cached one — the
    /// tier PR 9 adds, measured against the same reference the superblock
    /// ratio uses so the two tiers are directly comparable.
    pub fn trace_speedup(&self) -> f64 {
        self.trace_ips / self.cached_ips.max(1e-9)
    }

    /// Fraction of retired instructions covered by fused pairs.
    pub fn fused_fraction(&self) -> f64 {
        let pairs: u64 = self.fused.iter().sum();
        (2 * pairs) as f64 / (self.instructions.max(1)) as f64
    }
}

/// One scaled workload timed sequentially and checkpoint-parallel
/// (sharded) under the uncached engine — the schema-v4 receipt for
/// PR 10's shard runner. The sharded run is stitch-proven bit-identical
/// to the sequential one by construction; only host time may differ.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedRow {
    /// Workload id with its scale, e.g. `sieve@x25`.
    pub id: String,
    /// Simulated instructions one run retires (identical in both modes).
    pub instructions: u64,
    /// Simulated instructions per host second, plain sequential run.
    pub seq_ips: f64,
    /// Simulated instructions per host second, sharded run (planning
    /// pass + parallel shard phase + stitch).
    pub sharded_ips: f64,
    /// Worker threads the shard phase used.
    pub threads: usize,
}

impl ShardedRow {
    /// Host-time speedup of the sharded run over the sequential one.
    /// Below 1.0 on a single-worker host (the planning pass is pure
    /// overhead there); the CI gate only checks it with ≥ 2 workers.
    pub fn shard_speedup(&self) -> f64 {
        self.sharded_ips / self.seq_ips.max(1e-9)
    }
}

/// The whole suite's timings plus the run mode that produced them.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Whether the run used small arguments and a short timing budget.
    pub quick: bool,
    /// One row per suite workload, in suite order.
    pub rows: Vec<BenchRow>,
    /// Scaled checkpoint-parallel rows (see [`ShardedRow`]).
    pub sharded: Vec<ShardedRow>,
}

fn geomean(vals: impl Iterator<Item = f64>) -> f64 {
    let (mut ln_sum, mut n) = (0.0f64, 0usize);
    for v in vals {
        ln_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        return 1.0;
    }
    (ln_sum / n as f64).exp()
}

impl BenchReport {
    /// Geometric mean of the per-workload cached-over-uncached speedups.
    pub fn geomean_cached_speedup(&self) -> f64 {
        geomean(self.rows.iter().map(BenchRow::cached_speedup))
    }

    /// Geometric mean of the per-workload superblock-over-cached
    /// speedups — the aggregate the CI gate checks against 1.0.
    pub fn geomean_superblock_speedup(&self) -> f64 {
        geomean(self.rows.iter().map(BenchRow::superblock_speedup))
    }

    /// Geometric mean of the per-workload trace-over-cached speedups.
    pub fn geomean_trace_speedup(&self) -> f64 {
        geomean(self.rows.iter().map(BenchRow::trace_speedup))
    }

    /// Geometric mean of the sharded-over-sequential speedups across the
    /// scaled rows (1.0 when none were measured).
    pub fn geomean_shard_speedup(&self) -> f64 {
        geomean(self.sharded.iter().map(ShardedRow::shard_speedup))
    }

    /// Worker threads the sharded rows ran on (0 when none were
    /// measured). The CLI perf gate only enforces `shard_speedup > 1.0`
    /// when this is ≥ 2 — on a single-worker host the planning pass is
    /// pure overhead and the law under test is transparency, not speed.
    pub fn shard_workers(&self) -> usize {
        self.sharded.iter().map(|r| r.threads).max().unwrap_or(0)
    }

    /// Renders the report as the `BENCH_interp.json` document. The
    /// writer is hand-rolled (no serde in the offline image); the schema
    /// is documented in README.md §Benchmarks.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"schema\": \"risc1-bench-interp/v4\",\n");
        s.push_str(&format!("  \"quick\": {},\n", self.quick));
        s.push_str("  \"unit\": \"simulated instructions per host second\",\n");
        s.push_str("  \"workloads\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            let fused: Vec<String> = FuseKind::ALL
                .iter()
                .map(|k| format!("\"{}\": {}", k.name(), r.fused[k.index()]))
                .collect();
            s.push_str(&format!(
                "    {{\"id\": \"{}\", \"instructions\": {}, \
                 \"trace_ips\": {:.1}, \"superblock_ips\": {:.1}, \
                 \"cached_ips\": {:.1}, \"uncached_ips\": {:.1}, \
                 \"cached_speedup\": {:.3}, \"superblock_speedup\": {:.3}, \
                 \"trace_speedup\": {:.3}, \"trace_coverage\": {:.3}, \
                 \"mean_block_len\": {:.2}, \"fused\": {{{}}}}}{}\n",
                r.id,
                r.instructions,
                r.trace_ips,
                r.superblock_ips,
                r.cached_ips,
                r.uncached_ips,
                r.cached_speedup(),
                r.superblock_speedup(),
                r.trace_speedup(),
                r.trace_coverage,
                r.mean_block_len,
                fused.join(", "),
                if i + 1 == self.rows.len() { "" } else { "," }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"sharded\": [\n");
        for (i, r) in self.sharded.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"id\": \"{}\", \"instructions\": {}, \
                 \"seq_ips\": {:.1}, \"sharded_ips\": {:.1}, \
                 \"shard_speedup\": {:.3}, \"threads\": {}}}{}\n",
                r.id,
                r.instructions,
                r.seq_ips,
                r.sharded_ips,
                r.shard_speedup(),
                r.threads,
                if i + 1 == self.sharded.len() { "" } else { "," }
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!("  \"shard_workers\": {},\n", self.shard_workers()));
        s.push_str(&format!(
            "  \"geomean_shard_speedup\": {:.3},\n",
            self.geomean_shard_speedup()
        ));
        s.push_str(&format!(
            "  \"geomean_cached_speedup\": {:.3},\n",
            self.geomean_cached_speedup()
        ));
        s.push_str(&format!(
            "  \"geomean_superblock_speedup\": {:.3},\n",
            self.geomean_superblock_speedup()
        ));
        s.push_str(&format!(
            "  \"geomean_trace_speedup\": {:.3}\n",
            self.geomean_trace_speedup()
        ));
        s.push_str("}\n");
        s
    }

    /// Renders the report as a text table for the CLI.
    pub fn render(&self) -> String {
        let mut t = Table::new(&[
            "benchmark",
            "instructions",
            "trace (insns/s)",
            "superblock (insns/s)",
            "cached (insns/s)",
            "uncached (insns/s)",
            "trace/cached",
            "sb/cached",
            "cached/unc",
            "trace cov",
            "fused",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.id.to_string(),
                r.instructions.to_string(),
                format!("{:.2e}", r.trace_ips),
                format!("{:.2e}", r.superblock_ips),
                format!("{:.2e}", r.cached_ips),
                format!("{:.2e}", r.uncached_ips),
                format!("{:.2}x", r.trace_speedup()),
                format!("{:.2}x", r.superblock_speedup()),
                format!("{:.2}x", r.cached_speedup()),
                format!("{:.0}%", 100.0 * r.trace_coverage),
                format!("{:.0}%", 100.0 * r.fused_fraction()),
            ]);
        }
        let mut out = format!(
            "Interpreter benchmark — trace vs. superblock vs. cached vs. uncached\n\
             ({} arguments; best-of-N host timing, simulated behaviour is\n\
             bit-identical across all engines)\n\n{t}\n\
             geomean trace/cached: {:.2}x   geomean superblock/cached: {:.2}x   \
             geomean cached/uncached: {:.2}x\n",
            if self.quick { "small" } else { "paper-scale" },
            self.geomean_trace_speedup(),
            self.geomean_superblock_speedup(),
            self.geomean_cached_speedup()
        );
        if !self.sharded.is_empty() {
            let mut st = Table::new(&[
                "scaled benchmark",
                "instructions",
                "seq (insns/s)",
                "sharded (insns/s)",
                "speedup",
                "threads",
            ]);
            for r in &self.sharded {
                st.row(vec![
                    r.id.clone(),
                    r.instructions.to_string(),
                    format!("{:.2e}", r.seq_ips),
                    format!("{:.2e}", r.sharded_ips),
                    format!("{:.2}x", r.shard_speedup()),
                    r.threads.to_string(),
                ]);
            }
            out.push_str(&format!(
                "\nCheckpoint-parallel (sharded) rows — uncached engine, stitch-proven\n\
                 bit-identical to sequential execution:\n\n{st}\n"
            ));
        }
        out
    }
}

/// Pulls `"key": <number>` out of a report document this module wrote
/// earlier. Good enough for our own hand-rolled JSON; not a general
/// parser.
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Compares this run's aggregates against a previously stored
/// `BENCH_interp.json`. Errors (failing the gate) if either geomean
/// dropped more than 10% below the baseline; otherwise returns a
/// one-line summary of the comparison.
pub fn check_against_baseline(report: &BenchReport, baseline_json: &str) -> Result<String, String> {
    let checks = [
        ("geomean_cached_speedup", report.geomean_cached_speedup()),
        (
            "geomean_superblock_speedup",
            report.geomean_superblock_speedup(),
        ),
        ("geomean_trace_speedup", report.geomean_trace_speedup()),
    ];
    let mut parts = Vec::new();
    for (key, now) in checks {
        let base = json_number(baseline_json, key)
            .ok_or_else(|| format!("baseline file has no numeric \"{key}\""))?;
        if now < base * 0.9 {
            return Err(format!(
                "perf regression: {key} {now:.3} is more than 10% below baseline {base:.3}"
            ));
        }
        parts.push(format!("{key} {now:.3} vs baseline {base:.3}"));
    }
    // Shard speedup is only comparable when both runs actually had
    // parallel workers; v3 baselines have no shard fields at all.
    let base_workers = json_number(baseline_json, "shard_workers").unwrap_or(0.0);
    if report.shard_workers() >= 2 && base_workers >= 2.0 {
        let key = "geomean_shard_speedup";
        let now = report.geomean_shard_speedup();
        let base = json_number(baseline_json, key)
            .ok_or_else(|| format!("baseline file has no numeric \"{key}\""))?;
        if now < base * 0.9 {
            return Err(format!(
                "perf regression: {key} {now:.3} is more than 10% below baseline {base:.3}"
            ));
        }
        parts.push(format!("{key} {now:.3} vs baseline {base:.3}"));
    }
    Ok(format!("baseline check ok: {}", parts.join(", ")))
}

/// One measured execution: the cpu is built and loaded outside the timed
/// region, so the reading is the interpreter loop itself, not setup. The
/// cached and superblock engines run the batched `run_to_halt` fast
/// path; the uncached engine steps one instruction at a time — the
/// canonical baseline both fast tiers exist to beat.
fn timed_run(prog: &Program, args: &[i32], engine: ExecEngine) -> (ExecStats, i32, Duration) {
    let cfg = SimConfig {
        engine,
        ..SimConfig::default()
    };
    let mut cpu = Cpu::new(cfg);
    cpu.load_program(prog).expect("program fits memory");
    cpu.set_args(args);
    for (i, &a) in args.iter().enumerate() {
        let _ = cpu
            .mem
            .load_image(ARGV_BASE + 4 * i as u32, &(a as u32).to_le_bytes());
    }
    let t = Instant::now();
    if engine == ExecEngine::Uncached {
        while cpu.step().expect("suite runs clean") == Halt::Running {}
    } else {
        cpu.run().expect("suite runs clean");
    }
    let dt = t.elapsed();
    (cpu.stats(), cpu.result(), dt)
}

/// Reps per same-engine block (see [`best_quad`]).
const BLOCK: u32 = 3;

/// Best-of-N timing for one program, all four engines at once: after a
/// warmup, repeat alternating *blocks* of trace, superblock, cached, and
/// uncached reps until `budget` host time is spent (always at least two
/// block rounds), keeping each engine's fastest rep. The block structure
/// matters twice over on a shared host: alternating the engines exposes
/// all of them to the same frequency/quota drift instead of letting it
/// bias the ratios, while running each engine a few reps at a stretch
/// lets the host's branch predictors reach steady state — the
/// interpreter paths evict each other's state, and for short workloads
/// that retraining is a visible fraction of a rep, which best-of keeps
/// out of the reading by discarding each block's cold lap. Asserts the
/// engines agree on simulated behaviour; returns the finished
/// [`BenchRow`].
fn best_quad(id: &'static str, prog: &Program, args: &[i32], budget: Duration) -> BenchRow {
    let mut best = [Duration::MAX; 4];
    let mut spent = Duration::ZERO;
    let mut rounds = 0u32;
    let engines = [
        ExecEngine::Trace,
        ExecEngine::Superblock,
        ExecEngine::Cached,
        ExecEngine::Uncached,
    ];
    let mut last: [Option<(ExecStats, i32)>; 4] = [None, None, None, None];
    while rounds < 2 || (spent < budget && rounds < 200) {
        for (slot, &engine) in engines.iter().enumerate() {
            for _ in 0..BLOCK {
                let (stats, result, dt) = timed_run(prog, args, engine);
                last[slot] = Some((stats, result));
                best[slot] = best[slot].min(dt);
                spent += dt;
            }
        }
        let trc = last[0].as_ref().unwrap();
        for other in &last[1..] {
            // ExecStats equality is architectural (host-side telemetry
            // like fused-pair and trace counts is excluded by design), so
            // this is exactly the cross-engine law.
            assert_eq!(
                Some(trc),
                other.as_ref(),
                "{id}: engines must agree on simulated behaviour"
            );
        }
        rounds += 1;
    }
    let (trace_stats, _) = last[0].clone().unwrap();
    let (sb_stats, _) = last[1].clone().unwrap();
    let instructions = sb_stats.instructions;
    let ips = |d: Duration| instructions as f64 / d.as_secs_f64().max(1e-9);
    BenchRow {
        id,
        instructions,
        trace_ips: ips(best[0]),
        trace_coverage: trace_stats.trace_coverage(),
        superblock_ips: ips(best[1]),
        cached_ips: ips(best[2]),
        uncached_ips: ips(best[3]),
        fused: std::array::from_fn(|i| sb_stats.fused(FuseKind::ALL[i])),
        mean_block_len: sb_stats.mean_block_len().unwrap_or(0.0),
    }
}

/// Benchmarks the full suite. `quick` uses each workload's small
/// arguments and a short per-workload budget (the CI smoke
/// configuration); the full run uses paper-scale arguments and a longer
/// budget.
pub fn run_suite(quick: bool) -> BenchReport {
    let budget = if quick {
        Duration::from_millis(30)
    } else {
        Duration::from_millis(450)
    };
    let rows = all()
        .iter()
        .map(|w| {
            let prog = compile_risc(&w.module, RiscOpts::default()).expect("suite compiles");
            let args = if quick { &w.small_args } else { &w.args };
            best_quad(w.id, &prog, args, budget)
        })
        .collect();
    let scale = if quick { 5 } else { 25 };
    let sharded = ["sieve", "qsort"]
        .iter()
        .map(|id| sharded_row(id, scale))
        .collect();
    BenchReport {
        quick,
        rows,
        sharded,
    }
}

/// Times one scaled workload sequentially and sharded (uncached engine,
/// ~8 shards, host-default workers). The shard runner's stitch proof
/// already guarantees bit-identity; this only prices the host time.
fn sharded_row(id: &str, scale: u32) -> ShardedRow {
    let w = by_id_scaled(id, scale).expect("sharded bench workloads exist");
    let prog = compile_risc(&w.module, RiscOpts::default()).expect("suite compiles");
    let cfg = SimConfig {
        engine: ExecEngine::Uncached,
        fuel: 2_000_000_000,
        ..SimConfig::default()
    };
    let mut cpu = Cpu::new(cfg.clone());
    cpu.load_program(&prog).expect("program fits memory");
    cpu.set_args(&w.args);
    for (i, &a) in w.args.iter().enumerate() {
        let _ = cpu
            .mem
            .load_image(ARGV_BASE + 4 * i as u32, &(a as u32).to_le_bytes());
    }
    let t = Instant::now();
    while cpu.step().expect("suite runs clean") == Halt::Running {}
    let seq_wall = t.elapsed();
    let instructions = cpu.stats().instructions;

    let threads = default_threads();
    let rep = run_sharded_with(&prog, &w.args, cfg, (instructions / 8).max(1_000), threads)
        .expect("sharded run arranges and stitches");
    let wall = rep.plan_wall + rep.exec_wall;
    let ips = |d: Duration| instructions as f64 / d.as_secs_f64().max(1e-9);
    ShardedRow {
        id: format!("{id}@x{scale}"),
        instructions,
        seq_ips: ips(seq_wall),
        sharded_ips: ips(wall),
        threads: rep.threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn srow(id: &str, seq: f64, shd: f64, threads: usize) -> ShardedRow {
        ShardedRow {
            id: id.to_string(),
            instructions: 1_000_000,
            seq_ips: seq,
            sharded_ips: shd,
            threads,
        }
    }

    fn row(id: &'static str, t: f64, sb: f64, c: f64, u: f64) -> BenchRow {
        BenchRow {
            id,
            instructions: 1000,
            trace_ips: t,
            trace_coverage: 0.8,
            superblock_ips: sb,
            cached_ips: c,
            uncached_ips: u,
            fused: [10, 2, 3, 5, 4],
            mean_block_len: 6.5,
        }
    }

    #[test]
    fn quick_suite_times_every_workload_and_emits_valid_rows() {
        let rep = run_suite(true);
        assert_eq!(rep.rows.len(), 11, "the paper's full benchmark count");
        for r in &rep.rows {
            assert!(r.instructions > 0, "{}", r.id);
            assert!(
                r.trace_ips > 0.0
                    && r.superblock_ips > 0.0
                    && r.cached_ips > 0.0
                    && r.uncached_ips > 0.0,
                "{}",
                r.id
            );
            assert!(r.mean_block_len > 1.0, "{}: superblocks never formed", r.id);
            assert!(
                (0.0..=1.0).contains(&r.trace_coverage),
                "{}: coverage is a fraction",
                r.id
            );
        }
        // Host timing is noisy in debug tests, so only sanity-bound the
        // aggregates here; the real ≥-gate runs in release via the CLI.
        assert!(rep.geomean_cached_speedup() > 0.0);
        assert!(rep.geomean_superblock_speedup() > 0.0);
        assert!(rep.geomean_trace_speedup() > 0.0);
        // The trace tier must engage somewhere in the suite.
        assert!(
            rep.rows.iter().any(|r| r.trace_coverage > 0.0),
            "no workload ever ran from trace IR"
        );
        // The v4 sharded rows: both scaled workloads measured, on real
        // instruction counts well past their paper-scale runs.
        assert_eq!(rep.sharded.len(), 2);
        for r in &rep.sharded {
            assert!(r.id.ends_with("@x5"), "{}", r.id);
            assert!(r.instructions > 100_000, "{}", r.id);
            assert!(r.seq_ips > 0.0 && r.sharded_ips > 0.0, "{}", r.id);
            assert!(r.threads >= 1, "{}", r.id);
        }
    }

    #[test]
    fn json_document_carries_the_schema_and_every_workload() {
        let rep = BenchReport {
            quick: true,
            rows: vec![
                row("fib", 1.6e8, 8.0e7, 4.0e7, 1.0e7),
                row("qsort", 9.0e7, 4.5e7, 3.0e7, 1.5e7),
            ],
            sharded: vec![srow("sieve@x25", 1.0e7, 2.0e7, 4)],
        };
        let json = rep.to_json();
        assert!(json.contains("\"schema\": \"risc1-bench-interp/v4\""));
        assert!(json.contains("\"id\": \"sieve@x25\""));
        assert!(json.contains("\"shard_speedup\": 2.000"));
        assert!(json.contains("\"shard_workers\": 4"));
        assert!(json.contains("\"geomean_shard_speedup\": 2.000"));
        assert!(json.contains("\"id\": \"fib\""));
        assert!(json.contains("\"cached_speedup\": 4.000"));
        assert!(json.contains("\"superblock_speedup\": 2.000"));
        assert!(json.contains("\"trace_speedup\": 4.000"));
        assert!(json.contains("\"trace_coverage\": 0.800"));
        assert!(json.contains("\"fused\": {\"cmp_branch\": 10, \"ldhi_imm\": 2"));
        assert!(json.contains("\"geomean_cached_speedup\": 2.828"));
        assert!(json.contains("\"geomean_superblock_speedup\": 1.732"));
        assert!(json.contains("\"geomean_trace_speedup\": 3.464"));
        // Balanced braces/brackets — the document parses as JSON.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn geomean_of_an_empty_report_is_neutral() {
        let rep = BenchReport {
            quick: true,
            rows: vec![],
            sharded: vec![],
        };
        assert_eq!(rep.geomean_cached_speedup(), 1.0);
        assert_eq!(rep.geomean_superblock_speedup(), 1.0);
        assert_eq!(rep.geomean_trace_speedup(), 1.0);
        assert_eq!(rep.geomean_shard_speedup(), 1.0);
        assert_eq!(rep.shard_workers(), 0);
    }

    #[test]
    fn baseline_comparison_accepts_parity_and_rejects_regressions() {
        let now = BenchReport {
            quick: true,
            rows: vec![row("fib", 1.6e8, 8.0e7, 4.0e7, 1.0e7)],
            sharded: vec![srow("sieve@x25", 1.0e7, 2.0e7, 4)],
        };
        // cached 4.0x, superblock 2.0x, trace 4.0x.
        let same = now.to_json();
        assert!(check_against_baseline(&now, &same).is_ok());
        // Modest improvement over the stored numbers also passes.
        let older = same
            .replace(
                "\"geomean_cached_speedup\": 4.000",
                "\"geomean_cached_speedup\": 3.8",
            )
            .replace(
                "\"geomean_superblock_speedup\": 2.000",
                "\"geomean_superblock_speedup\": 1.9",
            );
        assert!(check_against_baseline(&now, &older).is_ok());
        // More than 10% below either stored aggregate fails the gate.
        let faster = same.replace(
            "\"geomean_superblock_speedup\": 2.000",
            "\"geomean_superblock_speedup\": 2.5",
        );
        let err = check_against_baseline(&now, &faster).unwrap_err();
        assert!(err.contains("regression"), "{err}");
        // A file without the keys is an error, not a silent pass.
        assert!(check_against_baseline(&now, "{}").is_err());

        // Shard regression: both runs parallel, current 10%+ below.
        let shard_base = same.replace(
            "\"geomean_shard_speedup\": 2.000",
            "\"geomean_shard_speedup\": 3.0",
        );
        let err = check_against_baseline(&now, &shard_base).unwrap_err();
        assert!(err.contains("geomean_shard_speedup"), "{err}");
        // A v3 baseline (no shard fields) still passes the other gates.
        let v3 = same
            .replace("\"shard_workers\": 4,\n", "")
            .replace("risc1-bench-interp/v4", "risc1-bench-interp/v3");
        assert!(check_against_baseline(&now, &v3).is_ok());
        // A single-worker run never gates on shard speed.
        let solo = BenchReport {
            sharded: vec![srow("sieve@x25", 1.0e7, 0.8e7, 1)],
            ..now.clone()
        };
        assert!(check_against_baseline(&solo, &shard_base).is_ok());
    }
}
