//! Ablation studies over the simulator's design parameters — the
//! sensitivity analyses behind the design choices DESIGN.md calls out.
//!
//! * **Trap overhead** — how expensive may the window-overflow trap
//!   sequence be before deep recursion erases RISC I's advantage? The
//!   paper's argument assumes a cheap (software, no-microcode) trap.
//! * **Forwarding** — what the internal-forwarding transistors buy across
//!   the whole suite (E11 shows the mechanism on one kernel; this sweeps
//!   every workload).
//! * **Window-trap share** — where each workload's cycles go as the file
//!   shrinks, separating "window thrashing" from "real work".

use risc1_core::SimConfig;
use risc1_ir::RiscOpts;
use risc1_stats::{measure_risc, table::percent, Table};
use risc1_workloads::by_id;

/// Trap-overhead values swept (cycles of fixed entry/exit cost per trap).
pub const TRAP_OVERHEADS: &[u64] = &[0, 4, 8, 16, 32, 64];

/// Total acker cycles at each trap overhead (8-window file).
pub fn trap_overhead_sweep() -> Vec<(u64, u64)> {
    let w = by_id("acker").expect("suite workload");
    TRAP_OVERHEADS
        .iter()
        .map(|&t| {
            let cfg = SimConfig {
                trap_overhead_cycles: t,
                ..SimConfig::default()
            };
            let s = measure_risc(&w, &w.small_args, cfg, RiscOpts::default());
            (t, s.cycles)
        })
        .collect()
}

/// (workload, cycles with forwarding, cycles without) over the suite.
pub fn forwarding_sweep() -> Vec<(&'static str, u64, u64)> {
    risc1_workloads::all()
        .iter()
        .map(|w| {
            let on = measure_risc(w, &w.small_args, SimConfig::default(), RiscOpts::default());
            let off_cfg = SimConfig {
                forwarding: false,
                ..SimConfig::default()
            };
            let off = measure_risc(w, &w.small_args, off_cfg, RiscOpts::default());
            (w.id, on.cycles, off.cycles)
        })
        .collect()
}

/// Renders both ablation tables.
pub fn run() -> String {
    let mut t1 = Table::new(&["trap overhead (cycles)", "acker cycles", "vs overhead 8"]);
    let sweep = trap_overhead_sweep();
    let base = sweep
        .iter()
        .find(|(t, _)| *t == 8)
        .map(|(_, c)| *c)
        .unwrap_or(1);
    for (t, c) in &sweep {
        t1.row(vec![
            t.to_string(),
            c.to_string(),
            format!("{:+.1}%", (*c as f64 / base as f64 - 1.0) * 100.0),
        ]);
    }

    let mut t2 = Table::new(&["benchmark", "forwarding", "no forwarding", "penalty"]);
    for (id, on, off) in forwarding_sweep() {
        t2.row(vec![
            id.to_string(),
            on.to_string(),
            off.to_string(),
            percent(off as f64 / on as f64 - 1.0),
        ]);
    }
    format!(
        "Ablation A — window-trap overhead sensitivity (acker, 8 windows)\n\n{t1}\n\
         The default of 8 cycles models a hardwired trap sequence; even at\n\
         64 cycles per trap the design survives, but the margin shrinks —\n\
         the paper's case for keeping the spill path simple.\n\n\
         Ablation B — internal forwarding across the suite\n\n{t2}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_increase_monotonically_with_trap_cost() {
        let sweep = trap_overhead_sweep();
        for pair in sweep.windows(2) {
            assert!(pair[1].1 > pair[0].1, "{pair:?}");
        }
    }

    #[test]
    fn forwarding_always_helps_or_is_neutral() {
        for (id, on, off) in forwarding_sweep() {
            assert!(off >= on, "{id}: forwarding must never cost cycles");
        }
    }

    #[test]
    fn report_renders_both_tables() {
        let s = run();
        assert!(s.contains("Ablation A") && s.contains("Ablation B"));
    }
}
