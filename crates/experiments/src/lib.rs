//! # `risc1-experiments` — regenerators for every table and figure in the
//! paper's evaluation
//!
//! Each module reproduces one artifact of Patterson & Séquin's evaluation
//! (see DESIGN.md §3 for the experiment index). Every module exposes
//! `compute()` returning structured rows (unit-tested for the paper's
//! qualitative claims — who wins, by roughly what factor, where the
//! crossovers are) and `run()` rendering the table/figure as text.
//!
//! Run any experiment with its binary, e.g.:
//!
//! ```text
//! cargo run -p risc1-experiments --bin e6_exec_time
//! ```

pub mod ablations;
pub mod bench;
pub mod e10_area;
pub mod e11_pipeline_trace;
pub mod e12_instruction_mix;
pub mod e13_fault_recovery;
pub mod e14_checkpoint_overhead;
pub mod e15_fusion_ablation;
pub mod e16_shard_scaling;
pub mod e1_complexity;
pub mod e2_instruction_set;
pub mod e3_formats;
pub mod e4_windows_figure;
pub mod e5_call_cost;
pub mod e6_exec_time;
pub mod e7_code_size;
pub mod e8_window_sweep;
pub mod e9_delay_slots;

/// Runs every experiment in order, concatenating their reports — the
/// "regenerate the whole evaluation" entry point used by EXPERIMENTS.md.
pub fn run_all() -> String {
    [
        e1_complexity::run(),
        e2_instruction_set::run(),
        e3_formats::run(),
        e4_windows_figure::run(),
        e5_call_cost::run(),
        e6_exec_time::run(),
        e7_code_size::run(),
        e8_window_sweep::run(),
        e9_delay_slots::run(),
        e10_area::run(),
        e11_pipeline_trace::run(),
        e12_instruction_mix::run(),
        e13_fault_recovery::run(),
        e14_checkpoint_overhead::run(),
        e15_fusion_ablation::run(),
        e16_shard_scaling::run(),
        ablations::run(),
    ]
    .join("\n\n")
}
