//! E5 — the cost of a procedure call.
//!
//! The paper motivates register windows with the observed cost of
//! call-and-return on contemporary machines (the VAX `CALLS`/`RET` pair
//! burns tens of cycles and many memory references). This experiment
//! measures the *marginal* cost of one call+return on:
//!
//! * RISC I with the standard 8-window file (windows absorb everything),
//! * RISC I with a 2-window file (every call spills — a model of a RISC
//!   *without* enough registers, i.e. the conventional save/restore cost),
//! * CX with its full calling standard.
//!
//! Method: a loop that calls a two-argument leaf procedure `n` times
//! (call depth oscillates by one, the common case in compiled C), measured
//! at two values of `n`; the difference isolates the per-call cost from
//! fixed overhead. A *linear* recursion of unbounded depth would defeat
//! any window file — that pathology is covered separately by E8. The
//! 2-window row models a machine whose registers must be saved/restored on
//! every call (every call overflows a 2-window file).

use risc1_core::SimConfig;
use risc1_ir::ast::dsl::*;
use risc1_ir::{compile_cx, compile_risc, run_cx, run_risc_with, RiscOpts};
use risc1_stats::Table;

/// Marginal cost of one call+return pair.
#[derive(Debug, Clone, PartialEq)]
pub struct CallCost {
    /// Configuration name.
    pub machine: &'static str,
    /// Instructions per call+return.
    pub instructions: f64,
    /// Cycles per call+return.
    pub cycles: f64,
    /// Data-memory references per call+return.
    pub mem_refs: f64,
}

fn call_loop_module() -> risc1_ir::Module {
    // leaf(a, b) = a + b;   main(n): s = 0; for i in 0..n { s = leaf(s, i) }
    let leaf = function("leaf", 2, 2, vec![ret(add(local(0), local(1)))]);
    let main = function(
        "main",
        1,
        3,
        vec![
            assign(1, konst(0)),
            assign(2, konst(0)),
            while_loop(
                lt(local(2), local(0)),
                vec![
                    assign(1, call(1, vec![local(1), local(2)])),
                    assign(2, add(local(2), konst(1))),
                ],
            ),
            ret(local(1)),
        ],
    );
    module(vec![main, leaf], vec![])
}

/// Measures all three configurations.
pub fn compute() -> Vec<CallCost> {
    let m = call_loop_module();
    let (lo, hi) = (400, 1400);
    let span = f64::from(hi - lo);

    let risc_prog = compile_risc(&m, RiscOpts::default()).expect("compiles");
    let risc_cost = |name: &'static str, windows: usize| {
        // A 2-window file spills on every call; give the save stack room
        // for the full chain depth.
        let cfg = SimConfig {
            windows,
            stack_top: 0x40000,
            ..SimConfig::default()
        };
        let (_, s1) = run_risc_with(&risc_prog, &[lo], cfg.clone()).expect("runs");
        let (_, s2) = run_risc_with(&risc_prog, &[hi], cfg).expect("runs");
        CallCost {
            machine: name,
            instructions: (s2.instructions - s1.instructions) as f64 / span,
            cycles: (s2.cycles - s1.cycles) as f64 / span,
            mem_refs: (s2.data_traffic() - s1.data_traffic()) as f64 / span,
        }
    };
    let rows = vec![
        risc_cost("RISC I (8 windows)", 8),
        risc_cost("RISC I (2 windows: spill every call)", 2),
        {
            let cx_prog = compile_cx(&m).expect("compiles");
            let (_, s1) = run_cx(&cx_prog, &[lo]).expect("runs");
            let (_, s2) = run_cx(&cx_prog, &[hi]).expect("runs");
            CallCost {
                machine: "CX (CALLS/RET standard)",
                instructions: (s2.instructions - s1.instructions) as f64 / span,
                cycles: (s2.cycles - s1.cycles) as f64 / span,
                mem_refs: (s2.data_traffic() - s1.data_traffic()) as f64 / span,
            }
        },
    ];
    rows
}

/// Renders the table.
pub fn run() -> String {
    let mut t = Table::new(&["machine", "instr/call", "cycles/call", "mem refs/call"]);
    for c in compute() {
        t.row(vec![
            c.machine.to_string(),
            format!("{:.1}", c.instructions),
            format!("{:.1}", c.cycles),
            format!("{:.1}", c.mem_refs),
        ]);
    }
    format!(
        "E5 — marginal cost of one procedure call + return\n\
         (leaf call in a loop; per-call figures include argument passing,\n\
         result return and the loop bookkeeping around the call)\n\n{t}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_eliminate_call_memory_traffic() {
        let rows = compute();
        let windows = &rows[0];
        let spill = &rows[1];
        let cx = &rows[2];
        assert!(
            windows.mem_refs < 0.5,
            "8-window calls should touch no memory, got {:.2}",
            windows.mem_refs
        );
        assert!(
            spill.mem_refs > 20.0,
            "forced spill/fill moves 2×16 registers, got {:.2}",
            spill.mem_refs
        );
        assert!(
            cx.mem_refs >= 8.0,
            "CALLS+RET frame traffic, got {:.2}",
            cx.mem_refs
        );
    }

    #[test]
    fn windowed_calls_are_cheapest_in_cycles() {
        let rows = compute();
        assert!(rows[0].cycles < rows[2].cycles / 2.0, "{rows:#?}");
        assert!(rows[0].cycles < rows[1].cycles / 2.0, "{rows:#?}");
    }

    #[test]
    fn report_renders() {
        assert!(run().contains("CALLS"));
    }
}
