//! E7 — static code size. The paper concedes fixed 32-bit instructions
//! cost program size against byte-coded CISC machines, but finds the
//! penalty modest (tens of percent, not the 2× critics predicted).

use risc1_ir::{compile_cx, compile_mc, compile_risc, RiscOpts};
use risc1_stats::{table::ratio, Table};
use risc1_workloads::all;

/// (id, RISC bytes, CX bytes, MC bytes) per workload.
pub fn compute() -> Vec<(&'static str, u64, u64, u64)> {
    all()
        .iter()
        .map(|w| {
            let r = compile_risc(&w.module, RiscOpts::default()).expect("risc compiles");
            let c = compile_cx(&w.module).expect("cx compiles");
            let m = compile_mc(&w.module).expect("mc compiles");
            (w.id, r.code_bytes(), c.code_bytes(), m.code_bytes())
        })
        .collect()
}

/// Renders the table.
pub fn run() -> String {
    let rows = compute();
    let mut t = Table::new(&[
        "benchmark",
        "RISC I bytes",
        "CX bytes",
        "MC bytes",
        "RISC/CX",
        "RISC/MC",
    ]);
    let mut product = 1.0;
    let mut product_mc = 1.0;
    for (id, r, c, m) in &rows {
        product *= *r as f64 / *c as f64;
        product_mc *= *r as f64 / *m as f64;
        t.row(vec![
            id.to_string(),
            r.to_string(),
            c.to_string(),
            m.to_string(),
            ratio(*r as f64, *c as f64),
            ratio(*r as f64, *m as f64),
        ]);
    }
    let gm = product.powf(1.0 / rows.len() as f64);
    let gm_mc = product_mc.powf(1.0 / rows.len() as f64);
    format!(
        "E7 — static code size (bytes of instructions)\n\n{t}\n\
         geometric-mean size ratio: RISC I / CX {gm:.2}x, RISC I / MC {gm_mc:.2}x\n\
         (the paper found RISC I programs moderately larger — not the 2x+\n\
         critics of fixed-size instructions predicted)\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn risc_code_is_larger_but_less_than_double() {
        let rows = compute();
        let gm = rows
            .iter()
            .map(|(_, r, c, _)| *r as f64 / *c as f64)
            .product::<f64>()
            .powf(1.0 / rows.len() as f64);
        assert!(gm > 1.0, "RISC I should be larger than CX, gm = {gm:.2}");
        assert!(gm < 2.0, "but not catastrophically so, gm = {gm:.2}");
        let gm_mc = rows
            .iter()
            .map(|(_, r, _, m)| *r as f64 / *m as f64)
            .product::<f64>()
            .powf(1.0 / rows.len() as f64);
        assert!(
            gm_mc > 1.0,
            "RISC I should be larger than MC, gm = {gm_mc:.2}"
        );
        assert!(gm_mc < 2.5, "gm vs MC = {gm_mc:.2}");
    }

    #[test]
    fn every_row_has_nonzero_sizes() {
        for (id, r, c, m) in compute() {
            assert!(r > 0 && c > 0 && m > 0, "{id}");
        }
    }
}
