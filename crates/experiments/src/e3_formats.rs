//! E3 — the instruction-format figure: bit layouts of the two formats,
//! verified live by encoding a witness instruction of each shape and
//! decoding it back.

use risc1_isa::{Cond, Instruction, Opcode, Reg, Short2};

/// Witness instructions, one per operand shape, with their encodings.
pub fn compute() -> Vec<(Instruction, u32)> {
    let samples = vec![
        Instruction::reg_scc(Opcode::Add, Reg::R16, Reg::R26, Short2::imm(40).unwrap()),
        Instruction::reg(Opcode::Ldl, Reg::R5, Reg::R8, Short2::reg(Reg::R17)),
        Instruction::jmp(Cond::Ne, Reg::R25, Short2::imm(8).unwrap()),
        Instruction::jmpr(Cond::Lt, -64),
        Instruction::callr(Reg::R25, 1024),
        Instruction::ldhi(Reg::R4, 0x12345),
    ];
    samples.into_iter().map(|i| (i, i.encode())).collect()
}

fn bit_diagram(word: u32, long: bool) -> String {
    let b = |hi: u32, lo: u32| {
        let width = hi - lo + 1;
        let v = (word >> lo) & ((1u64 << width) as u32).wrapping_sub(1);
        format!("{v:0width$b}", width = width as usize)
    };
    if long {
        format!(
            "|op {}|scc {}|dest {}|immed {}|",
            b(31, 25),
            b(24, 24),
            b(23, 19),
            b(18, 0)
        )
    } else {
        format!(
            "|op {}|scc {}|dest {}|rs {}|i {}|src {}|",
            b(31, 25),
            b(24, 24),
            b(23, 19),
            b(18, 14),
            b(13, 13),
            b(12, 0)
        )
    }
}

/// Renders the figure.
pub fn run() -> String {
    let mut out = String::from(
        "E3 — instruction formats (every instruction is one 32-bit word)\n\n\
         short:  |op<7>|scc<1>|dest<5>|rs1<5>|imm<1>|short2<13>|\n\
         long:   |op<7>|scc<1>|dest<5>|      imm19<19>         |\n\n",
    );
    for (insn, word) in compute() {
        let long = insn.opcode.format() == risc1_isa::Format::Long;
        out.push_str(&format!(
            "{word:#010x}  {}\n            {}\n",
            insn,
            bit_diagram(word, long)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_witness_roundtrips() {
        for (insn, word) in compute() {
            assert_eq!(Instruction::decode(word), Ok(insn));
        }
    }

    #[test]
    fn diagram_is_32_bits_wide() {
        for (insn, word) in compute() {
            let long = insn.opcode.format() == risc1_isa::Format::Long;
            let d = bit_diagram(word, long);
            let bits: usize = d.chars().filter(|c| *c == '0' || *c == '1').count();
            assert_eq!(bits, 32, "{d}");
        }
    }
}
