//! E16 — checkpoint-parallel scaling: sharded wall-clock vs. threads.
//!
//! PR 10's shard runner (`risc1-ir`'s `shard` module) cuts a run into
//! `shard_cycles`-instruction shards via a fast trace-engine planning
//! pass, re-executes the shards in parallel from the plan's snapshots,
//! and proves the stitched result bit-identical to sequential execution.
//! This experiment prices that machinery: on scaled workloads (100× the
//! paper suite) it sweeps worker threads × shard sizes under the
//! *uncached* engine — the slowest tier, so shard work dominates the
//! cheap planning pass — and reports wall-clock speedup over the plain
//! sequential run.
//!
//! The claim under test is conditional on hardware: with ≥ 8 effective
//! workers the 8-thread sharded run must beat sequential by ≥ 3×; with
//! ≥ 2 workers it must at least beat 1×. On a single-core host only the
//! transparency half of the law is checkable (and always is — speedup is
//! host telemetry, bit-identity is not).

use risc1_core::{ExecEngine, SimConfig};
use risc1_ir::{
    compile_risc, default_threads, run_risc_with, run_sharded_with, RiscOpts, ShardedReport,
};
use risc1_stats::Table;
use risc1_workloads::by_id_scaled;
use std::time::{Duration, Instant};

/// Worker-thread counts swept.
pub const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Workload scale factor: ~100× the paper suite's full arguments.
pub const SCALE: u32 = 100;

/// Scaled workloads swept: one array-heavy sieve (monolithic hot loop,
/// single global) and one recursion-heavy quicksort (driver + pass).
pub const WORKLOADS: [&str; 2] = ["sieve", "qsort"];

/// One sharded measurement at a fixed shard size and thread count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardCell {
    /// Worker threads requested.
    pub threads: usize,
    /// Worker threads the shard phase actually used (a request of 0
    /// resolves to the host default; never more than the shard count).
    pub threads_used: usize,
    /// Shards the run was cut into.
    pub shards: usize,
    /// Planning pass + shard phase + stitch, wall-clock.
    pub wall: Duration,
    /// Sequential wall / sharded wall.
    pub speedup: f64,
}

/// One `(workload, shard size)` row of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardScalingRow {
    /// Workload id with its scale, e.g. `sieve@x100`.
    pub id: String,
    /// Instructions the sequential run retires.
    pub instructions: u64,
    /// Shard size, in retired instructions.
    pub shard_cycles: u64,
    /// Wall-clock of the plain sequential run under the same engine.
    pub seq_wall: Duration,
    /// One cell per entry of [`THREADS`], in order.
    pub cells: Vec<ShardCell>,
}

/// The shard engine: uncached, the slowest tier, so the parallel shard
/// phase dominates the trace-engine planning pass.
fn shard_cfg() -> SimConfig {
    SimConfig {
        engine: ExecEngine::Uncached,
        // 100× the paper suite runs tens of millions of instructions —
        // well past the default runaway guard, far below this one.
        fuel: 2_000_000_000,
        ..SimConfig::default()
    }
}

/// Sweeps [`WORKLOADS`] at [`SCALE`] across two shard sizes ×
/// [`THREADS`]. Every sharded run is stitch-proven bit-identical to
/// sequential execution by construction ([`run_sharded_with`] fails
/// otherwise); the wall-clock columns are host telemetry.
pub fn compute() -> Vec<ShardScalingRow> {
    compute_with_scale(SCALE)
}

/// [`compute`] at an explicit workload scale (tests use a small one).
pub fn compute_with_scale(scale: u32) -> Vec<ShardScalingRow> {
    let mut rows = Vec::new();
    for id in WORKLOADS {
        let w = by_id_scaled(id, scale).expect("swept workloads exist");
        let prog = compile_risc(&w.module, RiscOpts::default()).expect("suite compiles");

        let t = Instant::now();
        let (seq_result, seq_stats) =
            run_risc_with(&prog, &w.args, shard_cfg()).expect("suite runs clean");
        let seq_wall = t.elapsed();

        // Two cuts: coarse (~8 shards) and fine (~64 shards).
        for denom in [8u64, 64] {
            let shard_cycles = (seq_stats.instructions / denom).max(1_000);
            let cells = THREADS
                .iter()
                .map(|&threads| {
                    let rep = run_sharded_with(&prog, &w.args, shard_cfg(), shard_cycles, threads)
                        .expect("sharded run arranges and stitches");
                    debug_assert_eq!(
                        rep.report.outcome,
                        risc1_ir::InjectOutcome::Halted { result: seq_result }
                    );
                    cell(&rep, threads, seq_wall)
                })
                .collect();
            rows.push(ShardScalingRow {
                id: format!("{id}@x{scale}"),
                instructions: seq_stats.instructions,
                shard_cycles,
                seq_wall,
                cells,
            });
        }
    }
    rows
}

fn cell(rep: &ShardedReport, threads: usize, seq_wall: Duration) -> ShardCell {
    let wall = rep.plan_wall + rep.exec_wall;
    ShardCell {
        threads,
        threads_used: rep.threads,
        shards: rep.shards(),
        wall,
        speedup: seq_wall.as_secs_f64() / wall.as_secs_f64().max(1e-9),
    }
}

/// Best speedup across a row's cells.
pub fn best_speedup(row: &ShardScalingRow) -> f64 {
    row.cells.iter().map(|c| c.speedup).fold(0.0, f64::max)
}

/// Renders the sweep.
pub fn run() -> String {
    let rows = compute();
    let mut headers = vec![
        "benchmark".to_string(),
        "instructions".to_string(),
        "shard".to_string(),
        "seq".to_string(),
    ];
    for &t in &THREADS {
        headers.push(format!("{t}t"));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);
    for r in &rows {
        let mut cells = vec![
            r.id.clone(),
            r.instructions.to_string(),
            r.shard_cycles.to_string(),
            format!("{:.1}ms", r.seq_wall.as_secs_f64() * 1e3),
        ];
        for c in &r.cells {
            cells.push(format!(
                "{:.1}ms {:.2}x ({} shards, {} used)",
                c.wall.as_secs_f64() * 1e3,
                c.speedup,
                c.shards,
                c.threads_used
            ));
        }
        t.row(cells);
    }
    format!(
        "E16 — checkpoint-parallel scaling (uncached shard engine, trace-engine\n\
         planning pass; every sharded run stitch-proven bit-identical to the\n\
         sequential run; host has {} effective worker(s))\n\n\
         {t}\n\
         speedup = sequential wall / (plan + shard + stitch wall); host\n\
         telemetry — the architectural result never depends on it\n",
        default_threads()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sweep's transparency half, at a test-sized scale: every cell
    /// exists, shard counts follow the cut, and [`run_sharded_with`]'s
    /// internal stitch proof (bit-identity with sequential execution)
    /// held for every combination — otherwise `compute_with_scale` would
    /// have panicked.
    #[test]
    fn sweep_cells_are_complete_and_stitch_proven() {
        let rows = compute_with_scale(2);
        assert_eq!(rows.len(), WORKLOADS.len() * 2);
        for r in &rows {
            assert_eq!(r.cells.len(), THREADS.len());
            for c in &r.cells {
                assert!(c.shards >= 1);
                assert!(c.threads_used >= 1);
                assert!(
                    c.threads_used <= c.threads.max(1),
                    "{}: used {} threads for a request of {}",
                    r.id,
                    c.threads_used,
                    c.threads
                );
            }
        }
    }

    /// The speedup claim, conditional on the host actually having
    /// parallelism: ≥ 3× at 8 threads with ≥ 8 workers, ≥ 1× at ≥ 2.
    /// On a single-core host this test degenerates to the (always-on)
    /// transparency check above.
    #[test]
    fn sharding_speeds_up_scaled_runs_when_the_host_has_workers() {
        let workers = default_threads();
        if workers < 2 {
            return; // single-core host: nothing to measure
        }
        let rows = compute();
        let best = rows.iter().map(best_speedup).fold(0.0, f64::max);
        assert!(
            best > 1.0,
            "≥2 workers but no sharded run beat sequential (best {best:.2}x)"
        );
        if workers >= 8 {
            assert!(
                best >= 3.0,
                "≥8 workers but best speedup is only {best:.2}x"
            );
        }
    }
}
