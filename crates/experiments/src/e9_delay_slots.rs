//! E9 — delayed jumps and the optimizer that fills them.
//!
//! The paper argues the delayed jump costs nothing in hardware and that a
//! peephole optimizer fills most slots with useful work. This experiment
//! compiles the suite twice (slots as NOPs vs filled), runs both, and also
//! times the filled binaries under the rejected "suspended pipeline" model
//! for the full 2×2 the paper's argument spans.

use risc1_core::{BranchModel, SimConfig};
use risc1_ir::RiscOpts;
use risc1_stats::{measure_risc, table::percent, Table};
use risc1_workloads::all;

/// Per-workload delay-slot statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotRow {
    /// Workload id.
    pub id: &'static str,
    /// Dynamic delay slots executed (filled build).
    pub slots: u64,
    /// Fill rate achieved by the peephole pass (dynamic).
    pub fill_rate: f64,
    /// Cycles with NOP slots, delayed-branch model.
    pub cycles_nops: u64,
    /// Cycles with filled slots, delayed-branch model.
    pub cycles_filled: u64,
    /// Cycles with filled slots under the suspended-pipeline model.
    pub cycles_suspended: u64,
}

/// Measures the whole suite (small arguments — rates are code properties).
pub fn compute() -> Vec<SlotRow> {
    all()
        .iter()
        .map(|w| {
            let nofill = RiscOpts {
                fill_delay_slots: false,
            };
            let fill = RiscOpts::default();
            let delayed = SimConfig::default();
            let suspended = SimConfig {
                branch_model: BranchModel::Suspended,
                ..SimConfig::default()
            };
            let s_nop = measure_risc(w, &w.small_args, delayed.clone(), nofill);
            let s_fill = measure_risc(w, &w.small_args, delayed, fill);
            let s_susp = measure_risc(w, &w.small_args, suspended, fill);
            SlotRow {
                id: w.id,
                slots: s_fill.delay_slots,
                fill_rate: s_fill.delay_slot_fill_rate().unwrap_or(0.0),
                cycles_nops: s_nop.cycles,
                cycles_filled: s_fill.cycles,
                cycles_suspended: s_susp.cycles,
            }
        })
        .collect()
}

/// Renders the table.
pub fn run() -> String {
    let mut t = Table::new(&[
        "benchmark",
        "slots",
        "filled",
        "cycles (nops)",
        "cycles (filled)",
        "saved",
        "cycles (suspended)",
    ]);
    for r in compute() {
        t.row(vec![
            r.id.to_string(),
            r.slots.to_string(),
            percent(r.fill_rate),
            r.cycles_nops.to_string(),
            r.cycles_filled.to_string(),
            percent(1.0 - r.cycles_filled as f64 / r.cycles_nops.max(1) as f64),
            r.cycles_suspended.to_string(),
        ]);
    }
    format!(
        "E9 — delayed jumps: slot filling and the suspended-pipeline alternative\n\
         (filled = share of executed delay slots holding useful work;\n\
         suspended = same binary charged +1 cycle per taken transfer)\n\n{t}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filling_saves_cycles_everywhere_it_fills() {
        for r in compute() {
            assert!(
                r.cycles_filled <= r.cycles_nops,
                "{}: filling must never cost cycles",
                r.id
            );
            if r.fill_rate > 0.0 {
                assert!(r.cycles_filled < r.cycles_nops, "{}", r.id);
            }
        }
    }

    #[test]
    fn loop_heavy_code_fills_most_back_edges() {
        let rows = compute();
        let sieve = rows.iter().find(|r| r.id == "sieve").unwrap();
        assert!(
            sieve.fill_rate > 0.3,
            "sieve fill rate {:.2} — back edges should fill",
            sieve.fill_rate
        );
    }

    #[test]
    fn suspended_pipeline_is_always_slower() {
        for r in compute() {
            assert!(
                r.cycles_suspended > r.cycles_filled,
                "{}: suspended must cost extra",
                r.id
            );
        }
    }
}
