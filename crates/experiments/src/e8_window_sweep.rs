//! E8 — how many register windows are enough?
//!
//! The design study behind the paper's choice of 8 windows: sweep the file
//! size over the call-heavy workloads and measure the fraction of calls
//! that overflow plus the share of cycles lost to spill/fill traps. The
//! paper's shape: overflows are frequent with 2–4 windows and become rare
//! at 8 for typical call-depth locality.

use risc1_core::SimConfig;
use risc1_ir::RiscOpts;
use risc1_stats::{measure_risc, table::percent, Table};
use risc1_workloads::{all, Workload};

/// Window counts swept.
pub const WINDOW_COUNTS: &[usize] = &[2, 4, 6, 8, 12, 16];

/// One sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Workload id.
    pub id: &'static str,
    /// Number of windows.
    pub windows: usize,
    /// Overflow traps per call.
    pub overflow_rate: f64,
    /// Fraction of all cycles spent in window traps.
    pub trap_cycle_share: f64,
    /// Deepest call depth seen.
    pub max_depth: u64,
}

fn call_heavy() -> Vec<Workload> {
    all().into_iter().filter(|w| w.call_heavy).collect()
}

/// Sweeps a single workload at one window count.
pub fn sweep_one(w: &Workload, windows: usize) -> SweepPoint {
    let s = measure_risc(
        w,
        &w.small_args,
        SimConfig::with_windows(windows),
        RiscOpts::default(),
    );
    SweepPoint {
        id: w.id,
        windows,
        overflow_rate: s.overflow_rate(),
        trap_cycle_share: s.trap_cycles as f64 / s.cycles.max(1) as f64,
        max_depth: s.max_depth,
    }
}

/// Sweeps every call-heavy workload across [`WINDOW_COUNTS`] (small
/// arguments keep the sweep fast; rates are depth-profile properties and
/// barely move with input size).
pub fn compute() -> Vec<SweepPoint> {
    let mut out = Vec::new();
    for w in call_heavy() {
        for &n in WINDOW_COUNTS {
            out.push(sweep_one(&w, n));
        }
    }
    out
}

/// Renders the figure as a table (rows: workloads, columns: window counts).
pub fn run() -> String {
    let pts = compute();
    let mut t = Table::new(&[
        "benchmark",
        "depth",
        "w=2",
        "w=4",
        "w=6",
        "w=8",
        "w=12",
        "w=16",
    ]);
    for w in call_heavy() {
        let mine: Vec<&SweepPoint> = pts.iter().filter(|p| p.id == w.id).collect();
        let mut row = vec![w.id.to_string(), mine[0].max_depth.to_string()];
        row.extend(mine.iter().map(|p| percent(p.overflow_rate)));
        t.row(row);
    }
    format!(
        "E8 — register-window overflow rate vs file size\n\
         (cells: window-overflow traps as a fraction of procedure calls)\n\n{t}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overflow_rate_is_monotonically_nonincreasing_in_windows() {
        let pts = compute();
        for w in call_heavy() {
            let mine: Vec<&SweepPoint> = pts.iter().filter(|p| p.id == w.id).collect();
            for pair in mine.windows(2) {
                assert!(
                    pair[1].overflow_rate <= pair[0].overflow_rate + 1e-9,
                    "{}: rate rose from w={} to w={}",
                    w.id,
                    pair[0].windows,
                    pair[1].windows
                );
            }
        }
    }

    #[test]
    fn two_windows_thrash_and_shallow_workloads_settle_by_eight() {
        let pts = compute();
        // With w=2 every call beyond the first overflows on deep recursion.
        assert!(pts
            .iter()
            .filter(|p| p.windows == 2)
            .any(|p| p.overflow_rate > 0.5));
        // Quicksort's call depth is logarithmic-ish: by 8 windows the
        // overflow rate must have collapsed relative to thrashing.
        let q = |w: usize| {
            pts.iter()
                .find(|p| p.id == "qsort" && p.windows == w)
                .expect("qsort sweep")
                .overflow_rate
        };
        assert!(q(8) < 0.25, "qsort at w=8: {}", q(8));
        assert!(q(8) < q(2) / 3.0, "w=8 {} vs w=2 {}", q(8), q(2));
        // A shallow-call workload (string search: main → find, depth 2)
        // never overflows an 8-window file — the paper's design point
        // about typical C call-depth locality.
        let shallow = risc1_workloads::by_id("e_string_search").unwrap();
        let s = crate::e8_window_sweep::sweep_one(&shallow, 8);
        assert_eq!(s.overflow_rate, 0.0, "shallow calls never spill at w=8");
    }

    #[test]
    fn deep_recursion_defeats_any_fixed_file() {
        // Ackermann's depth is far past 16 windows; it must still overflow
        // there. (The paper: windows exploit *locality* of call depth, and
        // Ackermann has none.)
        let pts = compute();
        let a16 = pts
            .iter()
            .find(|p| p.id == "acker" && p.windows == 16)
            .expect("acker sweep");
        assert!(a16.overflow_rate > 0.0);
        assert!(a16.max_depth > 20, "depth {}", a16.max_depth);
    }
}
