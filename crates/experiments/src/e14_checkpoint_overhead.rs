//! E14 — pricing checkpoints: modeled cost vs. checkpoint interval.
//!
//! The supervisor (PR 3) takes an incremental snapshot every N retired
//! instructions so a fault can roll back instead of killing the run. Each
//! checkpoint costs a fixed register/state copy plus one cycle per dirty
//! memory word copied ([`CKPT_BASE_CYCLES`]; the cost is *modeled*
//! deterministically, never perturbing the simulated machine). This
//! experiment sweeps the interval across the workload suite and reports
//! the overhead — modeled checkpoint cycles as a fraction of the run's
//! execution cycles. The claim under test: at the default interval
//! ([`DEFAULT_CKPT_EVERY`]) the mean overhead stays below 10%.

use risc1_core::{SimConfig, CKPT_BASE_CYCLES};
use risc1_ir::{
    compile_risc, default_threads, parallel_map, run_risc, run_risc_supervised, RiscOpts,
    SupervisorConfig, DEFAULT_CKPT_EVERY,
};
use risc1_stats::Table;
use risc1_workloads::all;

/// Checkpoint intervals swept (retired instructions between checkpoints).
/// The middle entry is the supervisor default.
pub const INTERVALS: [u64; 4] = [1_000, 5_000, DEFAULT_CKPT_EVERY, 100_000];

/// Checkpoint cost at one interval for one workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalCost {
    /// The interval, in retired instructions.
    pub interval: u64,
    /// Checkpoints taken over the run.
    pub checkpoints: u64,
    /// Dirty pages copied in total.
    pub pages_copied: u64,
    /// Modeled checkpoint cycles in total.
    pub modeled_cycles: u64,
    /// Modeled checkpoint cycles / execution cycles.
    pub overhead: f64,
}

/// One workload's row of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadRow {
    /// Workload id.
    pub id: &'static str,
    /// Instructions the uninjected run retires.
    pub instructions: u64,
    /// Cycles the uninjected run takes.
    pub cycles: u64,
    /// Cost at each entry of [`INTERVALS`], in order.
    pub costs: Vec<IntervalCost>,
}

/// Sweeps every workload (small arguments) across [`INTERVALS`] under the
/// supervisor with injection disabled, so the only new cost is
/// checkpointing itself. Runs on the machine's available parallelism.
pub fn compute() -> Vec<OverheadRow> {
    compute_with_threads(default_threads())
}

/// [`compute`] with an explicit worker count; the sweep is a parallel map
/// over `(workload, interval)` jobs merged in canonical order, so the
/// result is byte-identical for any `threads`.
pub fn compute_with_threads(threads: usize) -> Vec<OverheadRow> {
    let workloads = all();
    let setups = parallel_map(&workloads, threads, |_, w| {
        let prog = compile_risc(&w.module, RiscOpts::default()).expect("suite compiles");
        let (_, base) = run_risc(&prog, &w.small_args).expect("suite runs clean");
        (prog, base)
    });
    let jobs: Vec<(usize, u64)> = (0..workloads.len())
        .flat_map(|wi| INTERVALS.iter().map(move |&iv| (wi, iv)))
        .collect();
    let costs = parallel_map(&jobs, threads, |_, &(wi, interval)| {
        let report = run_risc_supervised(
            &setups[wi].0,
            &workloads[wi].small_args,
            SimConfig::default(),
            None,
            false,
            SupervisorConfig {
                ckpt_every: interval,
                ..SupervisorConfig::default()
            },
        )
        .expect("setup is valid");
        IntervalCost {
            interval,
            checkpoints: report.checkpoints.checkpoints,
            pages_copied: report.checkpoints.pages_copied,
            modeled_cycles: report.checkpoints.modeled_cycles,
            overhead: report.checkpoint_overhead(),
        }
    });
    workloads
        .iter()
        .enumerate()
        .map(|(wi, w)| OverheadRow {
            id: w.id,
            instructions: setups[wi].1.instructions,
            cycles: setups[wi].1.cycles,
            costs: costs[wi * INTERVALS.len()..(wi + 1) * INTERVALS.len()].to_vec(),
        })
        .collect()
}

/// Mean overhead across the suite at interval index `i` of [`INTERVALS`].
pub fn mean_overhead(rows: &[OverheadRow], i: usize) -> f64 {
    let sum: f64 = rows.iter().map(|r| r.costs[i].overhead).sum();
    sum / rows.len().max(1) as f64
}

/// Renders the sweep.
pub fn run() -> String {
    let rows = compute();
    let mut headers = vec!["benchmark".to_string(), "instructions".to_string()];
    for &iv in &INTERVALS {
        headers.push(format!("every {iv}"));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);
    for r in &rows {
        let mut cells = vec![r.id.to_string(), r.instructions.to_string()];
        for c in &r.costs {
            cells.push(format!(
                "{:.2}% ({} ckpts)",
                c.overhead * 100.0,
                c.checkpoints
            ));
        }
        t.row(cells);
    }
    let default_idx = INTERVALS
        .iter()
        .position(|&iv| iv == DEFAULT_CKPT_EVERY)
        .expect("default interval is swept");
    let mean = mean_overhead(&rows, default_idx) * 100.0;
    format!(
        "E14 — checkpoint overhead vs. interval (supervised runs, no injection;\n\
         cost model: {CKPT_BASE_CYCLES} cycles per checkpoint + 1 cycle per dirty word copied)\n\n\
         {t}\n\
         mean overhead at the default interval ({DEFAULT_CKPT_EVERY} instructions): {mean:.2}%\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_at_the_default_interval_stays_under_ten_percent() {
        let rows = compute();
        let default_idx = INTERVALS
            .iter()
            .position(|&iv| iv == DEFAULT_CKPT_EVERY)
            .unwrap();
        let mean = mean_overhead(&rows, default_idx);
        assert!(
            mean <= 0.10,
            "mean checkpoint overhead at the default interval is {:.2}%",
            mean * 100.0
        );
    }

    #[test]
    fn denser_checkpointing_costs_monotonically_more() {
        for r in compute() {
            for pair in r.costs.windows(2) {
                assert!(
                    pair[0].modeled_cycles >= pair[1].modeled_cycles,
                    "{}: interval {} costs less than interval {}",
                    r.id,
                    pair[0].interval,
                    pair[1].interval
                );
            }
        }
    }

    #[test]
    fn sweep_rows_are_independent_of_thread_count() {
        assert_eq!(compute_with_threads(1), compute_with_threads(4));
    }

    #[test]
    fn supervision_never_perturbs_the_run() {
        // The checkpoint cost is modeled on the side: the supervised run's
        // own statistics must equal the plain run's, bit for bit.
        for w in all().iter().take(4) {
            let prog = compile_risc(&w.module, RiscOpts::default()).unwrap();
            let (result, stats) = run_risc(&prog, &w.small_args).unwrap();
            let report = run_risc_supervised(
                &prog,
                &w.small_args,
                SimConfig::default(),
                None,
                false,
                SupervisorConfig {
                    ckpt_every: 1_000,
                    ..SupervisorConfig::default()
                },
            )
            .unwrap();
            assert!(report.is_halted());
            assert_eq!(
                report.outcome,
                risc1_ir::SupervisorOutcome::Halted { result },
                "{}",
                w.id
            );
            assert_eq!(report.stats, stats, "{}", w.id);
        }
    }
}
