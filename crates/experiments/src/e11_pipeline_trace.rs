//! E11 — the pipeline-timing figure: why the delayed jump exists.
//!
//! Renders the cycle-by-cycle occupancy of a small kernel (a compare, a
//! taken branch whose delay slot holds useful work, a load feeding its
//! successor) under the real machine, and the same kernel without
//! forwarding to make the interlock bubble visible — the two diagrams the
//! paper uses to justify its pipeline choices.

use risc1_core::{pipeline, Cpu, Program, SimConfig};
use risc1_isa::{Cond, Instruction, Opcode, Reg, Short2};

fn kernel() -> Vec<Instruction> {
    let imm = |v: i32| Short2::imm(v).unwrap();
    vec![
        Instruction::ldhi(Reg::R16, 1), // r16 := 0x2000
        Instruction::reg(Opcode::Ldl, Reg::R17, Reg::R16, Short2::ZERO), // load
        Instruction::reg(Opcode::Add, Reg::R18, Reg::R17, imm(1)), // load-use
        Instruction::reg_scc(Opcode::Sub, Reg::R0, Reg::R18, imm(1)), // compare
        Instruction::jmpr(Cond::Eq, 12), // taken branch
        Instruction::reg(Opcode::Add, Reg::R19, Reg::R0, imm(7)), // delay slot: useful
        Instruction::reg(Opcode::Add, Reg::R20, Reg::R0, imm(99)), // skipped
        Instruction::ret(Reg::R0, Short2::ZERO), // halt
        Instruction::nop(),
    ]
}

/// Runs the kernel and returns `(diagram, summary)` for a configuration.
pub fn compute(forwarding: bool) -> (String, pipeline::PipelineSummary) {
    let cfg = SimConfig {
        record_trace: true,
        forwarding,
        ..SimConfig::default()
    };
    let mut cpu = Cpu::new(cfg);
    cpu.load_program(&Program::from_instructions(kernel()))
        .expect("kernel fits");
    cpu.run().expect("kernel halts");
    (
        pipeline::render_timing(cpu.trace(), 12),
        pipeline::summarize(cpu.trace()),
    )
}

/// Renders both figures.
pub fn run() -> String {
    let (with_fwd, s1) = compute(true);
    let (without, s2) = compute(false);
    format!(
        "E11 — pipeline timing (F = fetch, E = execute, M = memory cycle, b = bubble)\n\n\
         with internal forwarding (the RISC I datapath):\n{with_fwd}\n\
         ipc {:.2}, bubbles {}\n\n\
         without forwarding (interlock on register reuse):\n{without}\n\
         ipc {:.2}, bubbles {}\n\n\
         The delay slot after the taken branch executes useful work (r19),\n\
         and the skipped instruction (r20) never enters the datapath.\n",
        s1.ipc, s1.bubble_cycles, s2.ipc, s2.bubble_cycles
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forwarding_removes_all_bubbles() {
        let (_, s) = compute(true);
        assert_eq!(s.bubble_cycles, 0);
        assert!(s.ipc > 0.7);
    }

    #[test]
    fn interlocks_appear_without_forwarding() {
        let (d, s) = compute(false);
        assert!(
            s.bubble_cycles >= 2,
            "load-use + reuse chains: {}",
            s.bubble_cycles
        );
        assert!(d.contains('b'));
    }

    #[test]
    fn delay_slot_ran_and_skip_did_not() {
        let cfg = SimConfig {
            record_trace: true,
            ..SimConfig::default()
        };
        let mut cpu = Cpu::new(cfg);
        cpu.load_program(&Program::from_instructions(kernel()))
            .unwrap();
        cpu.run().unwrap();
        assert_eq!(cpu.reg(Reg::R19), 7, "delay slot executed");
        assert_eq!(cpu.reg(Reg::R20), 0, "branch shadow skipped");
    }
}
