//! Prints the e13_fault_recovery experiment report (see `risc1_experiments::e13_fault_recovery`).
fn main() {
    print!("{}", risc1_experiments::e13_fault_recovery::run());
}
