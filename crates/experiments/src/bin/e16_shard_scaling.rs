//! Prints the e16_shard_scaling experiment report (see `risc1_experiments::e16_shard_scaling`).
fn main() {
    print!("{}", risc1_experiments::e16_shard_scaling::run());
}
