//! Prints the e12_instruction_mix experiment report (see `risc1_experiments::e12_instruction_mix`).
fn main() {
    print!("{}", risc1_experiments::e12_instruction_mix::run());
}
