//! Prints the e1_complexity experiment report (see `risc1_experiments::e1_complexity`).
fn main() {
    print!("{}", risc1_experiments::e1_complexity::run());
}
