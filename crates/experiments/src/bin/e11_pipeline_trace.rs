//! Prints the e11_pipeline_trace experiment report (see `risc1_experiments::e11_pipeline_trace`).
fn main() {
    print!("{}", risc1_experiments::e11_pipeline_trace::run());
}
