//! Prints the e5_call_cost experiment report (see `risc1_experiments::e5_call_cost`).
fn main() {
    print!("{}", risc1_experiments::e5_call_cost::run());
}
