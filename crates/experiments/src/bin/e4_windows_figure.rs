//! Prints the e4_windows_figure experiment report (see `risc1_experiments::e4_windows_figure`).
fn main() {
    print!("{}", risc1_experiments::e4_windows_figure::run());
}
