//! Prints every experiment report in order (the full evaluation).
fn main() {
    print!("{}", risc1_experiments::run_all());
}
