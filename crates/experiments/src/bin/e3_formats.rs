//! Prints the e3_formats experiment report (see `risc1_experiments::e3_formats`).
fn main() {
    print!("{}", risc1_experiments::e3_formats::run());
}
