//! Prints the e7_code_size experiment report (see `risc1_experiments::e7_code_size`).
fn main() {
    print!("{}", risc1_experiments::e7_code_size::run());
}
