//! Prints the e6_exec_time experiment report (see `risc1_experiments::e6_exec_time`).
fn main() {
    print!("{}", risc1_experiments::e6_exec_time::run());
}
