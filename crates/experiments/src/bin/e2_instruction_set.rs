//! Prints the e2_instruction_set experiment report (see `risc1_experiments::e2_instruction_set`).
fn main() {
    print!("{}", risc1_experiments::e2_instruction_set::run());
}
