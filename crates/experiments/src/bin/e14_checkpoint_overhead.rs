//! Prints the e14_checkpoint_overhead experiment report (see `risc1_experiments::e14_checkpoint_overhead`).
fn main() {
    print!("{}", risc1_experiments::e14_checkpoint_overhead::run());
}
