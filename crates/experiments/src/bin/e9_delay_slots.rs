//! Prints the e9_delay_slots experiment report (see `risc1_experiments::e9_delay_slots`).
fn main() {
    print!("{}", risc1_experiments::e9_delay_slots::run());
}
