//! Prints the e10_area experiment report (see `risc1_experiments::e10_area`).
fn main() {
    print!("{}", risc1_experiments::e10_area::run());
}
