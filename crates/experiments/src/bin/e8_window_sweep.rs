//! Prints the e8_window_sweep experiment report (see `risc1_experiments::e8_window_sweep`).
fn main() {
    print!("{}", risc1_experiments::e8_window_sweep::run());
}
