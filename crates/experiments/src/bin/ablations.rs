//! Prints the ablation studies (see `risc1_experiments::ablations`).
fn main() {
    print!("{}", risc1_experiments::ablations::run());
}
