//! Prints the e15_fusion_ablation experiment report (see `risc1_experiments::e15_fusion_ablation`).
fn main() {
    print!("{}", risc1_experiments::e15_fusion_ablation::run());
}
