//! E10 — the chip-area budget.
//!
//! We obviously cannot re-measure 1981 NMOS silicon, so this experiment
//! substitutes an *area model* built from structure counts of this very
//! implementation (DESIGN.md §5): each datapath block is assigned an area
//! in normalized register-bit-equivalent units (one 32-bit register = 32
//! units; PLA terms and random logic use published relative weights). The
//! claim to reproduce is *structural*: in RISC I the register file
//! dominates and control logic is a sliver (~6% of the chip, vs ~50%
//! control store on microcoded CISC designs).

use risc1_core::SimConfig;
use risc1_isa::Opcode;
use risc1_stats::{table::percent, Table};

/// One block of the floorplan.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaRow {
    /// Block name.
    pub block: &'static str,
    /// Area in register-bit-equivalent units.
    pub units: f64,
}

/// Computes the model floorplan from implementation structure counts.
pub fn compute() -> Vec<AreaRow> {
    let regs = SimConfig::default().physical_registers() as f64;
    let reg_bits = regs * 32.0;
    // Weights: a register bit cell = 1 unit. Datapath function blocks are
    // sized relative to one 32-bit slice (published RISC I floorplans put
    // the ALU near 3 register-equivalents per bit, the shifter near 2).
    let alu = 32.0 * 3.0;
    let shifter = 32.0 * 2.0;
    let pc_unit = 3.0 * 32.0 * 1.5; // PC, next-PC, last-PC latches + incrementer
    let pads_bus = reg_bits * 0.18; // buses, sense amps, pads fringe
                                    // Hardwired control: one PLA term per opcode per pipeline phase plus
                                    // decode. PLA NOR-array cells are several times denser than a
                                    // register bit cell, so a term weighs ~4 bit-equivalents.
    let control = (Opcode::ALL.len() * 2) as f64 * 4.0 + 64.0;
    vec![
        AreaRow {
            block: "register file (138 x 32)",
            units: reg_bits,
        },
        AreaRow {
            block: "ALU",
            units: alu,
        },
        AreaRow {
            block: "shifter",
            units: shifter,
        },
        AreaRow {
            block: "PC unit",
            units: pc_unit,
        },
        AreaRow {
            block: "buses/pads fringe",
            units: pads_bus,
        },
        AreaRow {
            block: "control (hardwired decode)",
            units: control,
        },
    ]
}

/// Fraction of the model chip occupied by control logic.
pub fn control_fraction() -> f64 {
    let rows = compute();
    let total: f64 = rows.iter().map(|r| r.units).sum();
    rows.iter()
        .find(|r| r.block.starts_with("control"))
        .map(|r| r.units / total)
        .unwrap_or(0.0)
}

/// Renders the table.
pub fn run() -> String {
    let rows = compute();
    let total: f64 = rows.iter().map(|r| r.units).sum();
    let mut t = Table::new(&["block", "area (reg-bit units)", "share"]);
    for r in &rows {
        t.row(vec![
            r.block.to_string(),
            format!("{:.0}", r.units),
            percent(r.units / total),
        ]);
    }
    format!(
        "E10 — chip-area model (register-bit-equivalent units; see DESIGN.md §5)\n\n{t}\n\
         control share: {} — the paper reports ~6% for RISC I against ~50%\n\
         control store on contemporary microcoded processors.\n",
        percent(control_fraction())
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_file_dominates() {
        let rows = compute();
        let total: f64 = rows.iter().map(|r| r.units).sum();
        let rf = &rows[0];
        assert!(rf.block.contains("register file"));
        assert!(rf.units / total > 0.5, "file share {:.2}", rf.units / total);
    }

    #[test]
    fn control_is_a_sliver_like_the_paper() {
        let f = control_fraction();
        assert!((0.02..0.12).contains(&f), "control share {f:.3}");
    }
}
