//! E2 — Table II: the RISC I instruction set, generated from the ISA
//! tables themselves.

use risc1_isa::summary::{instruction_table, InstructionRow};
use risc1_stats::Table;

/// The listing, in Table II order.
pub fn compute() -> Vec<InstructionRow> {
    instruction_table()
}

/// Renders Table II.
pub fn run() -> String {
    let mut t = Table::new(&["mnemonic", "category", "format", "cycles", "semantics"]);
    for r in compute() {
        t.row(vec![
            r.mnemonic.to_string(),
            r.category.to_string(),
            format!("{:?}", r.format).to_lowercase(),
            r.cycles.to_string(),
            r.description.to_string(),
        ]);
    }
    format!(
        "E2 — Table II: the {} RISC I instructions\n\n{t}",
        compute().len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirty_one_rows() {
        assert_eq!(compute().len(), 31);
    }

    #[test]
    fn report_contains_every_mnemonic() {
        let s = run();
        for r in compute() {
            assert!(s.contains(r.mnemonic), "{} missing", r.mnemonic);
        }
    }
}
