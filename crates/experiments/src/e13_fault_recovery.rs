//! E13 — trap architecture under fire: recovery rates and trap costs.
//!
//! The 1981 paper sells register windows for interrupt handling: entry is
//! a `CALLI` into a fresh window, so taking a trap saves nothing and
//! costs little. This experiment stresses that machinery with the
//! deterministic fault injector: every suite workload runs under a
//! seed-driven campaign of bit flips, spurious interrupts, forced faults,
//! fuel jitter and window-stack corruption, once with per-cause recovery
//! handlers installed and once bare. With handlers, a large share of
//! campaigns still reach a clean halt; without them, every vectorable
//! fault ends the run. A second table prices trap entry per cause.

use risc1_core::{Cpu, InjectConfig, Program, SimConfig, TrapKind};
use risc1_ir::{compile_risc, run_risc, run_risc_injected, InjectOutcome, RiscOpts};
use risc1_isa::{Instruction, Opcode, Reg, Short2};
use risc1_stats::Table;
use risc1_workloads::all;

/// Seeds swept per workload and handler setting.
pub const SEEDS: u64 = 12;
/// Expected number of injected perturbations per run. The per-workload
/// rate is derived from this and the workload's uninjected instruction
/// count, so a long benchmark is not simply drowned in faults.
pub const TARGET_EVENTS: u64 = 5;

/// Outcome tallies for one workload's injection campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryRow {
    /// Workload id.
    pub id: &'static str,
    /// Injection rate used (perturbations per 10 000 steps).
    pub rate: u32,
    /// Seeds that halted with the uninjected result (handlers installed).
    pub recovered: u64,
    /// Seeds that halted cleanly but with a corrupted result.
    pub wrong_result: u64,
    /// Seeds that ended in a structured fault (handlers installed).
    pub faulted: u64,
    /// Seeds that halted cleanly with *no* handlers installed.
    pub survived_bare: u64,
    /// Dynamic trap entries observed across the handled sweep.
    pub trap_entries: u64,
    /// Trap entry cycles across the handled sweep.
    pub trap_entry_cycles: u64,
    /// Per-cause dynamic trap entries across the handled sweep.
    pub trap_counts: [u64; TrapKind::COUNT],
}

/// Sweeps the whole suite (small arguments; the fuel limit is derived
/// from each workload's uninjected instruction count so re-execution
/// loops terminate quickly).
pub fn compute() -> Vec<RecoveryRow> {
    all()
        .iter()
        .map(|w| {
            let prog = compile_risc(&w.module, RiscOpts::default()).expect("suite compiles");
            let (expect, base) = run_risc(&prog, &w.small_args).expect("suite runs clean");
            let cfg = SimConfig {
                fuel: base.instructions * 3 + 20_000,
                ..SimConfig::default()
            };
            let rate = (TARGET_EVENTS * 10_000 / base.instructions.max(1)).clamp(1, 500) as u32;
            let mut row = RecoveryRow {
                id: w.id,
                rate,
                recovered: 0,
                wrong_result: 0,
                faulted: 0,
                survived_bare: 0,
                trap_entries: 0,
                trap_entry_cycles: 0,
                trap_counts: [0; TrapKind::COUNT],
            };
            for seed in 0..SEEDS {
                let mut icfg = InjectConfig::with_seed(seed);
                icfg.rate = rate;
                let rep = run_risc_injected(&prog, &w.small_args, cfg.clone(), icfg, true)
                    .expect("setup is valid");
                match rep.outcome {
                    InjectOutcome::Halted { result } if result == expect => row.recovered += 1,
                    InjectOutcome::Halted { .. } => row.wrong_result += 1,
                    InjectOutcome::Faulted { .. } => row.faulted += 1,
                }
                row.trap_entries += rep.stats.trap_entries;
                row.trap_entry_cycles += rep.stats.trap_entry_cycles;
                for kind in TrapKind::ALL {
                    row.trap_counts[kind.index()] += rep.stats.trap_count(kind);
                }
                let mut icfg = InjectConfig::with_seed(seed);
                icfg.rate = rate;
                let bare = run_risc_injected(&prog, &w.small_args, cfg.clone(), icfg, false)
                    .expect("setup is valid");
                if bare.is_halted() {
                    row.survived_bare += 1;
                }
            }
            row
        })
        .collect()
}

/// Measures the cycle cost of one trap entry for `kind` with a
/// microbenchmark: a forced probe against an otherwise idle program, so
/// the reading is exactly one vectored entry (fresh window — no spill).
pub fn trap_entry_cost(kind: TrapKind) -> u64 {
    let prog = Program::from_instructions(vec![
        Instruction::reg(Opcode::Add, Reg::R16, Reg::R0, Short2::ZERO),
        Instruction::ret(Reg::R25, Short2::ZERO),
        Instruction::nop(),
    ]);
    let mut cpu = Cpu::new(SimConfig::default());
    cpu.load_program(&prog).expect("fits");
    risc1_core::inject::install_recovery_handlers(&mut cpu, 0x100).expect("fits");
    cpu.inject_probe(kind);
    cpu.step().expect("probe vectors");
    let s = cpu.stats();
    assert_eq!(s.trap_entries, 1);
    s.trap_entry_cycles
}

/// Renders both tables.
pub fn run() -> String {
    let rows = compute();
    let mut t = Table::new(&[
        "benchmark",
        "rate",
        "recovered",
        "wrong result",
        "faulted",
        "survived bare",
        "trap entries",
    ]);
    let seeds = SEEDS;
    for r in &rows {
        t.row(vec![
            r.id.to_string(),
            r.rate.to_string(),
            format!("{}/{seeds}", r.recovered),
            format!("{}/{seeds}", r.wrong_result),
            format!("{}/{seeds}", r.faulted),
            format!("{}/{seeds}", r.survived_bare),
            r.trap_entries.to_string(),
        ]);
    }

    let mut c = Table::new(&["cause", "code", "entry cost (cycles)", "dynamic entries"]);
    for kind in TrapKind::ALL {
        let dynamic: u64 = rows.iter().map(|r| r.trap_counts[kind.index()]).sum();
        c.row(vec![
            kind.name().to_string(),
            kind.code().to_string(),
            trap_entry_cost(kind).to_string(),
            dynamic.to_string(),
        ]);
    }
    let entries: u64 = rows.iter().map(|r| r.trap_entries).sum();
    let cycles: u64 = rows.iter().map(|r| r.trap_entry_cycles).sum();
    let mean = cycles as f64 / entries.max(1) as f64;
    format!(
        "E13 — fault injection: recovery rates with the trap unit ({seeds} seeds \
         per workload, ~{TARGET_EVENTS} perturbations per run)\n\
         (recovered = clean halt with the uninjected result; survived bare = \
         clean halt with no handlers installed)\n\n{t}\n\
         Trap entry pricing (probe microbenchmark; fresh window, no spill):\n\n{c}\n\
         mean dynamic entry cost across the sweep: {mean:.1} cycles \
         ({entries} entries)\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use risc1_core::inject::InjectModes;

    #[test]
    fn handlers_never_hurt_and_traps_fire() {
        let rows = compute();
        let handled: u64 = rows.iter().map(|r| r.recovered + r.wrong_result).sum();
        let bare: u64 = rows.iter().map(|r| r.survived_bare).sum();
        assert!(
            handled >= bare,
            "clean halts with handlers ({handled}) vs bare ({bare})"
        );
        let entries: u64 = rows.iter().map(|r| r.trap_entries).sum();
        assert!(entries > 0, "the campaign must actually vector traps");
        let recovered: u64 = rows.iter().map(|r| r.recovered).sum();
        assert!(recovered > 0, "some campaigns must fully recover");
    }

    #[test]
    fn every_cause_has_a_positive_entry_cost() {
        let overhead = SimConfig::default().trap_overhead_cycles;
        for kind in TrapKind::ALL {
            let cost = trap_entry_cost(kind);
            assert!(
                cost >= overhead,
                "{kind}: cost {cost} below the configured overhead {overhead}"
            );
        }
    }

    #[test]
    fn transparent_campaigns_reproduce_the_clean_result_bit_for_bit() {
        // Spurious interrupts and misalignment probes with resume handlers
        // are extra-architectural: every seed must reproduce the
        // uninjected result exactly.
        let w = risc1_workloads::by_id("fib").unwrap();
        let prog = compile_risc(&w.module, RiscOpts::default()).unwrap();
        let (expect, _) = run_risc(&prog, &w.small_args).unwrap();
        for seed in 0..8 {
            let icfg = InjectConfig {
                seed,
                rate: 200,
                modes: InjectModes::transparent(),
            };
            let rep =
                run_risc_injected(&prog, &w.small_args, SimConfig::default(), icfg, true).unwrap();
            assert!(
                rep.recovered(expect),
                "seed {seed}: {:?} (events: {})",
                rep.outcome,
                rep.events.len()
            );
        }
    }
}
