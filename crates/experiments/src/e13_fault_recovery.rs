//! E13 — trap architecture under fire: recovery rates and trap costs.
//!
//! The 1981 paper sells register windows for interrupt handling: entry is
//! a `CALLI` into a fresh window, so taking a trap saves nothing and
//! costs little. This experiment stresses that machinery with the
//! deterministic fault injector: every suite workload runs under a
//! seed-driven campaign of bit flips, spurious interrupts, forced faults,
//! fuel jitter and window-stack corruption, once with per-cause recovery
//! handlers installed and once bare. With handlers, a large share of
//! campaigns still reach a clean halt; without them, every vectorable
//! fault ends the run. A second table prices trap entry per cause.

use risc1_core::{Cpu, InjectConfig, Program, SimConfig, TrapKind};
use risc1_ir::{
    compile_risc, default_threads, parallel_map, run_risc, run_risc_injected, seed_jobs,
    InjectOutcome, RiscOpts,
};
use risc1_isa::{Instruction, Opcode, Reg, Short2};
use risc1_stats::Table;
use risc1_workloads::all;

/// Seeds swept per workload and handler setting.
pub const SEEDS: u64 = 12;
/// Expected number of injected perturbations per run. The per-workload
/// rate is derived from this and the workload's uninjected instruction
/// count, so a long benchmark is not simply drowned in faults.
pub const TARGET_EVENTS: u64 = 5;

/// Outcome tallies for one workload's injection campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryRow {
    /// Workload id.
    pub id: &'static str,
    /// Injection rate used (perturbations per 10 000 steps).
    pub rate: u32,
    /// Seeds that halted with the uninjected result (handlers installed).
    pub recovered: u64,
    /// Seeds that halted cleanly but with a corrupted result.
    pub wrong_result: u64,
    /// Seeds that ended in a structured fault (handlers installed).
    pub faulted: u64,
    /// Seeds that halted cleanly with *no* handlers installed.
    pub survived_bare: u64,
    /// Dynamic trap entries observed across the handled sweep.
    pub trap_entries: u64,
    /// Trap entry cycles across the handled sweep.
    pub trap_entry_cycles: u64,
    /// Per-cause dynamic trap entries across the handled sweep.
    pub trap_counts: [u64; TrapKind::COUNT],
}

/// One workload compiled and calibrated for injection: program, expected
/// clean result, fuel-bounded config and derived injection rate.
struct Calibrated {
    prog: Program,
    args: Vec<i32>,
    expect: i32,
    cfg: SimConfig,
    rate: u32,
}

/// What one `(workload, seed)` job contributes to its row — merged
/// serially in canonical seed order after the parallel sweep.
struct SeedTally {
    recovered: u64,
    wrong_result: u64,
    faulted: u64,
    survived_bare: u64,
    trap_entries: u64,
    trap_entry_cycles: u64,
    trap_counts: [u64; TrapKind::COUNT],
}

/// Sweeps the whole suite (small arguments; the fuel limit is derived
/// from each workload's uninjected instruction count so re-execution
/// loops terminate quickly) on the machine's available parallelism.
pub fn compute() -> Vec<RecoveryRow> {
    compute_with_threads(default_threads())
}

/// [`compute`] with an explicit worker count. Results are byte-identical
/// for any `threads` (asserted in tests): jobs are farmed out dynamically
/// but folded in canonical `(workload, seed)` order.
pub fn compute_with_threads(threads: usize) -> Vec<RecoveryRow> {
    let workloads = all();
    let setups = parallel_map(&workloads, threads, |_, w| {
        let prog = compile_risc(&w.module, RiscOpts::default()).expect("suite compiles");
        let (expect, base) = run_risc(&prog, &w.small_args).expect("suite runs clean");
        let cfg = SimConfig {
            fuel: base.instructions * 3 + 20_000,
            ..SimConfig::default()
        };
        let rate = (TARGET_EVENTS * 10_000 / base.instructions.max(1)).clamp(1, 500) as u32;
        Calibrated {
            prog,
            args: w.small_args.clone(),
            expect,
            cfg,
            rate,
        }
    });
    let jobs = seed_jobs(setups.len(), SEEDS);
    let tallies = parallel_map(&jobs, threads, |_, &(wi, seed)| {
        let s = &setups[wi];
        let mut icfg = InjectConfig::with_seed(seed);
        icfg.rate = s.rate;
        let rep =
            run_risc_injected(&s.prog, &s.args, s.cfg.clone(), icfg, true).expect("setup is valid");
        let mut t = SeedTally {
            recovered: 0,
            wrong_result: 0,
            faulted: 0,
            survived_bare: 0,
            trap_entries: rep.stats.trap_entries,
            trap_entry_cycles: rep.stats.trap_entry_cycles,
            trap_counts: [0; TrapKind::COUNT],
        };
        match rep.outcome {
            InjectOutcome::Halted { result } if result == s.expect => t.recovered = 1,
            InjectOutcome::Halted { .. } => t.wrong_result = 1,
            InjectOutcome::Faulted { .. } => t.faulted = 1,
        }
        for kind in TrapKind::ALL {
            t.trap_counts[kind.index()] = rep.stats.trap_count(kind);
        }
        let mut icfg = InjectConfig::with_seed(seed);
        icfg.rate = s.rate;
        let bare = run_risc_injected(&s.prog, &s.args, s.cfg.clone(), icfg, false)
            .expect("setup is valid");
        if bare.is_halted() {
            t.survived_bare = 1;
        }
        t
    });
    let mut rows: Vec<RecoveryRow> = workloads
        .iter()
        .zip(&setups)
        .map(|(w, s)| RecoveryRow {
            id: w.id,
            rate: s.rate,
            recovered: 0,
            wrong_result: 0,
            faulted: 0,
            survived_bare: 0,
            trap_entries: 0,
            trap_entry_cycles: 0,
            trap_counts: [0; TrapKind::COUNT],
        })
        .collect();
    for (&(wi, _), t) in jobs.iter().zip(&tallies) {
        let row = &mut rows[wi];
        row.recovered += t.recovered;
        row.wrong_result += t.wrong_result;
        row.faulted += t.faulted;
        row.survived_bare += t.survived_bare;
        row.trap_entries += t.trap_entries;
        row.trap_entry_cycles += t.trap_entry_cycles;
        for k in 0..TrapKind::COUNT {
            row.trap_counts[k] += t.trap_counts[k];
        }
    }
    rows
}

/// Measures the cycle cost of one trap entry for `kind` with a
/// microbenchmark: a forced probe against an otherwise idle program, so
/// the reading is exactly one vectored entry (fresh window — no spill).
pub fn trap_entry_cost(kind: TrapKind) -> u64 {
    let prog = Program::from_instructions(vec![
        Instruction::reg(Opcode::Add, Reg::R16, Reg::R0, Short2::ZERO),
        Instruction::ret(Reg::R25, Short2::ZERO),
        Instruction::nop(),
    ]);
    let mut cpu = Cpu::new(SimConfig::default());
    cpu.load_program(&prog).expect("fits");
    risc1_core::inject::install_recovery_handlers(&mut cpu, 0x100).expect("fits");
    cpu.inject_probe(kind);
    cpu.step().expect("probe vectors");
    let s = cpu.stats();
    assert_eq!(s.trap_entries, 1);
    s.trap_entry_cycles
}

/// Renders both tables.
pub fn run() -> String {
    let rows = compute();
    let mut t = Table::new(&[
        "benchmark",
        "rate",
        "recovered",
        "wrong result",
        "faulted",
        "survived bare",
        "trap entries",
    ]);
    let seeds = SEEDS;
    for r in &rows {
        t.row(vec![
            r.id.to_string(),
            r.rate.to_string(),
            format!("{}/{seeds}", r.recovered),
            format!("{}/{seeds}", r.wrong_result),
            format!("{}/{seeds}", r.faulted),
            format!("{}/{seeds}", r.survived_bare),
            r.trap_entries.to_string(),
        ]);
    }

    let mut c = Table::new(&["cause", "code", "entry cost (cycles)", "dynamic entries"]);
    for kind in TrapKind::ALL {
        let dynamic: u64 = rows.iter().map(|r| r.trap_counts[kind.index()]).sum();
        c.row(vec![
            kind.name().to_string(),
            kind.code().to_string(),
            trap_entry_cost(kind).to_string(),
            dynamic.to_string(),
        ]);
    }
    let entries: u64 = rows.iter().map(|r| r.trap_entries).sum();
    let cycles: u64 = rows.iter().map(|r| r.trap_entry_cycles).sum();
    let mean = cycles as f64 / entries.max(1) as f64;
    format!(
        "E13 — fault injection: recovery rates with the trap unit ({seeds} seeds \
         per workload, ~{TARGET_EVENTS} perturbations per run)\n\
         (recovered = clean halt with the uninjected result; survived bare = \
         clean halt with no handlers installed)\n\n{t}\n\
         Trap entry pricing (probe microbenchmark; fresh window, no spill):\n\n{c}\n\
         mean dynamic entry cost across the sweep: {mean:.1} cycles \
         ({entries} entries)\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use risc1_core::inject::InjectModes;

    #[test]
    fn handlers_never_hurt_and_traps_fire() {
        let rows = compute();
        let handled: u64 = rows.iter().map(|r| r.recovered + r.wrong_result).sum();
        let bare: u64 = rows.iter().map(|r| r.survived_bare).sum();
        assert!(
            handled >= bare,
            "clean halts with handlers ({handled}) vs bare ({bare})"
        );
        let entries: u64 = rows.iter().map(|r| r.trap_entries).sum();
        assert!(entries > 0, "the campaign must actually vector traps");
        let recovered: u64 = rows.iter().map(|r| r.recovered).sum();
        assert!(recovered > 0, "some campaigns must fully recover");
    }

    #[test]
    fn campaign_rows_are_independent_of_thread_count() {
        // The parallel runner's contract, end to end through a real
        // experiment: serial and parallel sweeps agree byte for byte.
        assert_eq!(compute_with_threads(1), compute_with_threads(3));
    }

    #[test]
    fn every_cause_has_a_positive_entry_cost() {
        let overhead = SimConfig::default().trap_overhead_cycles;
        for kind in TrapKind::ALL {
            let cost = trap_entry_cost(kind);
            assert!(
                cost >= overhead,
                "{kind}: cost {cost} below the configured overhead {overhead}"
            );
        }
    }

    #[test]
    fn transparent_campaigns_reproduce_the_clean_result_bit_for_bit() {
        // Spurious interrupts and misalignment probes with resume handlers
        // are extra-architectural: every seed must reproduce the
        // uninjected result exactly.
        let w = risc1_workloads::by_id("fib").unwrap();
        let prog = compile_risc(&w.module, RiscOpts::default()).unwrap();
        let (expect, _) = run_risc(&prog, &w.small_args).unwrap();
        for seed in 0..8 {
            let icfg = InjectConfig {
                seed,
                rate: 200,
                modes: InjectModes::transparent(),
            };
            let rep =
                run_risc_injected(&prog, &w.small_args, SimConfig::default(), icfg, true).unwrap();
            assert!(
                rep.recovered(expect),
                "seed {seed}: {:?} (events: {})",
                rep.outcome,
                rep.events.len()
            );
        }
    }
}
