//! E4 — the overlapped-register-window figure: how three consecutive
//! procedure frames map onto the physical file, rendered from the actual
//! `WindowFile` slot arithmetic (not a hand-drawn picture).

use risc1_core::WindowFile;
use risc1_isa::Reg;

/// For windows `w`, `w+1`, `w+2`: the physical ring slots backing each
/// visible register class, straight from the hardware mapping.
pub fn compute(windows: usize) -> Vec<(usize, [std::ops::Range<usize>; 3])> {
    let f = WindowFile::new(windows);
    (0..3)
        .map(|k| {
            let span = |lo: u8, hi: u8| {
                let a = f.physical_slot(k, Reg::new(lo).unwrap()).unwrap();
                let b = f.physical_slot(k, Reg::new(hi).unwrap()).unwrap();
                a..b + 1
            };
            (k, [span(26, 31), span(16, 25), span(10, 15)])
        })
        .collect()
}

/// Renders the figure for the paper's 8-window file.
pub fn run() -> String {
    let mut out = String::from(
        "E4 — overlapped register windows (8-window file, 138 physical registers)\n\
         Each row is one procedure frame; columns are physical ring slots.\n\
         A frame's HIGH registers are physically its caller's LOW registers.\n\n",
    );
    let rows = compute(8);
    let width = 16 * 4; // show 4 windows' worth of ring
    for (k, [high, local, low]) in &rows {
        let mut line = vec![b'.'; width];
        let paint = |line: &mut Vec<u8>, r: &std::ops::Range<usize>, c: u8| {
            for i in r.clone() {
                if i < line.len() {
                    line[i] = c;
                }
            }
        };
        paint(&mut line, high, b'H');
        paint(&mut line, local, b'L');
        paint(&mut line, low, b'O');
        out.push_str(&format!(
            "frame {k} (cwp={k}):  {}\n",
            String::from_utf8_lossy(&line)
        ));
    }
    out.push_str("\nH = HIGH (incoming args)  L = LOCAL  O = LOW (outgoing args)\n");
    out.push_str("global registers r0–r9 live outside the ring and are shared.\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_is_exactly_the_parameter_registers() {
        let rows = compute(8);
        for pair in rows.windows(2) {
            let (_, [_, _, low]) = &pair[0];
            let (_, [high, _, _]) = &pair[1];
            assert_eq!(low, high, "caller LOW slots are callee HIGH slots");
        }
    }

    #[test]
    fn locals_never_overlap_between_frames() {
        let rows = compute(8);
        let (_, [_, l0, _]) = &rows[0];
        let (_, [_, l1, _]) = &rows[1];
        assert!(l0.end <= l1.start || l1.end <= l0.start);
    }

    #[test]
    fn figure_renders_with_all_classes() {
        let s = run();
        assert!(s.contains('H') && s.contains('L') && s.contains('O'));
    }
}
