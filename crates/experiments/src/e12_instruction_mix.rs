//! E12 — dynamic instruction mix and memory traffic across the suite.
//!
//! The paper's compiler studies found loads/stores around a quarter to a
//! third of executed instructions and transfers of control a fifth — the
//! statistics that justified spending transistors on registers rather than
//! on exotic instructions. This experiment reproduces the mix table from
//! the running suite.

use risc1_core::SimConfig;
use risc1_isa::Category;
use risc1_stats::{measure_with, table::percent, Table};
use risc1_workloads::all;
use std::collections::HashMap;

/// Aggregated dynamic mix for one workload.
#[derive(Debug, Clone)]
pub struct MixRow {
    /// Workload id.
    pub id: &'static str,
    /// Fraction of retired instructions per category (RISC I).
    pub by_category: HashMap<Category, f64>,
    /// Data-memory references per instruction (RISC I).
    pub mem_per_instr: f64,
    /// Instruction-stream bytes fetched per instruction on CX (variable
    /// length, for contrast with RISC I's constant 4).
    pub cx_bytes_per_instr: f64,
}

/// Measures the suite (small arguments; the mix is a code property).
pub fn compute() -> Vec<MixRow> {
    all()
        .iter()
        .map(|w| {
            let m = measure_with(w, &w.small_args, SimConfig::default());
            let total = m.risc.instructions.max(1) as f64;
            let by_category = m
                .risc
                .category_counts()
                .into_iter()
                .map(|(c, n)| (c, n as f64 / total))
                .collect();
            MixRow {
                id: w.id,
                by_category,
                mem_per_instr: m.risc.data_traffic() as f64 / total,
                cx_bytes_per_instr: m.cx.ifetch_bytes as f64 / m.cx.instructions.max(1) as f64,
            }
        })
        .collect()
}

/// Renders the table.
pub fn run() -> String {
    let rows = compute();
    let mut t = Table::new(&[
        "benchmark",
        "alu",
        "shift",
        "load",
        "store",
        "transfer",
        "mem/instr",
        "CX bytes/instr",
    ]);
    let share = |r: &MixRow, c: Category| percent(*r.by_category.get(&c).unwrap_or(&0.0));
    for r in &rows {
        t.row(vec![
            r.id.to_string(),
            share(r, Category::Arithmetic),
            share(r, Category::Shift),
            share(r, Category::Load),
            share(r, Category::Store),
            share(r, Category::ControlTransfer),
            format!("{:.2}", r.mem_per_instr),
            format!("{:.1}", r.cx_bytes_per_instr),
        ]);
    }
    format!(
        "E12 — dynamic instruction mix on RISC I (share of retired instructions)\n\n{t}\n\
         RISC I fetches a constant 4 bytes/instruction; CX averages the\n\
         variable-length figure in the last column.\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one() {
        for r in compute() {
            let s: f64 = r.by_category.values().sum();
            assert!((s - 1.0).abs() < 1e-9, "{}: {s}", r.id);
        }
    }

    #[test]
    fn alu_dominates_and_transfers_are_substantial() {
        // The aggregate shape the paper reports for compiled code.
        let rows = compute();
        let avg = |c: Category| {
            rows.iter()
                .map(|r| r.by_category.get(&c).copied().unwrap_or(0.0))
                .sum::<f64>()
                / rows.len() as f64
        };
        assert!(avg(Category::Arithmetic) > 0.3);
        let transfers = avg(Category::ControlTransfer);
        assert!(
            (0.05..0.45).contains(&transfers),
            "transfers {transfers:.2}"
        );
    }

    #[test]
    fn cx_instructions_average_longer_than_four_bytes() {
        // Memory operands make CX instructions long even though its
        // encoding *can* go down to one byte — part of why code-size wins
        // are smaller than CISC folklore suggested.
        let rows = compute();
        let avg = rows.iter().map(|r| r.cx_bytes_per_instr).sum::<f64>() / rows.len() as f64;
        assert!(avg > 3.0, "avg {avg:.1}");
    }
}
