//! `risc1-lint` — CFG + dataflow static analysis for RISC I programs.
//!
//! The analyzer takes an assembled [`risc1_core::Program`], rebuilds its
//! control-flow structure (basic blocks, delay-slot-aware edges, a call
//! graph over discovered functions), runs bitset dataflow over the
//! window-relative register file, and reports findings as structured
//! [`Diagnostic`]s with text and JSON-lines rendering.
//!
//! The rule suite is grounded in RISC I's three signature mechanisms from
//! Patterson & Séquin (ISCA 1981):
//!
//! * **Delayed jumps** — every transfer except `calli` executes the
//!   following word before control moves. A transfer in a delay slot
//!   faults; a slot that clobbers state the transfer consumed is an
//!   interrupt-restart hazard (`gtlpc` re-executes the jump).
//! * **Overlapped register windows** — the caller's LOW registers alias
//!   the callee's HIGH registers, which is what makes window-relative
//!   dataflow and the call-summary transfer function tractable, and why a
//!   static call chain deeper than *windows − 1* guarantees overflow traps.
//! * **The single condition-code bit per op (`scc`)** — tracked as a
//!   pseudo-register so flag def-use hazards fall out of ordinary dataflow.
//!
//! Entry point: [`lint_program`]. Typical use:
//!
//! ```
//! use risc1_lint::{lint_program, LintConfig};
//! use risc1_core::Program;
//! use risc1_isa::{Instruction, Reg, Short2};
//!
//! let program = Program::from_instructions(vec![
//!     Instruction::ret(Reg::R0, Short2::ZERO),
//!     Instruction::nop(),
//! ]);
//! let diags = lint_program(&program, &LintConfig::default());
//! assert!(diags.is_empty());
//! ```

pub mod cfg;
pub mod dataflow;
pub mod diag;
pub mod rules;

pub use cfg::{BasicBlock, CallSite, Cfg, FunctionCfg};
pub use diag::{render_json, render_text, Diagnostic, Rule, Severity};
pub use rules::{has_errors, lint_program, LintConfig};
