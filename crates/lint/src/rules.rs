//! The rule suite: every check the analyzer runs over a built [`Cfg`].
//!
//! Severity is grounded in what the simulated machine actually does:
//!
//! * transfers in delay slots fault (`ExecError::TransferInDelaySlot`), so
//!   that and other guaranteed-misbehavior findings are **errors**;
//! * reads of never-written registers return the architectural zero, and a
//!   clobbered delay slot only misbehaves when an interrupt restart
//!   re-executes the transfer via `GTLPC` — real hazards, deterministic
//!   machines, hence **warnings**;
//! * dead stores and recursion are **info**.
//!
//! The window-depth rule implements the paper's register-window arithmetic:
//! a file of *w* windows holds *w − 1* activation frames, so a static call
//! chain of depth ≥ *w − 1* from the entry point is guaranteed to take
//! overflow traps (eight stores and reloads per spilled window).

use crate::cfg::{Cfg, FunctionCfg, InsnIdx};
use crate::dataflow::{
    arch_effects, liveness, may_defined, reg_bit, reg_range, set_regs, summary_effects, BitSet,
    FLAGS_BIT,
};
use crate::diag::{Diagnostic, Rule, Severity};
use risc1_core::{Program, SimConfig};
use risc1_isa::{Category, Instruction, Opcode, INSN_BYTES};
use std::collections::{HashMap, HashSet};

/// Analyzer configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintConfig {
    /// Number of register windows on the target machine (the paper's
    /// hardware had 8); drives the call-depth rule.
    pub windows: usize,
    /// Byte offsets (within the code image) of trap-handler entry points.
    /// Each becomes an extra function root: hardware reaches it through
    /// the trap vector, so its body is live code and must return with
    /// `reti` (the trap-handler-missing-reti rule).
    pub trap_handlers: Vec<u32>,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            windows: 8,
            trap_handlers: Vec::new(),
        }
    }
}

impl LintConfig {
    /// Derives the lint-relevant parameters from a simulator config.
    /// Handler roots are program-specific, not machine-specific, so the
    /// list starts empty.
    pub fn from_sim(sim: &SimConfig) -> LintConfig {
        LintConfig {
            windows: sim.windows,
            ..LintConfig::default()
        }
    }
}

/// Whether any diagnostic in the batch is error-severity.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Runs every rule over `program` and returns the findings, errors first,
/// then by address.
pub fn lint_program(program: &Program, config: &LintConfig) -> Vec<Diagnostic> {
    let roots: Vec<InsnIdx> = config
        .trap_handlers
        .iter()
        .filter(|&&off| off % INSN_BYTES == 0)
        .map(|&off| (off / INSN_BYTES) as InsnIdx)
        .collect();
    let cfg = Cfg::build_with_roots(program, &roots);
    let mut diags = cfg.issues.clone();
    let mut lints = Linter {
        program,
        cfg: &cfg,
        config,
        diags: &mut diags,
        reported_reads: HashSet::new(),
    };
    lints.delay_slot_rules();
    lints.branch_into_slot();
    lints.dataflow_rules();
    lints.spec_illegal_encoding();
    lints.fall_off_end();
    lints.unreachable_code();
    lints.call_depth();
    lints.trap_handler_reti();
    diags.sort_by_key(|d| (std::cmp::Reverse(d.severity), d.pc, d.rule));
    diags.dedup();
    diags
}

struct Linter<'a> {
    program: &'a Program,
    cfg: &'a Cfg,
    config: &'a LintConfig,
    diags: &'a mut Vec<Diagnostic>,
    /// Uninit reads already reported, keyed by (word, fact bit).
    reported_reads: HashSet<(InsnIdx, BitSet)>,
}

impl Linter<'_> {
    fn pc(&self, idx: InsnIdx) -> u32 {
        (idx * INSN_BYTES as usize) as u32
    }

    /// `" in sym+0xOFF"` (leading space) when the address falls under a
    /// known symbol; empty otherwise.
    fn loc(&self, idx: InsnIdx) -> String {
        match self.program.symbol_for(self.pc(idx)) {
            Some((name, delta)) => format!(" in {name}+0x{delta:x}"),
            None => String::new(),
        }
    }

    fn push(&mut self, rule: Rule, idx: InsnIdx, message: String) {
        self.diags
            .push(Diagnostic::new(rule, self.pc(idx), message));
    }

    /// Transfer-in-slot (error) and slot-clobber (warning), directly off
    /// the shared `safe_in_delay_slot_of` hazard predicate.
    fn delay_slot_rules(&mut self) {
        for i in 0..self.cfg.code.len() {
            if !self.cfg.reachable[i] {
                continue;
            }
            let Some(t) = self.cfg.code[i] else { continue };
            if !t.opcode.has_delay_slot() || i + 1 >= self.cfg.code.len() {
                continue;
            }
            let Some(s) = self.cfg.code[i + 1] else {
                continue;
            };
            if s.opcode.is_transfer() {
                self.push(
                    Rule::TransferInDelaySlot,
                    i + 1,
                    format!(
                        "`{s}` sits in the delay slot of `{t}`{} - the hardware faults here",
                        self.loc(i)
                    ),
                );
            } else if !s.safe_in_delay_slot_of(&t) {
                let why = if t.opcode.moves_window() {
                    "the slot executes in the other register window"
                } else if s.sets_cc() && t.reads_cc() {
                    "an interrupt restart re-executes the jump with the slot's flags"
                } else {
                    "an interrupt restart re-executes the jump with the clobbered register"
                };
                self.push(
                    Rule::DelaySlotClobber,
                    i + 1,
                    format!("`{s}` in the delay slot of `{t}`{}: {why}", self.loc(i)),
                );
            }
        }
    }

    /// A transfer whose static target is some other transfer's delay slot.
    fn branch_into_slot(&mut self) {
        for f in &self.cfg.functions {
            for b in &f.blocks {
                let Some(term) = b.term else { continue };
                let Some(insn) = self.cfg.code[term] else {
                    continue;
                };
                if !matches!(insn.opcode, Opcode::Jmpr | Opcode::Callr) {
                    continue;
                }
                for &s in &b.succs {
                    let target = f.blocks[s].start;
                    if self.cfg.delay_slot[target] && target != term + 1 {
                        self.push(
                            Rule::BranchIntoDelaySlot,
                            term,
                            format!(
                                "`{insn}`{} targets +0x{:04x}, the delay slot of another transfer",
                                self.loc(term),
                                self.pc(target)
                            ),
                        );
                    }
                }
            }
        }
    }

    /// The facts defined when control enters `f`.
    fn entry_defined(&self, f: &FunctionCfg) -> BitSet {
        // Incoming arguments (HIGH aliases the caller's LOW) are always
        // assumed live-in; arity is not statically known.
        let mut defined = reg_range(26, 31);
        if !f.is_entry {
            // A called function inherits whatever globals and flags the
            // environment established, plus the link register every known
            // call site writes.
            defined |= reg_range(1, 9) | FLAGS_BIT;
            for caller in &self.cfg.functions {
                for site in &caller.calls {
                    if site.target == Some(f.head) {
                        defined |= site.link.map(reg_bit).unwrap_or(0);
                    }
                }
            }
        }
        if f.is_trap_handler {
            // Trap entry writes the precise-state triple into the fresh
            // window: r25 = restart pc, r24 = cause, r23 = info.
            defined |= reg_range(23, 25);
        }
        defined
    }

    /// Uninit reads, ret-without-call, and dead stores — the dataflow
    /// rules, one pass pair per function.
    fn dataflow_rules(&mut self) {
        for f in &self.cfg.functions {
            let defined = may_defined(f, &self.cfg.code, self.entry_defined(f));
            for (id, b) in f.blocks.iter().enumerate() {
                let mut d = defined.ins[id];
                for i in b.start..b.end.min(self.cfg.code.len()) {
                    let Some(insn) = self.cfg.code[i] else { break };
                    let missing = arch_effects(&insn).uses & !d;
                    self.report_uninit(f, i, &insn, missing);
                    d |= summary_effects(&insn).defs;
                }
            }

            let exit_live = reg_range(1, 9) | reg_range(26, 31) | FLAGS_BIT;
            let live = liveness(f, &self.cfg.code, exit_live);
            for (id, b) in f.blocks.iter().enumerate() {
                let mut l = live.outs[id];
                for i in (b.start..b.end.min(self.cfg.code.len())).rev() {
                    let Some(insn) = self.cfg.code[i] else {
                        continue;
                    };
                    self.report_dead_store(i, &insn, l);
                    self.report_dead_scc(i, &insn, l);
                    let e = summary_effects(&insn);
                    l = (l & !e.defs) | e.uses;
                }
            }
        }
    }

    fn report_uninit(&mut self, f: &FunctionCfg, i: InsnIdx, insn: &Instruction, missing: BitSet) {
        if missing == 0 {
            return;
        }
        if insn.opcode.is_ret() && f.is_entry {
            // `ret` in the entry function is the halt idiom: at call depth
            // zero the simulator stops and ignores the target operand.
            return;
        }
        if missing & FLAGS_BIT != 0 && self.reported_reads.insert((i, FLAGS_BIT)) {
            self.push(
                Rule::UninitRead,
                i,
                format!(
                    "`{insn}`{} tests condition flags never set on any path",
                    self.loc(i)
                ),
            );
        }
        for r in set_regs(missing & !FLAGS_BIT) {
            if !self.reported_reads.insert((i, reg_bit(r))) {
                continue;
            }
            if insn.opcode.is_ret() {
                self.push(
                    Rule::RetWithoutCall,
                    i,
                    format!(
                        "`{insn}`{} consumes {r} but no reaching call wrote a return address",
                        self.loc(i)
                    ),
                );
            } else {
                self.push(
                    Rule::UninitRead,
                    i,
                    format!(
                        "`{insn}`{} reads {r}, which nothing writes on any path (it reads as 0)",
                        self.loc(i)
                    ),
                );
            }
        }
    }

    fn report_dead_store(&mut self, i: InsnIdx, insn: &Instruction, live: BitSet) {
        let pure = matches!(
            insn.opcode.category(),
            Category::Arithmetic | Category::Shift
        ) || matches!(insn.opcode, Opcode::Ldhi | Opcode::Getpsw | Opcode::Gtlpc);
        if !pure || insn.sets_cc() || insn.is_nop() {
            return;
        }
        // A window-moving transfer's slot runs in the other window; its
        // writes are not this function's registers, so skip attribution.
        if self.cfg.delay_slot[i] && self.cfg.code[i - 1].is_some_and(|t| t.opcode.moves_window()) {
            return;
        }
        if let Some(w) = insn.writes() {
            if reg_bit(w) & live == 0 {
                self.push(
                    Rule::DeadStore,
                    i,
                    format!(
                        "`{insn}`{} writes {w}, which is overwritten before any read",
                        self.loc(i)
                    ),
                );
            }
        }
    }

    /// An `{scc}` bit whose flags nothing reads before the next flag
    /// write. The machine executes it fine, but it poisons the delay-slot
    /// filler (a flag-setter is never safe in a conditional transfer's
    /// shadow) for no benefit. `live` is the live-after set of the
    /// instruction, so the rule is exact up to the call-summary and
    /// function-exit conservatism of the liveness pass.
    fn report_dead_scc(&mut self, i: InsnIdx, insn: &Instruction, live: BitSet) {
        if insn.scc && live & FLAGS_BIT == 0 {
            self.push(
                Rule::DeadSccSet,
                i,
                format!(
                    "`{insn}`{} sets the condition codes but nothing reads them \
                     before the next setter",
                    self.loc(i)
                ),
            );
        }
    }

    /// Reachable words whose decoded operand shape the ISA spec table
    /// rejects: the word executes, but the assembler could never have
    /// produced it, so it is almost certainly a miscomputed constant or
    /// data executed as code (e.g. a `ret` with a non-zero ignored dest
    /// field, or a shift count the barrel shifter silently masks).
    fn spec_illegal_encoding(&mut self) {
        for i in 0..self.cfg.code.len() {
            if !self.cfg.reachable[i] {
                continue;
            }
            let Some(insn) = self.cfg.code[i] else {
                continue;
            };
            if let Err(v) = risc1_isa::spec::validate(&insn) {
                self.push(
                    Rule::SpecIllegalEncoding,
                    i,
                    format!("`{insn}`{}: {v}", self.loc(i)),
                );
            }
        }
    }

    /// A reachable block that can run past the last word of code.
    fn fall_off_end(&mut self) {
        let mut seen = HashSet::new();
        for f in &self.cfg.functions {
            for b in f.blocks.iter().filter(|b| b.falls_off) {
                let last = b.end.saturating_sub(1).min(self.cfg.code.len() - 1);
                if !seen.insert(last) {
                    continue;
                }
                self.push(
                    Rule::FallOffEnd,
                    last,
                    format!(
                        "execution{} can run past the end of code without a ret/halt",
                        self.loc(last)
                    ),
                );
            }
        }
    }

    /// Decodable instructions no path ever executes, reported one run at a
    /// time. Stands down entirely when an indexed jump makes static
    /// reachability incomplete, and skips NOPs (alignment padding) and
    /// undecodable words (inline data).
    fn unreachable_code(&mut self) {
        if self.cfg.has_indexed_jump {
            return;
        }
        let interesting: Vec<bool> = (0..self.cfg.code.len())
            .map(|i| !self.cfg.reachable[i] && self.cfg.code[i].is_some_and(|insn| !insn.is_nop()))
            .collect();
        let mut i = 0;
        while i < interesting.len() {
            if interesting[i] {
                let run = interesting[i..].iter().take_while(|&&x| x).count();
                self.push(
                    Rule::UnreachableCode,
                    i,
                    format!("{run} instruction(s){} can never execute", self.loc(i)),
                );
                i += run;
            } else {
                i += 1;
            }
        }
    }

    /// Static call-depth analysis over the function call graph.
    fn call_depth(&mut self) {
        let index_of: HashMap<InsnIdx, usize> = self
            .cfg
            .functions
            .iter()
            .enumerate()
            .map(|(i, f)| (f.head, i))
            .collect();

        // Longest acyclic call chain from each function, in nested calls.
        fn depth(
            fid: usize,
            cfg: &Cfg,
            index_of: &HashMap<InsnIdx, usize>,
            memo: &mut Vec<Option<usize>>,
            on_stack: &mut Vec<bool>,
            cycle: &mut Option<usize>,
        ) -> usize {
            if let Some(d) = memo[fid] {
                return d;
            }
            if on_stack[fid] {
                cycle.get_or_insert(fid);
                return 0; // cycle edges contribute no static depth
            }
            on_stack[fid] = true;
            let mut best = 0;
            for site in &cfg.functions[fid].calls {
                let below = site
                    .target
                    .and_then(|h| index_of.get(&h).copied())
                    .map(|t| depth(t, cfg, index_of, memo, on_stack, cycle))
                    .unwrap_or(0);
                best = best.max(1 + below);
            }
            on_stack[fid] = false;
            memo[fid] = Some(best);
            best
        }

        let n = self.cfg.functions.len();
        if n == 0 {
            return;
        }
        let mut memo = vec![None; n];
        let mut on_stack = vec![false; n];
        let mut cycle = None;
        let d = depth(0, self.cfg, &index_of, &mut memo, &mut on_stack, &mut cycle);

        if let Some(fid) = cycle {
            let head = self.cfg.functions[fid].head;
            self.push(
                Rule::RecursiveCallGraph,
                head,
                format!(
                    "{} is recursive: window overflow depends on runtime depth",
                    self.cfg.functions[fid].label()
                ),
            );
        }
        let w = self.config.windows;
        if w >= 2 && d >= w - 1 {
            self.push(
                Rule::WindowOverflowDepth,
                self.cfg.entry,
                format!(
                    "deepest static call chain is {d} calls but {w} windows hold only \
                     {} frames: window overflow traps are guaranteed on that path",
                    w - 1
                ),
            );
        }
    }

    /// A trap-handler root that exits with `ret` instead of `reti`. The
    /// machine executes the `ret` fine, but the trap unit stays armed (the
    /// next vectorable fault is a double fault) and interrupts stay
    /// masked. Stands down when the function is also a call target —
    /// dual-use code may legitimately return with `ret` on the call path.
    fn trap_handler_reti(&mut self) {
        let called: HashSet<InsnIdx> = self
            .cfg
            .functions
            .iter()
            .flat_map(|f| f.calls.iter().filter_map(|s| s.target))
            .collect();
        for f in &self.cfg.functions {
            if !f.is_trap_handler || called.contains(&f.head) {
                continue;
            }
            for b in &f.blocks {
                let Some(term) = b.term else { continue };
                let Some(insn) = self.cfg.code[term] else {
                    continue;
                };
                if insn.opcode == Opcode::Ret {
                    self.push(
                        Rule::TrapHandlerMissingReti,
                        term,
                        format!(
                            "`{insn}`{} leaves trap handler {} without re-arming the trap \
                             unit: the next fault double-faults and interrupts stay \
                             disabled - return with `reti`",
                            self.loc(term),
                            f.label()
                        ),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use risc1_isa::{Cond, Reg, Short2};

    fn imm(v: i32) -> Short2 {
        Short2::imm(v).unwrap()
    }

    fn halt() -> Vec<Instruction> {
        vec![Instruction::ret(Reg::R0, Short2::ZERO), Instruction::nop()]
    }

    fn lint(insns: Vec<Instruction>) -> Vec<Diagnostic> {
        lint_program(&Program::from_instructions(insns), &LintConfig::default())
    }

    fn rules_of(diags: &[Diagnostic]) -> Vec<Rule> {
        diags.iter().map(|d| d.rule).collect()
    }

    /// A two-instruction program that exercises no rule at all.
    #[test]
    fn minimal_clean_program() {
        let mut insns = vec![Instruction::reg(Opcode::Add, Reg::R16, Reg::R0, imm(1))];
        insns.extend(halt());
        // The add's result is never read — allow the dead-store info, but
        // nothing else. (Writing then halting is the minimal program.)
        let diags = lint(insns);
        assert!(
            diags.iter().all(|d| d.severity == Severity::Info),
            "{diags:?}"
        );
    }

    #[test]
    fn transfer_in_delay_slot_is_an_error() {
        let mut insns = vec![
            Instruction::jmpr(Cond::Alw, 8),
            Instruction::jmpr(Cond::Alw, 4), // in the slot: faults
        ];
        insns.extend(halt());
        let diags = lint(insns);
        assert!(rules_of(&diags).contains(&Rule::TransferInDelaySlot));
        assert!(has_errors(&diags));
    }

    #[test]
    fn clean_slot_is_not_flagged() {
        let mut insns = vec![
            Instruction::jmpr(Cond::Alw, 8),
            Instruction::reg(Opcode::Add, Reg::R2, Reg::R2, imm(1)),
        ];
        insns.extend(halt());
        let diags = lint(insns);
        assert!(!rules_of(&diags).contains(&Rule::TransferInDelaySlot));
        assert!(!rules_of(&diags).contains(&Rule::DelaySlotClobber));
    }

    #[test]
    fn scc_in_conditional_slot_is_a_clobber() {
        // The conditional jump targets the ret; its slot re-sets the flags
        // the jump just consumed.
        let mut insns = vec![
            Instruction::reg_scc(Opcode::Sub, Reg::R0, Reg::R26, imm(0)),
            Instruction::jmpr(Cond::Eq, 8),
            Instruction::reg_scc(Opcode::Sub, Reg::R0, Reg::R26, imm(5)),
        ];
        insns.extend(halt());
        let diags = lint(insns);
        assert!(
            rules_of(&diags).contains(&Rule::DelaySlotClobber),
            "{diags:?}"
        );
        assert!(!has_errors(&diags));
    }

    #[test]
    fn uninit_read_is_flagged_and_zero_reg_is_not() {
        let mut insns = vec![
            Instruction::reg(Opcode::Add, Reg::R16, Reg::R17, imm(0)), // r17 never written
        ];
        insns.extend(halt());
        let diags = lint(insns);
        let uninit: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == Rule::UninitRead)
            .collect();
        assert_eq!(uninit.len(), 1, "{diags:?}");
        assert!(uninit[0].message.contains("r17"));
    }

    #[test]
    fn defined_read_is_clean() {
        let mut insns = vec![
            Instruction::reg(Opcode::Add, Reg::R17, Reg::R0, imm(3)),
            Instruction::reg(Opcode::Stl, Reg::R17, Reg::R0, imm(64)), // store keeps it live
        ];
        insns.extend(halt());
        let diags = lint(insns);
        assert!(rules_of(&diags).is_empty(), "{diags:?}");
    }

    #[test]
    fn incoming_args_are_not_uninit() {
        // HIGH registers are incoming parameters; reading them is clean.
        let mut insns = vec![
            Instruction::reg(Opcode::Add, Reg::R2, Reg::R26, Short2::reg(Reg::R31)),
            Instruction::reg(Opcode::Stl, Reg::R2, Reg::R0, imm(64)),
        ];
        insns.extend(halt());
        assert!(rules_of(&lint(insns)).is_empty());
    }

    #[test]
    fn dead_store_is_info() {
        let mut insns = vec![
            Instruction::reg(Opcode::Add, Reg::R16, Reg::R0, imm(1)), // overwritten below
            Instruction::reg(Opcode::Add, Reg::R16, Reg::R0, imm(2)),
            Instruction::reg(Opcode::Stl, Reg::R16, Reg::R0, imm(64)),
        ];
        insns.extend(halt());
        let diags = lint(insns);
        let dead: Vec<_> = diags.iter().filter(|d| d.rule == Rule::DeadStore).collect();
        assert_eq!(dead.len(), 1, "{diags:?}");
        assert_eq!(dead[0].pc, 0, "the first write is the dead one");
        assert_eq!(dead[0].severity, Severity::Info);
    }

    #[test]
    fn store_to_memory_is_never_dead() {
        let mut insns = vec![
            Instruction::reg(Opcode::Add, Reg::R16, Reg::R0, imm(1)),
            Instruction::reg(Opcode::Stl, Reg::R16, Reg::R0, imm(64)),
        ];
        insns.extend(halt());
        assert!(!rules_of(&lint(insns)).contains(&Rule::DeadStore));
    }

    #[test]
    fn dead_scc_set_is_flagged_and_consumed_flags_are_not() {
        // The first {scc} is overwritten by the second before any read; the
        // second feeds the conditional jump and is live.
        let mut insns = vec![
            Instruction::reg_scc(Opcode::Sub, Reg::R0, Reg::R26, imm(1)),
            Instruction::reg_scc(Opcode::Sub, Reg::R0, Reg::R26, imm(0)),
            Instruction::jmpr(Cond::Eq, 8),
            Instruction::nop(),
        ];
        insns.extend(halt());
        let diags = lint(insns);
        let dead: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == Rule::DeadSccSet)
            .collect();
        assert_eq!(dead.len(), 1, "{diags:?}");
        assert_eq!(dead[0].pc, 0, "only the overwritten setter is dead");
        assert_eq!(dead[0].severity, Severity::Info);
    }

    #[test]
    fn scc_live_across_a_branch_join_is_not_dead() {
        // The setter's flags are read on the fall-through path only; the
        // union at the join must keep it live.
        let mut insns = vec![
            Instruction::reg_scc(Opcode::Sub, Reg::R0, Reg::R26, imm(0)),
            Instruction::jmpr(Cond::Alw, 8),
            Instruction::nop(),
            Instruction::reg(Opcode::Addc, Reg::R16, Reg::R0, imm(0)), // reads carry
        ];
        insns.extend(halt());
        let diags = lint(insns);
        assert!(!rules_of(&diags).contains(&Rule::DeadSccSet), "{diags:?}");
    }

    #[test]
    fn spec_illegal_encoding_flags_noncanonical_words() {
        use risc1_isa::Operands;
        // A shift count the barrel shifter masks, and a ret carrying junk
        // in its architecturally-ignored dest field.
        let ret_bad = Instruction {
            opcode: Opcode::Ret,
            scc: false,
            operands: Operands::Short {
                dest: Reg::R5,
                rs1: Reg::R25,
                s2: imm(8),
            },
        };
        let mut insns = vec![
            Instruction::callr(Reg::R25, 4 * INSN_BYTES as i32),
            Instruction::nop(),
        ];
        insns.extend(halt());
        insns.push(Instruction::reg(Opcode::Sll, Reg::R2, Reg::R2, imm(33)));
        insns.push(ret_bad);
        insns.push(Instruction::nop());
        let diags = lint(insns);
        let hits: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == Rule::SpecIllegalEncoding)
            .collect();
        assert_eq!(hits.len(), 2, "{diags:?}");
        assert!(hits.iter().any(|d| d.message.contains("shift count")));
        assert!(hits.iter().any(|d| d.message.contains("must be r0")));
        assert!(!has_errors(&diags), "the words still execute");
    }

    #[test]
    fn canonical_programs_are_spec_legal() {
        assert!(!rules_of(&lint(call_chain(2))).contains(&Rule::SpecIllegalEncoding));
    }

    #[test]
    fn unreachable_code_is_flagged_once_per_run() {
        let mut insns = halt();
        insns.push(Instruction::reg(Opcode::Add, Reg::R16, Reg::R0, imm(1)));
        insns.push(Instruction::reg(Opcode::Add, Reg::R17, Reg::R0, imm(2)));
        let diags = lint(insns);
        let unreachable: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == Rule::UnreachableCode)
            .collect();
        assert_eq!(unreachable.len(), 1, "{diags:?}");
        assert!(unreachable[0].message.contains("2 instruction(s)"));
    }

    #[test]
    fn reachable_loop_is_not_unreachable() {
        let insns = vec![
            Instruction::reg(Opcode::Add, Reg::R16, Reg::R16, imm(1)),
            Instruction::jmpr(Cond::Alw, -4),
            Instruction::nop(),
        ];
        assert!(!rules_of(&lint(insns)).contains(&Rule::UnreachableCode));
    }

    #[test]
    fn fall_off_end_is_an_error() {
        let diags = lint(vec![Instruction::reg(
            Opcode::Add,
            Reg::R16,
            Reg::R0,
            imm(1),
        )]);
        assert!(rules_of(&diags).contains(&Rule::FallOffEnd), "{diags:?}");
        assert!(has_errors(&diags));
    }

    #[test]
    fn halted_program_does_not_fall_off() {
        assert!(!rules_of(&lint(halt())).contains(&Rule::FallOffEnd));
    }

    /// Build entry -> f1 -> f2 -> … -> fN as a callr chain; each callee
    /// rets. Depth N.
    fn call_chain(n: usize) -> Vec<Instruction> {
        // Layout: entry at 0..4 (callr f1; nop; ret r0; nop), then each fi
        // at 4 + (i-1)*4: callr f(i+1); nop; ret r25; nop — last is a leaf.
        let mut insns = Vec::new();
        insns.push(Instruction::callr(Reg::R25, 4 * INSN_BYTES as i32));
        insns.push(Instruction::nop());
        insns.extend(halt());
        for i in 0..n {
            if i + 1 < n {
                insns.push(Instruction::callr(Reg::R25, 4 * INSN_BYTES as i32));
                insns.push(Instruction::nop());
            } else {
                insns.push(Instruction::reg(Opcode::Add, Reg::R26, Reg::R0, imm(1)));
                insns.push(Instruction::nop());
            }
            insns.push(Instruction::ret(Reg::R25, imm(8)));
            insns.push(Instruction::nop());
        }
        insns
    }

    #[test]
    fn deep_call_chain_guarantees_overflow() {
        // 8 nested calls with 8 windows (7 frames) must warn; the same
        // chain with 16 windows must not.
        let insns = call_chain(8);
        let warn = lint_program(
            &Program::from_instructions(insns.clone()),
            &LintConfig {
                windows: 8,
                ..LintConfig::default()
            },
        );
        assert!(
            rules_of(&warn).contains(&Rule::WindowOverflowDepth),
            "{warn:?}"
        );
        let ok = lint_program(
            &Program::from_instructions(insns),
            &LintConfig {
                windows: 16,
                ..LintConfig::default()
            },
        );
        assert!(!rules_of(&ok).contains(&Rule::WindowOverflowDepth));
    }

    #[test]
    fn shallow_chain_is_clean_and_ret_link_is_defined() {
        let diags = lint(call_chain(2));
        assert!(!rules_of(&diags).contains(&Rule::WindowOverflowDepth));
        assert!(
            !rules_of(&diags).contains(&Rule::RetWithoutCall),
            "callr writes the link register: {diags:?}"
        );
        assert!(!has_errors(&diags));
    }

    #[test]
    fn recursion_is_reported_as_info() {
        // entry calls f; f calls itself.
        let insns = vec![
            Instruction::callr(Reg::R25, 4 * INSN_BYTES as i32),
            Instruction::nop(),
            Instruction::ret(Reg::R0, Short2::ZERO),
            Instruction::nop(),
            // f:
            Instruction::callr(Reg::R25, 0), // callr f (self)
            Instruction::nop(),
            Instruction::ret(Reg::R25, imm(8)),
            Instruction::nop(),
        ];
        let diags = lint(insns);
        assert!(
            rules_of(&diags).contains(&Rule::RecursiveCallGraph),
            "{diags:?}"
        );
        assert!(!has_errors(&diags));
    }

    #[test]
    fn ret_without_reaching_call_in_callee() {
        // entry calls f with a discarded r0 link; f rets through r25,
        // which nothing wrote.
        let insns = vec![
            Instruction::callr(Reg::R0, 4 * INSN_BYTES as i32),
            Instruction::nop(),
            Instruction::ret(Reg::R0, Short2::ZERO),
            Instruction::nop(),
            // f:
            Instruction::ret(Reg::R25, imm(8)),
            Instruction::nop(),
        ];
        let diags = lint(insns);
        assert!(
            rules_of(&diags).contains(&Rule::RetWithoutCall),
            "{diags:?}"
        );
    }

    #[test]
    fn branch_into_delay_slot_is_flagged() {
        // The conditional jump at word 1 targets word 5, which is the
        // delay slot of the (also reachable) jump at word 4.
        let insns = vec![
            Instruction::reg_scc(Opcode::Sub, Reg::R0, Reg::R26, imm(0)),
            Instruction::jmpr(Cond::Eq, 16), // -> word 5
            Instruction::nop(),
            Instruction::nop(),
            Instruction::jmpr(Cond::Alw, 12), // -> word 7, slot is word 5
            Instruction::reg(Opcode::Add, Reg::R2, Reg::R0, imm(1)),
            Instruction::nop(),
            Instruction::ret(Reg::R0, Short2::ZERO),
            Instruction::nop(),
        ];
        let diags = lint(insns);
        assert!(
            rules_of(&diags).contains(&Rule::BranchIntoDelaySlot),
            "{diags:?}"
        );
    }

    /// The entry halts at words 0..2; the handler body starts at word 2.
    fn handler_config() -> LintConfig {
        LintConfig {
            trap_handlers: vec![2 * INSN_BYTES],
            ..LintConfig::default()
        }
    }

    #[test]
    fn trap_handler_returning_with_ret_is_flagged() {
        let mut insns = halt();
        // handler: stash the cause in a global, then (wrongly) plain ret.
        insns.push(Instruction::reg(Opcode::Add, Reg::R2, Reg::R24, imm(0)));
        insns.push(Instruction::ret(Reg::R25, Short2::ZERO));
        insns.push(Instruction::nop());
        let diags = lint_program(&Program::from_instructions(insns), &handler_config());
        let rules = rules_of(&diags);
        assert!(rules.contains(&Rule::TrapHandlerMissingReti), "{diags:?}");
        assert!(
            !rules.contains(&Rule::UnreachableCode),
            "a handler root is live code: {diags:?}"
        );
        assert!(
            !rules.contains(&Rule::UninitRead) && !rules.contains(&Rule::RetWithoutCall),
            "trap entry defines r23-r25: {diags:?}"
        );
        assert!(!has_errors(&diags));
    }

    #[test]
    fn trap_handler_returning_with_reti_is_clean() {
        let mut insns = halt();
        insns.push(Instruction::reg(Opcode::Add, Reg::R2, Reg::R24, imm(0)));
        insns.push(Instruction::reti(Reg::R25, Short2::ZERO));
        insns.push(Instruction::nop());
        let diags = lint_program(&Program::from_instructions(insns), &handler_config());
        assert!(rules_of(&diags).is_empty(), "{diags:?}");
    }

    #[test]
    fn dual_use_handler_stands_down() {
        // entry callr's the function at word 4; the same head is declared
        // a trap root. On the call path a plain ret is legitimate.
        let insns = vec![
            Instruction::callr(Reg::R25, 4 * INSN_BYTES as i32),
            Instruction::nop(),
            Instruction::ret(Reg::R0, Short2::ZERO),
            Instruction::nop(),
            // f:
            Instruction::reg(Opcode::Add, Reg::R2, Reg::R26, imm(0)),
            Instruction::ret(Reg::R25, Short2::ZERO),
            Instruction::nop(),
        ];
        let config = LintConfig {
            trap_handlers: vec![4 * INSN_BYTES],
            ..LintConfig::default()
        };
        let diags = lint_program(&Program::from_instructions(insns), &config);
        assert!(
            !rules_of(&diags).contains(&Rule::TrapHandlerMissingReti),
            "{diags:?}"
        );
    }

    #[test]
    fn diagnostics_sort_errors_first() {
        let mut insns = vec![
            Instruction::reg(Opcode::Add, Reg::R16, Reg::R17, imm(0)), // warning (late pc? no, pc 0)
            Instruction::jmpr(Cond::Alw, 8),
            Instruction::jmpr(Cond::Alw, 4), // error at pc 8
        ];
        insns.extend(halt());
        let diags = lint(insns);
        assert!(!diags.is_empty());
        assert_eq!(diags[0].severity, Severity::Error);
    }
}
