//! The structured diagnostics model: rules, severities, and rendering.
//!
//! Every finding the analyzer makes is a [`Diagnostic`] — a rule identifier,
//! a fixed severity, the byte offset of the offending instruction, and a
//! human-readable message. Diagnostics render either as compiler-style text
//! lines or as machine-readable JSON lines (one object per line, no
//! dependencies on a JSON library).

use std::fmt;

/// How bad a finding is.
///
/// * `Error` — the program will fault or run off the end of code when the
///   flagged path executes (e.g. a transfer in a delay slot is a hardware
///   fault on RISC I).
/// * `Warning` — legal to execute but almost certainly not what the author
///   meant (reads of never-written registers return the architectural zero;
///   an interrupt restart can re-execute a clobbered jump).
/// * `Info` — a missed optimization or a property worth knowing
///   (dead stores, recursion making window overflow depth-dependent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Worth knowing; nothing will misbehave.
    Info,
    /// Suspicious: well-defined at runtime but very likely a bug.
    Warning,
    /// Will fault or leave defined code when executed.
    Error,
}

impl Severity {
    /// Lowercase name used in both renderings.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

macro_rules! rules {
    ($(($variant:ident, $name:literal, $sev:ident, $doc:literal)),* $(,)?) => {
        /// Everything the analyzer can complain about.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub enum Rule {
            $(#[doc = $doc] $variant,)*
        }

        impl Rule {
            /// Every rule, in catalogue order.
            pub const ALL: &'static [Rule] = &[$(Rule::$variant),*];

            /// The kebab-case rule identifier used in rendered output.
            pub fn name(self) -> &'static str {
                match self { $(Rule::$variant => $name,)* }
            }

            /// The rule's fixed severity.
            pub fn severity(self) -> Severity {
                match self { $(Rule::$variant => Severity::$sev,)* }
            }

            /// One-line description of what the rule checks.
            pub fn description(self) -> &'static str {
                match self { $(Rule::$variant => $doc,)* }
            }
        }
    };
}

rules! {
    (TransferInDelaySlot, "transfer-in-delay-slot", Error,
     "a transfer of control sits in another transfer's delay slot - a hardware fault on RISC I"),
    (MissingDelaySlot, "missing-delay-slot", Error,
     "a delayed transfer is the last word of code, so its delay slot is missing"),
    (JumpOutOfRange, "jump-out-of-range", Error,
     "a PC-relative transfer targets an address outside the program's code"),
    (UndecodableReachable, "undecodable-reachable", Error,
     "execution can reach a word that does not decode to any instruction"),
    (FallOffEnd, "fall-off-end", Error,
     "execution can run past the end of code without a ret/halt"),
    (DelaySlotClobber, "delay-slot-clobber", Warning,
     "the delay-slot instruction clobbers a register or condition code its transfer consumes"),
    (BranchIntoDelaySlot, "branch-into-delay-slot", Warning,
     "a transfer targets an instruction that is some other transfer's delay slot"),
    (UninitRead, "uninit-read", Warning,
     "a register is read on a path where nothing ever wrote it"),
    (RetWithoutCall, "ret-without-call", Warning,
     "a ret consumes a return address that no reaching call produced"),
    (TrapHandlerMissingReti, "trap-handler-missing-reti", Warning,
     "a function reachable only via the trap vector returns with ret instead of reti, leaving the trap unit armed and interrupts masked"),
    (WindowOverflowDepth, "window-overflow-depth", Warning,
     "the static call chain is deep enough to guarantee register-window overflow traps"),
    (UnreachableCode, "unreachable-code", Warning,
     "a decodable instruction can never execute"),
    (SpecIllegalEncoding, "spec-illegal-encoding", Warning,
     "an instruction's operand shape is one the ISA spec table rejects - it decodes, but the assembler could never have produced it"),
    (DeadStore, "dead-store", Info,
     "a register is written and then never read before being overwritten"),
    (DeadSccSet, "dead-scc-set", Info,
     "an instruction sets the condition codes but nothing reads them before the next setter"),
    (RecursiveCallGraph, "recursive-call-graph", Info,
     "the call graph has a cycle, so window overflow depends on runtime depth"),
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Byte offset of the offending instruction within the code image.
    /// (Kept first so the derived ordering sorts findings by address.)
    pub pc: u32,
    /// Which rule fired.
    pub rule: Rule,
    /// The rule's severity, denormalized for convenience.
    pub severity: Severity,
    /// Human-readable explanation, including the decoded instruction and
    /// the enclosing symbol when known.
    pub message: String,
}

impl Diagnostic {
    /// A diagnostic for `rule` at byte offset `pc`.
    pub fn new(rule: Rule, pc: u32, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            pc,
            rule,
            severity: rule.severity(),
            message: message.into(),
        }
    }

    /// Renders as one JSON object (a single line, keys fixed):
    /// `{"rule":"…","severity":"…","pc":64,"message":"…"}`.
    pub fn to_json(&self) -> String {
        let mut msg = String::with_capacity(self.message.len());
        for c in self.message.chars() {
            match c {
                '"' => msg.push_str("\\\""),
                '\\' => msg.push_str("\\\\"),
                '\n' => msg.push_str("\\n"),
                '\t' => msg.push_str("\\t"),
                c if (c as u32) < 0x20 => msg.push_str(&format!("\\u{:04x}", c as u32)),
                c => msg.push(c),
            }
        }
        format!(
            "{{\"rule\":\"{}\",\"severity\":\"{}\",\"pc\":{},\"message\":\"{}\"}}",
            self.rule.name(),
            self.severity.name(),
            self.pc,
            msg
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] at +0x{:04x}: {}",
            self.severity,
            self.rule.name(),
            self.pc,
            self.message
        )
    }
}

/// Renders a batch of diagnostics as text lines followed by a one-line
/// summary, the format `risc1 lint` prints.
pub fn render_text(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    let count = |s: Severity| diags.iter().filter(|d| d.severity == s).count();
    out.push_str(&format!(
        "{} error(s), {} warning(s), {} info\n",
        count(Severity::Error),
        count(Severity::Warning),
        count(Severity::Info)
    ));
    out
}

/// Renders a batch as JSON lines (one object per diagnostic, no summary).
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_json());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ordering_puts_errors_on_top() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn rule_names_are_unique_kebab_case() {
        let mut seen = std::collections::HashSet::new();
        for r in Rule::ALL {
            let n = r.name();
            assert!(n.chars().all(|c| c.is_ascii_lowercase() || c == '-'), "{n}");
            assert!(seen.insert(n), "duplicate rule name {n}");
        }
    }

    #[test]
    fn json_escapes_quotes_and_control_chars() {
        let d = Diagnostic::new(Rule::UninitRead, 8, "say \"hi\"\n\u{1}");
        let j = d.to_json();
        assert_eq!(
            j,
            "{\"rule\":\"uninit-read\",\"severity\":\"warning\",\"pc\":8,\
             \"message\":\"say \\\"hi\\\"\\n\\u0001\"}"
        );
    }

    #[test]
    fn text_render_includes_summary() {
        let d = vec![
            Diagnostic::new(Rule::FallOffEnd, 4, "oops"),
            Diagnostic::new(Rule::DeadStore, 0, "meh"),
        ];
        let t = render_text(&d);
        assert!(t.contains("error[fall-off-end] at +0x0004: oops"));
        assert!(t.ends_with("1 error(s), 0 warning(s), 1 info\n"));
    }
}
