//! Bitset dataflow over the 32-register window-relative file.
//!
//! Both passes run per function on the blocks built by [`crate::cfg`]:
//!
//! * **May-defined** (forward, union at joins): which registers have a
//!   definition on *some* path from the function entry. A read of a
//!   register outside this set is definitely never written — the basis of
//!   the uninit-read rule with essentially no false positives.
//! * **Liveness** (backward, union at joins): which registers may still be
//!   read before being overwritten — the basis of the dead-store rule.
//!
//! State is a `u64` bitset: bits 1–31 are `r1`–`r31` in the *current
//! window's* name space (r0 is hardwired zero and never tracked), bit 32 is
//! the condition flags. Calls are modelled by a transfer-function summary
//! of the whole callee execution as seen from the caller's window: the
//! callee shares globals r1–r9 and writes its results into the caller's
//! LOW registers r10–r15 (its own HIGH), and may set the flags. The
//! caller's LOCAL registers r16–r25 are untouchable by a well-nested callee
//! — which is exactly what makes window-relative dataflow tractable.

use crate::cfg::{BasicBlock, FunctionCfg, InsnIdx};
use risc1_isa::{Instruction, Reg};

/// A set of dataflow facts: bits 1–31 = registers, bit 32 = flags.
pub type BitSet = u64;

/// Bit index of the condition flags pseudo-register.
pub const FLAGS: u32 = 32;
/// The flags as a [`BitSet`].
pub const FLAGS_BIT: BitSet = 1 << FLAGS;
/// Every tracked fact: r1–r31 and the flags.
pub const ALL: BitSet = reg_range(1, 31) | FLAGS_BIT;

/// The bit for one register (empty for r0).
pub fn reg_bit(r: Reg) -> BitSet {
    if r.is_zero() {
        0
    } else {
        1 << r.number()
    }
}

/// Bits for the inclusive register range `rLO..=rHI`.
pub const fn reg_range(lo: u8, hi: u8) -> BitSet {
    // ((1 << (hi+1)) - 1) minus ((1 << lo) - 1), avoiding overflow at 63.
    let upper = if hi >= 63 {
        !0u64
    } else {
        (1u64 << (hi + 1)) - 1
    };
    let lower = (1u64 << lo) - 1;
    upper & !lower
}

/// The registers a [`BitSet`] names, for diagnostics.
pub fn set_regs(s: BitSet) -> Vec<Reg> {
    Reg::all().filter(|r| reg_bit(*r) & s != 0).collect()
}

/// Use/def facts for one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Effects {
    /// Facts the instruction consumes.
    pub uses: BitSet,
    /// Facts the instruction produces.
    pub defs: BitSet,
}

/// The architectural effect of the instruction itself: exactly the
/// registers its operand fields read and write, plus the flags, all taken
/// from the ISA spec table (`risc1_isa::spec`) — the analyzer maintains no
/// per-opcode def/use knowledge of its own. This is what the uninit-read
/// rule checks, so a call does *not* "use" all six outgoing-argument
/// registers here.
pub fn arch_effects(insn: &Instruction) -> Effects {
    use risc1_isa::spec;
    let mut uses: BitSet = spec::reg_reads(insn)
        .into_iter()
        .fold(0, |s, r| s | reg_bit(r));
    let mut defs: BitSet = spec::reg_write(insn).map(reg_bit).unwrap_or(0);
    if spec::reads_condition_codes(insn) {
        uses |= FLAGS_BIT;
    }
    if spec::sets_condition_codes(insn) {
        defs |= FLAGS_BIT;
    }
    Effects { uses, defs }
}

/// The caller-visible effect of the instruction *including a summary of the
/// callee* for calls: the callee may read the shared globals and its
/// incoming arguments (the caller's r10–r15), and may write globals, the
/// caller's LOW registers (its own HIGH r26–r31 alias them) and the flags.
/// The link register is deliberately not a caller-side def — the call
/// writes it into the *callee's* window.
pub fn summary_effects(insn: &Instruction) -> Effects {
    let mut e = arch_effects(insn);
    if insn.opcode.is_call() {
        // The architectural link write happens after the window moves, so
        // it is not a def of any caller-window register.
        e.defs &= !insn.link_reg().map(reg_bit).unwrap_or(0);
        e.uses |= reg_range(1, 15) | FLAGS_BIT;
        e.defs |= reg_range(1, 15) | FLAGS_BIT;
    }
    e
}

/// Per-block fixpoint results; indexed by `BlockId`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowSets {
    /// Facts at block entry.
    pub ins: Vec<BitSet>,
    /// Facts at block exit.
    pub outs: Vec<BitSet>,
}

fn block_insns<'c>(
    b: &BasicBlock,
    code: &'c [Option<Instruction>],
) -> impl Iterator<Item = (InsnIdx, Instruction)> + 'c {
    let range = b.start..b.end.min(code.len());
    range.filter_map(move |i| code[i].map(|insn| (i, insn)))
}

/// Forward may-defined analysis. `entry_defined` seeds the function's entry
/// block (the block starting at `f.head`).
pub fn may_defined(
    f: &FunctionCfg,
    code: &[Option<Instruction>],
    entry_defined: BitSet,
) -> FlowSets {
    let n = f.blocks.len();
    let entry_block = f.blocks.iter().position(|b| b.start == f.head);
    let mut ins = vec![0u64; n];
    let mut outs = vec![0u64; n];
    if let Some(e) = entry_block {
        ins[e] = entry_defined;
    }
    let mut changed = true;
    while changed {
        changed = false;
        for id in 0..n {
            let mut inset = ins[id];
            for (pid, pb) in f.blocks.iter().enumerate() {
                if pb.succs.contains(&id) {
                    inset |= outs[pid];
                }
            }
            let mut out = inset;
            for (_, insn) in block_insns(&f.blocks[id], code) {
                out |= summary_effects(&insn).defs;
            }
            if inset != ins[id] || out != outs[id] {
                ins[id] = inset;
                outs[id] = out;
                changed = true;
            }
        }
    }
    FlowSets { ins, outs }
}

/// Backward liveness. `exit_live` is what the world outside the function
/// still reads after it returns (globals, the caller-visible HIGH
/// registers holding results, the flags). Blocks that fall off the end of
/// code or leave through an indexed jump conservatively treat *everything*
/// as live.
pub fn liveness(f: &FunctionCfg, code: &[Option<Instruction>], exit_live: BitSet) -> FlowSets {
    let n = f.blocks.len();
    let mut ins = vec![0u64; n];
    let mut outs = vec![0u64; n];
    let mut changed = true;
    while changed {
        changed = false;
        for id in (0..n).rev() {
            let b = &f.blocks[id];
            let mut out = 0u64;
            for &s in &b.succs {
                out |= ins[s];
            }
            if b.exits || b.tail_to.is_some() {
                out |= exit_live;
            }
            if b.falls_off || (b.exits && b.term.is_none()) {
                out |= ALL;
            }
            let mut live = out;
            let insns: Vec<(InsnIdx, Instruction)> = block_insns(b, code).collect();
            for (_, insn) in insns.iter().rev() {
                let e = summary_effects(insn);
                live = (live & !e.defs) | e.uses;
            }
            if out != outs[id] || live != ins[id] {
                outs[id] = out;
                ins[id] = live;
                changed = true;
            }
        }
    }
    FlowSets { ins, outs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use risc1_core::Program;
    use risc1_isa::{Cond, Opcode, Short2};

    fn imm(v: i32) -> Short2 {
        Short2::imm(v).unwrap()
    }

    #[test]
    fn reg_range_bits() {
        assert_eq!(reg_range(1, 1), 0b10);
        assert_eq!(reg_range(1, 3), 0b1110);
        assert_eq!(reg_range(10, 15).count_ones(), 6);
        assert_eq!(ALL.count_ones(), 32, "r1-r31 plus flags");
    }

    #[test]
    fn arch_effects_of_common_shapes() {
        let add = Instruction::reg(Opcode::Add, Reg::R16, Reg::R17, Short2::reg(Reg::R18));
        let e = arch_effects(&add);
        assert_eq!(e.uses, reg_bit(Reg::R17) | reg_bit(Reg::R18));
        assert_eq!(e.defs, reg_bit(Reg::R16));

        let scc = Instruction::reg_scc(Opcode::Sub, Reg::R0, Reg::R16, imm(0));
        assert_eq!(arch_effects(&scc).defs, FLAGS_BIT);
        let j = Instruction::jmpr(Cond::Eq, 8);
        assert_eq!(arch_effects(&j).uses, FLAGS_BIT);

        // A call's architectural effect reads nothing (callr) — the callee
        // summary only appears in summary_effects.
        let call = Instruction::callr(Reg::R25, 8);
        assert_eq!(arch_effects(&call).uses, 0);
        let s = summary_effects(&call);
        assert!(s.defs & reg_range(10, 15) == reg_range(10, 15));
        assert!(
            s.defs & reg_bit(Reg::R25) == 0,
            "link lands in the callee window"
        );
        assert!(s.uses & reg_range(10, 15) == reg_range(10, 15));
    }

    /// acc never written before the loop reads it → stays outside
    /// may-defined everywhere.
    #[test]
    fn may_defined_misses_never_written_reg() {
        let p = Program::from_instructions(vec![
            Instruction::reg(Opcode::Add, Reg::R16, Reg::R17, imm(1)), // r17 never defined
            Instruction::ret(Reg::R0, Short2::ZERO),
            Instruction::nop(),
        ]);
        let cfg = Cfg::build(&p);
        let f = cfg.entry_function();
        let sets = may_defined(f, &cfg.code, 0);
        assert_eq!(sets.ins[0], 0);
        assert_eq!(sets.outs[0], reg_bit(Reg::R16));
    }

    /// Around a diamond, a def on one branch joins in via union.
    #[test]
    fn may_defined_joins_with_union() {
        // 0: jmpr eq +12 (-> 3)   1: nop
        // 2: add r16, r0, #1      (fallthrough defines r16)
        // 3: ret r0               4: nop
        let p = Program::from_instructions(vec![
            Instruction::jmpr(Cond::Eq, 12),
            Instruction::nop(),
            Instruction::reg(Opcode::Add, Reg::R16, Reg::R0, imm(1)),
            Instruction::ret(Reg::R0, Short2::ZERO),
            Instruction::nop(),
        ]);
        let cfg = Cfg::build(&p);
        let f = cfg.entry_function();
        let sets = may_defined(f, &cfg.code, FLAGS_BIT);
        let exit = f.block_containing(3).unwrap();
        assert_eq!(sets.ins[exit] & reg_bit(Reg::R16), reg_bit(Reg::R16));
    }

    #[test]
    fn liveness_sees_use_after_def() {
        // r16 := 1; r17 := r16 + 1; ret. r16 live between, dead after.
        let p = Program::from_instructions(vec![
            Instruction::reg(Opcode::Add, Reg::R16, Reg::R0, imm(1)),
            Instruction::reg(Opcode::Add, Reg::R17, Reg::R16, imm(1)),
            Instruction::ret(Reg::R0, Short2::ZERO),
            Instruction::nop(),
        ]);
        let cfg = Cfg::build(&p);
        let f = cfg.entry_function();
        let sets = liveness(f, &cfg.code, reg_range(1, 9));
        // At block entry nothing is live except what the block itself
        // needs: the first insn reads nothing (r0).
        assert_eq!(sets.ins[0] & reg_bit(Reg::R16), 0);
        // The exit-live set propagates to the block's out.
        assert_eq!(sets.outs[0], reg_range(1, 9));
    }

    #[test]
    fn loop_liveness_reaches_fixpoint() {
        // top: r16 := r16 + 1; sub {scc}; jmpr ne top; ret
        let p = Program::from_instructions(vec![
            Instruction::reg(Opcode::Add, Reg::R16, Reg::R16, imm(1)),
            Instruction::reg_scc(Opcode::Sub, Reg::R0, Reg::R16, imm(10)),
            Instruction::jmpr(Cond::Ne, -8),
            Instruction::nop(),
            Instruction::ret(Reg::R0, Short2::ZERO),
            Instruction::nop(),
        ]);
        let cfg = Cfg::build(&p);
        let f = cfg.entry_function();
        let sets = liveness(f, &cfg.code, 0);
        let top = f.block_containing(0).unwrap();
        assert!(
            sets.ins[top] & reg_bit(Reg::R16) != 0,
            "loop-carried register is live at the loop head"
        );
    }
}
