//! Control-flow graph construction with RISC I delay-slot semantics.
//!
//! The decoder view of a program is a flat `Vec<u32>`; this module lifts it
//! into per-function basic blocks. Two ISA mechanisms make this different
//! from a textbook CFG:
//!
//! * **Delayed transfers.** Every transfer except `CALLI` executes the
//!   following word — its delay slot — before control moves. A transfer and
//!   its slot therefore form an indivisible two-word terminator: the block
//!   containing a `jmpr` at word *i* extends through word *i + 1*, and its
//!   successors leave from *i + 2* and the jump target. Instruction order
//!   inside the pair matches dataflow order (the transfer reads its
//!   operands *before* the slot runs, exactly as the simulator does).
//! * **Register windows.** `CALL*`/`RET*` move the window, so call edges
//!   are recorded separately ([`CallSite`]) rather than as ordinary CFG
//!   edges, and the call graph supports the static window-depth analysis.
//!
//! Functions are discovered, not declared: the entry point plus every
//! statically known call target (`callr`) starts a function, and each
//! function's blocks are found by forward walk from its head. Indexed
//! jumps (`jmp rs1`) have statically unknown targets; a function containing
//! one is flagged so reachability-based rules can stand down.

use crate::diag::{Diagnostic, Rule};
use risc1_core::Program;
use risc1_isa::{Cond, Instruction, Opcode, Reg, INSN_BYTES};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Index of an instruction word within the code image.
pub type InsnIdx = usize;
/// Index of a block within its function's `blocks` vector.
pub type BlockId = usize;

/// A statically known (or unknown-target) call instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Word index of the `call`/`callr`/`calli`.
    pub at: InsnIdx,
    /// Head of the callee when statically known (`callr`); `None` for
    /// indexed `call rs1` and `calli`.
    pub target: Option<InsnIdx>,
    /// The register the callee will find its return address in.
    pub link: Option<Reg>,
}

/// A maximal straight-line run of instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// Word-index range `start..end` (exclusive). For a block ending in a
    /// delayed transfer, `end` includes the delay slot.
    pub start: InsnIdx,
    /// One past the last word of the block.
    pub end: InsnIdx,
    /// Intra-function successor blocks.
    pub succs: Vec<BlockId>,
    /// Word index of the terminating transfer, if the block ends in one.
    pub term: Option<InsnIdx>,
    /// Whether the block leaves the function (`ret`/`reti`, or an
    /// unconditional transfer with no static successor).
    pub exits: bool,
    /// Whether execution can run past the end of code from this block.
    pub falls_off: bool,
    /// Head of another function this block jumps to without a call
    /// (a tail transfer), if any.
    pub tail_to: Option<InsnIdx>,
}

/// One discovered function: a head, its blocks, and its outgoing calls.
#[derive(Debug, Clone)]
pub struct FunctionCfg {
    /// Word index of the function's first instruction.
    pub head: InsnIdx,
    /// Symbol bound exactly to the head, when the program has one.
    pub name: Option<String>,
    /// Whether this is the program entry point.
    pub is_entry: bool,
    /// Whether this function was declared a trap-handler root (reachable
    /// via the trap vector rather than any call instruction).
    pub is_trap_handler: bool,
    /// Basic blocks, in ascending address order; block 0 starts at `head`.
    pub blocks: Vec<BasicBlock>,
    /// Call instructions inside this function.
    pub calls: Vec<CallSite>,
    /// Whether the function contains a reachable indexed jump (`jmp rs1`),
    /// making its static successor set incomplete.
    pub has_indexed_jump: bool,
}

impl FunctionCfg {
    /// A printable name for messages: the bound symbol or `@+0xOFF`.
    pub fn label(&self) -> String {
        match &self.name {
            Some(n) => n.clone(),
            None => format!("@+0x{:04x}", self.head * INSN_BYTES as usize),
        }
    }

    /// The block whose range contains `idx`, if any.
    pub fn block_containing(&self, idx: InsnIdx) -> Option<BlockId> {
        self.blocks
            .iter()
            .position(|b| (b.start..b.end).contains(&idx))
    }
}

/// The whole-program control-flow graph.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Decoded view of every code word (`None` = does not decode).
    pub code: Vec<Option<Instruction>>,
    /// Word index of the program entry point.
    pub entry: InsnIdx,
    /// Whether each word can execute on some path from the entry.
    pub reachable: Vec<bool>,
    /// Whether each word is the delay slot of some reachable transfer.
    pub delay_slot: Vec<bool>,
    /// Discovered functions; index 0 is the entry function.
    pub functions: Vec<FunctionCfg>,
    /// Whether any reachable indexed jump exists anywhere (suppresses
    /// whole-program reachability claims).
    pub has_indexed_jump: bool,
    /// Structural problems found during construction (undecodable words,
    /// out-of-range or slotless transfers).
    pub issues: Vec<Diagnostic>,
}

/// Where control can go after the instruction at `i` finishes (including
/// its delay slot, when it has one).
enum Flow {
    /// Ordinary instruction: falls into `i + 1`.
    Seq,
    /// `jmpr`/`jmp`: optional static target, optional fallthrough.
    Jump {
        target: Option<InsnIdx>,
        falls: bool,
        indexed: bool,
    },
    /// `call`/`callr`/`calli`: control returns to `ret_to` from the
    /// caller's perspective.
    Call { site: CallSite, ret_to: InsnIdx },
    /// `ret`/`reti`: leaves the function.
    Exit,
}

impl Cfg {
    /// Builds the CFG for a program. Structural errors land in
    /// [`Cfg::issues`]; the rule suite in [`crate::rules`] adds the
    /// dataflow-based findings on top.
    pub fn build(program: &Program) -> Cfg {
        Builder::new(program, &[]).build()
    }

    /// Builds the CFG with extra function roots that hardware reaches
    /// without any call instruction — trap-vector handlers. Each root
    /// becomes a discovered function (marked
    /// [`FunctionCfg::is_trap_handler`]) and its body counts as reachable,
    /// so handler-only code is analyzed instead of flagged as dead.
    pub fn build_with_roots(program: &Program, trap_roots: &[InsnIdx]) -> Cfg {
        Builder::new(program, trap_roots).build()
    }

    /// Convenience: the entry function.
    pub fn entry_function(&self) -> &FunctionCfg {
        &self.functions[0]
    }
}

struct Builder<'p> {
    program: &'p Program,
    code: Vec<Option<Instruction>>,
    entry: InsnIdx,
    reachable: Vec<bool>,
    delay_slot: Vec<bool>,
    issues: Vec<Diagnostic>,
    issue_keys: BTreeSet<(u32, Rule)>,
    trap_roots: BTreeSet<InsnIdx>,
}

impl<'p> Builder<'p> {
    fn new(program: &'p Program, trap_roots: &[InsnIdx]) -> Builder<'p> {
        let code: Vec<Option<Instruction>> = program
            .words
            .iter()
            .map(|&w| Instruction::decode(w).ok())
            .collect();
        let n = code.len();
        let entry = (program.entry_offset / INSN_BYTES) as usize;
        Builder {
            program,
            code,
            entry,
            reachable: vec![false; n],
            delay_slot: vec![false; n],
            issues: Vec::new(),
            issue_keys: BTreeSet::new(),
            // The entry point keeps its entry role even when listed.
            trap_roots: trap_roots
                .iter()
                .copied()
                .filter(|&r| r < n && r != entry)
                .collect(),
        }
    }

    fn issue(&mut self, rule: Rule, idx: InsnIdx, message: String) {
        let pc = (idx * INSN_BYTES as usize) as u32;
        if self.issue_keys.insert((pc, rule)) {
            self.issues.push(Diagnostic::new(rule, pc, message));
        }
    }

    fn at(&self, idx: InsnIdx) -> String {
        match self.code.get(idx).copied().flatten() {
            Some(insn) => format!("`{insn}`"),
            None => format!(
                "word 0x{:08x}",
                self.program.words.get(idx).copied().unwrap_or(0)
            ),
        }
    }

    /// Classifies control flow out of the instruction at `i`, emitting
    /// structural diagnostics for malformed transfers.
    fn flow(&mut self, i: InsnIdx) -> Flow {
        let insn = match self.code[i] {
            Some(insn) => insn,
            None => return Flow::Exit, // fault point; error emitted by caller
        };
        if !insn.opcode.is_transfer() {
            return Flow::Seq;
        }
        if insn.opcode.has_delay_slot() && i + 1 >= self.code.len() {
            self.issue(
                Rule::MissingDelaySlot,
                i,
                format!(
                    "{} is the last word of code; its delay slot is missing",
                    self.at(i)
                ),
            );
        }
        let after = if insn.opcode.has_delay_slot() {
            i + 2
        } else {
            i + 1
        };
        match insn.opcode {
            Opcode::Jmpr => {
                let cond = insn.jump_cond().unwrap_or(Cond::Alw);
                Flow::Jump {
                    target: (cond != Cond::Nvr)
                        .then(|| self.relative_target(i))
                        .flatten(),
                    falls: cond != Cond::Alw,
                    indexed: false,
                }
            }
            Opcode::Jmp => Flow::Jump {
                target: None,
                falls: insn.jump_cond() != Some(Cond::Alw),
                indexed: true,
            },
            Opcode::Callr => Flow::Call {
                site: CallSite {
                    at: i,
                    target: self.relative_target(i),
                    link: insn.link_reg(),
                },
                ret_to: after,
            },
            Opcode::Call | Opcode::Calli => Flow::Call {
                site: CallSite {
                    at: i,
                    target: None,
                    link: insn.link_reg(),
                },
                ret_to: after,
            },
            Opcode::Ret | Opcode::Reti => Flow::Exit,
            _ => unreachable!("transfer opcodes are covered"),
        }
    }

    /// Resolves a `jmpr`/`callr` byte offset to a word index, or emits
    /// [`Rule::JumpOutOfRange`] and returns `None`.
    fn relative_target(&mut self, i: InsnIdx) -> Option<InsnIdx> {
        let insn = self.code[i]?;
        let imm19 = match insn.operands {
            risc1_isa::Operands::Long { imm19, .. }
            | risc1_isa::Operands::LongCond { imm19, .. } => imm19,
            _ => return None,
        };
        let bytes = INSN_BYTES as i64;
        let target = i as i64 * bytes + imm19 as i64;
        if target % bytes != 0 || target < 0 || target >= self.code.len() as i64 * bytes {
            self.issue(
                Rule::JumpOutOfRange,
                i,
                format!(
                    "{} targets byte offset {target}, outside the {}-byte code image",
                    self.at(i),
                    self.code.len() * INSN_BYTES as usize
                ),
            );
            return None;
        }
        Some((target / bytes) as usize)
    }

    /// Marks the delay slot of the transfer at `i` reachable and checks it
    /// decodes.
    fn visit_slot(&mut self, i: InsnIdx) {
        if let Some(insn) = self.code.get(i).copied().flatten() {
            if insn.opcode.has_delay_slot() && i + 1 < self.code.len() {
                self.delay_slot[i + 1] = true;
                if !self.reachable[i + 1] {
                    self.reachable[i + 1] = true;
                    if self.code[i + 1].is_none() {
                        self.issue(
                            Rule::UndecodableReachable,
                            i + 1,
                            format!("delay slot of {} does not decode", self.at(i)),
                        );
                    }
                }
            }
        }
    }

    /// Whole-program reachability walk from the entry; returns the set of
    /// statically known call-target heads, in address order.
    fn walk_program(&mut self) -> (BTreeSet<InsnIdx>, bool) {
        // Trap-handler roots are function heads the hardware jumps to; the
        // walk starts from them as well so their bodies count as reachable.
        let mut heads: BTreeSet<InsnIdx> = self.trap_roots.clone();
        let mut indexed = false;
        let mut work: VecDeque<InsnIdx> = VecDeque::from([self.entry]);
        work.extend(self.trap_roots.iter().copied());
        while let Some(i) = work.pop_front() {
            if i >= self.code.len() || self.reachable[i] {
                continue;
            }
            self.reachable[i] = true;
            if self.code[i].is_none() {
                self.issue(
                    Rule::UndecodableReachable,
                    i,
                    format!("{} can execute but is not a valid instruction", self.at(i)),
                );
                continue;
            }
            match self.flow(i) {
                Flow::Seq => work.push_back(i + 1),
                Flow::Jump {
                    target,
                    falls,
                    indexed: ix,
                } => {
                    self.visit_slot(i);
                    indexed |= ix;
                    if let Some(t) = target {
                        work.push_back(t);
                    }
                    if falls {
                        work.push_back(i + 2);
                    }
                }
                Flow::Call { site, ret_to } => {
                    self.visit_slot(i);
                    if let Some(t) = site.target {
                        heads.insert(t);
                        work.push_back(t);
                    }
                    work.push_back(ret_to);
                }
                Flow::Exit => self.visit_slot(i),
            }
        }
        (heads, indexed)
    }

    /// Walks one function from `head`, producing its blocks and calls.
    fn walk_function(&mut self, head: InsnIdx, heads: &BTreeSet<InsnIdx>) -> FunctionCfg {
        let len = self.code.len();
        let mut leaders: BTreeSet<InsnIdx> = BTreeSet::from([head]);
        let mut visited: BTreeSet<InsnIdx> = BTreeSet::new();
        let mut calls: Vec<CallSite> = Vec::new();
        let mut has_indexed_jump = false;

        // Pass 1: discover the function's words and leaders.
        let mut work = VecDeque::from([head]);
        while let Some(i) = work.pop_front() {
            if i >= len || !visited.insert(i) {
                continue;
            }
            match self.flow(i) {
                Flow::Seq => work.push_back(i + 1),
                Flow::Jump {
                    target,
                    falls,
                    indexed,
                } => {
                    visited.extend(self.slot_of(i));
                    has_indexed_jump |= indexed;
                    if let Some(t) = target {
                        // A jump to another function's head is a tail
                        // transfer, not part of this function's body.
                        if t == head || !heads.contains(&t) {
                            leaders.insert(t);
                            work.push_back(t);
                        }
                    }
                    if falls && i + 2 < len {
                        leaders.insert(i + 2);
                        work.push_back(i + 2);
                    }
                }
                Flow::Call { site, ret_to } => {
                    visited.extend(self.slot_of(i));
                    calls.push(site);
                    if ret_to < len {
                        leaders.insert(ret_to);
                        work.push_back(ret_to);
                    }
                }
                Flow::Exit => {
                    visited.extend(self.slot_of(i));
                }
            }
        }

        // Pass 2: cut blocks at leaders and transfer pairs.
        let live_leaders: Vec<InsnIdx> = leaders
            .iter()
            .copied()
            .filter(|l| visited.contains(l))
            .collect();
        let block_of: HashMap<InsnIdx, BlockId> = live_leaders
            .iter()
            .enumerate()
            .map(|(id, &l)| (l, id))
            .collect();
        let mut blocks = Vec::with_capacity(live_leaders.len());
        for &start in &live_leaders {
            blocks.push(self.cut_block(start, len, &leaders, &block_of, heads, head));
        }

        FunctionCfg {
            head,
            name: self.symbol_at(head),
            is_entry: head == self.entry,
            is_trap_handler: self.trap_roots.contains(&head),
            blocks,
            calls,
            has_indexed_jump,
        }
    }

    /// The slot index of the transfer at `i`, when it exists.
    fn slot_of(&self, i: InsnIdx) -> Option<InsnIdx> {
        let insn = self.code.get(i).copied().flatten()?;
        (insn.opcode.has_delay_slot() && i + 1 < self.code.len()).then_some(i + 1)
    }

    /// Walks forward from `start` to the end of its basic block.
    fn cut_block(
        &mut self,
        start: InsnIdx,
        len: InsnIdx,
        leaders: &BTreeSet<InsnIdx>,
        block_of: &HashMap<InsnIdx, BlockId>,
        heads: &BTreeSet<InsnIdx>,
        head: InsnIdx,
    ) -> BasicBlock {
        let mut b = BasicBlock {
            start,
            end: start,
            succs: Vec::new(),
            term: None,
            exits: false,
            falls_off: false,
            tail_to: None,
        };
        let mut succ_leaders: Vec<InsnIdx> = Vec::new();
        let mut i = start;
        loop {
            if i >= len {
                b.falls_off = true;
                break;
            }
            if self.code[i].is_none() {
                // Fault point: the undecodable-reachable error was already
                // recorded by the whole-program walk.
                b.end = i + 1;
                b.exits = true;
                break;
            }
            match self.flow(i) {
                Flow::Seq => {
                    b.end = i + 1;
                    if leaders.contains(&(i + 1)) {
                        succ_leaders.push(i + 1);
                        break;
                    }
                    i += 1;
                }
                Flow::Jump {
                    target,
                    falls,
                    indexed,
                } => {
                    b.term = Some(i);
                    b.end = self.slot_of(i).map_or(i + 1, |s| s + 1);
                    if let Some(t) = target {
                        if t != head && heads.contains(&t) {
                            b.tail_to = Some(t);
                        } else {
                            succ_leaders.push(t);
                        }
                    }
                    if falls && i + 2 < len {
                        succ_leaders.push(i + 2);
                    } else if falls {
                        b.falls_off = true;
                    }
                    // An unconditional indexed jump has no static
                    // successor at all; treat it as a function exit.
                    b.exits = indexed && !falls;
                    break;
                }
                Flow::Call { ret_to, .. } => {
                    b.term = Some(i);
                    b.end = self.slot_of(i).map_or(i + 1, |s| s + 1);
                    if ret_to < len {
                        succ_leaders.push(ret_to);
                    } else {
                        b.falls_off = true;
                    }
                    break;
                }
                Flow::Exit => {
                    b.term = Some(i);
                    b.end = self.slot_of(i).map_or(i + 1, |s| s + 1);
                    b.exits = true;
                    break;
                }
            }
        }
        b.succs = succ_leaders
            .into_iter()
            .filter_map(|l| block_of.get(&l).copied())
            .collect();
        b
    }

    fn symbol_at(&self, idx: InsnIdx) -> Option<String> {
        let off = (idx * INSN_BYTES as usize) as u32;
        self.program
            .symbols
            .iter()
            .find(|(_, &s)| s == off)
            .map(|(n, _)| n.clone())
    }

    fn build(mut self) -> Cfg {
        let (mut heads, has_indexed_jump) = if self.entry < self.code.len() {
            self.walk_program()
        } else {
            (BTreeSet::new(), false)
        };
        heads.remove(&self.entry);

        let mut functions = Vec::with_capacity(heads.len() + 1);
        if self.entry < self.code.len() {
            let all_heads: BTreeSet<InsnIdx> = heads.iter().copied().chain([self.entry]).collect();
            functions.push(self.walk_function(self.entry, &all_heads));
            for &h in &heads {
                functions.push(self.walk_function(h, &all_heads));
            }
        }

        Cfg {
            code: self.code,
            entry: self.entry,
            reachable: self.reachable,
            delay_slot: self.delay_slot,
            functions,
            has_indexed_jump,
            issues: self.issues,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use risc1_isa::Short2;

    fn prog(insns: Vec<Instruction>) -> Program {
        Program::from_instructions(insns)
    }

    fn halt() -> Vec<Instruction> {
        vec![Instruction::ret(Reg::R0, Short2::ZERO), Instruction::nop()]
    }

    #[test]
    fn straight_line_is_one_block() {
        let mut insns = vec![
            Instruction::reg(Opcode::Add, Reg::R16, Reg::R0, Short2::imm(1).unwrap()),
            Instruction::reg(Opcode::Add, Reg::R17, Reg::R16, Short2::imm(2).unwrap()),
        ];
        insns.extend(halt());
        let cfg = Cfg::build(&prog(insns));
        assert_eq!(cfg.functions.len(), 1);
        let f = cfg.entry_function();
        assert_eq!(f.blocks.len(), 1);
        assert_eq!((f.blocks[0].start, f.blocks[0].end), (0, 4));
        assert!(f.blocks[0].exits);
        assert_eq!(f.blocks[0].term, Some(2));
    }

    #[test]
    fn conditional_jump_splits_blocks_after_the_slot() {
        // 0: sub r0, r16, #0 {scc}
        // 1: jmpr eq, +16  (-> word 5)
        // 2:   nop          (delay slot)
        // 3: add r17, r0, #1
        // 4..5: halt at word 5
        let mut insns = vec![
            Instruction::reg_scc(Opcode::Sub, Reg::R0, Reg::R16, Short2::ZERO),
            Instruction::jmpr(Cond::Eq, 16),
            Instruction::nop(),
            Instruction::reg(Opcode::Add, Reg::R17, Reg::R0, Short2::imm(1).unwrap()),
        ];
        insns.extend(halt());
        insns.push(Instruction::nop()); // pad so target word 5 exists
        let cfg = Cfg::build(&prog(insns));
        let f = cfg.entry_function();
        assert!(cfg.issues.is_empty(), "{:?}", cfg.issues);
        let b0 = &f.blocks[f.block_containing(0).unwrap()];
        assert_eq!((b0.start, b0.end), (0, 3), "pair [jmpr, slot] ends block");
        assert_eq!(b0.term, Some(1));
        assert_eq!(b0.succs.len(), 2, "taken and fallthrough");
        assert!(cfg.delay_slot[2]);
        assert!(cfg.reachable.iter().take(6).all(|&r| r));
    }

    #[test]
    fn callr_targets_become_functions() {
        // entry: callr r25 -> f; halt. f: ret r25.
        let insns = vec![
            Instruction::callr(Reg::R25, 4 * 4), // word 0 -> word 4
            Instruction::nop(),
            Instruction::ret(Reg::R0, Short2::ZERO),
            Instruction::nop(),
            Instruction::reg(Opcode::Add, Reg::R26, Reg::R0, Short2::imm(3).unwrap()),
            Instruction::ret(Reg::R25, Short2::ZERO),
            Instruction::nop(),
        ];
        let cfg = Cfg::build(&prog(insns));
        assert_eq!(cfg.functions.len(), 2);
        assert!(cfg.functions[0].is_entry);
        assert_eq!(cfg.functions[1].head, 4);
        assert_eq!(cfg.functions[0].calls.len(), 1);
        assert_eq!(cfg.functions[0].calls[0].target, Some(4));
        assert_eq!(cfg.functions[0].calls[0].link, Some(Reg::R25));
        assert!(cfg.functions[1].blocks.iter().any(|b| b.exits));
    }

    #[test]
    fn missing_slot_and_out_of_range_are_reported() {
        let cfg = Cfg::build(&prog(vec![Instruction::jmpr(Cond::Alw, 400)]));
        let rules: Vec<Rule> = cfg.issues.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&Rule::MissingDelaySlot));
        assert!(rules.contains(&Rule::JumpOutOfRange));
    }

    #[test]
    fn undecodable_reachable_word_is_an_issue() {
        let mut p = prog(halt());
        p.words.insert(0, 0); // opcode 0 does not decode
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.issues.len(), 1);
        assert_eq!(cfg.issues[0].rule, Rule::UndecodableReachable);
        assert_eq!(cfg.issues[0].pc, 0);
    }

    #[test]
    fn unreachable_code_is_not_visited() {
        let mut insns = halt();
        insns.push(Instruction::reg(
            Opcode::Add,
            Reg::R16,
            Reg::R0,
            Short2::imm(9).unwrap(),
        ));
        let cfg = Cfg::build(&prog(insns));
        assert_eq!(cfg.reachable, vec![true, true, false]);
    }

    #[test]
    fn indexed_jump_is_flagged() {
        let mut insns = vec![
            Instruction::jmp(Cond::Alw, Reg::R16, Short2::ZERO),
            Instruction::nop(),
        ];
        insns.extend(halt());
        let cfg = Cfg::build(&prog(insns));
        assert!(cfg.has_indexed_jump);
        assert!(cfg.entry_function().has_indexed_jump);
        let b = &cfg.entry_function().blocks[0];
        assert!(
            b.exits,
            "unconditional indexed jump has no static successor"
        );
    }
}
