//! # `proptest` — in-repo drop-in subset of the proptest crate
//!
//! The workspace's property tests were written against the real
//! [proptest](https://crates.io/crates/proptest) API, but this repository
//! must build and test **with no network access** (tier-1 verify runs in an
//! offline container, so crates.io dependencies cannot be resolved). This
//! crate re-implements the small slice of the API those tests use, backed
//! by a deterministic xorshift64* generator:
//!
//! * [`Strategy`] with `prop_map`, `prop_recursive` and `boxed`,
//! * strategies for integer ranges, tuples, [`sample::select`],
//!   [`collection::vec`] and [`any`],
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`] and [`prop_assume!`] macros,
//! * [`ProptestConfig::with_cases`].
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports its case number and message;
//!   re-running reproduces it exactly (seeding is deterministic per test
//!   name), but it is not minimised.
//! * **Deterministic.** There is no `PROPTEST_CASES`/env integration and no
//!   OS entropy; every run of a given binary explores the same cases.
//!
//! If the full crate is ever wanted back, delete this crate and point the
//! workspace dependency `proptest` at crates.io again — test code needs no
//! changes.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Deterministic xorshift64* random source.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG seeded from a string (the test name), so every test gets a
    /// distinct but reproducible stream.
    pub fn deterministic(name: &str) -> TestRng {
        // FNV-1a over the name, folded into a non-zero seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: h | 1, // xorshift state must be non-zero
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Next raw 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `0..n` (`n` > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % n
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` — try another one.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// A failure with a message (mirrors the real crate's constructor).
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with a reason.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

/// Per-test configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A value generator. The real crate's `Strategy` also carries a shrinking
/// `ValueTree`; this subset generates values only.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `recurse` receives the strategy for the
    /// previous level and wraps it one level deeper, up to `levels` deep.
    /// `_desired_size` and `_expected_branch_size` are accepted for API
    /// compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        levels: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..levels {
            let deeper = recurse(cur).boxed();
            let base = leaf.clone();
            cur = BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                // Mostly recurse; fall back to a leaf 1 time in 4 so
                // generated trees vary in depth.
                if rng.below(4) == 0 {
                    base.generate(rng)
                } else {
                    deeper.generate(rng)
                }
            }));
        }
        cur
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A uniform choice between same-valued strategies (what [`prop_oneof!`]
/// builds).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over the given arms (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let k = rng.below(self.arms.len() as u64) as usize;
        self.arms[k].generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<V>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;
    fn generate(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (the real crate's
/// `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, i8, u16, i16, u32, i32, u64, i64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (self.start as i128, self.end as i128);
                assert!(lo < hi, "empty range strategy");
                (lo + rng.below((hi - lo) as u64) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                (lo + rng.below((hi - lo + 1) as u64) as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, i8, u16, i16, u32, i32, u64, i64, usize, isize);

macro_rules! tuple_strategy {
    ($(($($n:ident $idx:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// Choosing among concrete values (`proptest::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// The strategy returned by [`select`].
    pub struct Select<T>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }

    /// Uniformly selects one of the given values (must be non-empty).
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select of an empty vec");
        Select(values)
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of `element` values with length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Defines property tests. See the crate docs for supported syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_prop(x in 0u32..100, y in any::<i32>()) { … }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)));
                $(let $arg = $strat;)*
                let strategies = ($($arg,)*);
                #[allow(unused_variables, unused_mut)]
                let mut case = |rng: &mut $crate::TestRng|
                    -> ::std::result::Result<(), $crate::TestCaseError> {
                    let ($($arg,)*) = &strategies;
                    $(let $arg = $crate::Strategy::generate($arg, rng);)*
                    $body
                    Ok(())
                };
                let mut accepted = 0u32;
                let mut attempts = 0u32;
                while accepted < config.cases {
                    attempts += 1;
                    if attempts > config.cases.saturating_mul(20).max(100) {
                        // Give up on pathological rejection rates rather
                        // than spinning forever (mirrors the real crate's
                        // "too many global rejects" behaviour, minus the
                        // panic: rejection-heavy suites still pass).
                        break;
                    }
                    match case(&mut rng) {
                        Ok(()) => accepted += 1,
                        Err($crate::TestCaseError::Reject(_)) => {}
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property `{}` failed at case #{attempts}: {msg}",
                                stringify!($name),
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Uniformly picks one of several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Like `assert!`, but reports the failure through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)+)));
        }
    };
}

/// Like `assert_eq!`, but reports the failure through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n  {}",
            stringify!($a), stringify!($b), a, b, format!($($fmt)+));
    }};
}

/// Discards the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let v = (-5i32..7).generate(&mut rng);
            assert!((-5..7).contains(&v));
            let w = (0u8..=255).generate(&mut rng);
            let _ = w; // full domain, nothing to check beyond type
            let u = (3usize..4).generate(&mut rng);
            assert_eq!(u, 3);
        }
    }

    #[test]
    fn ranges_reach_both_endpoints() {
        let mut rng = TestRng::deterministic("endpoints");
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(0u32..3).generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn oneof_and_map_compose() {
        let s = prop_oneof![
            (0u8..3).prop_map(|v| v as i32),
            (10u8..13).prop_map(|v| v as i32),
        ];
        let mut rng = TestRng::deterministic("oneof");
        let mut low = false;
        let mut high = false;
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((0..3).contains(&v) || (10..13).contains(&v));
            low |= v < 3;
            high |= v >= 10;
        }
        assert!(low && high, "both arms exercised");
    }

    #[test]
    fn collection_vec_respects_length_range() {
        let s = crate::collection::vec(any::<bool>(), 2..5);
        let mut rng = TestRng::deterministic("vec");
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(#[allow(dead_code)] i32),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let s = (0i32..10)
            .prop_map(Tree::Leaf)
            .boxed()
            .prop_recursive(3, 8, 2, |inner| {
                (inner.clone(), inner)
                    .prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
                    .boxed()
            });
        let mut rng = TestRng::deterministic("tree");
        let mut max_seen = 0;
        for _ in 0..200 {
            let d = depth(&s.generate(&mut rng));
            assert!(d <= 3);
            max_seen = max_seen.max(d);
        }
        assert!(max_seen >= 1, "recursion actually recurses");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The harness itself: args bind, assume rejects, asserts pass.
        #[test]
        fn harness_smoke(x in 0u32..50, flip in any::<bool>()) {
            prop_assume!(x != 13);
            let y = if flip { x + 1 } else { x };
            prop_assert!(y >= x, "monotone");
            prop_assert_eq!(y.saturating_sub(x) <= 1, true);
        }
    }
}
