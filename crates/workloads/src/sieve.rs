//! Sieve of Eratosthenes over a byte-flag array — the classic
//! bit/byte-flag benchmark of the era (the paper's bit-oriented workload
//! class).

use crate::Workload;
use risc1_ir::ast::dsl::*;
use risc1_ir::Module;

const FLAGS: usize = 8192;

/// Builds the workload.
pub fn workload() -> Workload {
    Workload {
        id: "sieve",
        description: "sieve of Eratosthenes over byte flags (counts primes below n)",
        module: build(),
        args: vec![8190],
        small_args: vec![600],
        call_heavy: false,
        scale: 1,
    }
}

/// The workload at `scale`. The flag array grows with the sieve bound, so
/// scaling splits the extra work between a larger bound (up to 256 KiB of
/// byte flags, comfortably inside the 1 MiB machine) and whole-sieve
/// repetitions once the bound caps out. The scaled module takes
/// `(n, reps)` and returns the summed prime count across repetitions.
pub fn scaled(scale: u32) -> Workload {
    let scale = scale.max(1);
    if scale == 1 {
        return workload();
    }
    let total = 8190u64 * u64::from(scale);
    let n = total.min(262_144);
    let reps = total.div_ceil(n);
    Workload {
        module: build_scaled(n as usize + 2),
        args: vec![n as i32, reps as i32],
        small_args: vec![600, 1],
        scale,
        ..workload()
    }
}

fn build() -> Module {
    // locals: n=0, i=1, count=2, j=3
    let main = function(
        "main",
        1,
        4,
        vec![
            assign(1, konst(2)),
            while_loop(
                lt(local(1), local(0)),
                vec![
                    storeb(0, local(1), konst(1)),
                    assign(1, add(local(1), konst(1))),
                ],
            ),
            assign(1, konst(2)),
            assign(2, konst(0)),
            while_loop(
                lt(local(1), local(0)),
                vec![
                    if_then(
                        eq(loadb(0, local(1)), konst(1)),
                        vec![
                            assign(2, add(local(2), konst(1))),
                            assign(3, add(local(1), local(1))),
                            while_loop(
                                lt(local(3), local(0)),
                                vec![
                                    storeb(0, local(3), konst(0)),
                                    assign(3, add(local(3), local(1))),
                                ],
                            ),
                        ],
                    ),
                    assign(1, add(local(1), konst(1))),
                ],
            ),
            ret(local(2)),
        ],
    );
    module(vec![main], vec![global_bytes("flags", FLAGS)])
}

fn build_scaled(flags: usize) -> Module {
    // locals: n=0, reps=1, r=2, acc=3, i=4, count=5, j=6
    let main = function(
        "main",
        2,
        7,
        vec![
            assign(3, konst(0)),
            assign(2, konst(0)),
            while_loop(
                lt(local(2), local(1)),
                vec![
                    assign(4, konst(2)),
                    while_loop(
                        lt(local(4), local(0)),
                        vec![
                            storeb(0, local(4), konst(1)),
                            assign(4, add(local(4), konst(1))),
                        ],
                    ),
                    assign(4, konst(2)),
                    assign(5, konst(0)),
                    while_loop(
                        lt(local(4), local(0)),
                        vec![
                            if_then(
                                eq(loadb(0, local(4)), konst(1)),
                                vec![
                                    assign(5, add(local(5), konst(1))),
                                    assign(6, add(local(4), local(4))),
                                    while_loop(
                                        lt(local(6), local(0)),
                                        vec![
                                            storeb(0, local(6), konst(0)),
                                            assign(6, add(local(6), local(4))),
                                        ],
                                    ),
                                ],
                            ),
                            assign(4, add(local(4), konst(1))),
                        ],
                    ),
                    assign(3, add(local(3), local(5))),
                    assign(2, add(local(2), konst(1))),
                ],
            ),
            ret(local(3)),
        ],
    );
    module(vec![main], vec![global_bytes("flags", flags)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use risc1_ir::interpret;

    fn reference(n: usize) -> i32 {
        let mut flags = vec![true; n.max(2)];
        let mut count = 0;
        for i in 2..n {
            if flags[i] {
                count += 1;
                let mut j = 2 * i;
                while j < n {
                    flags[j] = false;
                    j += i;
                }
            }
        }
        count
    }

    #[test]
    fn counts_primes() {
        for n in [10, 100, 1000] {
            let r = interpret(&build(), &[n]).unwrap();
            assert_eq!(r.value, reference(n as usize), "primes below {n}");
        }
        // π(100) = 25 as a hard anchor
        assert_eq!(interpret(&build(), &[100]).unwrap().value, 25);
    }

    #[test]
    fn scaled_builder_sums_repetitions() {
        for (n, reps) in [(100, 1), (100, 3), (600, 2)] {
            let r = interpret(&build_scaled(n as usize + 2), &[n, reps]).unwrap();
            assert_eq!(r.value, reference(n as usize) * reps, "n={n} reps={reps}");
        }
    }

    #[test]
    fn scale_one_is_the_paper_workload() {
        let w = scaled(1);
        assert_eq!(w.args, workload().args);
        assert_eq!(w.scale, 1);
    }
}
