//! Sieve of Eratosthenes over a byte-flag array — the classic
//! bit/byte-flag benchmark of the era (the paper's bit-oriented workload
//! class).

use crate::Workload;
use risc1_ir::ast::dsl::*;
use risc1_ir::Module;

const FLAGS: usize = 8192;

/// Builds the workload.
pub fn workload() -> Workload {
    Workload {
        id: "sieve",
        description: "sieve of Eratosthenes over byte flags (counts primes below n)",
        module: build(),
        args: vec![8190],
        small_args: vec![600],
        call_heavy: false,
    }
}

fn build() -> Module {
    // locals: n=0, i=1, count=2, j=3
    let main = function(
        "main",
        1,
        4,
        vec![
            assign(1, konst(2)),
            while_loop(
                lt(local(1), local(0)),
                vec![
                    storeb(0, local(1), konst(1)),
                    assign(1, add(local(1), konst(1))),
                ],
            ),
            assign(1, konst(2)),
            assign(2, konst(0)),
            while_loop(
                lt(local(1), local(0)),
                vec![
                    if_then(
                        eq(loadb(0, local(1)), konst(1)),
                        vec![
                            assign(2, add(local(2), konst(1))),
                            assign(3, add(local(1), local(1))),
                            while_loop(
                                lt(local(3), local(0)),
                                vec![
                                    storeb(0, local(3), konst(0)),
                                    assign(3, add(local(3), local(1))),
                                ],
                            ),
                        ],
                    ),
                    assign(1, add(local(1), konst(1))),
                ],
            ),
            ret(local(2)),
        ],
    );
    module(vec![main], vec![global_bytes("flags", FLAGS)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use risc1_ir::interpret;

    fn reference(n: usize) -> i32 {
        let mut flags = vec![true; n.max(2)];
        let mut count = 0;
        for i in 2..n {
            if flags[i] {
                count += 1;
                let mut j = 2 * i;
                while j < n {
                    flags[j] = false;
                    j += i;
                }
            }
        }
        count
    }

    #[test]
    fn counts_primes() {
        for n in [10, 100, 1000] {
            let r = interpret(&build(), &[n]).unwrap();
            assert_eq!(r.value, reference(n as usize), "primes below {n}");
        }
        // π(100) = 25 as a hard anchor
        assert_eq!(interpret(&build(), &[100]).unwrap().value, 25);
    }
}
