//! Ackermann's function — the paper's canonical call-stress benchmark.
//!
//! `ackermann(3, n)` makes an enormous number of very small procedure
//! calls, which is precisely the behaviour register windows exist for. The
//! paper quotes Ackermann(3,6) among its call-heavy measurements.

use crate::Workload;
use risc1_ir::ast::dsl::*;
use risc1_ir::Module;

/// Builds the workload.
pub fn workload() -> Workload {
    Workload {
        id: "acker",
        description: "Ackermann(3, n): maximal procedure-call stress (paper: Ackermann(3,6))",
        module: build(),
        args: vec![6],
        small_args: vec![3],
        call_heavy: true,
        scale: 1,
    }
}

/// The workload at `scale`: the call count of `ackermann(3, n)` roughly
/// quadruples per increment of `n` (it is `Θ(4^n)`), so `⌈log4 scale⌉`
/// extra levels run at least `scale` times longer. Scales beyond ~25
/// exceed the default [`risc1_core::SimConfig::fuel`] budget — raise it
/// when running deep Ackermann scales.
pub fn scaled(scale: u32) -> Workload {
    let scale = scale.max(1);
    Workload {
        scale,
        args: vec![(6 + crate::growth_levels(scale, 4, 1)) as i32],
        ..workload()
    }
}

fn build() -> Module {
    // fn ack(m, n) {             // locals: m=0, n=1, t=2
    //   if m == 0 { return n + 1 }
    //   if n == 0 { t = ack(m-1, 1); return t }
    //   t = ack(m, n-1)
    //   t = ack(m-1, t)
    //   return t
    // }
    let ack = function(
        "ack",
        2,
        3,
        vec![
            if_then(eq(local(0), konst(0)), vec![ret(add(local(1), konst(1)))]),
            if_then(
                eq(local(1), konst(0)),
                vec![
                    assign(2, call(1, vec![sub(local(0), konst(1)), konst(1)])),
                    ret(local(2)),
                ],
            ),
            assign(2, call(1, vec![local(0), sub(local(1), konst(1))])),
            assign(2, call(1, vec![sub(local(0), konst(1)), local(2)])),
            ret(local(2)),
        ],
    );
    let main = function(
        "main",
        1,
        2,
        vec![assign(1, call(1, vec![konst(3), local(0)])), ret(local(1))],
    );
    module(vec![main, ack], vec![])
}

#[cfg(test)]
mod tests {
    use super::*;
    use risc1_ir::interpret;

    fn reference(m: i64, n: i64) -> i64 {
        if m == 0 {
            n + 1
        } else if n == 0 {
            reference(m - 1, 1)
        } else {
            reference(m - 1, reference(m, n - 1))
        }
    }

    #[test]
    fn matches_native_reference() {
        for n in 0..5 {
            let r = interpret(&build(), &[n]).unwrap();
            assert_eq!(i64::from(r.value), reference(3, i64::from(n)), "ack(3,{n})");
        }
    }

    #[test]
    fn is_call_dominated() {
        let r = interpret(&build(), &[4]).unwrap();
        assert!(r.calls > 10_000, "ack(3,4) made {} calls", r.calls);
    }
}
