//! # `risc1-workloads` — the paper's benchmark suite, reconstructed
//!
//! Patterson & Séquin evaluated RISC I on a set of C programs (string
//! search, bit test, linked list, Ackermann, quicksort, puzzle, towers of
//! Hanoi, matrix multiply, sorting, sieve-style bit work, recursive
//! Fibonacci). The originals are not preserved, so this crate reconstructs
//! each as a program in the shared IR ([`risc1_ir::ast`]), written *once*
//! and compiled for both machines — the paper's methodology.
//!
//! Every workload carries two argument sets: `args` (paper-scale, used by
//! the experiment binaries) and `small_args` (fast, used by tests and
//! Criterion). Each workload module also contains a native-Rust reference
//! implementation against which the IR interpreter is unit-tested, so the
//! suite is pinned down three ways: Rust reference ↔ interpreter ↔ both
//! simulators.

pub mod acker;
pub mod bubble;
pub mod e_string_search;
pub mod f_bit_test;
pub mod fib;
pub mod h_linked_list;
pub mod hanoi;
pub mod intmm;
pub mod puzzle;
pub mod qsort;
pub mod sieve;

use risc1_ir::Module;

/// One benchmark: an IR module plus its standard inputs.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short identifier (stable, used in tables).
    pub id: &'static str,
    /// Human-readable description, including which paper benchmark it
    /// reconstructs.
    pub description: &'static str,
    /// The program.
    pub module: Module,
    /// Paper-scale arguments to `main`.
    pub args: Vec<i32>,
    /// Reduced arguments for fast tests and benches.
    pub small_args: Vec<i32>,
    /// Whether the workload is dominated by procedure calls (the paper
    /// splits its analysis along this axis).
    pub call_heavy: bool,
}

/// The full suite, in the order the evaluation tables print it.
pub fn all() -> Vec<Workload> {
    vec![
        e_string_search::workload(),
        f_bit_test::workload(),
        h_linked_list::workload(),
        sieve::workload(),
        bubble::workload(),
        qsort::workload(),
        intmm::workload(),
        puzzle::workload(),
        acker::workload(),
        fib::workload(),
        hanoi::workload(),
    ]
}

/// Looks a workload up by id.
pub fn by_id(id: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use risc1_ir::interp::interpret;
    use risc1_ir::{compile_cx, compile_mc, compile_risc, run_cx, run_mc, run_risc, RiscOpts};

    #[test]
    fn suite_has_eleven_unique_workloads() {
        let ws = all();
        assert_eq!(ws.len(), 11, "the paper's benchmark count");
        let mut ids: Vec<_> = ws.iter().map(|w| w.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 11);
    }

    #[test]
    fn every_workload_validates_and_compiles_for_both_targets() {
        for w in all() {
            w.module
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", w.id));
            compile_risc(&w.module, RiscOpts::default())
                .unwrap_or_else(|e| panic!("{} risc: {e}", w.id));
            compile_cx(&w.module).unwrap_or_else(|e| panic!("{} cx: {e}", w.id));
            compile_mc(&w.module).unwrap_or_else(|e| panic!("{} mc: {e}", w.id));
        }
    }

    /// The central differential test of the whole repository: every
    /// workload computes the same answer on the interpreter, on RISC I, on
    /// CX and on MC (small inputs to keep the suite fast).
    #[test]
    fn differential_small_inputs_agree_across_all_engines() {
        for w in all() {
            let oracle = interpret(&w.module, &w.small_args)
                .unwrap_or_else(|e| panic!("{} interp: {e}", w.id));
            let risc = compile_risc(&w.module, RiscOpts::default()).unwrap();
            let (rv, rs) =
                run_risc(&risc, &w.small_args).unwrap_or_else(|e| panic!("{} risc run: {e}", w.id));
            let cx = compile_cx(&w.module).unwrap();
            let (cv, cs) =
                run_cx(&cx, &w.small_args).unwrap_or_else(|e| panic!("{} cx run: {e}", w.id));
            let mc = compile_mc(&w.module).unwrap();
            let (mv, ms) =
                run_mc(&mc, &w.small_args).unwrap_or_else(|e| panic!("{} mc run: {e}", w.id));
            assert_eq!(rv, oracle.value, "{}: risc vs oracle", w.id);
            assert_eq!(cv, oracle.value, "{}: cx vs oracle", w.id);
            assert_eq!(mv, oracle.value, "{}: mc vs oracle", w.id);
            assert!(rs.instructions > 0 && cs.instructions > 0 && ms.instructions > 0);
        }
    }

    #[test]
    fn by_id_finds_everything() {
        for w in all() {
            assert_eq!(by_id(w.id).unwrap().id, w.id);
        }
        assert!(by_id("nope").is_none());
    }

    #[test]
    fn call_heavy_flag_is_consistent_with_dynamic_behaviour() {
        // Call-heavy workloads should execute calls at a visible rate on
        // RISC I (quicksort is the lightest of them: its partition loop
        // dominates at small n, but it still recurses throughout).
        for w in all() {
            let risc = compile_risc(&w.module, RiscOpts::default()).unwrap();
            let (_, s) = run_risc(&risc, &w.small_args).unwrap();
            let rate = s.calls as f64 / s.instructions.max(1) as f64;
            if w.call_heavy {
                assert!(rate > 1.0 / 200.0, "{} call rate {rate}", w.id);
                assert!(s.calls > 10, "{} calls {}", w.id, s.calls);
            }
        }
    }
}
