//! # `risc1-workloads` — the paper's benchmark suite, reconstructed
//!
//! Patterson & Séquin evaluated RISC I on a set of C programs (string
//! search, bit test, linked list, Ackermann, quicksort, puzzle, towers of
//! Hanoi, matrix multiply, sorting, sieve-style bit work, recursive
//! Fibonacci). The originals are not preserved, so this crate reconstructs
//! each as a program in the shared IR ([`risc1_ir::ast`]), written *once*
//! and compiled for both machines — the paper's methodology.
//!
//! Every workload carries two argument sets: `args` (paper-scale, used by
//! the experiment binaries) and `small_args` (fast, used by tests and
//! Criterion). Each workload module also contains a native-Rust reference
//! implementation against which the IR interpreter is unit-tested, so the
//! suite is pinned down three ways: Rust reference ↔ interpreter ↔ both
//! simulators.

pub mod acker;
pub mod bubble;
pub mod e_string_search;
pub mod f_bit_test;
pub mod fib;
pub mod h_linked_list;
pub mod hanoi;
pub mod intmm;
pub mod puzzle;
pub mod qsort;
pub mod sieve;

use risc1_ir::Module;

/// One benchmark: an IR module plus its standard inputs.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short identifier (stable, used in tables).
    pub id: &'static str,
    /// Human-readable description, including which paper benchmark it
    /// reconstructs.
    pub description: &'static str,
    /// The program.
    pub module: Module,
    /// Paper-scale arguments to `main`.
    pub args: Vec<i32>,
    /// Reduced arguments for fast tests and benches.
    pub small_args: Vec<i32>,
    /// Whether the workload is dominated by procedure calls (the paper
    /// splits its analysis along this axis).
    pub call_heavy: bool,
    /// The scale knob this instance was built at: `args` runs roughly
    /// `scale` times the instruction count of the paper-scale (scale 1)
    /// workload. Scale 1 is exactly the historical suite; larger scales
    /// grow the data structures where memory allows (bigger sieve
    /// bounds, more qsort elements, wider matrices) and fall back to
    /// deterministic outer repetitions or deeper recursion beyond that.
    pub scale: u32,
}

/// The full suite, in the order the evaluation tables print it.
pub fn all() -> Vec<Workload> {
    vec![
        e_string_search::workload(),
        f_bit_test::workload(),
        h_linked_list::workload(),
        sieve::workload(),
        bubble::workload(),
        qsort::workload(),
        intmm::workload(),
        puzzle::workload(),
        acker::workload(),
        fib::workload(),
        hanoi::workload(),
    ]
}

/// The full suite at a given scale (see [`Workload::scale`]); scale 0
/// and 1 both mean the historical paper-scale suite.
pub fn all_scaled(scale: u32) -> Vec<Workload> {
    vec![
        e_string_search::scaled(scale),
        f_bit_test::scaled(scale),
        h_linked_list::scaled(scale),
        sieve::scaled(scale),
        bubble::scaled(scale),
        qsort::scaled(scale),
        intmm::scaled(scale),
        puzzle::scaled(scale),
        acker::scaled(scale),
        fib::scaled(scale),
        hanoi::scaled(scale),
    ]
}

/// Looks a workload up by id.
pub fn by_id(id: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.id == id)
}

/// Looks a workload up by id at a given scale.
pub fn by_id_scaled(id: &str, scale: u32) -> Option<Workload> {
    all_scaled(scale).into_iter().find(|w| w.id == id)
}

/// Integer square root (floor), for quadratic workloads that grow their
/// data size as `base · √scale`.
pub(crate) fn isqrt(n: u64) -> u64 {
    let mut r = (n as f64).sqrt() as u64;
    while (r + 1) * (r + 1) <= n {
        r += 1;
    }
    while r * r > n {
        r -= 1;
    }
    r
}

/// The smallest number of extra recursion levels `k` such that
/// `num^k >= scale · den^k` — i.e. how much deeper an exponential
/// workload whose cost multiplies by `num/den` per level must recurse to
/// run `scale` times longer. Pure integer arithmetic so every platform
/// agrees.
pub(crate) fn growth_levels(scale: u32, num: u128, den: u128) -> u32 {
    let mut k = 0u32;
    let (mut grown, mut base) = (1u128, 1u128);
    while grown < u128::from(scale) * base {
        grown *= num;
        base *= den;
        k += 1;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use risc1_ir::interp::interpret;
    use risc1_ir::{compile_cx, compile_mc, compile_risc, run_cx, run_mc, run_risc, RiscOpts};

    #[test]
    fn suite_has_eleven_unique_workloads() {
        let ws = all();
        assert_eq!(ws.len(), 11, "the paper's benchmark count");
        let mut ids: Vec<_> = ws.iter().map(|w| w.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 11);
    }

    #[test]
    fn every_workload_validates_and_compiles_for_both_targets() {
        for w in all() {
            w.module
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", w.id));
            compile_risc(&w.module, RiscOpts::default())
                .unwrap_or_else(|e| panic!("{} risc: {e}", w.id));
            compile_cx(&w.module).unwrap_or_else(|e| panic!("{} cx: {e}", w.id));
            compile_mc(&w.module).unwrap_or_else(|e| panic!("{} mc: {e}", w.id));
        }
    }

    /// The central differential test of the whole repository: every
    /// workload computes the same answer on the interpreter, on RISC I, on
    /// CX and on MC (small inputs to keep the suite fast).
    #[test]
    fn differential_small_inputs_agree_across_all_engines() {
        for w in all() {
            let oracle = interpret(&w.module, &w.small_args)
                .unwrap_or_else(|e| panic!("{} interp: {e}", w.id));
            let risc = compile_risc(&w.module, RiscOpts::default()).unwrap();
            let (rv, rs) =
                run_risc(&risc, &w.small_args).unwrap_or_else(|e| panic!("{} risc run: {e}", w.id));
            let cx = compile_cx(&w.module).unwrap();
            let (cv, cs) =
                run_cx(&cx, &w.small_args).unwrap_or_else(|e| panic!("{} cx run: {e}", w.id));
            let mc = compile_mc(&w.module).unwrap();
            let (mv, ms) =
                run_mc(&mc, &w.small_args).unwrap_or_else(|e| panic!("{} mc run: {e}", w.id));
            assert_eq!(rv, oracle.value, "{}: risc vs oracle", w.id);
            assert_eq!(cv, oracle.value, "{}: cx vs oracle", w.id);
            assert_eq!(mv, oracle.value, "{}: mc vs oracle", w.id);
            assert!(rs.instructions > 0 && cs.instructions > 0 && ms.instructions > 0);
        }
    }

    #[test]
    fn by_id_finds_everything() {
        for w in all() {
            assert_eq!(by_id(w.id).unwrap().id, w.id);
        }
        assert!(by_id("nope").is_none());
    }

    #[test]
    fn scale_one_suite_is_the_paper_suite() {
        for (s, w) in all_scaled(1).iter().zip(all()) {
            assert_eq!(s.id, w.id);
            assert_eq!(s.args, w.args, "{}", w.id);
            assert_eq!(s.module, w.module, "{}", w.id);
            assert_eq!(s.scale, 1);
        }
        // scale 0 normalizes to 1
        for (s, w) in all_scaled(0).iter().zip(all()) {
            assert_eq!(s.args, w.args, "{}", w.id);
        }
    }

    #[test]
    fn scaled_suite_validates_and_compiles_for_both_targets() {
        for scale in [25, 400] {
            for w in all_scaled(scale) {
                assert_eq!(w.scale, scale, "{}", w.id);
                w.module
                    .validate()
                    .unwrap_or_else(|e| panic!("{}@x{scale}: {e}", w.id));
                compile_risc(&w.module, RiscOpts::default())
                    .unwrap_or_else(|e| panic!("{}@x{scale} risc: {e}", w.id));
                compile_cx(&w.module).unwrap_or_else(|e| panic!("{}@x{scale} cx: {e}", w.id));
                compile_mc(&w.module).unwrap_or_else(|e| panic!("{}@x{scale} mc: {e}", w.id));
            }
        }
    }

    #[test]
    fn scaling_grows_the_instruction_count() {
        // Cheap spot check on the exactly-linear workload: scale 3 must
        // run at least ~3x the paper-scale instruction count.
        let base = e_string_search::workload();
        let scaled = e_string_search::scaled(3);
        let risc = compile_risc(&base.module, RiscOpts::default()).unwrap();
        let (_, s1) = run_risc(&risc, &base.args).unwrap();
        let (_, s3) = run_risc(&risc, &scaled.args).unwrap();
        assert!(
            s3.instructions as f64 >= 2.5 * s1.instructions as f64,
            "x1 = {}, x3 = {}",
            s1.instructions,
            s3.instructions
        );
    }

    #[test]
    fn call_heavy_flag_is_consistent_with_dynamic_behaviour() {
        // Call-heavy workloads should execute calls at a visible rate on
        // RISC I (quicksort is the lightest of them: its partition loop
        // dominates at small n, but it still recurses throughout).
        for w in all() {
            let risc = compile_risc(&w.module, RiscOpts::default()).unwrap();
            let (_, s) = run_risc(&risc, &w.small_args).unwrap();
            let rate = s.calls as f64 / s.instructions.max(1) as f64;
            if w.call_heavy {
                assert!(rate > 1.0 / 200.0, "{} call rate {rate}", w.id);
                assert!(s.calls > 10, "{} calls {}", w.id, s.calls);
            }
        }
    }
}
