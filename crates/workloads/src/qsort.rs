//! Recursive quicksort — the paper's mixed workload: recursion plus heavy
//! array traffic.

use crate::Workload;
use risc1_ir::ast::dsl::*;
use risc1_ir::Module;

const N: usize = 512;

/// Builds the workload.
pub fn workload() -> Workload {
    Workload {
        id: "qsort",
        description: "recursive quicksort (Lomuto) of an LCG-filled word array",
        module: build(),
        args: vec![300],
        small_args: vec![40],
        call_heavy: true,
    }
}

fn build() -> Module {
    // main: locals n=0, i=1, seed_then_sum=2, t=3
    let main = function(
        "main",
        1,
        4,
        vec![
            assign(2, konst(1)),
            assign(1, konst(0)),
            while_loop(
                lt(local(1), local(0)),
                vec![
                    assign(
                        2,
                        band(
                            add(add(shl(local(2), konst(5)), local(2)), konst(9)),
                            konst(8191),
                        ),
                    ),
                    storew(0, local(1), local(2)),
                    assign(1, add(local(1), konst(1))),
                ],
            ),
            assign(3, call(1, vec![konst(0), sub(local(0), konst(1))])),
            // verify + checksum
            assign(2, konst(0)),
            assign(1, konst(1)),
            while_loop(
                lt(local(1), local(0)),
                vec![
                    if_then(
                        gt(loadw(0, sub(local(1), konst(1))), loadw(0, local(1))),
                        vec![ret(konst(-1))],
                    ),
                    assign(2, add(local(2), loadw(0, local(1)))),
                    assign(1, add(local(1), konst(1))),
                ],
            ),
            ret(local(2)),
        ],
    );
    // qs(lo, hi): locals lo=0, hi=1, i=2, j=3, pivot=4, tmp=5
    let qs = function(
        "qs",
        2,
        6,
        vec![
            if_then(ge(local(0), local(1)), vec![ret(konst(0))]),
            assign(4, loadw(0, local(1))),
            assign(2, local(0)),
            assign(3, local(0)),
            while_loop(
                lt(local(3), local(1)),
                vec![
                    if_then(
                        le(loadw(0, local(3)), local(4)),
                        vec![
                            assign(5, loadw(0, local(2))),
                            storew(0, local(2), loadw(0, local(3))),
                            storew(0, local(3), local(5)),
                            assign(2, add(local(2), konst(1))),
                        ],
                    ),
                    assign(3, add(local(3), konst(1))),
                ],
            ),
            assign(5, loadw(0, local(2))),
            storew(0, local(2), loadw(0, local(1))),
            storew(0, local(1), local(5)),
            assign(5, call(1, vec![local(0), sub(local(2), konst(1))])),
            assign(5, call(1, vec![add(local(2), konst(1)), local(1)])),
            ret(konst(0)),
        ],
    );
    module(vec![main, qs], vec![global_words("arr", N)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use risc1_ir::interpret;

    fn reference(n: usize) -> i32 {
        let mut seed = 1i32;
        let mut arr: Vec<i32> = (0..n)
            .map(|_| {
                seed = ((seed << 5) + seed + 9) & 8191;
                seed
            })
            .collect();
        arr.sort_unstable();
        arr.iter().skip(1).sum()
    }

    #[test]
    fn sorts_and_checksums() {
        for n in [2, 3, 33, 100] {
            let r = interpret(&build(), &[n]).unwrap();
            assert_eq!(r.value, reference(n as usize), "n = {n}");
            let g = &r.globals[0][..n as usize];
            assert!(g.windows(2).all(|w| w[0] <= w[1]), "sorted for n = {n}");
        }
    }

    #[test]
    fn recursion_happens() {
        let r = interpret(&build(), &[64]).unwrap();
        assert!(r.calls > 40, "quicksort recursed ({} calls)", r.calls);
    }
}
