//! Recursive quicksort — the paper's mixed workload: recursion plus heavy
//! array traffic.

use crate::Workload;
use risc1_ir::ast::dsl::*;
use risc1_ir::Module;

const N: usize = 512;

/// Builds the workload.
pub fn workload() -> Workload {
    Workload {
        id: "qsort",
        description: "recursive quicksort (Lomuto) of an LCG-filled word array",
        module: build(),
        args: vec![300],
        small_args: vec![40],
        call_heavy: true,
        scale: 1,
    }
}

/// The workload at `scale`. Quicksort is `n log n`, so growing the array
/// linearly (capped at 64 Ki words = 256 KiB) runs at least `scale` times
/// longer; repetitions absorb anything past the cap. The scaled module
/// takes `(n, reps)` and returns the summed checksum across repetitions.
pub fn scaled(scale: u32) -> Workload {
    let scale = scale.max(1);
    if scale == 1 {
        return workload();
    }
    let n = (300u64 * u64::from(scale)).min(65_536);
    let reps = (300u64 * u64::from(scale)).div_ceil(n);
    Workload {
        module: build_scaled(n as usize),
        args: vec![n as i32, reps as i32],
        small_args: vec![40, 1],
        scale,
        ..workload()
    }
}

fn build() -> Module {
    build_sized(N)
}

fn build_sized(arr_words: usize) -> Module {
    // main: locals n=0, i=1, seed_then_sum=2, t=3
    let main = function(
        "main",
        1,
        4,
        vec![
            assign(2, konst(1)),
            assign(1, konst(0)),
            while_loop(
                lt(local(1), local(0)),
                vec![
                    assign(
                        2,
                        band(
                            add(add(shl(local(2), konst(5)), local(2)), konst(9)),
                            konst(8191),
                        ),
                    ),
                    storew(0, local(1), local(2)),
                    assign(1, add(local(1), konst(1))),
                ],
            ),
            assign(3, call(1, vec![konst(0), sub(local(0), konst(1))])),
            // verify + checksum
            assign(2, konst(0)),
            assign(1, konst(1)),
            while_loop(
                lt(local(1), local(0)),
                vec![
                    if_then(
                        gt(loadw(0, sub(local(1), konst(1))), loadw(0, local(1))),
                        vec![ret(konst(-1))],
                    ),
                    assign(2, add(local(2), loadw(0, local(1)))),
                    assign(1, add(local(1), konst(1))),
                ],
            ),
            ret(local(2)),
        ],
    );
    // qs(lo, hi): locals lo=0, hi=1, i=2, j=3, pivot=4, tmp=5
    let qs = function(
        "qs",
        2,
        6,
        vec![
            if_then(ge(local(0), local(1)), vec![ret(konst(0))]),
            assign(4, loadw(0, local(1))),
            assign(2, local(0)),
            assign(3, local(0)),
            while_loop(
                lt(local(3), local(1)),
                vec![
                    if_then(
                        le(loadw(0, local(3)), local(4)),
                        vec![
                            assign(5, loadw(0, local(2))),
                            storew(0, local(2), loadw(0, local(3))),
                            storew(0, local(3), local(5)),
                            assign(2, add(local(2), konst(1))),
                        ],
                    ),
                    assign(3, add(local(3), konst(1))),
                ],
            ),
            assign(5, loadw(0, local(2))),
            storew(0, local(2), loadw(0, local(1))),
            storew(0, local(1), local(5)),
            assign(5, call(1, vec![local(0), sub(local(2), konst(1))])),
            assign(5, call(1, vec![add(local(2), konst(1)), local(1)])),
            ret(konst(0)),
        ],
    );
    module(vec![main, qs], vec![global_words("arr", arr_words)])
}

fn build_scaled(arr_words: usize) -> Module {
    // Reuse the paper-scale `main` (sized up) as a procedure and drive it
    // from a trivial repetition loop. `qs` must stay at function index 1
    // so its self-calls keep resolving, which puts `pass` at index 2.
    // driver locals: n=0, reps=1, r=2, acc=3, t=4
    let sized = build_sized(arr_words);
    let mut pass = sized.functions[0].clone();
    pass.name = "pass".into();
    let qs = sized.functions[1].clone();
    let main = function(
        "main",
        2,
        5,
        vec![
            assign(3, konst(0)),
            assign(2, konst(0)),
            while_loop(
                lt(local(2), local(1)),
                vec![
                    assign(4, call(2, vec![local(0)])),
                    assign(3, add(local(3), local(4))),
                    assign(2, add(local(2), konst(1))),
                ],
            ),
            ret(local(3)),
        ],
    );
    module(vec![main, qs, pass], sized.globals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use risc1_ir::interpret;

    fn reference(n: usize) -> i32 {
        let mut seed = 1i32;
        let mut arr: Vec<i32> = (0..n)
            .map(|_| {
                seed = ((seed << 5) + seed + 9) & 8191;
                seed
            })
            .collect();
        arr.sort_unstable();
        arr.iter().skip(1).sum()
    }

    #[test]
    fn sorts_and_checksums() {
        for n in [2, 3, 33, 100] {
            let r = interpret(&build(), &[n]).unwrap();
            assert_eq!(r.value, reference(n as usize), "n = {n}");
            let g = &r.globals[0][..n as usize];
            assert!(g.windows(2).all(|w| w[0] <= w[1]), "sorted for n = {n}");
        }
    }

    #[test]
    fn recursion_happens() {
        let r = interpret(&build(), &[64]).unwrap();
        assert!(r.calls > 40, "quicksort recursed ({} calls)", r.calls);
    }

    #[test]
    fn scaled_builder_sums_repetitions() {
        for (n, reps) in [(33, 1), (33, 3), (100, 2)] {
            let r = interpret(&build_scaled(n as usize), &[n, reps]).unwrap();
            assert_eq!(r.value, reference(n as usize) * reps, "n={n} reps={reps}");
        }
    }

    #[test]
    fn scale_one_is_the_paper_workload() {
        assert_eq!(scaled(1).args, workload().args);
    }
}
