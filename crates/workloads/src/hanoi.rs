//! Towers of Hanoi (move counting) — binary-recursive call stress.

use crate::Workload;
use risc1_ir::ast::dsl::*;
use risc1_ir::Module;

/// Builds the workload.
pub fn workload() -> Workload {
    Workload {
        id: "hanoi",
        description: "Towers of Hanoi move count: binary recursion, depth = n",
        module: build(),
        args: vec![14],
        small_args: vec![8],
        call_heavy: true,
        scale: 1,
    }
}

/// The workload at `scale`: each extra disc doubles the move count, so
/// `⌈log2 scale⌉` extra discs run at least `scale` times longer.
pub fn scaled(scale: u32) -> Workload {
    let scale = scale.max(1);
    Workload {
        scale,
        args: vec![(14 + crate::growth_levels(scale, 2, 1)) as i32],
        ..workload()
    }
}

fn build() -> Module {
    // h(n) = n == 0 ? 0 : h(n-1) + h(n-1) + 1   (= 2^n − 1)
    let h = function(
        "hanoi",
        1,
        3,
        vec![
            if_then(eq(local(0), konst(0)), vec![ret(konst(0))]),
            assign(1, call(1, vec![sub(local(0), konst(1))])),
            assign(2, call(1, vec![sub(local(0), konst(1))])),
            ret(add(add(local(1), local(2)), konst(1))),
        ],
    );
    let main = function(
        "main",
        1,
        2,
        vec![assign(1, call(1, vec![local(0)])), ret(local(1))],
    );
    module(vec![main, h], vec![])
}

#[cfg(test)]
mod tests {
    use super::*;
    use risc1_ir::interpret;

    #[test]
    fn counts_two_to_the_n_minus_one_moves() {
        for n in [0, 1, 5, 10] {
            let r = interpret(&build(), &[n]).unwrap();
            assert_eq!(r.value, (1 << n) - 1, "hanoi({n})");
        }
    }

    #[test]
    fn recursion_depth_equals_n() {
        // Indirectly: calls = 2^(n+1) − 1 (every node of the call tree).
        let r = interpret(&build(), &[6]).unwrap();
        assert_eq!(r.calls, 127, "126 internal call edges + main's call");
    }
}
