//! "F — bit test": population counts over a pseudo-random stream. One of
//! the paper's short C benchmarks exercising shift/mask sequences.

use crate::Workload;
use risc1_ir::ast::dsl::*;
use risc1_ir::Module;

/// Builds the workload.
pub fn workload() -> Workload {
    Workload {
        id: "f_bit_test",
        description: "bit test (paper benchmark F): popcount of an LCG stream via shift/mask",
        module: build(),
        args: vec![5000],
        small_args: vec![300],
        call_heavy: false,
        scale: 1,
    }
}

/// The workload at `scale`: the argument is a repetition count and the
/// cost is linear in it, so scaling is exact.
pub fn scaled(scale: u32) -> Workload {
    let scale = scale.max(1);
    Workload {
        scale,
        args: vec![5000 * scale as i32],
        ..workload()
    }
}

fn build() -> Module {
    // locals: reps=0, s=1, k=2, seed=3, v=4, c=5
    // seed advances by seed*33+7 mod 2^15 — shifts and adds only, so the
    // workload measures bit work, not multiply runtime.
    let main = function(
        "main",
        1,
        6,
        vec![
            assign(1, konst(0)),
            assign(2, konst(0)),
            assign(3, konst(1)),
            while_loop(
                lt(local(2), local(0)),
                vec![
                    assign(
                        3,
                        band(
                            add(add(shl(local(3), konst(5)), local(3)), konst(7)),
                            konst(32767),
                        ),
                    ),
                    assign(4, local(3)),
                    assign(5, konst(0)),
                    while_loop(
                        ne(local(4), konst(0)),
                        vec![
                            assign(5, add(local(5), band(local(4), konst(1)))),
                            assign(4, shr(local(4), konst(1))),
                        ],
                    ),
                    assign(1, add(local(1), local(5))),
                    assign(2, add(local(2), konst(1))),
                ],
            ),
            ret(local(1)),
        ],
    );
    module(vec![main], vec![])
}

#[cfg(test)]
mod tests {
    use super::*;
    use risc1_ir::interpret;

    fn reference(reps: i32) -> i32 {
        let (mut s, mut seed) = (0i32, 1i32);
        for _ in 0..reps {
            seed = ((seed << 5) + seed + 7) & 32767;
            s += seed.count_ones() as i32;
        }
        s
    }

    #[test]
    fn matches_native_popcount() {
        for reps in [1, 10, 257] {
            let r = interpret(&build(), &[reps]).unwrap();
            assert_eq!(r.value, reference(reps), "reps {reps}");
        }
    }
}
