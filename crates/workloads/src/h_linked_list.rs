//! "H — linked list": sorted insertion into a singly linked list kept in
//! parallel arrays (index-linked, as a 1981 C program would on a machine
//! without malloc in the benchmark loop).

use crate::Workload;
use risc1_ir::ast::dsl::*;
use risc1_ir::Module;

const N: usize = 300;

/// Builds the workload.
pub fn workload() -> Workload {
    Workload {
        id: "h_linked_list",
        description: "linked list (paper benchmark H): sorted insertion + traversal",
        module: build(),
        args: vec![220],
        small_args: vec![40],
        call_heavy: false,
        scale: 1,
    }
}

/// The workload at `scale`. Sorted insertion walks the list on every
/// insert, so the cost is quadratic in the node count. The node count
/// grows with `√scale` but caps at 1000: the `val` array must start
/// within the 13-bit load displacement off the global pointer, and the
/// insertion walk has no temp register to spare for a far-global
/// address. Outer repetitions (a tiny driver `main` calling the
/// insertion pass as a procedure) absorb the rest; the scaled module
/// takes `(n, reps)`.
pub fn scaled(scale: u32) -> Workload {
    let scale = scale.max(1);
    if scale == 1 {
        return workload();
    }
    let n = (220 * crate::isqrt(u64::from(scale))).min(1000);
    let reps = (u64::from(scale) * 220 * 220).div_ceil(n * n);
    Workload {
        module: build_scaled(n as usize),
        args: vec![n as i32, reps as i32],
        small_args: vec![40, 1],
        scale,
        ..workload()
    }
}

fn build() -> Module {
    build_sized(N)
}

fn build_scaled(cap: usize) -> Module {
    // Reuse the paper-scale `main` (sized up) as a procedure and drive it
    // from a trivial repetition loop: the hot code keeps its exact
    // register budget. locals: n=0, reps=1, r=2, acc=3, t=4
    let sized = build_sized(cap);
    let mut pass = sized.functions[0].clone();
    pass.name = "pass".into();
    let main = function(
        "main",
        2,
        5,
        vec![
            assign(3, konst(0)),
            assign(2, konst(0)),
            while_loop(
                lt(local(2), local(1)),
                vec![
                    assign(4, call(1, vec![local(0)])),
                    assign(3, add(local(3), local(4))),
                    assign(2, add(local(2), konst(1))),
                ],
            ),
            ret(local(3)),
        ],
    );
    module(vec![main, pass], sized.globals)
}

fn build_sized(cap: usize) -> Module {
    // globals: 0 = next[cap], 1 = val[cap]
    // locals: n=0, head=1, k=2, seed=3, p=4, t=5, go=6
    let main = function(
        "main",
        1,
        7,
        vec![
            assign(1, konst(-1)),
            assign(2, konst(0)),
            assign(3, konst(1)),
            while_loop(
                lt(local(2), local(0)),
                vec![
                    assign(
                        3,
                        band(
                            add(add(shl(local(3), konst(5)), local(3)), konst(3)),
                            konst(8191),
                        ),
                    ),
                    storew(1, local(2), local(3)),
                    if_else(
                        eq(local(1), konst(-1)),
                        vec![storew(0, local(2), local(1)), assign(1, local(2))],
                        vec![if_else(
                            ge(loadw(1, local(1)), local(3)),
                            vec![storew(0, local(2), local(1)), assign(1, local(2))],
                            vec![
                                assign(4, local(1)),
                                assign(6, konst(1)),
                                while_loop(
                                    eq(local(6), konst(1)),
                                    vec![
                                        assign(5, loadw(0, local(4))),
                                        if_else(
                                            eq(local(5), konst(-1)),
                                            vec![assign(6, konst(0))],
                                            vec![if_else(
                                                lt(loadw(1, local(5)), local(3)),
                                                vec![assign(4, local(5))],
                                                vec![assign(6, konst(0))],
                                            )],
                                        ),
                                    ],
                                ),
                                storew(0, local(2), loadw(0, local(4))),
                                storew(0, local(4), local(2)),
                            ],
                        )],
                    ),
                    assign(2, add(local(2), konst(1))),
                ],
            ),
            // traverse: checksum with position weight
            assign(2, konst(0)),
            assign(4, local(1)),
            while_loop(
                ne(local(4), konst(-1)),
                vec![
                    assign(2, add(local(2), loadw(1, local(4)))),
                    assign(4, loadw(0, local(4))),
                ],
            ),
            ret(local(2)),
        ],
    );
    module(
        vec![main],
        vec![global_words("next", cap), global_words("val", cap)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use risc1_ir::interpret;

    fn reference(n: usize) -> i32 {
        let mut seed = 1i32;
        let vals: Vec<i32> = (0..n)
            .map(|_| {
                seed = ((seed << 5) + seed + 3) & 8191;
                seed
            })
            .collect();
        vals.iter().sum()
    }

    #[test]
    fn traversal_sum_matches_insertion_set() {
        for n in [1, 2, 25, 80] {
            let r = interpret(&build(), &[n]).unwrap();
            assert_eq!(r.value, reference(n as usize), "n = {n}");
        }
    }

    #[test]
    fn list_ends_up_sorted() {
        // Follow the links in the final global state; values must ascend.
        let r = interpret(&build(), &[50]).unwrap();
        let next = &r.globals[0];
        let val = &r.globals[1];
        // Find the head: the node not pointed to by anyone... simpler:
        // walk from the minimum value node by re-deriving head: the chain
        // visiting all 50 nodes in ascending order exists iff following
        // from the min covers ascending values. Reconstruct by sorting:
        let mut seen = 0;
        // head = node whose value is minimal among inserted
        let (head, _) = val
            .iter()
            .take(50)
            .enumerate()
            .min_by_key(|(_, v)| **v)
            .unwrap();
        let mut p = head as i32;
        let mut last = i32::MIN;
        while p != -1 {
            let v = val[p as usize];
            assert!(v >= last, "list order violated");
            last = v;
            seen += 1;
            p = next[p as usize];
        }
        assert_eq!(seen, 50, "all nodes reachable");
    }

    #[test]
    fn sized_builder_matches_reference() {
        for (cap, n) in [(400, 350), (1000, 900)] {
            let r = interpret(&build_sized(cap), &[n]).unwrap();
            assert_eq!(r.value, reference(n as usize), "cap={cap} n={n}");
        }
    }

    #[test]
    fn scaled_builder_sums_repetitions() {
        for (n, reps) in [(25, 1), (25, 4), (80, 3)] {
            let r = interpret(&build_scaled(100), &[n, reps]).unwrap();
            assert_eq!(r.value, reference(n as usize) * reps, "n={n} reps={reps}");
        }
    }

    #[test]
    fn scale_one_is_the_paper_workload() {
        assert_eq!(scaled(1).args, workload().args);
    }
}
