//! "E — string search": the paper's benchmark E, a naive substring search
//! over byte strings, repeated to get measurable run time.

use crate::Workload;
use risc1_ir::ast::dsl::*;
use risc1_ir::Module;

const TEXT_LEN: usize = 240;
const PAT_LEN: usize = 5;

/// Builds the workload.
pub fn workload() -> Workload {
    Workload {
        id: "e_string_search",
        description: "string search (paper benchmark E): naive match over byte arrays",
        module: build(),
        args: vec![400],
        small_args: vec![25],
        call_heavy: false,
        scale: 1,
    }
}

/// The workload at `scale`: the argument is already a repetition count
/// and the cost is linear in it, so scaling is exact.
pub fn scaled(scale: u32) -> Workload {
    let scale = scale.max(1);
    Workload {
        scale,
        args: vec![400 * scale as i32],
        ..workload()
    }
}

fn text_bytes() -> Vec<i32> {
    // Pseudo-text with the pattern "RISCI" planted near the end.
    let mut t: Vec<i32> = (0..TEXT_LEN as i32).map(|i| 97 + (i * 7 % 23)).collect();
    let pat = pattern_bytes();
    let at = TEXT_LEN - PAT_LEN - 3;
    t[at..at + PAT_LEN].copy_from_slice(&pat);
    t
}

fn pattern_bytes() -> [i32; PAT_LEN] {
    [82, 73, 83, 67, 73] // "RISCI"
}

fn build() -> Module {
    // find(tlen, plen): locals tlen=0, plen=1, i=2, j=3
    let find = function(
        "find",
        2,
        4,
        vec![
            assign(2, konst(0)),
            while_loop(
                le(local(2), sub(local(0), local(1))),
                vec![
                    assign(3, konst(0)),
                    while_loop(
                        lt(local(3), local(1)),
                        vec![if_else(
                            ne(loadb(0, add(local(2), local(3))), loadb(1, local(3))),
                            vec![assign(3, add(local(1), konst(1)))], // mismatch: break
                            vec![assign(3, add(local(3), konst(1)))],
                        )],
                    ),
                    if_then(eq(local(3), local(1)), vec![ret(local(2))]),
                    assign(2, add(local(2), konst(1))),
                ],
            ),
            ret(konst(-1)),
        ],
    );
    // main(reps): locals reps=0, s=1, k=2, t=3
    let main = function(
        "main",
        1,
        4,
        vec![
            assign(1, konst(0)),
            assign(2, konst(0)),
            while_loop(
                lt(local(2), local(0)),
                vec![
                    assign(
                        3,
                        call(1, vec![konst(TEXT_LEN as i32), konst(PAT_LEN as i32)]),
                    ),
                    assign(1, add(local(1), add(local(3), konst(1)))),
                    assign(2, add(local(2), konst(1))),
                ],
            ),
            ret(local(1)),
        ],
    );
    module(
        vec![main, find],
        vec![
            global_bytes_init("text", text_bytes()),
            global_bytes_init("pat", pattern_bytes().to_vec()),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use risc1_ir::interpret;

    fn reference_find() -> i32 {
        let t: Vec<u8> = text_bytes().iter().map(|v| *v as u8).collect();
        let p: Vec<u8> = pattern_bytes().iter().map(|v| *v as u8).collect();
        t.windows(p.len())
            .position(|w| w == &p[..])
            .map_or(-1, |i| i as i32)
    }

    #[test]
    fn finds_the_planted_pattern() {
        let pos = reference_find();
        assert_eq!(
            pos,
            (TEXT_LEN - PAT_LEN - 3) as i32,
            "pattern sits near the end"
        );
        let r = interpret(&build(), &[1]).unwrap();
        assert_eq!(r.value, pos + 1);
    }

    #[test]
    fn repeats_accumulate() {
        let pos = reference_find();
        let r = interpret(&build(), &[7]).unwrap();
        assert_eq!(r.value, 7 * (pos + 1));
    }
}
