//! "Puzzle" — recursive combinatorial search. The paper used Baskett's
//! Puzzle (a 3-D packing search); its exact source is not preserved, so
//! this reconstruction uses the N-queens search, which exercises the same
//! machine behaviour: deep recursion with trial placement and undo against
//! global arrays. (Substitution documented in DESIGN.md.)

use crate::Workload;
use risc1_ir::ast::dsl::*;
use risc1_ir::Module;

/// Builds the workload.
pub fn workload() -> Workload {
    Workload {
        id: "puzzle",
        description: "puzzle-class recursive search (N-queens stand-in for Baskett's Puzzle)",
        module: build(),
        args: vec![7],
        small_args: vec![5],
        call_heavy: true,
        scale: 1,
    }
}

/// The workload at `scale`: the N-queens search tree grows roughly 4.5x
/// per extra queen, so `⌈log4.5 scale⌉` extra board columns run at least
/// `scale` times longer. The board arrays are fixed at 16/32 words (the
/// diagonal index is offset by 16), so `n` is capped at 15.
pub fn scaled(scale: u32) -> Workload {
    let scale = scale.max(1);
    Workload {
        scale,
        args: vec![(7 + crate::growth_levels(scale, 9, 2)).min(15) as i32],
        ..workload()
    }
}

fn build() -> Module {
    // globals: 0 = cols[16], 1 = diag1[32], 2 = diag2[32]
    // solve(n, row): locals n=0, row=1, c=2, cnt=3, t=4
    let solve = function(
        "solve",
        2,
        5,
        vec![
            if_then(eq(local(1), local(0)), vec![ret(konst(1))]),
            assign(3, konst(0)),
            assign(2, konst(0)),
            while_loop(
                lt(local(2), local(0)),
                vec![
                    if_then(
                        eq(loadw(0, local(2)), konst(0)),
                        vec![if_then(
                            eq(loadw(1, add(local(1), local(2))), konst(0)),
                            vec![if_then(
                                eq(loadw(2, add(sub(local(1), local(2)), konst(16))), konst(0)),
                                vec![
                                    storew(0, local(2), konst(1)),
                                    storew(1, add(local(1), local(2)), konst(1)),
                                    storew(2, add(sub(local(1), local(2)), konst(16)), konst(1)),
                                    assign(4, call(1, vec![local(0), add(local(1), konst(1))])),
                                    assign(3, add(local(3), local(4))),
                                    storew(0, local(2), konst(0)),
                                    storew(1, add(local(1), local(2)), konst(0)),
                                    storew(2, add(sub(local(1), local(2)), konst(16)), konst(0)),
                                ],
                            )],
                        )],
                    ),
                    assign(2, add(local(2), konst(1))),
                ],
            ),
            ret(local(3)),
        ],
    );
    let main = function(
        "main",
        1,
        2,
        vec![assign(1, call(1, vec![local(0), konst(0)])), ret(local(1))],
    );
    module(
        vec![main, solve],
        vec![
            global_words("cols", 16),
            global_words("diag1", 32),
            global_words("diag2", 32),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use risc1_ir::interpret;

    #[test]
    fn counts_queens_solutions() {
        // Known N-queens counts: 1, 0, 0, 2, 10, 4, 40, 92
        for (n, expect) in [(1, 1), (4, 2), (5, 10), (6, 4), (7, 40)] {
            let r = interpret(&build(), &[n]).unwrap();
            assert_eq!(r.value, expect, "queens({n})");
        }
    }

    #[test]
    fn board_is_restored_after_search() {
        let r = interpret(&build(), &[6]).unwrap();
        assert!(r.globals.iter().all(|g| g.iter().all(|v| *v == 0)));
    }
}
