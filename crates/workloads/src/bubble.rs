//! Bubble sort — the quadratic-sorting member of the suite (array traffic
//! with predictable branches).

use crate::Workload;
use risc1_ir::ast::dsl::*;
use risc1_ir::Module;

const N: usize = 512;

/// Builds the workload.
pub fn workload() -> Workload {
    Workload {
        id: "bubble",
        description: "bubble sort of an LCG-filled word array, then checksum",
        module: build(),
        args: vec![180],
        small_args: vec![40],
        call_heavy: false,
    }
}

fn build() -> Module {
    // locals: n=0, i=1, j=2, t=3, seed_then_sum=4
    let main = function(
        "main",
        1,
        5,
        vec![
            // fill with seed = (seed*33 + 5) & 0x1fff
            assign(4, konst(1)),
            assign(1, konst(0)),
            while_loop(
                lt(local(1), local(0)),
                vec![
                    assign(
                        4,
                        band(
                            add(add(shl(local(4), konst(5)), local(4)), konst(5)),
                            konst(8191),
                        ),
                    ),
                    storew(0, local(1), local(4)),
                    assign(1, add(local(1), konst(1))),
                ],
            ),
            // bubble sort
            assign(1, konst(0)),
            while_loop(
                lt(local(1), sub(local(0), konst(1))),
                vec![
                    assign(2, konst(0)),
                    while_loop(
                        lt(local(2), sub(sub(local(0), local(1)), konst(1))),
                        vec![
                            if_then(
                                gt(loadw(0, local(2)), loadw(0, add(local(2), konst(1)))),
                                vec![
                                    assign(3, loadw(0, local(2))),
                                    storew(0, local(2), loadw(0, add(local(2), konst(1)))),
                                    storew(0, add(local(2), konst(1)), local(3)),
                                ],
                            ),
                            assign(2, add(local(2), konst(1))),
                        ],
                    ),
                    assign(1, add(local(1), konst(1))),
                ],
            ),
            // verify sorted and checksum: sum of a[i]*1 with order penalty
            assign(4, konst(0)),
            assign(1, konst(1)),
            while_loop(
                lt(local(1), local(0)),
                vec![
                    if_then(
                        gt(loadw(0, sub(local(1), konst(1))), loadw(0, local(1))),
                        vec![ret(konst(-1))],
                    ),
                    assign(4, add(local(4), loadw(0, local(1)))),
                    assign(1, add(local(1), konst(1))),
                ],
            ),
            ret(local(4)),
        ],
    );
    module(vec![main], vec![global_words("arr", N)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use risc1_ir::interpret;

    fn reference(n: usize) -> i32 {
        let mut seed = 1i32;
        let mut arr: Vec<i32> = (0..n)
            .map(|_| {
                seed = ((seed << 5) + seed + 5) & 8191;
                seed
            })
            .collect();
        arr.sort_unstable();
        arr.iter().skip(1).sum()
    }

    #[test]
    fn sorts_and_checksums() {
        for n in [2, 17, 60] {
            let r = interpret(&build(), &[n]).unwrap();
            assert_eq!(r.value, reference(n as usize), "n = {n}");
            // final array is sorted
            let g = &r.globals[0][..n as usize];
            assert!(g.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}
