//! Bubble sort — the quadratic-sorting member of the suite (array traffic
//! with predictable branches).

use crate::Workload;
use risc1_ir::ast::dsl::*;
use risc1_ir::Module;

const N: usize = 512;

/// Builds the workload.
pub fn workload() -> Workload {
    Workload {
        id: "bubble",
        description: "bubble sort of an LCG-filled word array, then checksum",
        module: build(),
        args: vec![180],
        small_args: vec![40],
        call_heavy: false,
        scale: 1,
    }
}

/// The workload at `scale`. Bubble sort is quadratic, so the element
/// count grows with `√scale` (capped at 2048 words) and whole
/// fill-sort-verify repetitions absorb the remainder. The scaled module
/// takes `(n, reps)` and returns the summed checksum across repetitions.
pub fn scaled(scale: u32) -> Workload {
    let scale = scale.max(1);
    if scale == 1 {
        return workload();
    }
    let n = (180 * crate::isqrt(u64::from(scale))).min(2048);
    let total = u64::from(scale) * 180 * 180;
    let reps = total.div_ceil(n * n);
    Workload {
        module: build_scaled(n as usize),
        args: vec![n as i32, reps as i32],
        small_args: vec![40, 1],
        scale,
        ..workload()
    }
}

fn build() -> Module {
    build_sized(N)
}

fn build_sized(arr_words: usize) -> Module {
    // locals: n=0, i=1, j=2, t=3, seed_then_sum=4
    let main = function(
        "main",
        1,
        5,
        vec![
            // fill with seed = (seed*33 + 5) & 0x1fff
            assign(4, konst(1)),
            assign(1, konst(0)),
            while_loop(
                lt(local(1), local(0)),
                vec![
                    assign(
                        4,
                        band(
                            add(add(shl(local(4), konst(5)), local(4)), konst(5)),
                            konst(8191),
                        ),
                    ),
                    storew(0, local(1), local(4)),
                    assign(1, add(local(1), konst(1))),
                ],
            ),
            // bubble sort
            assign(1, konst(0)),
            while_loop(
                lt(local(1), sub(local(0), konst(1))),
                vec![
                    assign(2, konst(0)),
                    while_loop(
                        lt(local(2), sub(sub(local(0), local(1)), konst(1))),
                        vec![
                            if_then(
                                gt(loadw(0, local(2)), loadw(0, add(local(2), konst(1)))),
                                vec![
                                    assign(3, loadw(0, local(2))),
                                    storew(0, local(2), loadw(0, add(local(2), konst(1)))),
                                    storew(0, add(local(2), konst(1)), local(3)),
                                ],
                            ),
                            assign(2, add(local(2), konst(1))),
                        ],
                    ),
                    assign(1, add(local(1), konst(1))),
                ],
            ),
            // verify sorted and checksum: sum of a[i]*1 with order penalty
            assign(4, konst(0)),
            assign(1, konst(1)),
            while_loop(
                lt(local(1), local(0)),
                vec![
                    if_then(
                        gt(loadw(0, sub(local(1), konst(1))), loadw(0, local(1))),
                        vec![ret(konst(-1))],
                    ),
                    assign(4, add(local(4), loadw(0, local(1)))),
                    assign(1, add(local(1), konst(1))),
                ],
            ),
            ret(local(4)),
        ],
    );
    module(vec![main], vec![global_words("arr", arr_words)])
}

fn build_scaled(arr_words: usize) -> Module {
    // Reuse the paper-scale `main` (sized up) as a procedure and drive it
    // from a trivial repetition loop: the hot code keeps its exact
    // register budget. locals: n=0, reps=1, r=2, acc=3, t=4
    let sized = build_sized(arr_words);
    let mut pass = sized.functions[0].clone();
    pass.name = "pass".into();
    let main = function(
        "main",
        2,
        5,
        vec![
            assign(3, konst(0)),
            assign(2, konst(0)),
            while_loop(
                lt(local(2), local(1)),
                vec![
                    assign(4, call(1, vec![local(0)])),
                    assign(3, add(local(3), local(4))),
                    assign(2, add(local(2), konst(1))),
                ],
            ),
            ret(local(3)),
        ],
    );
    module(vec![main, pass], sized.globals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use risc1_ir::interpret;

    fn reference(n: usize) -> i32 {
        let mut seed = 1i32;
        let mut arr: Vec<i32> = (0..n)
            .map(|_| {
                seed = ((seed << 5) + seed + 5) & 8191;
                seed
            })
            .collect();
        arr.sort_unstable();
        arr.iter().skip(1).sum()
    }

    #[test]
    fn sorts_and_checksums() {
        for n in [2, 17, 60] {
            let r = interpret(&build(), &[n]).unwrap();
            assert_eq!(r.value, reference(n as usize), "n = {n}");
            // final array is sorted
            let g = &r.globals[0][..n as usize];
            assert!(g.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn scaled_builder_sums_repetitions() {
        for (n, reps) in [(17, 1), (17, 4), (60, 2)] {
            let r = interpret(&build_scaled(n as usize), &[n, reps]).unwrap();
            assert_eq!(r.value, reference(n as usize) * reps, "n={n} reps={reps}");
        }
    }

    #[test]
    fn scale_one_is_the_paper_workload() {
        assert_eq!(scaled(1).args, workload().args);
    }
}
