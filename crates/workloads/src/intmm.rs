//! Integer matrix multiply — the paper's multiply-bound benchmark. RISC I
//! has no multiply instruction, so every inner-product step calls the
//! software `__mul` routine; CX multiplies in microcode. This is the
//! workload where the CISC machine claws back the most ground, exactly as
//! the paper reports.

use crate::Workload;
use risc1_ir::ast::dsl::*;
use risc1_ir::{Expr, Module};

/// Builds the workload.
pub fn workload() -> Workload {
    Workload {
        id: "intmm",
        description: "n×n integer matrix multiply (16-wide rows): software mul on RISC I",
        module: build(),
        args: vec![14],
        small_args: vec![6],
        call_heavy: false,
        scale: 1,
    }
}

/// The workload at `scale`. Matrix multiply is cubic, so the dimension
/// grows with `∛scale` — rounded up to a power of two because the row
/// stride is a shift, and capped at 128 (three 128×128 word arrays =
/// 192 KiB). The cap tops out around 760x the paper-scale instruction
/// count, the upper end of the supported scale range.
pub fn scaled(scale: u32) -> Workload {
    let scale = scale.max(1);
    if scale == 1 {
        return workload();
    }
    let target = 14u64 * 14 * 14 * u64::from(scale);
    let mut shift = 4u32;
    while (1u64 << (3 * shift)) < target && shift < 7 {
        shift += 1;
    }
    Workload {
        module: build_shifted(shift as i32),
        args: vec![1 << shift],
        scale,
        ..workload()
    }
}

fn build() -> Module {
    build_shifted(4)
}

fn build_shifted(shift: i32) -> Module {
    let dim = 1usize << shift;
    // locals: n=0, i=1, j=2, k=3, s=4  (≤5 so the deep mul expression fits)
    let row = move |i: usize, j_expr: Expr| add(shl(local(i), konst(shift)), j_expr);
    let main = function(
        "main",
        1,
        5,
        vec![
            // fill a[i][j] = ((i<<2)+j) & 15 − 7;  b[i][j] = ((i+j) & 7) − 3
            assign(1, konst(0)),
            while_loop(
                lt(local(1), local(0)),
                vec![
                    assign(2, konst(0)),
                    while_loop(
                        lt(local(2), local(0)),
                        vec![
                            storew(
                                0,
                                row(1, local(2)),
                                sub(
                                    band(add(shl(local(1), konst(2)), local(2)), konst(15)),
                                    konst(7),
                                ),
                            ),
                            storew(
                                1,
                                row(1, local(2)),
                                sub(band(add(local(1), local(2)), konst(7)), konst(3)),
                            ),
                            assign(2, add(local(2), konst(1))),
                        ],
                    ),
                    assign(1, add(local(1), konst(1))),
                ],
            ),
            // c := a × b
            assign(1, konst(0)),
            while_loop(
                lt(local(1), local(0)),
                vec![
                    assign(2, konst(0)),
                    while_loop(
                        lt(local(2), local(0)),
                        vec![
                            assign(4, konst(0)),
                            assign(3, konst(0)),
                            while_loop(
                                lt(local(3), local(0)),
                                vec![
                                    assign(
                                        4,
                                        add(
                                            local(4),
                                            mul(
                                                loadw(0, row(1, local(3))),
                                                loadw(1, row(3, local(2))),
                                            ),
                                        ),
                                    ),
                                    assign(3, add(local(3), konst(1))),
                                ],
                            ),
                            storew(2, row(1, local(2)), local(4)),
                            assign(2, add(local(2), konst(1))),
                        ],
                    ),
                    assign(1, add(local(1), konst(1))),
                ],
            ),
            // checksum of c
            assign(4, konst(0)),
            assign(1, konst(0)),
            while_loop(
                lt(local(1), local(0)),
                vec![
                    assign(2, konst(0)),
                    while_loop(
                        lt(local(2), local(0)),
                        vec![
                            assign(4, bxor(local(4), loadw(2, row(1, local(2))))),
                            assign(2, add(local(2), konst(1))),
                        ],
                    ),
                    assign(1, add(local(1), konst(1))),
                ],
            ),
            ret(local(4)),
        ],
    );
    module(
        vec![main],
        vec![
            global_words("a", dim * dim),
            global_words("b", dim * dim),
            global_words("c", dim * dim),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use risc1_ir::interpret;

    const DIM: usize = 16; // the paper-scale row stride

    fn reference(n: usize) -> i32 {
        let mut a = [[0i32; DIM]; DIM];
        let mut b = [[0i32; DIM]; DIM];
        for (i, row) in a.iter_mut().enumerate().take(n) {
            for (j, cell) in row.iter_mut().enumerate().take(n) {
                *cell = (((i << 2) + j) & 15) as i32 - 7;
            }
        }
        for (i, row) in b.iter_mut().enumerate().take(n) {
            for (j, cell) in row.iter_mut().enumerate().take(n) {
                *cell = ((i + j) & 7) as i32 - 3;
            }
        }
        let mut sum = 0i32;
        for arow in a.iter().take(n) {
            for j in 0..n {
                let mut s = 0i32;
                for (ak, bk) in arow.iter().zip(b.iter()).take(n) {
                    s = s.wrapping_add(ak.wrapping_mul(bk[j]));
                }
                sum ^= s;
            }
        }
        sum
    }

    #[test]
    fn matches_native_matmul() {
        for n in [1, 4, 9] {
            let r = interpret(&build(), &[n]).unwrap();
            assert_eq!(r.value, reference(n as usize), "n = {n}");
        }
    }

    #[test]
    fn wider_strides_compute_the_same_products() {
        // The fill and product only depend on (i, j, n), not the stride,
        // so a 32- or 64-wide build must agree with the 16-wide reference
        // for any n that fits in both.
        for shift in [5, 6] {
            let r = interpret(&build_shifted(shift), &[9]).unwrap();
            assert_eq!(r.value, reference(9), "shift = {shift}");
        }
    }

    #[test]
    fn scale_one_is_the_paper_workload() {
        assert_eq!(scaled(1).args, workload().args);
        // scaled dims are powers of two (the row stride is a shift)
        for s in [2, 10, 100, 1000] {
            let d = scaled(s).args[0];
            assert_eq!(d & (d - 1), 0, "dim {d} at scale {s}");
        }
    }
}
