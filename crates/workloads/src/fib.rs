//! Recursive Fibonacci — small frames, deep call trees.

use crate::Workload;
use risc1_ir::ast::dsl::*;
use risc1_ir::Module;

/// Builds the workload.
pub fn workload() -> Workload {
    Workload {
        id: "fib",
        description: "naively recursive Fibonacci: deep call tree, tiny frames",
        module: build(),
        args: vec![20],
        small_args: vec![12],
        call_heavy: true,
        scale: 1,
    }
}

/// The workload at `scale`. The call tree of `fib(n)` grows like the
/// Fibonacci numbers themselves, so the smallest `k` with
/// `Fib(20+k) >= scale · Fib(20)` runs at least `scale` times longer.
pub fn scaled(scale: u32) -> Workload {
    let scale = scale.max(1);
    let fib_at = |n: u32| -> u128 {
        let (mut a, mut b) = (0u128, 1u128);
        for _ in 0..n {
            (a, b) = (b, a + b);
        }
        a
    };
    let mut extra = 0u32;
    while fib_at(20 + extra) < u128::from(scale) * fib_at(20) {
        extra += 1;
    }
    Workload {
        scale,
        args: vec![(20 + extra) as i32],
        ..workload()
    }
}

fn build() -> Module {
    let fib = function(
        "fib",
        1,
        3,
        vec![
            if_then(lt(local(0), konst(2)), vec![ret(local(0))]),
            assign(1, call(1, vec![sub(local(0), konst(1))])),
            assign(2, call(1, vec![sub(local(0), konst(2))])),
            ret(add(local(1), local(2))),
        ],
    );
    let main = function(
        "main",
        1,
        2,
        vec![assign(1, call(1, vec![local(0)])), ret(local(1))],
    );
    module(vec![main, fib], vec![])
}

#[cfg(test)]
mod tests {
    use super::*;
    use risc1_ir::interpret;

    fn reference(n: u64) -> u64 {
        if n < 2 {
            n
        } else {
            reference(n - 1) + reference(n - 2)
        }
    }

    #[test]
    fn matches_native_reference() {
        for n in [0, 1, 2, 7, 15] {
            let r = interpret(&build(), &[n]).unwrap();
            assert_eq!(r.value as u64, reference(n as u64), "fib({n})");
        }
    }
}
