//! Recursive Fibonacci — small frames, deep call trees.

use crate::Workload;
use risc1_ir::ast::dsl::*;
use risc1_ir::Module;

/// Builds the workload.
pub fn workload() -> Workload {
    Workload {
        id: "fib",
        description: "naively recursive Fibonacci: deep call tree, tiny frames",
        module: build(),
        args: vec![20],
        small_args: vec![12],
        call_heavy: true,
    }
}

fn build() -> Module {
    let fib = function(
        "fib",
        1,
        3,
        vec![
            if_then(lt(local(0), konst(2)), vec![ret(local(0))]),
            assign(1, call(1, vec![sub(local(0), konst(1))])),
            assign(2, call(1, vec![sub(local(0), konst(2))])),
            ret(add(local(1), local(2))),
        ],
    );
    let main = function(
        "main",
        1,
        2,
        vec![assign(1, call(1, vec![local(0)])), ret(local(1))],
    );
    module(vec![main, fib], vec![])
}

#[cfg(test)]
mod tests {
    use super::*;
    use risc1_ir::interpret;

    fn reference(n: u64) -> u64 {
        if n < 2 {
            n
        } else {
            reference(n - 1) + reference(n - 2)
        }
    }

    #[test]
    fn matches_native_reference() {
        for n in [0, 1, 2, 7, 15] {
            let r = interpret(&build(), &[n]).unwrap();
            assert_eq!(r.value as u64, reference(n as u64), "fib({n})");
        }
    }
}
