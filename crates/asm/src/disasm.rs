//! Disassembler: machine words back to assembly text.

use risc1_isa::{Instruction, INSN_BYTES};

/// Disassembles a slice of instruction words into one line per word.
/// Undecodable words render as `.word 0x…` so every image round-trips.
///
/// Reassembling the output reproduces every *canonical* word bit for bit.
/// A handful of fields are architecturally ignored (e.g. the dest field of
/// `ret`); words carrying junk there decode fine but reassemble to the
/// canonical (zeroed) form.
pub fn disassemble_words(words: &[u32], base: u32) -> String {
    let mut out = String::new();
    for (i, &w) in words.iter().enumerate() {
        let addr = base + i as u32 * INSN_BYTES;
        let text = match Instruction::decode(w) {
            Ok(insn) => insn.to_string(),
            Err(_) => format!(".word {w:#010x}"),
        };
        out.push_str(&format!("{addr:#010x}:  {text}\n"));
    }
    out
}

/// Disassembles a program's code section (addresses relative to 0).
pub fn disassemble(prog: &risc1_core::Program) -> String {
    disassemble_words(&prog.words, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble;

    #[test]
    fn disassembly_reassembles_to_identical_words() {
        let src = "
            f:  add  r16, r26, #40 {scc}
                ldl  r17, r16, #0
                stl  r17, r16, #4
                jmp  ne, r17, #0
                nop
                ret  r25, #8
                nop
        ";
        let prog = assemble(src).unwrap();
        let text = disassemble(&prog);
        // Strip the address column and reassemble.
        let stripped: String = text
            .lines()
            .map(|l| l.split(":  ").nth(1).unwrap())
            .map(|s| format!("{s}\n"))
            .collect();
        let prog2 = assemble(&stripped).unwrap();
        assert_eq!(prog.words, prog2.words);
    }

    #[test]
    fn bad_words_render_as_word_directive() {
        let out = disassemble_words(&[0xffff_ffff], 0x1000);
        assert!(out.contains(".word 0xffffffff"));
        assert!(out.starts_with("0x00001000"));
    }
}

#[cfg(test)]
mod proptests {
    use crate::assemble;
    use proptest::prelude::*;
    use risc1_isa::encoding::scc_allowed;
    use risc1_isa::insn::{IMM19_MAX, IMM19_MIN};
    use risc1_isa::{Cond, Format, Instruction, Opcode, Reg, Short2};

    fn arb_reg() -> impl Strategy<Value = Reg> {
        (0u8..32).prop_map(|n| Reg::new(n).unwrap())
    }

    fn arb_short2() -> impl Strategy<Value = Short2> {
        prop_oneof![
            arb_reg().prop_map(Short2::Reg),
            (-4096i32..=4095).prop_map(|v| Short2::imm(v).unwrap()),
        ]
    }

    fn arb_insn() -> impl Strategy<Value = Instruction> {
        // Opcodes whose assembler syntax omits fixed-zero fields are
        // generated in canonical form below, not with arbitrary fields.
        let reduced = [
            Opcode::Ret,
            Opcode::Reti,
            Opcode::Putpsw,
            Opcode::Calli,
            Opcode::Gtlpc,
            Opcode::Getpsw,
        ];
        let short_ops: Vec<Opcode> = Opcode::ALL
            .iter()
            .copied()
            .filter(|o| o.format() == Format::Short && !o.uses_condition() && !reduced.contains(o))
            .collect();
        let alu: Vec<Opcode> = Opcode::ALL
            .iter()
            .copied()
            .filter(|o| scc_allowed(*o))
            .collect();
        prop_oneof![
            (
                proptest::sample::select(short_ops),
                arb_reg(),
                arb_reg(),
                arb_short2()
            )
                .prop_map(|(o, d, r, s)| Instruction::reg(o, d, r, s)),
            (
                proptest::sample::select(alu),
                arb_reg(),
                arb_reg(),
                arb_short2()
            )
                .prop_map(|(o, d, r, s)| Instruction::reg_scc(o, d, r, s)),
            (
                (0u8..16).prop_map(|c| Cond::from_field(c).unwrap()),
                arb_reg(),
                arb_short2()
            )
                .prop_map(|(c, r, s)| Instruction::jmp(c, r, s)),
            (
                (0u8..16).prop_map(|c| Cond::from_field(c).unwrap()),
                (IMM19_MIN..=IMM19_MAX).prop_map(|v| v & !3)
            )
                .prop_map(|(c, off)| Instruction::jmpr(c, off)),
            (arb_reg(), (IMM19_MIN..=IMM19_MAX).prop_map(|v| v & !3))
                .prop_map(|(d, off)| Instruction::callr(d, off)),
            (arb_reg(), 0u32..(1 << 19)).prop_map(|(d, v)| Instruction::ldhi(d, v)),
            // canonical reduced shapes
            (arb_reg(), arb_short2()).prop_map(|(r, s)| Instruction::ret(r, s)),
            (arb_reg(), arb_short2()).prop_map(|(r, s)| Instruction::reg(
                Opcode::Reti,
                Reg::R0,
                r,
                s
            )),
            (arb_reg(), arb_short2()).prop_map(|(r, s)| Instruction::reg(
                Opcode::Putpsw,
                Reg::R0,
                r,
                s
            )),
            arb_reg().prop_map(|d| Instruction::reg(Opcode::Calli, d, Reg::R0, Short2::ZERO)),
            arb_reg().prop_map(|d| Instruction::reg(Opcode::Gtlpc, d, Reg::R0, Short2::ZERO)),
            arb_reg().prop_map(|d| Instruction::reg(Opcode::Getpsw, d, Reg::R0, Short2::ZERO)),
        ]
    }

    proptest! {
        /// Every constructible instruction survives
        /// Display → assemble → encode unchanged: the assembler accepts the
        /// disassembler's exact output for the entire instruction space.
        #[test]
        fn display_assemble_roundtrip(insn in arb_insn()) {
            let text = insn.to_string();
            let prog = assemble(&text)
                .unwrap_or_else(|e| panic!("`{text}` failed to assemble: {e}"));
            prop_assert_eq!(prog.words.len(), 1, "{}", text);
            prop_assert_eq!(prog.words[0], insn.encode(), "{}", text);
        }
    }
}
